#!/usr/bin/env python3
"""Validate a bench report stream and exported worm traces.

Usage:
    validate_report.py --report <stderr-capture> [--trace <file.json>...]

The report capture is the stderr of a bench run with report=1: machine
lines start with "# {" and must parse as JSON. The stream must open
with a schema header (mdw-report/1), contain exactly one metrics
section, and end in status "ok". Trace files must be Chrome-trace JSON
(Perfetto-loadable): a traceEvents array of instant events with
cycle timestamps plus process-name metadata.
"""

import argparse
import json
import sys

SCHEMA = "mdw-report/1"
WORM_EVENTS = {
    "inject",
    "header_decode",
    "replicate",
    "reserve_stall",
    "tail_drain",
    "deliver",
    "poison_drop",
    "retransmit",
    "crc_fail",
    "nak",
    "replay",
    "link_flap",
    "lane_alloc",
    "lane_stall",
}


def fail(msg):
    print(f"validate_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def machine_lines(path):
    out = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("# {"):
                try:
                    out.append(json.loads(line[2:]))
                except json.JSONDecodeError as err:
                    fail(f"{path}: unparseable machine line {line!r}: {err}")
    return out


def check_integrity_metrics(path, metrics):
    """Cross-check the link-integrity counters when present.

    Every corrupted wire traversal is either detected by the link CRC
    (NAKed and replayed) or evades it (a residual error caught by the
    end-to-end checksum), so the rollups must balance exactly.
    """
    if "network.link.corrupted" not in metrics:
        return
    corrupted = metrics["network.link.corrupted"]
    naks = metrics.get("network.link.naks", 0)
    residual = metrics.get("network.link.residual_errors", 0)
    if naks + residual != corrupted:
        fail(f"{path}: integrity imbalance: corrupted={corrupted} != "
             f"naks={naks} + residual_errors={residual}")
    if metrics.get("network.link.replays", 0) < naks:
        fail(f"{path}: fewer replays than NAKs "
             f"({metrics.get('network.link.replays', 0)} < {naks})")
    if residual and "host.csum_fails" not in metrics:
        fail(f"{path}: residual errors reported but no "
             "host.csum_fails metric registered")


def check_shards(path, shards, metrics):
    """Cross-check the per-shard rollup of a sharded run.

    The shards record carries every parallel shard plus the serial
    bucket; the switch counters summed over all entries must reproduce
    the flat network.* rollups bit for bit (sharding must never lose
    or double-count work).
    """
    effective = shards.get("effective")
    entries = shards.get("entries")
    if not isinstance(effective, int) or effective < 1:
        fail(f"{path}: shards.effective is not a positive int")
    if not isinstance(entries, list) or len(entries) != effective + 1:
        fail(f"{path}: expected {effective + 1} shard entries "
             f"(parallel + serial), got "
             f"{len(entries) if isinstance(entries, list) else entries!r}")
    if not entries[-1].get("serial"):
        fail(f"{path}: last shard entry is not the serial bucket")
    for i, entry in enumerate(entries):
        for key in ("shard", "components", "steps", "boundary_sends",
                    "wall_ms", "flits_in", "flits_out",
                    "packets_routed", "replications",
                    "reservation_stall_cycles"):
            if key not in entry:
                fail(f"{path}: shard entry {i} is missing '{key}'")
    rollup = {
        "flits_in": "network.flits_in",
        "flits_out": "network.flits_out",
        "packets_routed": "network.packets_routed",
        "replications": "network.replications",
        "reservation_stall_cycles":
            "network.reservation_stall_cycles",
    }
    for key, metric in rollup.items():
        if metric not in metrics:
            continue
        total = sum(entry[key] for entry in entries)
        if total != metrics[metric]:
            fail(f"{path}: per-shard {key} sums to {total} but "
                 f"{metric}={metrics[metric]}")
    print(f"validate_report: OK shards {path} "
          f"({effective} parallel + serial, rollup balanced)")


def check_workload_metrics(path, metrics):
    """Cross-check closed-loop workload accounting when present.

    Closed-loop runs (workload.kind = collective or trace) report the
    workload.* rollup; on a drained run every injected message retired
    either fully or as a partial (unreachable write-off), so posted
    must equal completed + partial exactly.
    """
    if "workload.posted" not in metrics:
        return
    posted = metrics["workload.posted"]
    completed = metrics.get("workload.completed", 0)
    partial = metrics.get("workload.partial", 0)
    if completed + partial != posted:
        fail(f"{path}: workload imbalance: posted={posted} != "
             f"completed={completed} + partial={partial}")


def check_report(path, expect_metrics=()):
    objs = machine_lines(path)
    if not objs:
        fail(f"{path}: no machine-readable lines")

    header = objs[0]
    if header.get("schema") != SCHEMA:
        fail(f"{path}: first machine line is not a {SCHEMA} header: {header}")
    for key in ("experiment", "runs", "threads", "baseSeed", "seedsDerived"):
        if key not in header:
            fail(f"{path}: header is missing '{key}'")

    metrics = [o for o in objs if "metrics" in o]
    if len(metrics) != 1:
        fail(f"{path}: expected exactly one metrics line, got {len(metrics)}")
    if not isinstance(metrics[0]["metrics"], dict) or not metrics[0]["metrics"]:
        fail(f"{path}: metrics section is empty or not an object")
    for name, value in metrics[0]["metrics"].items():
        if isinstance(value, dict):
            missing = {"count", "mean", "stddev", "min", "max"} - value.keys()
            if missing:
                fail(f"{path}: sampler '{name}' is missing {sorted(missing)}")
        elif not isinstance(value, (int, float)):
            fail(f"{path}: metric '{name}' has non-numeric value {value!r}")

    statuses = [o["status"] for o in objs if "status" in o]
    if statuses != ["ok"]:
        fail(f"{path}: expected one final status 'ok', got {statuses}")
    if "status" not in objs[-1]:
        fail(f"{path}: status marker is not the last machine line")

    section = metrics[0]["metrics"]
    missing = [name for name in expect_metrics if name not in section]
    if missing:
        fail(f"{path}: expected metrics never reported: {missing}")
    check_integrity_metrics(path, section)
    check_workload_metrics(path, section)
    shards = [o for o in objs if "shards" in o]
    if len(shards) > 1:
        fail(f"{path}: expected at most one shards line, got "
             f"{len(shards)}")
    for obj in shards:
        check_shards(path, obj["shards"], section)
    print(f"validate_report: OK report {path} "
          f"({len(section)} metrics)")


def check_trace(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    other = doc.get("otherData", {})
    if other.get("clock") != "cycles":
        fail(f"{path}: otherData.clock is not 'cycles'")

    instants = [e for e in events if e.get("ph") == "i"]
    metadata = [e for e in events if e.get("ph") == "M"]
    if not instants:
        fail(f"{path}: no instant events")
    if not any(e.get("name") == "process_name" for e in metadata):
        fail(f"{path}: no process_name metadata (Perfetto grouping)")
    for event in instants:
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                fail(f"{path}: instant event missing '{key}': {event}")
        if event["name"] not in WORM_EVENTS:
            fail(f"{path}: unknown worm event '{event['name']}'")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            fail(f"{path}: non-cycle timestamp {event['ts']!r}")
    kinds = {e["name"] for e in instants}
    print(f"validate_report: OK trace {path} "
          f"({len(instants)} events, kinds: {', '.join(sorted(kinds))})")
    return kinds


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--report", help="stderr capture of a report=1 run")
    parser.add_argument("--trace", nargs="*", default=[],
                        help="exported .trace.json files")
    parser.add_argument("--expect-events", nargs="*", default=[],
                        help="worm event names that must appear in traces")
    parser.add_argument("--expect-metrics", nargs="*", default=[],
                        help="metric names that must appear in the report")
    args = parser.parse_args()
    if not args.report and not args.trace:
        fail("nothing to validate (pass --report and/or --trace)")

    if args.report:
        check_report(args.report, args.expect_metrics)
    seen = set()
    for path in args.trace:
        seen |= check_trace(path)
    missing = set(args.expect_events) - seen
    if missing:
        fail(f"expected worm events never seen: {sorted(missing)}")
    sys.exit(0)


if __name__ == "__main__":
    main()
