/**
 * @file
 * A5 — Microbenchmark (google-benchmark): simulation speed of whole
 * loaded networks, in simulated cycles per second, for both switch
 * architectures and two system sizes.
 */

#include <benchmark/benchmark.h>

#include "core/presets.hh"

namespace {

using namespace mdw;

void
runNetwork(benchmark::State &state, SwitchArch arch, int stages)
{
    NetworkConfig config = defaultNetwork();
    config.arch = arch;
    config.fatTreeN = stages;
    Network net(config);

    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.08;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    // Warm the pipes so the steady state is measured.
    net.sim().run(2000);
    for (auto _ : state)
        net.sim().stepOne();
    state.SetItemsProcessed(state.iterations());
    state.counters["hosts"] =
        static_cast<double>(net.numHosts());
}

void
BM_CentralBufferNetwork(benchmark::State &state)
{
    runNetwork(state, SwitchArch::CentralBuffer,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_CentralBufferNetwork)->Arg(2)->Arg(3);

void
BM_InputBufferNetwork(benchmark::State &state)
{
    runNetwork(state, SwitchArch::InputBuffer,
               static_cast<int>(state.range(0)));
}
BENCHMARK(BM_InputBufferNetwork)->Arg(2)->Arg(3);

} // namespace

BENCHMARK_MAIN();
