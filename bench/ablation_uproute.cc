/**
 * @file
 * A4 — Ablation: adaptive vs deterministic up-port selection. The
 * bidirectional MIN offers k equivalent up ports below the LCA
 * stage; adaptive selection (least-backlogged / first-free) balances
 * transient hot spots that a source-hashed deterministic choice
 * cannot, which shows up as later saturation under load.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A4");

    banner("A4", "up-port selection ablation (CB-HW)",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s | %9s %9s | %9s %9s\n", "", "adaptive", "",
                "determin.", "");
    std::printf("%8s | %9s %9s | %9s %9s\n", "load", "mc-last",
                "deliv", "mc-last", "deliv");
    std::fflush(stdout);

    const UpPortPolicy policies[] = {UpPortPolicy::Adaptive,
                                     UpPortPolicy::Deterministic};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (UpPortPolicy policy : policies) {
            NetworkConfig net = networkFor(Scheme::CbHw);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.sw.upPolicy = policy;
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(policy), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f", load);
        for (UpPortPolicy policy : policies) {
            (void)policy;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %9.3f%s",
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        r.deliveredLoad(), satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
