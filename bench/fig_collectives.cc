/**
 * @file
 * E13 — Closed-loop collective completion time vs system size for
 * each multicast implementation. Unlike the open-loop figures, every
 * round is gated on real completions: barrier/allreduce gather
 * unicasts into the root and the release multicast fires only after
 * the last arrival completes, so the reported cycles are end-to-end
 * collective latency, not steady-state throughput.
 *
 * Expected shape (paper): the release multicast dominates, so the
 * scheme ordering of E10 carries over and widens with system size —
 * CB-HW flattest, SW-UMin growing with the unicast fan-out it must
 * serialize at the root.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E13");

    // Fat-tree levels at k=4: n -> 4^n hosts (16 / 64 / 256).
    const std::vector<int> levels =
        quick ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4};
    const CollectiveOp ops[] = {CollectiveOp::Barrier,
                                CollectiveOp::Allreduce};

    banner("E13", "collective completion time vs system size",
           "closed-loop iterated barrier/allreduce: gather unicasts + "
           "release multicast, each round gated on completions");
    std::printf("%10s %6s | %9s %9s %9s\n", "op", "hosts", "cb-hw",
                "ib-hw", "sw-umin");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (const CollectiveOp op : ops) {
        for (const int n : levels) {
            for (const Scheme scheme : kAllSchemes) {
                NetworkConfig net = networkFor(scheme);
                TrafficParams traffic = defaultTraffic();
                ExperimentParams params = benchExperiment(quick);
                // Closed-loop: no warmup/measure split; the run ends
                // when the workload exhausts, bounded by drainLimit
                // (the 256-host allreduce serializes ~255 gather
                // unicasts per round at the root).
                params.drainLimit = quick ? 200000 : 2000000;
                net.fatTreeN = n;
                traffic.kind = WorkloadKind::Collective;
                traffic.collective = op;
                traffic.rounds = quick ? 4 : 8;
                applyOverrides(cli, net, traffic, params);
                char label[64];
                std::snprintf(label, sizeof(label), "%s %s n=%d",
                              toString(scheme), toString(op), n);
                runner.add(label, net, traffic, params);
            }
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (const CollectiveOp op : ops) {
        for (const int n : levels) {
            int hosts = 1;
            for (int i = 0; i < n; ++i)
                hosts *= 4;
            std::printf("%10s %6d |", toString(op), hosts);
            for (const Scheme scheme : kAllSchemes) {
                (void)scheme;
                const ExperimentResult &r = runner.results()[idx++];
                std::printf(
                    " %9.1f%s",
                    r.metrics.sampler("workload.round_cycles").mean(),
                    satMark(r));
            }
            std::printf("\n");
        }
    }
    maybeReport(sc, runner);
    return 0;
}
