/**
 * @file
 * Fast-path wall-clock baseline: times the idle-skipping scheduler
 * (sim.fastPath=1) against the cycle-accurate oracle on three
 * workloads and records the speedups in BENCH_fastpath.json.
 *
 * Cases:
 *   e1_throughput   — E1's 64-host cb-hw multiple-multicast point.
 *   e5_uncontended  — E5's 256-host system at near-zero load; almost
 *                     every component sleeps almost always, so this is
 *                     where the fast path must shine (>=10x).
 *   contended       — heavy load; the fast path may not help here but
 *                     must not lose either.
 *
 * Every case runs both modes and verifies bit-identical results; with
 * check=1 the binary exits nonzero if results diverge or the fast
 * path is slower than the oracle on an uncontended case, which is the
 * CI perf-smoke gate.
 *
 * Wall times are best-of-reps (default 3): single-shot timings on a
 * shared host swing by tens of percent, and the minimum is the
 * standard low-noise estimator. Both modes get the same treatment, so
 * the comparison stays honest.
 *
 * Usage: micro_fastpath [quick=1] [check=1] [report=1] [reps=3]
 *                       [out=BENCH_fastpath.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/experiment.hh"

namespace {

using namespace mdw;

struct Case
{
    const char *name;
    /** Part of the >=10x perf gate (and CI's no-regression gate). */
    bool uncontended;
    int fatTreeN;
    double load;
};

const Case kCases[] = {
    {"e1_throughput", false, 3, 0.05},
    {"e5_uncontended", true, 4, 0.002},
    {"contended", false, 3, 0.3},
};

struct Row
{
    std::string name;
    std::size_t hosts = 0;
    Cycle cycles = 0;
    double slowMs = 0.0;
    double fastMs = 0.0;
    bool identical = false;
};

double
msSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const bool check = cli.getBool("check", false);
    const bool report = cli.getBool("report", false);
    const std::string out =
        cli.getString("out", "BENCH_fastpath.json");
    const unsigned reps = static_cast<unsigned>(
        std::max<std::uint64_t>(1, cli.getU64("reps", 3)));

    banner("fastpath", "idle-skipping scheduler vs cycle oracle",
           "4-ary n-tree, multiple multicast (see case table)");
    std::printf("%16s %6s %8s | %9s %9s %8s %s\n", "case", "hosts",
                "cycles", "slow-ms", "fast-ms", "speedup", "identical");
    std::fflush(stdout);

    bool failed = false;
    std::vector<Row> rows;
    MetricsSnapshot lastFast;
    for (const Case &c : kCases) {
        NetworkConfig network = networkFor(Scheme::CbHw);
        network.fatTreeN = c.fatTreeN;
        TrafficParams traffic = defaultTraffic();
        traffic.load = c.load;
        ExperimentParams params = benchExperiment(quick);

        Row row;
        row.name = c.name;
        std::size_t hosts = 1;
        for (int i = 0; i < c.fatTreeN; ++i)
            hosts *= static_cast<std::size_t>(network.fatTreeK);
        row.hosts = hosts;

        // Alternate slow/fast reps so machine-load drift hits both
        // modes equally; keep each mode's best time.
        ExperimentResult slow, fast;
        for (unsigned r = 0; r < reps; ++r) {
            network.fastPath = false;
            auto start = std::chrono::steady_clock::now();
            slow = Experiment(network, traffic, params).run();
            const double slowMs = msSince(start);
            if (r == 0 || slowMs < row.slowMs)
                row.slowMs = slowMs;

            network.fastPath = true;
            start = std::chrono::steady_clock::now();
            fast = Experiment(network, traffic, params).run();
            const double fastMs = msSince(start);
            if (r == 0 || fastMs < row.fastMs)
                row.fastMs = fastMs;
        }

        row.cycles = slow.cyclesRun;
        row.identical = identicalResults(slow, fast);
        lastFast = fast.metrics;

        const double speedup =
            row.fastMs > 0.0 ? row.slowMs / row.fastMs : 0.0;
        std::printf("%16s %6zu %8llu | %9.1f %9.1f %7.1fx %s\n",
                    row.name.c_str(), row.hosts,
                    static_cast<unsigned long long>(row.cycles),
                    row.slowMs, row.fastMs, speedup,
                    row.identical ? "yes" : "NO");
        std::fflush(stdout);

        if (!row.identical) {
            std::fprintf(stderr,
                         "# FAIL %s: fast path diverged from oracle\n",
                         row.name.c_str());
            failed = true;
        }
        if (c.uncontended && row.fastMs >= row.slowMs) {
            std::fprintf(
                stderr,
                "# FAIL %s: fast path (%.1f ms) not faster than "
                "oracle (%.1f ms)\n",
                row.name.c_str(), row.fastMs, row.slowMs);
            failed = true;
        }
        rows.push_back(row);
    }

    if (FILE *json = std::fopen(out.c_str(), "w")) {
        std::fprintf(json,
                     "{\n  \"schema\": \"mdw-bench/1\",\n"
                     "  \"bench\": \"fastpath\",\n  \"cases\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            const double speedup =
                row.fastMs > 0.0 ? row.slowMs / row.fastMs : 0.0;
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"hosts\": %zu, "
                "\"cycles\": %llu, \"slow_ms\": %.2f, "
                "\"fast_ms\": %.2f, \"speedup\": %.2f, "
                "\"identical\": %s}%s\n",
                row.name.c_str(), row.hosts,
                static_cast<unsigned long long>(row.cycles),
                row.slowMs, row.fastMs, speedup,
                row.identical ? "true" : "false",
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(json, "  ]\n}\n");
        std::fclose(json);
        std::printf("# wrote %s\n", out.c_str());
    } else {
        warn("cannot write %s", out.c_str());
        failed = true;
    }

    if (report) {
        ReportWriter writer(stderr, "fastpath");
        writer.header(std::size(kCases) * 2, 1, 0, false);
        writer.metrics(lastFast);
        writer.status(failed ? "fatal" : "ok");
    }
    return check && failed ? 1 : 0;
}
