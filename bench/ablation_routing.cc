/**
 * @file
 * A1 — Ablation: LCA routing variant. ReplicateAfterLca sends the
 * whole worm to the least-common-ancestor stage before any
 * branching; ReplicateOnUpPath spawns down-branches eagerly while
 * climbing. Eager branching can shave hops for some destinations but
 * occupies more ports per switch on the up path.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A1");

    banner("A1", "routing variant ablation (CB-HW)",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s | %9s %9s | %9s %9s\n", "", "after-lca", "",
                "on-up-path", "");
    std::printf("%8s | %9s %9s | %9s %9s\n", "load", "mc-avg",
                "mc-last", "mc-avg", "mc-last");
    std::fflush(stdout);

    const RoutingVariant variants[] = {
        RoutingVariant::ReplicateAfterLca,
        RoutingVariant::ReplicateOnUpPath};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (RoutingVariant variant : variants) {
            NetworkConfig net = networkFor(Scheme::CbHw);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.sw.variant = variant;
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(variant), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f", load);
        for (RoutingVariant variant : variants) {
            (void)variant;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s%s",
                        cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
