/**
 * @file
 * E15 — Virtual-lane ablation under bimodal load: a bulk unicast
 * background (class 0) with a 10% multicast foreground (degree 8)
 * tagged latency-sensitive (class 1), swept over lanes x load x
 * scheme. With lanes >= 2 the static allocator gives the multicast
 * foreground its own lane partition, so its tail latency (p99/p999)
 * should drop while the bulk background keeps its throughput — the
 * class-isolation claim of the lane design.
 *
 * Usage: fig_lanes [quick=1] [check=1] [report=1] [laneAlloc=...]
 *
 * With check=1 the binary exits nonzero unless, for every scheme at
 * the highest load, some multi-lane configuration improves the
 * multicast p99 over lanes=1 while keeping delivered bulk throughput
 * within 5%.
 */

#include <cstdlib>

#include "bench_common.hh"

namespace {

/** Loads high enough that the shared single lane actually congests. */
std::vector<double>
lanesLoadGrid(bool quick)
{
    if (quick)
        return {0.08, 0.20};
    return {0.05, 0.10, 0.20, 0.30};
}

const int kLaneGrid[] = {1, 2, 4};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const bool check = cli.getBool("check", false);
    const SweepCli sc = parseSweepCli(cli, "E15");

    banner("E15", "virtual lanes: multicast tail isolation",
           "64 nodes, bimodal 10% mcast deg 8 (class 1), 64-flit");
    std::printf("%8s %8s | %9s %9s %9s | %9s\n", "scheme", "load",
                "lanes=1", "lanes=2", "lanes=4", "metric");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    const auto loads = lanesLoadGrid(quick);
    for (Scheme scheme : kAllSchemes) {
        for (double load : loads) {
            for (int lanes : kLaneGrid) {
                NetworkConfig net = networkFor(scheme);
                TrafficParams traffic = defaultTraffic();
                ExperimentParams params = benchExperiment(quick);
                applyOverrides(cli, net, traffic, params);
                net.sw.lanes = lanes;
                traffic.pattern = TrafficPattern::Bimodal;
                traffic.mcastFraction = 0.1;
                traffic.mcastClass = 1;
                traffic.load = load;
                char label[64];
                std::snprintf(label, sizeof(label),
                              "%s load=%.3f lanes=%d",
                              toString(scheme), load, lanes);
                runner.add(label, net, traffic, params);
            }
        }
    }
    runner.run();

    bool failed = false;
    std::size_t idx = 0;
    for (Scheme scheme : kAllSchemes) {
        for (double load : loads) {
            const ExperimentResult *byLanes[3];
            for (std::size_t l = 0; l < 3; ++l)
                byLanes[l] = &runner.results()[idx++];

            std::printf("%8s %8.3f", toString(scheme), load);
            for (const ExperimentResult *r : byLanes)
                std::printf(" | %s%s",
                            cell(r->mcastLastP99(), r->mcastCount())
                                .c_str(),
                            satMark(*r));
            std::printf(" | mc-p99\n");
            std::printf("%8s %8s", "", "");
            for (const ExperimentResult *r : byLanes)
                std::printf(" | %9.3f", r->deliveredLoad());
            std::printf(" | delivered\n");

            // Gate at the highest load only: below congestion the
            // lanes have nothing to isolate and p99s tie.
            if (!check || load != loads.back())
                continue;
            const ExperimentResult &base = *byLanes[0];
            bool improved = false;
            for (std::size_t l = 1; l < 3; ++l) {
                const ExperimentResult &r = *byLanes[l];
                const bool tail =
                    r.mcastLastP99() <= base.mcastLastP99();
                const bool throughput =
                    r.deliveredLoad() >= 0.95 * base.deliveredLoad();
                if (tail && throughput)
                    improved = true;
            }
            if (!improved) {
                std::fprintf(stderr,
                             "# CHECK FAILED: %s load=%.3f: no "
                             "multi-lane run beats lanes=1 p99 "
                             "within the throughput budget\n",
                             toString(scheme), load);
                failed = true;
            }
        }
    }
    if (check && !failed)
        std::printf("# check: multi-lane mcast p99 <= lanes=1 with "
                    "delivered load within 5%% at load=%.3f\n",
                    loads.back());
    maybeReport(sc, runner);
    return check && failed ? 1 : 0;
}
