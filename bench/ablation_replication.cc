/**
 * @file
 * A8 — Ablation: asynchronous vs synchronous replication on the
 * input-buffer switch (paper Section 3). Synchronous replication
 * forwards a worm's flits in lock-step across all branches, so the
 * slowest branch paces the whole worm and every branch's output port
 * sits idle whenever any one blocks; asynchronous replication lets
 * each branch run free. The paper argues asynchronous is both
 * cheaper (no feedback network) and faster — this ablation shows the
 * performance half of that claim.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A8");

    banner("A8", "replication-mechanism ablation (IB-HW)",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "", "async", "",
                "", "sync", "", "");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "load", "mc-avg",
                "mc-last", "deliv", "mc-avg", "mc-last", "deliv");
    std::fflush(stdout);

    const ReplicationMode modes[] = {ReplicationMode::Asynchronous,
                                     ReplicationMode::Synchronous};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (ReplicationMode mode : modes) {
            NetworkConfig net = networkFor(Scheme::IbHw);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.sw.replication = mode;
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(mode), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f", load);
        for (ReplicationMode mode : modes) {
            (void)mode;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s %9.3f%s",
                        cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        r.deliveredLoad(), satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
