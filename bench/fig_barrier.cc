/**
 * @file
 * E10 — Barrier synchronization (the paper's stated future work,
 * developed in the authors' companion IPPS'97 paper): absolute
 * barrier latency and its impact on background unicast traffic, for
 * each multicast implementation. The barrier is arrive-unicasts +
 * release-multicast; the release dominates, so the multicast scheme
 * sets the barrier cost.
 */

#include <memory>

#include "bench_common.hh"

#include "core/collectives.hh"
#include "core/hw_barrier.hh"

namespace {

using namespace mdw;
using namespace mdw::bench;

struct BarrierResult
{
    double meanCycles = 0.0;
    double bgUnicastLatency = 0.0;
};

BarrierResult
measure(Scheme scheme, bool hwCombining, double bgLoad, int rounds,
        const Config &cli, bool quick)
{
    NetworkConfig netcfg = networkFor(scheme);
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = benchExperiment(quick);
    applyOverrides(cli, netcfg, traffic, params);

    Network net(netcfg);
    std::unique_ptr<CollectiveEngine> coll;
    std::unique_ptr<HwBarrierManager> hw;
    if (hwCombining)
        hw = std::make_unique<HwBarrierManager>(net);
    else
        coll = std::make_unique<CollectiveEngine>(net);

    // Background unicast traffic, running for the whole experiment.
    TrafficParams bg;
    bg.pattern = TrafficPattern::UniformUnicast;
    bg.load = bgLoad;
    bg.payloadFlits = 64;
    SyntheticTraffic source(net.numHosts(), bg);
    if (bgLoad > 0.0)
        net.attachTraffic(&source);
    net.tracker().setWindow(0, kNoCycle);
    net.armWatchdog(200000);

    // Warm the background up.
    net.sim().run(quick ? 2000 : 5000);

    DestSet everyone(net.numHosts());
    for (NodeId m = 1; m < static_cast<NodeId>(net.numHosts()); ++m)
        everyone.set(m);
    int group = -1;
    if (hwCombining) {
        DestSet all = everyone;
        all.set(0);
        group = hw->createGroup(all);
    }

    Sampler barrier_cycles;
    for (int round = 0; round < rounds; ++round) {
        const Cycle start = net.sim().now();
        bool finished = false;
        Cycle done_at = 0;
        const auto on_done = [&](Cycle now) {
            finished = true;
            done_at = now;
        };
        if (hwCombining)
            hw->startBarrier(group, on_done);
        else
            coll->barrier(0, everyone, on_done);
        if (!net.sim().runUntil([&] { return finished; }, 500000))
            break;
        barrier_cycles.add(static_cast<double>(done_at - start));
        // Space the rounds out a little.
        net.sim().run(quick ? 500 : 2000);
    }

    BarrierResult result;
    result.meanCycles = barrier_cycles.mean();
    result.bgUnicastLatency = net.tracker().unicastLatency().mean();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E10");
    const int rounds = quick ? 3 : 10;

    banner("E10", "64-node full barrier: latency and background impact",
           "hw = switch combining + release worm; others = arrive "
           "unicasts + release multicast");
    std::printf("%8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "",
                "hw-comb", "", "cb-hw", "", "ib-hw", "", "sw-umin", "");
    std::printf("%8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n",
                "bg-load", "barrier", "bg-uni", "barrier", "bg-uni",
                "barrier", "bg-uni", "barrier", "bg-uni");

    const std::vector<double> bg_loads =
        quick ? std::vector<double>{0.0, 0.1}
              : std::vector<double>{0.0, 0.05, 0.1, 0.2};
    for (double bg : bg_loads) {
        std::printf("%8.2f", bg);
        {
            const BarrierResult r =
                measure(Scheme::CbHw, true, bg, rounds, cli, quick);
            std::printf(" | %9.0f %9.1f", r.meanCycles,
                        r.bgUnicastLatency);
        }
        for (Scheme scheme : kAllSchemes) {
            const BarrierResult r =
                measure(scheme, false, bg, rounds, cli, quick);
            std::printf(" | %9.0f %9.1f", r.meanCycles,
                        r.bgUnicastLatency);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    maybeReportSimple(sc);
    return 0;
}
