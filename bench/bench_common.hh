/**
 * @file
 * Shared helpers for the figure-regeneration benches. Every bench is
 * a standalone binary that prints the series for one table or figure
 * of the paper (see DESIGN.md's experiment index) and accepts
 * key=value overrides, notably `quick=1` for a fast smoke run.
 */

#ifndef MDW_BENCH_BENCH_COMMON_HH
#define MDW_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/sweep.hh"
#include "sim/logging.hh"

namespace mdw::bench {

/** Phase lengths used by the figure benches. */
inline ExperimentParams
benchExperiment(bool quick)
{
    ExperimentParams params;
    params.warmup = quick ? 3000 : 10000;
    params.measure = quick ? 8000 : 30000;
    params.drainLimit = quick ? 60000 : 200000;
    params.watchdogQuiet = 200000;
    return params;
}

/** Standard load grid for latency-vs-load figures. */
inline std::vector<double>
loadGrid(bool quick)
{
    if (quick)
        return {0.02, 0.08, 0.16};
    return {0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.24, 0.32, 0.40};
}

/** Print the standard figure banner. */
inline void
banner(const char *experiment, const char *title, const char *workload)
{
    std::printf("# %s: %s\n", experiment, title);
    std::printf("# workload: %s\n", workload);
}

/** Parse argv overrides; returns the quick flag. */
inline bool
parseCli(int argc, char **argv, Config &cli)
{
    cli.parseArgs(argc, argv);
    const bool quick = cli.getBool("quick", false);
    return quick;
}

/** Sweep-execution knobs shared by every figure bench. */
struct SweepCli
{
    SweepOptions options;
    /** Print the per-run audit trail to stderr after the sweep. */
    bool report = false;
};

/**
 * Read the sweep keys (threads=, baseSeed=, report=). Must be called
 * before the first applyOverrides(), which rejects unread keys.
 * Without baseSeed the per-run seeds stay at their preset values (the
 * historical serial behavior); with it every run gets its own RNG
 * stream derived from (baseSeed, run index).
 */
inline SweepCli
parseSweepCli(const Config &cli)
{
    SweepCli sc;
    sc.options.threads = static_cast<int>(cli.getInt("threads", 1));
    sc.options.deriveSeeds = cli.has("baseSeed");
    sc.options.baseSeed = cli.getU64("baseSeed", 0);
    sc.report = cli.getBool("report", false);
    return sc;
}

/**
 * Arm a fatal() hook that flushes the partial audit trail before the
 * process exits, so a run that dies mid-sweep (bad config, impossible
 * parameter combination) still leaves an inspectable record. Only
 * active on the report=1 path; ends with a machine-readable
 * `"status":"fatal"` marker so scripts can tell a truncated trail
 * from a completed one. @p runner must outlive the sweep.
 */
inline void
armFatalReport(const SweepCli &sc, const SweepRunner &runner)
{
    if (!sc.report)
        return;
    setFatalHook([&runner] {
        std::fputs(runner.report().summary().c_str(), stderr);
        std::fputs("# {\"status\":\"fatal\"}\n", stderr);
        std::fflush(stderr);
    });
}

/** Emit the audit trail when report=1 was given (disarms the fatal
 *  hook: the sweep completed). */
inline void
maybeReport(const SweepCli &sc, const SweepRunner &runner)
{
    setFatalHook(nullptr);
    if (sc.report) {
        std::fputs(runner.report().summary().c_str(), stderr);
        std::fputs("# {\"status\":\"ok\"}\n", stderr);
    }
}

/** "n/a" or a fixed-point number (for latencies of absent classes). */
inline std::string
cell(double value, double count)
{
    if (count <= 0.0)
        return "      n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%9.1f", value);
    return buf;
}

/** Mark saturated measurements so readers don't trust the latency. */
inline const char *
satMark(const ExperimentResult &result)
{
    return result.saturated ? " *sat*" : "";
}

} // namespace mdw::bench

#endif // MDW_BENCH_BENCH_COMMON_HH
