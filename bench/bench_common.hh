/**
 * @file
 * Shared helpers for the figure-regeneration benches. Every bench is
 * a standalone binary that prints the series for one table or figure
 * of the paper (see DESIGN.md's experiment index) and accepts
 * key=value overrides, notably `quick=1` for a fast smoke run.
 */

#ifndef MDW_BENCH_BENCH_COMMON_HH
#define MDW_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "sim/logging.hh"

namespace mdw::bench {

/** Phase lengths used by the figure benches. */
inline ExperimentParams
benchExperiment(bool quick)
{
    ExperimentParams params;
    params.warmup = quick ? 3000 : 10000;
    params.measure = quick ? 8000 : 30000;
    params.drainLimit = quick ? 60000 : 200000;
    params.watchdogQuiet = 200000;
    return params;
}

/** Standard load grid for latency-vs-load figures. */
inline std::vector<double>
loadGrid(bool quick)
{
    if (quick)
        return {0.02, 0.08, 0.16};
    return {0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.24, 0.32, 0.40};
}

/** Print the standard figure banner. */
inline void
banner(const char *experiment, const char *title, const char *workload)
{
    std::printf("# %s: %s\n", experiment, title);
    std::printf("# workload: %s\n", workload);
}

/** Parse argv overrides; returns the quick flag. */
inline bool
parseCli(int argc, char **argv, Config &cli)
{
    cli.parseArgs(argc, argv);
    const bool quick = cli.getBool("quick", false);
    return quick;
}

/** Sweep-execution knobs shared by every figure bench. */
struct SweepCli
{
    SweepOptions options;
    /** Experiment id stamped into the report stream (e.g. "E3"). */
    std::string experiment = "?";
    /** Print the audit/report stream to stderr after the sweep. */
    bool report = false;
    /** Path prefix for exported worm traces (telemetry.trace=1). */
    std::string traceOut = "trace";
};

/**
 * Read the sweep keys (threads=, baseSeed=, report=, traceOut=).
 * Must be called before the first applyOverrides(), which rejects
 * unread keys. Without baseSeed the per-run seeds stay at their
 * preset values (the historical serial behavior); with it every run
 * gets its own RNG stream derived from (baseSeed, run index).
 */
inline SweepCli
parseSweepCli(const Config &cli, std::string experiment)
{
    SweepCli sc;
    sc.experiment = std::move(experiment);
    sc.options.threads = static_cast<int>(cli.getInt("threads", 1));
    sc.options.deriveSeeds = cli.has("baseSeed");
    sc.options.baseSeed = cli.getU64("baseSeed", 0);
    sc.report = cli.getBool("report", false);
    sc.traceOut = cli.getString("traceOut", sc.traceOut);
    return sc;
}

/**
 * Arm a fatal() hook that flushes the partial audit trail before the
 * process exits, so a run that dies mid-sweep (bad config, impossible
 * parameter combination) still leaves an inspectable record. Only
 * active on the report=1 path; ends with the writer's machine-
 * readable `"status":"fatal"` marker so scripts can tell a truncated
 * stream from a completed one. @p runner must outlive the sweep.
 */
inline void
armFatalReport(const SweepCli &sc, const SweepRunner &runner)
{
    if (!sc.report)
        return;
    setFatalHook([&sc, &runner] {
        ReportWriter writer(stderr, sc.experiment);
        writer.summary(runner.report());
        writer.status("fatal");
    });
}

/**
 * Export every run's worm trace (telemetry.trace=1 runs only) as
 * "<traceOut>-run<N>.trace.json" / ".trace.jsonl", announcing each
 * prefix — or the failure — on stderr.
 */
inline void
exportTraces(const SweepCli &sc, const SweepRunner &runner)
{
    for (std::size_t i = 0; i < runner.results().size(); ++i) {
        const ExperimentResult &result = runner.results()[i];
        if (!result.trace)
            continue;
        char prefix[256];
        std::snprintf(prefix, sizeof(prefix), "%s-run%zu",
                      sc.traceOut.c_str(), i);
        std::string failed;
        if (writeTraceFiles(*result.trace, prefix, &failed))
            std::fprintf(stderr, "# trace: %s.trace.json\n", prefix);
        else
            warn("cannot write trace file %s", failed.c_str());
    }
}

/** Emit the report stream when report=1 was given (disarms the
 *  fatal hook: the sweep completed), then export any worm traces. */
inline void
maybeReport(const SweepCli &sc, const SweepRunner &runner)
{
    setFatalHook(nullptr);
    if (sc.report) {
        ReportWriter writer(stderr, sc.experiment);
        writer.sweep(runner.report());
    }
    exportTraces(sc, runner);
}

/** Report epilogue for benches that run Networks directly instead of
 *  a sweep (fig_barrier, tab_params): header + status only. */
inline void
maybeReportSimple(const SweepCli &sc)
{
    if (!sc.report)
        return;
    ReportWriter writer(stderr, sc.experiment);
    writer.header(0, 1, 0, false);
    writer.status("ok");
}

/** "n/a" or a fixed-point number (for latencies of absent classes). */
inline std::string
cell(double value, double count)
{
    if (count <= 0.0)
        return "      n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%9.1f", value);
    return buf;
}

/** Mark saturated measurements so readers don't trust the latency. */
inline const char *
satMark(const ExperimentResult &result)
{
    return result.saturated ? " *sat*" : "";
}

} // namespace mdw::bench

#endif // MDW_BENCH_BENCH_COMMON_HH
