/**
 * @file
 * E12 — Multicast integrity under transient link errors. Sweeps the
 * per-flit bit-error rate against offered load and reports, for each
 * scheme, the multicast last-destination latency plus the recovery
 * activity behind it: link-level NAK/replay rounds, residual
 * (CRC-evading) errors caught by the end-to-end checksum at the NIC,
 * and host-level retransmissions of the discarded copies.
 *
 * Expected shape: the link-level retry absorbs detected corruption at
 * a one-round-trip cost per hit, so latency degrades gently with BER;
 * residual errors are rarer but far more expensive (a whole
 * end-to-end retransmission). The wide software trees of SW-UMin
 * expose more wire traversals per multicast than the hardware worms,
 * so the same BER costs them proportionally more. A zero-BER row must
 * match the fault-free figures exactly: the subsystem is off.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E12");

    static const double kBers[] = {0.0, 1e-4, 5e-4, 2e-3};
    static const double kLoads[] = {0.05, 0.15};
    static const Scheme kSchemes[] = {Scheme::CbHw, Scheme::IbHw,
                                      Scheme::SwUmin};
    // P(corruption evades the link CRC | corrupted): a deliberately
    // pessimistic stand-in for the ~2^-16 of a real CRC-16 so runs
    // this short still exercise the end-to-end checksum path.
    const double residual = 0.05;

    banner("E12", "multicast integrity vs link bit-error rate",
           "64 nodes, degree 8, 64-flit payload, retransmission on");
    std::printf("%8s %5s |", "ber", "load");
    for (Scheme scheme : kSchemes)
        std::printf("%10s %6s %5s %6s |", toString(scheme), "naks",
                    "csum", "retx");
    std::printf("\n");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double ber : kBers) {
        for (double load : kLoads) {
            for (Scheme scheme : kSchemes) {
                NetworkConfig net = networkFor(scheme);
                TrafficParams traffic = defaultTraffic();
                ExperimentParams params = benchExperiment(quick);
                applyOverrides(cli, net, traffic, params);
                traffic.load = load;
                net.faultSpec.ber = ber;
                net.faultSpec.residual = ber > 0.0 ? residual : 0.0;
                net.nic.retransmitTimeout = 20000;
                char label[48];
                std::snprintf(label, sizeof(label),
                              "%s ber=%g load=%g", toString(scheme),
                              ber, load);
                runner.add(label, net, traffic, params);
            }
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double ber : kBers) {
        for (double load : kLoads) {
            std::printf("%8g %5.2f |", ber, load);
            for (Scheme scheme : kSchemes) {
                (void)scheme;
                const ExperimentResult &r = runner.results()[idx++];
                std::printf(
                    "%10s %6llu %5llu %6llu%s|",
                    cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                    static_cast<unsigned long long>(r.linkNaks()),
                    static_cast<unsigned long long>(r.csumFails()),
                    static_cast<unsigned long long>(r.retransmits()),
                    satMark(r));
            }
            std::printf("\n");
        }
    }
    maybeReport(sc, runner);
    return 0;
}
