/**
 * @file
 * Extreme-scale and shard-speedup bench for the sharded scheduler.
 *
 * Two parts:
 *
 *   scale     — extends E5's system-size curve far past the paper's
 *               512 hosts: 4-ary n-trees from 64 up to 65,536 hosts
 *               (n = 8), run sharded at low load, reporting wall
 *               clock, per-shard wall clock (partition balance), and
 *               boundary traffic per point.
 *   contended — a >= 1024-host system under heavy multicast load,
 *               timed flat and at 2/4/8 shards. This is the speedup
 *               case sharding exists for; the per-case results are
 *               verified bit-identical to the flat run.
 *
 * Results land in BENCH_shards.json together with the host's
 * hardware thread count — speedups are only meaningful (and only
 * asserted under check=1) when the hardware can actually run the
 * shards concurrently; on smaller hosts the numbers are recorded
 * as measured, not fabricated.
 *
 * With report=1 the mdw-report stream on stderr includes the
 * per-shard "shards" record, which validate_report.py cross-checks
 * against the flat network.* rollups (sharding must never lose or
 * double-count work).
 *
 * Usage: fig_extreme_scale [quick=1] [check=1] [report=1]
 *                          [maxHosts=65536] [out=BENCH_shards.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/experiment.hh"

namespace {

using namespace mdw;

double
msSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

std::size_t
hostsForLevels(int k, int n)
{
    std::size_t hosts = 1;
    for (int i = 0; i < n; ++i)
        hosts *= static_cast<std::size_t>(k);
    return hosts;
}

struct ScaleRow
{
    std::size_t hosts = 0;
    std::size_t switches = 0;
    Cycle cycles = 0;
    double wallMs = 0.0;
    double maxShardWallMs = 0.0;
    double minShardWallMs = 0.0;
    std::uint64_t boundarySends = 0;
    std::uint64_t flitsIn = 0;
};

struct SpeedupRow
{
    std::size_t shards = 0; // 0 = flat fast path
    double wallMs = 0.0;
    double speedup = 1.0;
    bool identical = true;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const bool check = cli.getBool("check", false);
    const bool report = cli.getBool("report", false);
    const std::size_t maxHosts = static_cast<std::size_t>(
        cli.getU64("maxHosts", quick ? 1024 : 65536));
    const std::string out = cli.getString("out", "BENCH_shards.json");

    const unsigned hwThreads =
        std::max(1u, std::thread::hardware_concurrency());
    bool failed = false;

    banner("extreme_scale",
           "sharded scheduler at scale (E5 curve extended)",
           "4-ary n-tree, multiple multicast");
    std::printf("# hardware threads: %u\n", hwThreads);

    // --- Part 1: scale curve to 65,536 hosts -------------------------
    std::printf("%8s %8s %8s | %9s %9s %9s %12s\n", "hosts",
                "switches", "cycles", "wall-ms", "sh-max-ms",
                "sh-min-ms", "boundary");
    std::fflush(stdout);

    std::vector<ScaleRow> scale;
    ExperimentResult lastSharded;
    for (int n = 3; hostsForLevels(4, n) <= maxHosts; ++n) {
        NetworkConfig network = networkFor(Scheme::CbHw);
        network.fatTreeN = n;
        network.fastPath = true;
        network.shards = 4;
        network.shardThreads = 0; // auto: one per hardware thread
        // Bit-string headers carry one bit per host, so past a few
        // thousand hosts the largest worm outgrows the central queue
        // -- exactly the scalability limit the paper's multiport
        // encoding exists to remove. Use it for the scale curve.
        network.nic.encoding = McastEncoding::Multiport;
        TrafficParams traffic = defaultTraffic();
        // Light load: at extreme size the interesting quantities are
        // the per-cycle scheduling costs and the boundary traffic,
        // not saturation behavior. (Not *too* light, though — the
        // smallest points must still inject enough worms to exercise
        // the shard boundaries in a quick run.)
        traffic.load = 0.01;
        ExperimentParams params;
        params.warmup = quick ? 300 : 1000;
        params.measure = quick ? 800 : 3000;
        params.drainLimit = 60000;
        params.watchdogQuiet = 200000;

        const auto start = std::chrono::steady_clock::now();
        const ExperimentResult result =
            Experiment(network, traffic, params).run();
        const double wallMs = msSince(start);

        ScaleRow row;
        row.hosts = hostsForLevels(4, n);
        row.switches = static_cast<std::size_t>(n) * row.hosts / 4;
        row.cycles = result.cyclesRun;
        row.wallMs = wallMs;
        row.flitsIn = result.metrics.counter("network.flits_in");
        double maxMs = 0.0, minMs = 0.0;
        for (std::size_t s = 0; s < result.effectiveShards; ++s) {
            const double ms = static_cast<double>(
                                  result.shardStats[s].wallNs) /
                              1e6;
            maxMs = std::max(maxMs, ms);
            minMs = s == 0 ? ms : std::min(minMs, ms);
            row.boundarySends += result.shardStats[s].boundarySends;
        }
        row.maxShardWallMs = maxMs;
        row.minShardWallMs = minMs;
        scale.push_back(row);
        lastSharded = result;

        std::printf("%8zu %8zu %8llu | %9.1f %9.1f %9.1f %12llu\n",
                    row.hosts, row.switches,
                    static_cast<unsigned long long>(row.cycles),
                    row.wallMs, row.maxShardWallMs,
                    row.minShardWallMs,
                    static_cast<unsigned long long>(
                        row.boundarySends));
        std::fflush(stdout);

        if (result.effectiveShards != 4) {
            std::fprintf(stderr,
                         "# FAIL %zu hosts: sharding vetoed (%zu)\n",
                         row.hosts, result.effectiveShards);
            failed = true;
        }
        if (row.boundarySends == 0) {
            std::fprintf(stderr,
                         "# FAIL %zu hosts: no boundary traffic -- "
                         "partition or boundary wiring broken\n",
                         row.hosts);
            failed = true;
        }
    }

    // --- Part 2: contended speedup at >= 1024 hosts ------------------
    {
        NetworkConfig network = networkFor(Scheme::CbHw);
        network.fatTreeN = 5; // 1024 hosts
        network.fastPath = true;
        TrafficParams traffic = defaultTraffic();
        traffic.load = 0.3; // heavily contended: nothing sleeps long
        ExperimentParams params;
        params.warmup = quick ? 200 : 1000;
        params.measure = quick ? 600 : 3000;
        params.drainLimit = quick ? 60000 : 200000;
        params.watchdogQuiet = 200000;

        std::printf("# contended: %zu hosts, load %.2f\n",
                    hostsForLevels(4, network.fatTreeN), traffic.load);
        std::printf("%8s | %9s %8s %s\n", "shards", "wall-ms",
                    "speedup", "identical");
        std::fflush(stdout);

        network.shards = 1;
        auto start = std::chrono::steady_clock::now();
        const ExperimentResult flat =
            Experiment(network, traffic, params).run();
        const double flatMs = msSince(start);

        std::vector<SpeedupRow> speedups;
        SpeedupRow flatRow;
        flatRow.wallMs = flatMs;
        speedups.push_back(flatRow);
        std::printf("%8s | %9.1f %7.2fx %s\n", "flat", flatMs, 1.0,
                    "yes");
        std::fflush(stdout);

        for (std::size_t shards :
             quick ? std::vector<std::size_t>{4}
                   : std::vector<std::size_t>{2, 4, 8}) {
            network.shards = shards;
            network.shardThreads = 0;
            start = std::chrono::steady_clock::now();
            const ExperimentResult sharded =
                Experiment(network, traffic, params).run();
            SpeedupRow row;
            row.shards = shards;
            row.wallMs = msSince(start);
            row.speedup =
                row.wallMs > 0.0 ? flatMs / row.wallMs : 0.0;
            row.identical = identicalResults(flat, sharded);
            speedups.push_back(row);
            lastSharded = sharded;

            std::printf("%8zu | %9.1f %7.2fx %s\n", shards,
                        row.wallMs, row.speedup,
                        row.identical ? "yes" : "NO");
            std::fflush(stdout);

            if (!row.identical) {
                std::fprintf(stderr,
                             "# FAIL %zu shards: diverged from the "
                             "flat scheduler\n",
                             shards);
                failed = true;
            }
            // The speedup gate only binds where the hardware can run
            // the shards concurrently; elsewhere the honest numbers
            // are recorded but not asserted.
            if (shards == 4 && hwThreads >= 4 &&
                row.speedup < 2.0) {
                std::fprintf(stderr,
                             "# FAIL 4 shards: %.2fx < 2x on %u "
                             "hardware threads\n",
                             row.speedup, hwThreads);
                failed = true;
            }
        }

        if (FILE *json = std::fopen(out.c_str(), "w")) {
            std::fprintf(
                json,
                "{\n  \"schema\": \"mdw-bench/1\",\n"
                "  \"bench\": \"shards\",\n"
                "  \"hw_threads\": %u,\n  \"quick\": %s,\n"
                "  \"contended\": {\"hosts\": %zu, \"load\": %.2f, "
                "\"cycles\": %llu, \"cases\": [\n",
                hwThreads, quick ? "true" : "false",
                hostsForLevels(4, 5), traffic.load,
                static_cast<unsigned long long>(flat.cyclesRun));
            for (std::size_t i = 0; i < speedups.size(); ++i) {
                const SpeedupRow &row = speedups[i];
                std::fprintf(
                    json,
                    "    {\"shards\": %zu, \"wall_ms\": %.2f, "
                    "\"speedup\": %.3f, \"identical\": %s}%s\n",
                    row.shards, row.wallMs, row.speedup,
                    row.identical ? "true" : "false",
                    i + 1 < speedups.size() ? "," : "");
            }
            std::fprintf(json, "  ]},\n  \"scale\": [\n");
            for (std::size_t i = 0; i < scale.size(); ++i) {
                const ScaleRow &row = scale[i];
                std::fprintf(
                    json,
                    "    {\"hosts\": %zu, \"switches\": %zu, "
                    "\"cycles\": %llu, \"wall_ms\": %.2f, "
                    "\"shard_wall_max_ms\": %.2f, "
                    "\"shard_wall_min_ms\": %.2f, "
                    "\"boundary_sends\": %llu, "
                    "\"flits_in\": %llu}%s\n",
                    row.hosts, row.switches,
                    static_cast<unsigned long long>(row.cycles),
                    row.wallMs, row.maxShardWallMs,
                    row.minShardWallMs,
                    static_cast<unsigned long long>(
                        row.boundarySends),
                    static_cast<unsigned long long>(row.flitsIn),
                    i + 1 < scale.size() ? "," : "");
            }
            std::fprintf(json, "  ]\n}\n");
            std::fclose(json);
            std::printf("# wrote %s\n", out.c_str());
        } else {
            warn("cannot write %s", out.c_str());
            failed = true;
        }
    }

    if (report) {
        ReportWriter writer(stderr, "extreme_scale");
        writer.header(scale.size() + 1, static_cast<int>(hwThreads),
                      0, false);
        writer.metrics(lastSharded.metrics);
        writer.shards(lastSharded);
        writer.status(failed ? "fatal" : "ok");
    }
    return check && failed ? 1 : 0;
}
