/**
 * @file
 * E1 + E2 — Multiple multicast traffic: average-copy and last-copy
 * multicast latency vs offered load for the three schemes (CB-HW,
 * IB-HW, SW-UMin) on the 64-node bidirectional MIN.
 *
 * Expected shape (paper): CB-HW lowest latency and latest
 * saturation; IB-HW in between (HOL blocking); SW-UMin highest by a
 * large factor (multi-phase + per-phase software overheads).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E1+E2");

    banner("E1+E2", "multiple multicast latency vs offered load",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%-8s %8s | %9s %9s | %9s %9s | %9s %9s\n", "", "",
                "cb-hw", "", "ib-hw", "", "sw-umin", "");
    std::printf("%-8s %8s | %9s %9s | %9s %9s | %9s %9s\n", "metric",
                "load", "avg", "last", "avg", "last", "avg", "last");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(scheme), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%-8s %8.3f", "mcast", load);
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s%s",
                        cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
