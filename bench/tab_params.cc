/**
 * @file
 * E9 — The simulation-parameter table: prints every default the
 * other benches run with (the paper's "simulation parameters and
 * methodology" table, SP-Switch flavored).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    (void)parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E9");

    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    applyOverrides(cli, net, traffic, params);
    Network network(net);

    std::printf("# E9: default simulation parameters\n");
    std::printf("%-32s %s\n", "topology",
                network.topology().describe().c_str());
    std::printf("%-32s %d up / %d down per switch\n", "switch ports",
                net.fatTreeK, net.fatTreeK);
    std::printf("%-32s 1 flit (%d bits) per cycle per direction\n",
                "link bandwidth", net.nic.enc.flitBits);
    std::printf("%-32s %llu cycle(s)\n", "link delay",
                static_cast<unsigned long long>(net.linkDelay));
    std::printf("%-32s %d chunks x %d flits = %d flits\n",
                "central buffer", net.cb.cqChunks, net.cb.chunkFlits,
                net.cb.cqChunks * net.cb.chunkFlits);
    std::printf("%-32s %d flits\n", "CB input FIFO",
                net.cb.inputFifoFlits);
    std::printf("%-32s %d flits\n", "CB output FIFO",
                net.cb.outputFifoFlits);
    std::printf("%-32s %d flits (>= largest packet)\n",
                "IB input buffer", net.ib.bufferFlits);
    std::printf("%-32s %d flits\n", "unicast header",
                net.nic.enc.unicastHeaderFlits);
    std::printf("%-32s %d flits (bit-string, %zu nodes)\n",
                "multicast header", network.mcastHeaderFlits(),
                network.numHosts());
    std::printf("%-32s %d flits\n", "largest packet",
                network.maxPacketFlits());
    std::printf("%-32s %llu cycles\n", "NIC send overhead",
                static_cast<unsigned long long>(net.nic.sendOverhead));
    std::printf("%-32s %llu cycles\n", "NIC receive overhead",
                static_cast<unsigned long long>(net.nic.recvOverhead));
    std::printf("%-32s %s\n", "routing variant",
                toString(net.sw.variant));
    std::printf("%-32s %s\n", "up-port policy",
                toString(net.sw.upPolicy));
    std::printf("%-32s %d flits\n", "default payload",
                traffic.payloadFlits);
    std::printf("%-32s %d\n", "default multicast degree",
                traffic.mcastDegree);
    std::printf("%-32s %llu warmup + %llu measure cycles\n",
                "measurement",
                static_cast<unsigned long long>(params.warmup),
                static_cast<unsigned long long>(params.measure));
    maybeReportSimple(sc);
    return 0;
}
