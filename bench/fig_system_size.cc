/**
 * @file
 * E8 — System size scaling: 16, 64, and 256 nodes (4-ary n-trees of
 * 2, 3, and 4 stages). The bit-string header grows with N
 * (1 + ceil(N/8) flits), and paths get one stage longer, so hardware
 * multicast latency creeps up with N while the software scheme also
 * pays deeper binomial trees (degree fixed at 8).
 *
 * Expected shape (paper): all schemes slow down with N; the hardware
 * schemes' gap over software persists at every size.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E8");

    banner("E8", "multicast latency vs system size",
           "4-ary n-tree, load 0.05, degree 8, 64-flit payload");
    std::printf("%8s %7s %8s | %9s %9s %9s\n", "nodes", "stages",
                "hdr", "cb-hw", "ib-hw", "sw-umin");
    std::fflush(stdout);

    const std::vector<int> stages =
        quick ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int n : stages) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.fatTreeN = n;
            traffic.load = 0.05;
            char label[48];
            std::snprintf(label, sizeof(label), "%s stages=%d",
                          toString(scheme), n);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (int n : stages) {
        std::size_t hosts = 1;
        for (int i = 0; i < n; ++i)
            hosts *= 4;
        const EncodingParams enc;
        std::printf("%8zu %7d %8d", hosts, n,
                    bitStringHeaderFlits(hosts, enc));
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" %s%s",
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
