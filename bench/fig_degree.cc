/**
 * @file
 * E6 — Varying degree of multicast at a fixed, comfortable load.
 *
 * Expected shape (paper): SW-UMin latency grows with
 * ceil(log2(d + 1)) phases, each paying software overheads, while
 * both hardware schemes stay nearly flat in d (a single worm covers
 * any destination set in one phase).
 */

#include "bench_common.hh"
#include "host/sw_mcast.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E6");

    // Delivered load (payload flits/node/cycle at the receivers) is
    // held constant across degrees — offered load is 0.32/d — so the
    // sweep isolates the per-message cost of covering d destinations
    // from plain bandwidth saturation.
    banner("E6", "multicast latency vs degree",
           "64 nodes, delivered load 0.32, 64-flit payload");
    std::printf("%8s %7s | %9s %9s %9s\n", "degree", "phases",
                "cb-hw", "ib-hw", "sw-umin");
    std::fflush(stdout);

    const std::vector<int> degrees =
        quick ? std::vector<int>{4, 16, 63}
              : std::vector<int>{2, 4, 8, 16, 32, 48, 63};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int degree : degrees) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.load = 0.32 / degree;
            traffic.mcastDegree = degree;
            char label[48];
            std::snprintf(label, sizeof(label), "%s degree=%d",
                          toString(scheme), degree);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (int degree : degrees) {
        const int phases =
            binomialPhases(static_cast<std::size_t>(degree));
        std::printf("%8d %7d", degree, phases);
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" %s%s",
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
