/**
 * @file
 * E4 + E5 — Bimodal traffic: a unicast background with 10% multicast
 * messages (degree 8). Reports how each multicast implementation
 * affects the *background unicast* latency (E4) and the multicast
 * latency itself (E5) as total load rises.
 *
 * Expected shape (paper's headline bimodal claim): with SW-UMin the
 * software multicasts flood the network with unicast carriers and
 * degrade background unicast latency far more than CB-HW hardware
 * worms do; CB-HW disturbs unicast traffic the least.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E4+E5");

    banner("E4+E5", "bimodal traffic: unicast + multicast latency",
           "64 nodes, 10% multicast of degree 8, 64-flit payload");
    std::printf("%8s | %9s %9s | %9s %9s | %9s %9s\n", "", "cb-hw",
                "", "ib-hw", "", "sw-umin", "");
    std::printf("%8s | %9s %9s | %9s %9s | %9s %9s\n", "load", "uni",
                "mc-last", "uni", "mc-last", "uni", "mc-last");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.pattern = TrafficPattern::Bimodal;
            traffic.mcastFraction = 0.1;
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(scheme), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f", load);
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s%s",
                        cell(r.unicastAvg(), r.unicastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
