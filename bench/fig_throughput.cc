/**
 * @file
 * E3 — Delivered throughput vs offered load under multiple multicast
 * traffic. Delivered load counts every copy that lands at a
 * destination (payload flits / node / cycle), so the ideal curve is
 * offered x degree until a scheme saturates.
 *
 * Expected shape (paper): CB-HW sustains the highest delivered load;
 * SW-UMin saturates first (each multicast injects ~d unicasts).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E3");

    banner("E3", "delivered throughput vs offered load",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s %9s | %9s %9s %9s\n", "load", "ideal", "cb-hw",
                "ib-hw", "sw-umin");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(scheme), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f %9.3f", load, load * 8.0);
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" %9.3f%s", r.deliveredLoad(), satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
