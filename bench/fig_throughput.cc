/**
 * @file
 * E3 — Delivered throughput vs offered load under multiple multicast
 * traffic. Delivered load counts every copy that lands at a
 * destination (payload flits / node / cycle), so the ideal curve is
 * offered x degree until a scheme saturates.
 *
 * Expected shape (paper): CB-HW sustains the highest delivered load;
 * SW-UMin saturates first (each multicast injects ~d unicasts).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);

    banner("E3", "delivered throughput vs offered load",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s %9s | %9s %9s %9s\n", "load", "ideal", "cb-hw",
                "ib-hw", "sw-umin");

    for (double load : loadGrid(quick)) {
        std::printf("%8.3f %9.3f", load, load * 8.0);
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.load = load;
            const ExperimentResult r =
                Experiment(net, traffic, params).run();
            std::printf(" %9.3f%s", r.deliveredLoad, satMark(r));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
