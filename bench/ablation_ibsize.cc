/**
 * @file
 * A10 — Ablation: input-buffer depth of the IB switch. The paper's
 * deadlock rule fixes the *minimum* (one whole packet per input);
 * this sweep asks whether statically adding more per-input FIFO
 * space rescues the architecture. It does not — it backfires:
 * deeper FIFOs release upstream links earlier and pull MORE packets
 * into head-of-line-constrained positions behind a blocked worm, so
 * latency and delivered throughput get worse as the buffers grow.
 * Only restructuring the storage as a dynamically shared,
 * per-output-chained queue (the central buffer, cf. Tamir/Frazier)
 * removes the HOL constraint — the paper's core architectural
 * argument, stated even more strongly by this data.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A10");

    banner("A10", "input-buffer depth ablation (IB-HW)",
           "64 nodes, degree 8, 64-flit payload, load 0.05");
    std::printf("%8s %9s | %9s %9s %9s\n", "flits", "packets",
                "mc-avg", "mc-last", "deliv");
    std::fflush(stdout);

    // Largest packet is 73 flits; sweep 1x to 8x of it.
    const std::vector<int> sizes =
        quick ? std::vector<int>{73, 292}
              : std::vector<int>{73, 146, 292, 438, 584};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int flits : sizes) {
        NetworkConfig net = networkFor(Scheme::IbHw);
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = benchExperiment(quick);
        applyOverrides(cli, net, traffic, params);
        net.ib.bufferFlits = flits;
        net.maxPayloadFlits = traffic.payloadFlits;
        traffic.load = 0.05;
        char label[48];
        std::snprintf(label, sizeof(label), "ib.buffer=%d", flits);
        runner.add(label, net, traffic, params);
    }
    {
        // Reference: the central-buffer switch at the same load.
        NetworkConfig net = networkFor(Scheme::CbHw);
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = benchExperiment(quick);
        applyOverrides(cli, net, traffic, params);
        traffic.load = 0.05;
        runner.add("cb-ref", net, traffic, params);
    }
    runner.run();

    std::size_t idx = 0;
    for (int flits : sizes) {
        const ExperimentResult &r = runner.results()[idx++];
        std::printf("%8d %9.1f | %s %s %9.3f%s\n", flits,
                    static_cast<double>(flits) / 73.0,
                    cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                    cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                    r.deliveredLoad(), satMark(r));
    }
    const ExperimentResult &r = runner.results()[idx];
    std::printf("%8s %9s | %s %s %9.3f%s   (central buffer, 1024 "
                "shared flits)\n",
                "cb-ref", "-",
                cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                r.deliveredLoad(), satMark(r));
    maybeReport(sc, runner);
    return 0;
}
