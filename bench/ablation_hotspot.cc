/**
 * @file
 * A7 — Hot-spot traffic (the paper's stated future work): a unicast
 * background in which a growing fraction of messages target node 0.
 * The dynamically shared central buffer absorbs the tree of backlog
 * converging on the hot ejection link far better than the statically
 * partitioned input buffers, whose FIFOs head-of-line-block cold
 * traffic behind hot packets.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A7");

    banner("A7", "hot-spot unicast traffic",
           "64 nodes, load 0.10, 64-flit payload, hot node 0");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "", "cb", "", "",
                "ib", "", "");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "hot-frac",
                "uni-avg", "uni-p95", "deliv", "uni-avg", "uni-p95",
                "deliv");
    std::fflush(stdout);

    // Hot-node ejection load is load*(1 + hotFraction*(N-2)), so
    // fractions are kept below the ejection-link saturation point.
    const SwitchArch archs[] = {SwitchArch::CentralBuffer,
                                SwitchArch::InputBuffer};
    const std::vector<double> fractions =
        quick ? std::vector<double>{0.0, 0.08}
              : std::vector<double>{0.0, 0.02, 0.04, 0.08, 0.12};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double fraction : fractions) {
        for (SwitchArch arch : archs) {
            NetworkConfig net = defaultNetwork();
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.arch = arch;
            traffic.pattern = TrafficPattern::HotSpot;
            traffic.load = 0.10;
            traffic.hotFraction = fraction;
            char label[48];
            std::snprintf(label, sizeof(label), "%s hot=%.2f",
                          toString(arch), fraction);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double fraction : fractions) {
        std::printf("%8.2f", fraction);
        for (SwitchArch arch : archs) {
            (void)arch;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s %9.3f",
                        cell(r.unicastAvg(), r.unicastCount()).c_str(),
                        cell(r.unicastP95(), r.unicastCount()).c_str(),
                        r.deliveredLoad());
            std::printf("%s", satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
