/**
 * @file
 * E11 — Multicast latency degradation under link faults. Kills an
 * increasing number of randomly chosen switch-switch links early in
 * the measurement window and reports last-destination multicast
 * latency plus recovery activity (retransmissions, partially
 * completed multicasts) for the hardware and software schemes.
 *
 * Expected shape: hardware worms degrade gracefully — a dead link
 * costs one rerouted path and the occasional retransmission — while
 * the U-Min software tree loses whole subtrees per carrier and leans
 * much harder on host-level recovery.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E11");

    static const int kFaultCounts[] = {0, 1, 2, 4, 8};
    static const Scheme kSchemes[] = {Scheme::CbHw, Scheme::SwUmin};

    banner("E11", "multicast latency vs link-fault count",
           "64 nodes, degree 8, 64-flit payload, retransmission on");
    std::printf("%7s |%10s %7s %7s %8s |%10s %7s %7s %8s\n", "faults",
                "cb-last", "retx", "partial", "unreach", "sw-last",
                "retx", "partial", "unreach");
    std::fflush(stdout);

    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int faults : kFaultCounts) {
        for (Scheme scheme : kSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.faultSpec.links = faults;
            net.faultSpec.start = params.warmup;
            net.faultSpec.end = params.warmup + params.measure / 2;
            net.nic.retransmitTimeout = 20000;
            char label[48];
            std::snprintf(label, sizeof(label), "%s faults=%d",
                          toString(scheme), faults);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (int faults : kFaultCounts) {
        std::printf("%7d |", faults);
        for (Scheme scheme : kSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf("%10s %7llu %7llu %8llu %s",
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        static_cast<unsigned long long>(r.retransmits()),
                        static_cast<unsigned long long>(
                            r.partialCompleted()),
                        static_cast<unsigned long long>(
                            r.unreachableDests()),
                        scheme == Scheme::CbHw ? "|" : "");
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
