/**
 * @file
 * Chaos soak: randomized transient + fail-stop fault campaigns.
 *
 * Each campaign draws a topology, a switch architecture, a multicast
 * scheme, and a fault cocktail (fail-stop links/switches, link BER
 * with residual errors, flap windows, tight or loose retry budgets),
 * runs traffic through it, and then holds the run to the integrity
 * contract:
 *
 *   - the network drains (no hang, no watchdog trip),
 *   - every message is accounted for: fully completed or explicitly
 *     partial — never lost, never silently corrupted,
 *   - pure-transient campaigns (no fail-stop, no escalation) recover
 *     *everything*: zero partial completions,
 *   - after the settle, Network::checkQuiescent() holds: every
 *     buffer empty, all credits home, no poisoned flit leaked into a
 *     queue.
 *
 * Exit status is the number of failed campaigns (0 = clean soak).
 * Every failure prints the campaign's knobs for one-line repro via
 * `campaigns=1 baseSeed=<seed+index>`.
 */

#include <cstdio>
#include <random>
#include <sstream>
#include <string>

#include "core/presets.hh"
#include "core/resilience.hh"
#include "sim/config.hh"
#include "workload/traffic.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);
    const int campaigns =
        static_cast<int>(cli.getInt("campaigns", 10));
    const std::uint64_t baseSeed = cli.getU64("baseSeed", 20260809u);
    const bool verbose = cli.getBool("verbose", false);

    int failures = 0;
    for (int c = 0; c < campaigns; ++c) {
        std::mt19937_64 rng(baseSeed + static_cast<std::uint64_t>(c));
        const auto pick = [&rng](int lo, int hi) {
            return lo + static_cast<int>(
                            rng() %
                            static_cast<std::uint64_t>(hi - lo + 1));
        };

        NetworkConfig net = defaultNetwork();
        std::ostringstream desc;
        if (pick(0, 3) == 0) {
            net.topo = TopologyKind::Irregular;
            net.irregular.switches = pick(0, 1) ? 8 : 12;
            net.irregular.radix = 6;
            net.irregular.hosts = 16;
            net.irregular.extraLinks = pick(4, 8);
            desc << "topo=irregular ";
        } else {
            net.fatTreeK = 4;
            net.fatTreeN = 2;
            desc << "topo=fat-tree ";
        }
        net.arch = pick(0, 1) ? SwitchArch::InputBuffer
                              : SwitchArch::CentralBuffer;
        net.nic.scheme =
            pick(0, 3) == 0 ? McastScheme::Software
                            : McastScheme::Hardware;
        desc << "arch=" << toString(net.arch)
             << " scheme="
             << (net.nic.scheme == McastScheme::Software ? "sw"
                                                         : "hw");

        // Fault cocktail: always at least one mechanism.
        net.faultSpec.seed = baseSeed + 31 * c;
        net.faultSpec.start = 200;
        net.faultSpec.end = 1500;
        const bool failStop = pick(0, 2) > 0;
        const bool withBer = pick(0, 2) > 0;
        const bool withFlaps = !failStop && !withBer ? true
                                                     : pick(0, 1) == 1;
        if (failStop) {
            net.faultSpec.links = pick(1, 2);
            net.faultSpec.switches = pick(0, 1);
        }
        if (withBer) {
            net.faultSpec.ber = pick(1, 8) * 1e-4;
            net.faultSpec.residual = pick(0, 1) ? 0.1 : 0.0;
        }
        if (withFlaps) {
            net.faultSpec.flaps = pick(1, 2);
            net.faultSpec.flapMin = 8;
            // Long windows exhaust tight retry budgets: some flap
            // campaigns escalate into fail-stops mid-run.
            net.faultSpec.flapMax = pick(0, 1) ? 64 : 2000;
            net.link.retryLimit = pick(0, 1) ? 4 : 16;
        }
        net.nic.retransmitTimeout =
            static_cast<Cycle>(pick(20, 30)) * 100;
        net.seed = baseSeed + 17 * c;
        desc << " links=" << net.faultSpec.links
             << " switches=" << net.faultSpec.switches
             << " ber=" << net.faultSpec.ber
             << " residual=" << net.faultSpec.residual
             << " flaps=" << net.faultSpec.flaps
             << " flapMax=" << net.faultSpec.flapMax
             << " retryLimit=" << net.link.retryLimit;

        Network network(net);
        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.02 + 0.01 * pick(0, 8);
        traffic.payloadFlits = 8 << pick(0, 3);
        traffic.mcastDegree = pick(2, 6);
        traffic.seed = baseSeed + 7 * c + 1;
        traffic.stopCycle = 3000;
        SyntheticTraffic source(network.numHosts(), traffic);
        network.attachTraffic(&source);
        network.armWatchdog(100000);

        network.sim().run(3000);
        const bool drained = network.sim().runUntil(
            [&network] { return network.idle(); }, 800000);
        network.sim().runUntil(
            [&network] { return network.checkQuiescent(nullptr); },
            8192);

        std::string verdict;
        std::string why;
        const McastTracker &tracker = network.tracker();
        const ResilienceManager *res = network.resilience();
        const std::uint64_t escalations =
            res != nullptr ? res->linkEscalations() : 0;
        const std::size_t applied =
            res != nullptr ? res->faultsApplied() : 0;
        if (!drained) {
            verdict = "did not drain";
        } else if (network.sim().deadlockDetected()) {
            verdict = "watchdog tripped";
        } else if (tracker.inFlight() != 0) {
            verdict = "messages left in flight";
        } else if (tracker.totalCompleted() +
                       tracker.partialCompleted() !=
                   source.generated()) {
            verdict = "message accounting leak";
        } else if (applied == 0 && escalations == 0 &&
                   tracker.partialCompleted() != 0) {
            // Pure-transient campaign: link retry plus end-to-end
            // retransmission must recover every copy.
            verdict = "transient-only run completed partially";
        } else if (!network.checkQuiescent(&why)) {
            verdict = "not quiescent: " + why;
        }

        if (!verdict.empty()) {
            ++failures;
            std::printf("FAIL campaign %d (%s): %s\n", c,
                        desc.str().c_str(), verdict.c_str());
        } else if (verbose) {
            std::printf(
                "ok campaign %d (%s): %llu msgs, %zu faults, "
                "%llu escalations, %llu partial\n",
                c, desc.str().c_str(),
                static_cast<unsigned long long>(source.generated()),
                applied,
                static_cast<unsigned long long>(escalations),
                static_cast<unsigned long long>(
                    tracker.partialCompleted()));
        }
    }

    std::printf("chaos soak: %d/%d campaigns clean\n",
                campaigns - failures, campaigns);
    return failures;
}
