/**
 * @file
 * A9 — Ablation: bidirectional MIN (fat-tree) vs unidirectional MIN
 * at equal host count and switch arity (CB-HW). The comparison cuts
 * both ways: the uni-MIN crosses exactly n stages (shorter than the
 * bidi-MIN's up-to-2n-1-switch LCA paths, so its zero-load latency
 * is lower), but it offers a single path per (source, destination)
 * and a physically split injection/ejection attachment, while the
 * bidi-MIN shortcuts nearby traffic at low stages and adaptively
 * spreads the up phase over k parallel paths.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A9");

    banner("A9", "bidirectional vs unidirectional MIN (CB-HW)",
           "64 nodes, degree 8, 64-flit payload");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "", "fat-tree",
                "", "", "uni-min", "", "");
    std::printf("%8s | %9s %9s %9s | %9s %9s %9s\n", "load", "mc-avg",
                "mc-last", "deliv", "mc-avg", "mc-last", "deliv");
    std::fflush(stdout);

    const TopologyKind topos[] = {TopologyKind::FatTree,
                                  TopologyKind::UniMin};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (double load : loadGrid(quick)) {
        for (TopologyKind topo : topos) {
            NetworkConfig net = networkFor(Scheme::CbHw);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.topo = topo;
            traffic.load = load;
            char label[48];
            std::snprintf(label, sizeof(label), "%s load=%.3f",
                          toString(topo), load);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (double load : loadGrid(quick)) {
        std::printf("%8.3f", load);
        for (TopologyKind topo : topos) {
            (void)topo;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s %9.3f%s",
                        cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        r.deliveredLoad(), satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
