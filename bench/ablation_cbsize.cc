/**
 * @file
 * A2 — Ablation: central-buffer capacity. With whole-packet
 * reservations, a small central queue throttles how many worms can
 * be resident per switch; latency should fall and saturation recede
 * as chunks are added, with diminishing returns once contention (not
 * buffering) dominates.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A2");

    banner("A2", "central-buffer size ablation (CB-HW)",
           "64 nodes, degree 8, 64-flit payload, load 0.10");
    std::printf("%8s %9s | %9s %9s %9s %10s\n", "chunks", "flits",
                "mc-avg", "mc-last", "deliv", "stall-cyc");
    std::fflush(stdout);

    // Lower bound: a 73-flit worm needs 10 chunks, x2 for the
    // up-phase headroom, plus 8 escape chunks = 28.
    const std::vector<int> sizes =
        quick ? std::vector<int>{28, 64, 192}
              : std::vector<int>{28, 32, 48, 64, 96, 128, 192, 256};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    int chunkFlits = 0;
    for (int chunks : sizes) {
        NetworkConfig net = networkFor(Scheme::CbHw);
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = benchExperiment(quick);
        applyOverrides(cli, net, traffic, params);
        net.cb.cqChunks = chunks;
        // The workload's 64-flit payload is the largest packet here.
        net.maxPayloadFlits = traffic.payloadFlits;
        traffic.load = 0.10;
        chunkFlits = net.cb.chunkFlits;
        char label[48];
        std::snprintf(label, sizeof(label), "chunks=%d", chunks);
        runner.add(label, net, traffic, params);
    }
    runner.run();

    std::size_t idx = 0;
    for (int chunks : sizes) {
        const ExperimentResult &r = runner.results()[idx++];
        std::printf("%8d %9d | %s %s %9.3f %10llu%s\n", chunks,
                    chunks * chunkFlits,
                    cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                    cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                    r.deliveredLoad(),
                    static_cast<unsigned long long>(
                        r.reservationStallCycles()),
                    satMark(r));
    }
    maybeReport(sc, runner);
    return 0;
}
