/**
 * @file
 * E7 — Varying message length at fixed load and degree.
 *
 * Expected shape (paper): hardware worms amortize the fixed header
 * and start-up cost over longer messages; the software scheme pays
 * its per-phase overheads regardless of length, so its relative
 * penalty is worst for short messages and its absolute latency grows
 * fastest (each phase re-serializes the payload).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "E7");

    banner("E7", "multicast latency vs message length",
           "64 nodes, load 0.05, degree 8");
    std::printf("%8s | %9s %9s %9s\n", "payload", "cb-hw", "ib-hw",
                "sw-umin");
    std::fflush(stdout);

    const std::vector<int> lengths =
        quick ? std::vector<int>{16, 64, 256}
              : std::vector<int>{8, 16, 32, 64, 128, 256};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int length : lengths) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            traffic.load = 0.05;
            traffic.payloadFlits = length;
            char label[48];
            std::snprintf(label, sizeof(label), "%s payload=%d",
                          toString(scheme), length);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (int length : lengths) {
        std::printf("%8d", length);
        for (Scheme scheme : kAllSchemes) {
            (void)scheme;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" %s%s",
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
