/**
 * @file
 * A5 — Microbenchmarks (google-benchmark): cost of the hot
 * per-packet operations — bit-string encode/decode, reachability
 * decode at a switch, and multiport phase planning.
 */

#include <benchmark/benchmark.h>

#include "message/encoding.hh"
#include "sim/rng.hh"
#include "topology/fat_tree.hh"

namespace {

using namespace mdw;

DestSet
randomSet(std::size_t n, std::size_t degree, Rng &rng)
{
    DestSet dests(n);
    while (dests.count() < degree)
        dests.set(static_cast<NodeId>(rng.below(n)));
    return dests;
}

void
BM_BitStringEncode(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const DestSet dests = randomSet(n, n / 4, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeBitString(dests));
}
BENCHMARK(BM_BitStringEncode)->Arg(64)->Arg(256)->Arg(1024);

void
BM_BitStringDecode(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    const auto bytes = encodeBitString(randomSet(n, n / 4, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(decodeBitString(bytes, n));
}
BENCHMARK(BM_BitStringDecode)->Arg(64)->Arg(256)->Arg(1024);

void
BM_SwitchDecode(benchmark::State &state)
{
    FatTree topo(4, 3);
    Rng rng(3);
    const DestSet dests =
        randomSet(topo.numHosts(),
                  static_cast<std::size_t>(state.range(0)), rng);
    const SwitchRouting &sr = topo.routing().at(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sr.decode(dests, RoutingVariant::ReplicateAfterLca));
    }
}
BENCHMARK(BM_SwitchDecode)->Arg(2)->Arg(8)->Arg(32)->Arg(63);

void
BM_MultiportPlan(benchmark::State &state)
{
    Rng rng(4);
    const DestSet dests = randomSet(
        64, static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(planMultiportPhases(4, 3, dests));
}
BENCHMARK(BM_MultiportPlan)->Arg(2)->Arg(8)->Arg(32)->Arg(63);

} // namespace

BENCHMARK_MAIN();
