/**
 * @file
 * A3 — Ablation: bit-string vs multiport header encoding (CB-HW).
 * Bit-string covers any destination set in one worm but its header
 * grows with system size; multiport headers are tiny and
 * size-independent but arbitrary sets may split into several product
 * worms (phases). The crossover depends on degree: sparse random
 * sets fragment badly under multiport.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;
    using namespace mdw::bench;

    Config cli;
    const bool quick = parseCli(argc, argv, cli);
    const SweepCli sc = parseSweepCli(cli, "A3");

    banner("A3", "header encoding ablation (CB-HW)",
           "64 nodes, load 0.05, 64-flit payload");
    std::printf("%8s | %9s %9s | %9s %9s\n", "", "bit-string", "",
                "multiport", "");
    std::printf("%8s | %9s %9s | %9s %9s\n", "degree", "mc-avg",
                "mc-last", "mc-avg", "mc-last");
    std::fflush(stdout);

    const McastEncoding encodings[] = {McastEncoding::BitString,
                                       McastEncoding::Multiport};
    const std::vector<int> degrees =
        quick ? std::vector<int>{4, 16, 63}
              : std::vector<int>{2, 4, 8, 16, 32, 63};
    SweepRunner runner(sc.options);
    armFatalReport(sc, runner);
    for (int degree : degrees) {
        for (McastEncoding encoding : encodings) {
            NetworkConfig net = networkFor(Scheme::CbHw);
            TrafficParams traffic = defaultTraffic();
            ExperimentParams params = benchExperiment(quick);
            applyOverrides(cli, net, traffic, params);
            net.nic.encoding = encoding;
            traffic.load = 0.05;
            traffic.mcastDegree = degree;
            char label[48];
            std::snprintf(label, sizeof(label), "%s degree=%d",
                          toString(encoding), degree);
            runner.add(label, net, traffic, params);
        }
    }
    runner.run();

    std::size_t idx = 0;
    for (int degree : degrees) {
        std::printf("%8d", degree);
        for (McastEncoding encoding : encodings) {
            (void)encoding;
            const ExperimentResult &r = runner.results()[idx++];
            std::printf(" | %s %s%s",
                        cell(r.mcastAvgAvg(), r.mcastCount()).c_str(),
                        cell(r.mcastLastAvg(), r.mcastCount()).c_str(),
                        satMark(r));
        }
        std::printf("\n");
    }
    maybeReport(sc, runner);
    return 0;
}
