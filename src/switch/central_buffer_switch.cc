#include "switch/central_buffer_switch.hh"

#include <algorithm>

#include "sim/system.hh"

namespace mdw {

CentralBufferSwitch::CentralBufferSwitch(std::string name, SwitchId id,
                                         const SwitchRouting *routing,
                                         const SwitchParams &params,
                                         const CbParams &cbParams)
    : SwitchBase(std::move(name), id, routing, params),
      cbParams_(cbParams),
      cq_(CqParams{cbParams.cqChunks, cbParams.chunkFlits,
                   routing->radix(),
                   cbParams.maxPacketFlits > 0
                       ? (cbParams.maxPacketFlits +
                          cbParams.chunkFlits - 1) /
                             cbParams.chunkFlits
                       : 0})
{
    MDW_ASSERT(cbParams_.inputFifoFlits > 0, "input FIFO must be > 0");
    MDW_ASSERT(cbParams_.outputFifoFlits >= cbParams_.chunkFlits,
               "output FIFO must hold at least one chunk");
    const auto radix = static_cast<std::size_t>(routing->radix());
    const auto slots = radix * static_cast<std::size_t>(lanes());
    inputs_.resize(slots);
    outputs_.resize(slots);
    for (auto &input : inputs_)
        input.freeSlots = cbParams_.inputFifoFlits;
    writeArb_.resize(static_cast<int>(slots));
    readArb_.resize(static_cast<int>(slots));
}

int
CentralBufferSwitch::inputOccupancy(PortId port) const
{
    int occupied = 0;
    for (int l = 0; l < lanes(); ++l) {
        const InputState &input =
            inputs_.at(laneIdx(static_cast<std::size_t>(port), l));
        occupied += cbParams_.inputFifoFlits - input.freeSlots;
    }
    return occupied;
}

int
CentralBufferSwitch::outputBacklog(PortId port, int lane) const
{
    const auto &output =
        outputs_.at(laneIdx(static_cast<std::size_t>(port), lane));
    int backlog = static_cast<int>(output.queue.size());
    if (!output.idle())
        ++backlog;
    return backlog;
}

int
CentralBufferSwitch::laneCost(const RouteDecision &route, int lane) const
{
    // Streams the new worm would queue behind on this lane, summed
    // over the outputs it must acquire.
    int cost = 0;
    for (const auto &[port, sub] : route.downBranches) {
        (void)sub;
        cost += outputBacklog(port, lane);
    }
    if (route.needsUp()) {
        int best = -1;
        for (PortId cand : route.upCandidates) {
            const int backlog = outputBacklog(cand, lane);
            if (best < 0 || backlog < best)
                best = backlog;
        }
        if (best > 0)
            cost += best;
    }
    return cost;
}

void
CentralBufferSwitch::setBarrierHooks(MakePacket makePacket,
                                     ReleaseFactory releaseFactory)
{
    makePacket_ = std::move(makePacket);
    releaseFactory_ = std::move(releaseFactory);
}

void
CentralBufferSwitch::configureBarrier(int group,
                                      BarrierSwitchEntry entry)
{
    MDW_ASSERT(makePacket_ != nullptr,
               "setBarrierHooks must precede configureBarrier");
    barrier_.configure(group, std::move(entry));
}

void
CentralBufferSwitch::step(Cycle now)
{
    collectCredits(now);
    intake(now);
    if (poisoned_) {
        // Fault paths, inert (never entered) without fault injection.
        fabricateFailedArrivals(now);
        drainTombstones(now);
    }
    decide(now);
    processBarrierEmissions(now);
    bypassTransmit(now);
    cqWrite(now);
    activateStreams();
    cqRead(now);
    streamTransmit(now);
    cqOcc_.update(static_cast<double>(cq_.usedChunks()), now);
    if (lanes() > 1) {
        int occupied = 0;
        for (const InputState &input : inputs_)
            occupied += cbParams_.inputFifoFlits - input.freeSlots;
        sampleLaneOccupancy(static_cast<double>(occupied), now);
    }
}

Cycle
CentralBufferSwitch::nextWork(Cycle now)
{
    // Any buffered state keeps the switch ticking: input FIFOs,
    // per-output bypass/stream machinery, queued streams, pending
    // barrier releases, or central-queue residency. (CQ residency also
    // pins cqOcc_: the time average may only coast while its sampled
    // value is exactly zero.)
    for (const InputState &input : inputs_) {
        if (!input.packets.empty())
            return now + 1;
    }
    for (const OutputState &output : outputs_) {
        if (!output.idle() || !output.queue.empty() ||
            output.fifoFlits > 0)
            return now + 1;
    }
    if (!barrierEmissions_.empty())
        return now + 1;
    if (cq_.entryCount() != 0 || cq_.usedChunks() != 0)
        return now + 1;
    return earliestLinkArrival();
}

void
CentralBufferSwitch::dumpState(FILE *out) const
{
    std::fprintf(out, "%s: cq used=%d/%d entries=%zu (%d lanes)\n",
                 name().c_str(), cq_.usedChunks(), cq_.capacityChunks(),
                 cq_.entryCount(), lanes());
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &in = inputs_[i];
        if (in.packets.empty())
            continue;
        const PacketRecord &rec = in.packets.front();
        std::fprintf(out,
                     "  in%zu.%zu mode=%d pkts=%zu head=%s arrived=%d "
                     "consumed=%d outLane=%d entry=%d free=%d\n",
                     i / static_cast<std::size_t>(lanes()),
                     i % static_cast<std::size_t>(lanes()),
                     static_cast<int>(in.mode), in.packets.size(),
                     rec.pkt->toString().c_str(), rec.arrived,
                     in.consumed, in.outLane, in.entry, in.freeSlots);
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const OutputState &out_state = outputs_[o];
        if (out_state.idle() && out_state.queue.empty())
            continue;
        const std::size_t port = o / static_cast<std::size_t>(lanes());
        const std::size_t lane = o % static_cast<std::size_t>(lanes());
        std::fprintf(out,
                     "  out%zu.%zu mode=%d queue=%zu fifo=%d read=%d "
                     "sent=%d credits=%d cur=%s\n",
                     port, lane, static_cast<int>(out_state.mode),
                     out_state.queue.size(), out_state.fifoFlits,
                     out_state.readSeq, out_state.sentSeq,
                     outs_[port].credits[lane],
                     out_state.current.branchPkt
                         ? out_state.current.branchPkt->toString().c_str()
                         : "-");
    }
}

bool
CentralBufferSwitch::quiescent(std::string *why) const
{
    bool ok = SwitchBase::quiescent(why);
    auto complain = [&](const std::string &what) {
        if (why)
            *why += name() + ": " + what + "; ";
        ok = false;
    };
    if (cq_.entryCount() != 0)
        complain("central queue holds " +
                 std::to_string(cq_.entryCount()) + " entries");
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &in = inputs_[i];
        if (!in.packets.empty())
            complain("input " + std::to_string(i) + " buffers " +
                     std::to_string(in.packets.size()) + " packets");
        else if (in.freeSlots != cbParams_.inputFifoFlits)
            complain("input " + std::to_string(i) + " leaked " +
                     std::to_string(cbParams_.inputFifoFlits -
                                    in.freeSlots) +
                     " FIFO slots");
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const OutputState &out = outputs_[o];
        if (!out.idle() || !out.queue.empty() || out.fifoFlits != 0)
            complain("output " + std::to_string(o) +
                     " still streaming");
    }
    return ok;
}

void
CentralBufferSwitch::intake(Cycle now)
{
    for (std::size_t i = 0; i < ins_.size(); ++i) {
        if (ins_[i].failed) {
            // Dead link: whatever was still in flight is lost.
            if (ins_[i].connected() && ins_[i].in->peek(now)) {
                (void)ins_[i].in->receive(now);
                noteTombstone();
            }
            continue;
        }
        if (!ins_[i].connected() || !ins_[i].in->peek(now))
            continue;
        Flit flit = ins_[i].in->receive(now);
        MDW_ASSERT(flit.lane >= 0 && flit.lane < lanes(),
                   "switch %d input %zu: flit on lane %d of %d", id_,
                   i, flit.lane, lanes());
        InputState &input = inputs_[laneIdx(i, flit.lane)];
        MDW_ASSERT(input.freeSlots > 0,
                   "switch %d input %zu lane %d: flit arrived with "
                   "full FIFO",
                   id_, i, flit.lane);
        --input.freeSlots;
        stats_.flitsIn.inc();
        if (flit.isHead()) {
            input.packets.push_back(PacketRecord{flit.pkt, 1});
        } else {
            MDW_ASSERT(!input.packets.empty() &&
                           input.packets.back().pkt->id == flit.pkt->id,
                       "switch %d input %zu lane %d: interleaved "
                       "packets",
                       id_, i, flit.lane);
            ++input.packets.back().arrived;
        }
        if (sim_)
            sim_->noteProgress();
    }
}

void
CentralBufferSwitch::fabricateFailedArrivals(Cycle now)
{
    (void)now;
    // A packet caught mid-reception on a now-dead link would leave
    // its buffer slot (and, transitively, a central-queue entry and
    // replication readers) occupied forever. Fabricate the missing
    // flits at wire speed — the packet then flows through the normal
    // pipeline and the poisoned id makes every NIC discard it on
    // arrival (end-to-end CRC model); retransmission re-covers the
    // destinations.
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!ins_[i / static_cast<std::size_t>(lanes())].failed ||
            input.packets.empty())
            continue;
        PacketRecord &rec = input.packets.back();
        if (rec.arrived >= rec.pkt->totalFlits())
            continue;
        if (input.freeSlots <= 0)
            continue; // normal backpressure; retry next cycle
        poisonPacket(*rec.pkt);
        --input.freeSlots;
        ++rec.arrived;
        stats_.flitsIn.inc();
        if (sim_)
            sim_->noteProgress();
    }
}

void
CentralBufferSwitch::drainTombstones(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (input.mode != InMode::Tombstone)
            continue;
        const PacketRecord &rec = input.packets.front();
        const int staged = rec.arrived - input.consumed;
        const int n = std::min(staged, cbParams_.chunkFlits);
        if (n <= 0)
            continue;
        input.consumed += n;
        input.freeSlots += n;
        if (ins_[i / static_cast<std::size_t>(lanes())].creditOut)
            ins_[i / static_cast<std::size_t>(lanes())].creditOut->send(
                n, now, static_cast<int>(
                            i % static_cast<std::size_t>(lanes())));
        stats_.tombstonedFlits.inc(static_cast<std::uint64_t>(n));
        if (sim_)
            sim_->noteProgress();
        if (input.consumed == rec.pkt->totalFlits())
            finishHeadPacket(input);
    }
}

void
CentralBufferSwitch::attachTelemetry(Telemetry &telemetry)
{
    SwitchBase::attachTelemetry(telemetry);
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix =
        "switch." + std::to_string(id_) + ".";
    reg.registerTimeAverage(prefix + "cq.occupancy_chunks", &cqOcc_,
                            [this] {
                                return sim_ ? sim_->now() : Cycle{0};
                            });
    reg.registerIntGauge(prefix + "cq.capacity_chunks", [this] {
        return static_cast<std::uint64_t>(cq_.capacityChunks());
    });
    reg.registerCounter(prefix + "barrier.tokens_combined",
                        &barrierTokens_);
    reg.registerIntGauge(prefix + "arb.write_grants",
                         [this] { return writeArb_.totalGrants(); });
    reg.registerIntGauge(prefix + "arb.read_grants",
                         [this] { return readArb_.totalGrants(); });
}

void
CentralBufferSwitch::decide(Cycle now)
{
    reservationWaiters_ = 0;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (input.mode != InMode::Deciding || input.packets.empty())
            continue;
        const PacketRecord &rec = input.packets.front();
        MDW_ASSERT(rec.pkt->headerFlits <= cbParams_.inputFifoFlits,
                   "header (%d flits) exceeds input FIFO (%d flits); "
                   "enlarge cb.inputFifoFlits",
                   rec.pkt->headerFlits, cbParams_.inputFifoFlits);
        if (rec.arrived < rec.pkt->headerFlits)
            continue;

        if (rec.pkt->kind == PacketKind::BarrierArrive) {
            // Combined by the barrier unit, never routed. Absorb the
            // token once it has fully arrived.
            if (rec.arrived == rec.pkt->totalFlits())
                consumeBarrierToken(i, now);
            continue;
        }

        const RouteDecision route =
            routing_->decode(rec.pkt->dests, params_.variant);
        traceWorm(WormEvent::HeaderDecode, now, *rec.pkt,
                  static_cast<std::int32_t>(i));
        noteUnroutable(route);
        if (route.downBranches.empty() && !route.needsUp()) {
            // Every destination lost its path (post-fault tolerant
            // table): swallow the worm here and let the source's
            // retransmission logic classify the destinations.
            poisonPacket(*rec.pkt);
            input.mode = InMode::Tombstone;
            input.consumed = 0;
            continue;
        }
        if (rec.pkt->kind == PacketKind::HwMulticast) {
            decideMulticast(i, route, now);
        } else {
            decideUnicast(i, route, now);
        }
    }
}

void
CentralBufferSwitch::consumeBarrierToken(std::size_t i, Cycle now)
{
    InputState &input = inputs_[i];
    const std::size_t port = i / static_cast<std::size_t>(lanes());
    const int lane =
        static_cast<int>(i % static_cast<std::size_t>(lanes()));
    const PacketRecord rec = input.packets.front();
    input.packets.pop_front();
    input.freeSlots += rec.pkt->totalFlits();
    if (ins_[port].creditOut)
        ins_[port].creditOut->send(rec.pkt->totalFlits(), now, lane);
    barrierTokens_.inc();
    if (sim_)
        sim_->noteProgress();

    const BarrierUnit::Emit emit = barrier_.onArrive(
        rec.pkt->barrierGroup, static_cast<PortId>(port));
    if (emit.group >= 0)
        barrierEmissions_.push_back(emit);
}

void
CentralBufferSwitch::processBarrierEmissions(Cycle now)
{
    while (!barrierEmissions_.empty()) {
        const BarrierUnit::Emit &emit = barrierEmissions_.front();
        if (emit.release) {
            // Originate the release multidestination worm. The root
            // stage down-reaches every member, so this is an ordinary
            // down-phase reservation.
            PacketDesc desc = releaseFactory_(emit.group);
            if (!cq_.canReserve(desc.totalFlits())) {
                stats_.reservationStallCycles.inc();
                return; // retry next cycle, in order
            }
            const RouteDecision route =
                routing_->decode(desc.dests, params_.variant);
            MDW_ASSERT(!route.needsUp(),
                       "barrier release not fully down-reachable "
                       "from the combining root");
            const PacketPtr pkt = makePacket_(std::move(desc));
            const auto entry = cq_.addReserved(
                pkt, static_cast<int>(route.downBranches.size()));
            cq_.write(entry, pkt->totalFlits());
            stats_.packetsRouted.inc();
            if (route.downBranches.size() > 1) {
                stats_.replications.inc(route.downBranches.size() - 1);
                traceWorm(WormEvent::Replicate, now, *pkt,
                          static_cast<std::int32_t>(
                              route.downBranches.size() - 1));
            }
            int reader = 0;
            // Barrier releases ride lane 0: they are serial control
            // traffic, and pinning them keeps the combining tree
            // independent of the lane configuration.
            for (const auto &[port, sub] : route.downBranches) {
                outputs_[laneIdx(static_cast<std::size_t>(port), 0)]
                    .queue.push_back(QueueItem{entry, reader++,
                                               pruneBranch(pkt, sub)});
            }
        } else {
            // Forward one combined token toward the tree parent; it
            // occupies one chunk, claimed before the entry exists so
            // a full queue just defers the emission.
            if (cq_.freeChunks() < 1) {
                stats_.reservationStallCycles.inc();
                return; // retry next cycle, in order
            }
            PacketDesc desc;
            desc.src = kInvalidNode;
            desc.dests = DestSet(routing_->allDownReach().size());
            desc.kind = PacketKind::BarrierArrive;
            desc.headerFlits = 2;
            desc.payloadFlits = 0;
            desc.barrierGroup = emit.group;
            const PacketPtr pkt = makePacket_(std::move(desc));
            const auto entry = cq_.addUnreserved(pkt, 1);
            cq_.write(entry, pkt->totalFlits());
            outputs_[laneIdx(static_cast<std::size_t>(emit.upPort), 0)]
                .queue.push_back(QueueItem{entry, 0, pkt});
        }
        barrierEmissions_.pop_front();
        if (sim_)
            sim_->noteProgress();
    }
}

void
CentralBufferSwitch::decideUnicast(std::size_t i,
                                   const RouteDecision &route,
                                   Cycle now)
{
    InputState &input = inputs_[i];
    const PacketPtr &pkt = input.packets.front().pkt;

    const int lane =
        allocLane(*pkt, now, [&](int l) { return laneCost(route, l); });
    input.outLane = lane;
    PortId target = kInvalidPort;
    PacketPtr branch_pkt;
    if (route.needsUp()) {
        // Prefer an up port we could bypass through right now.
        target = chooseUpPort(route, *pkt, lane, [this, lane](PortId p) {
            const OutputState &out =
                outputs_[laneIdx(static_cast<std::size_t>(p), lane)];
            return out.idle() && out.queue.empty();
        });
        branch_pkt = pkt;
    } else {
        MDW_ASSERT(route.downBranches.size() == 1,
                   "unicast decoded to %zu down branches",
                   route.downBranches.size());
        target = route.downBranches.front().first;
        branch_pkt = pruneBranch(pkt, route.downBranches.front().second);
    }

    OutputState &output =
        outputs_[laneIdx(static_cast<std::size_t>(target), lane)];
    stats_.packetsRouted.inc();
    input.consumed = 0;
    if (output.idle() && output.queue.empty()) {
        // Claim the bypass crossbar path.
        output.mode = OutputState::Mode::Bypass;
        output.bypassInput = static_cast<int>(i);
        output.sentSeq = 0;
        input.mode = InMode::Bypass;
        input.bypassPort = target;
        input.bypassPkt = std::move(branch_pkt);
    } else {
        input.entry = cq_.addUnreserved(pkt, 1);
        input.mode = InMode::CentralQueue;
        output.queue.push_back(QueueItem{input.entry, 0,
                                         std::move(branch_pkt)});
    }
}

void
CentralBufferSwitch::decideMulticast(std::size_t i,
                                     const RouteDecision &route,
                                     Cycle now)
{
    InputState &input = inputs_[i];
    const PacketPtr &pkt = input.packets.front().pkt;

    // Whole-packet chunk reservation is the acceptance condition: the
    // head waits at the FIFO head (stalling this input) until the
    // central queue can guarantee storage for the entire worm.
    if (!cq_.canReserve(pkt->totalFlits(), route.needsUp())) {
        stats_.reservationStallCycles.inc();
        traceWorm(WormEvent::ReserveStall, now, *pkt,
                  static_cast<std::int32_t>(i));
        ++reservationWaiters_;
        return;
    }

    // One lane for the whole worm, decided before the branch list:
    // every replication branch must queue on the same lane class, or
    // a branch on a bulk lane could stall the shared central-queue
    // entry behind bulk traffic and defeat the class isolation.
    const int lane =
        allocLane(*pkt, now, [&](int l) { return laneCost(route, l); });
    input.outLane = lane;

    // Materialize branch list: down branches plus at most one up port
    // (adaptive choice prefers the least-backlogged candidate).
    std::vector<std::pair<PortId, PacketPtr>> branches;
    branches.reserve(route.downBranches.size() + 1);
    for (const auto &[port, sub] : route.downBranches)
        branches.emplace_back(port, pruneBranch(pkt, sub));
    if (route.needsUp()) {
        PortId best = chooseUpPort(route, *pkt, lane, [this, lane](PortId p) {
            return outputBacklog(p, lane) == 0;
        });
        if (params_.upPolicy == UpPortPolicy::Adaptive) {
            // Refine: among candidates pick minimum backlog.
            int best_cost = outputBacklog(best, lane);
            for (PortId cand : route.upCandidates) {
                const int cost = outputBacklog(cand, lane);
                if (cost < best_cost) {
                    best_cost = cost;
                    best = cand;
                }
            }
        }
        branches.emplace_back(best, pruneBranch(pkt, route.upDests));
    }
    MDW_ASSERT(!branches.empty(), "multicast decoded to no branches");

    input.entry =
        cq_.addReserved(pkt, static_cast<int>(branches.size()));
    input.mode = InMode::CentralQueue;
    input.consumed = 0;
    stats_.packetsRouted.inc();
    if (branches.size() > 1) {
        stats_.replications.inc(branches.size() - 1);
        traceWorm(WormEvent::Replicate, now, *pkt,
                  static_cast<std::int32_t>(branches.size() - 1));
    }
    for (std::size_t b = 0; b < branches.size(); ++b) {
        outputs_[laneIdx(static_cast<std::size_t>(branches[b].first),
                         lane)]
            .queue.push_back(QueueItem{input.entry, static_cast<int>(b),
                                       std::move(branches[b].second)});
    }
}

void
CentralBufferSwitch::bypassTransmit(Cycle now)
{
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        OutPort &port = outs_[p];
        // Latency-class lanes are served first, rotating within each
        // class partition (see serviceLane); with one lane this is
        // lane 0 every cycle (the pre-lane iteration order).
        for (int k = 0; k < lanes(); ++k) {
            const int lane = serviceLane(now, k);
            OutputState &output = outputs_[laneIdx(p, lane)];
            if (output.mode != OutputState::Mode::Bypass)
                continue;
            InputState &input =
                inputs_[static_cast<std::size_t>(output.bypassInput)];
            const PacketRecord &rec = input.packets.front();
            const std::size_t in_port =
                static_cast<std::size_t>(output.bypassInput) /
                static_cast<std::size_t>(lanes());
            const int in_lane = static_cast<int>(
                static_cast<std::size_t>(output.bypassInput) %
                static_cast<std::size_t>(lanes()));

            if (input.consumed >= rec.arrived)
                continue;
            if (port.failed) {
                // Tombstone sink: swallow the flit, free the input
                // slot.
                ++output.sentSeq;
                ++input.consumed;
                ++input.freeSlots;
                if (ins_[in_port].creditOut)
                    ins_[in_port].creditOut->send(1, now, in_lane);
                noteTombstone();
                if (sim_)
                    sim_->noteProgress();
                if (output.sentSeq == input.bypassPkt->totalFlits()) {
                    output.mode = OutputState::Mode::Idle;
                    output.bypassInput = -1;
                    output.sentSeq = 0;
                    finishHeadPacket(input);
                }
                continue;
            }
            if (port.credits[static_cast<std::size_t>(lane)] < 1 ||
                portThrottled(port, now))
                continue;
            if (port.out->busy(now)) {
                // The physical link already carried another lane's
                // flit this cycle; this lane was otherwise ready.
                if (lanes() > 1 &&
                    !(output.sentSeq == 0 &&
                      !canStartPacket(port, lane, *input.bypassPkt)))
                    noteLaneStall(now, *input.bypassPkt, p);
                continue;
            }
            if (output.sentSeq == 0 &&
                !canStartPacket(port, lane, *input.bypassPkt))
                continue;
            port.out->send(Flit{input.bypassPkt, output.sentSeq, lane},
                           now);
            ++output.sentSeq;
            --port.credits[static_cast<std::size_t>(lane)];
            ++input.consumed;
            ++input.freeSlots;
            if (ins_[in_port].creditOut)
                ins_[in_port].creditOut->send(1, now, in_lane);
            notePortSend(p, lane);
            if (sim_)
                sim_->noteProgress();

            if (output.sentSeq == input.bypassPkt->totalFlits()) {
                traceWorm(WormEvent::TailDrain, now, *input.bypassPkt,
                          static_cast<std::int32_t>(p));
                output.mode = OutputState::Mode::Idle;
                output.bypassInput = -1;
                output.sentSeq = 0;
                finishHeadPacket(input);
            }
        }
    }
}

void
CentralBufferSwitch::cqWrite(Cycle now)
{
    // One chunk write per cycle: round-robin over inputs that have a
    // full chunk staged (or the complete tail) to keep chunks packed.
    std::vector<int> eligible;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (input.mode != InMode::CentralQueue)
            continue;
        const PacketRecord &rec = input.packets.front();
        const int staged = rec.arrived - input.consumed;
        if (staged <= 0)
            continue;
        const bool tail_in = rec.arrived == rec.pkt->totalFlits();
        if (staged < cbParams_.chunkFlits && !tail_in)
            continue;
        if (cq_.writable(input.entry) <= 0)
            continue; // central queue full (unicast path only)
        // Note: no write throttling while reservations wait — holding
        // back a unicast that is already at the head of an output
        // queue would block the very readers whose recycled chunks
        // the waiting worm needs; the up-phase headroom partition is
        // what guarantees forward progress.
        eligible.push_back(static_cast<int>(i));
    }
    const int winner = writeArb_.grantFrom(eligible);
    if (winner < 0)
        return;

    InputState &input = inputs_[static_cast<std::size_t>(winner)];
    const PacketRecord &rec = input.packets.front();
    const int staged = rec.arrived - input.consumed;
    const int n = std::min({staged, cbParams_.chunkFlits,
                            cq_.writable(input.entry)});
    MDW_ASSERT(n > 0, "eligible input with nothing to write");
    cq_.write(input.entry, n);
    input.consumed += n;
    input.freeSlots += n;
    const std::size_t in_port = static_cast<std::size_t>(winner) /
                                static_cast<std::size_t>(lanes());
    const int in_lane =
        static_cast<int>(static_cast<std::size_t>(winner) %
                         static_cast<std::size_t>(lanes()));
    if (ins_[in_port].creditOut)
        ins_[in_port].creditOut->send(n, now, in_lane);
    if (sim_)
        sim_->noteProgress();

    if (input.consumed == rec.pkt->totalFlits())
        finishHeadPacket(input);
}

void
CentralBufferSwitch::finishHeadPacket(InputState &input)
{
    // The head packet has fully left the input FIFO; the input is
    // free to decode the next packet even while the central queue
    // still drains the previous one.
    input.packets.pop_front();
    input.mode = InMode::Deciding;
    input.consumed = 0;
    input.outLane = 0;
    input.bypassPort = kInvalidPort;
    input.bypassPkt = nullptr;
    input.entry = CentralQueue::kNoEntry;
}

void
CentralBufferSwitch::activateStreams()
{
    for (auto &output : outputs_) {
        if (output.idle() && !output.queue.empty()) {
            output.current = std::move(output.queue.front());
            output.queue.pop_front();
            output.mode = OutputState::Mode::Stream;
            output.fifoFlits = 0;
            output.readSeq = 0;
            output.sentSeq = 0;
            // The current stream may trickle through the escape
            // chunk when the shared pool is exhausted.
            if (cq_.alive(output.current.entry))
                cq_.grantEscape(output.current.entry);
        }
    }
}

void
CentralBufferSwitch::cqRead(Cycle now)
{
    (void)now;
    // One chunk read per cycle: round-robin over streaming outputs
    // whose staging FIFO can take a chunk.
    std::vector<int> eligible;
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        OutputState &output = outputs_[o];
        if (output.mode != OutputState::Mode::Stream)
            continue;
        if (output.readSeq >= output.current.branchPkt->totalFlits())
            continue; // fully fetched; entry may already be recycled
        const int space = cbParams_.outputFifoFlits - output.fifoFlits;
        if (space < cbParams_.chunkFlits)
            continue;
        if (cq_.readable(output.current.entry, output.current.reader) <=
            0)
            continue;
        eligible.push_back(static_cast<int>(o));
    }
    const int winner = readArb_.grantFrom(eligible);
    if (winner < 0)
        return;
    OutputState &output = outputs_[static_cast<std::size_t>(winner)];
    const int n = cq_.read(output.current.entry, output.current.reader,
                           cbParams_.chunkFlits);
    MDW_ASSERT(n > 0, "eligible output read nothing");
    output.fifoFlits += n;
    output.readSeq += n;
    if (sim_)
        sim_->noteProgress();
}

void
CentralBufferSwitch::streamTransmit(Cycle now)
{
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        OutPort &port = outs_[p];
        // Same lane service order as bypassTransmit (lane 0 at L=1).
        for (int k = 0; k < lanes(); ++k) {
            const int lane = serviceLane(now, k);
            OutputState &output = outputs_[laneIdx(p, lane)];
            if (output.mode != OutputState::Mode::Stream)
                continue;
            if (output.fifoFlits <= 0)
                continue;
            if (port.failed) {
                // Tombstone sink: consume at wire speed so the central
                // queue's reader advances and chunks recycle.
                const PacketPtr &dead = output.current.branchPkt;
                ++output.sentSeq;
                --output.fifoFlits;
                noteTombstone();
                if (sim_)
                    sim_->noteProgress();
                if (output.sentSeq == dead->totalFlits()) {
                    output.mode = OutputState::Mode::Idle;
                    output.fifoFlits = 0;
                    output.readSeq = 0;
                    output.sentSeq = 0;
                    output.current = QueueItem{};
                }
                continue;
            }
            const PacketPtr &pkt = output.current.branchPkt;
            if (port.credits[static_cast<std::size_t>(lane)] < 1 ||
                portThrottled(port, now))
                continue;
            if (port.out->busy(now)) {
                // The physical link already carried another lane's
                // flit this cycle; this lane was otherwise ready.
                if (lanes() > 1 &&
                    !(output.sentSeq == 0 &&
                      !canStartPacket(port, lane, *pkt)))
                    noteLaneStall(now, *pkt, p);
                continue;
            }
            if (output.sentSeq == 0 && !canStartPacket(port, lane, *pkt)) {
                stats_.reservationStallCycles.inc();
                traceWorm(WormEvent::ReserveStall, now, *pkt,
                          static_cast<std::int32_t>(p));
                continue;
            }
            port.out->send(Flit{pkt, output.sentSeq, lane}, now);
            ++output.sentSeq;
            --output.fifoFlits;
            --port.credits[static_cast<std::size_t>(lane)];
            notePortSend(p, lane);
            if (sim_)
                sim_->noteProgress();
            if (output.sentSeq == pkt->totalFlits()) {
                traceWorm(WormEvent::TailDrain, now, *pkt,
                          static_cast<std::int32_t>(p));
                output.mode = OutputState::Mode::Idle;
                output.fifoFlits = 0;
                output.readSeq = 0;
                output.sentSeq = 0;
                output.current = QueueItem{};
            }
        }
    }
}

} // namespace mdw
