#include "switch/central_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mdw {

CentralQueue::CentralQueue(const CqParams &params)
    : params_(params)
{
    MDW_ASSERT(params_.chunks > 0, "central queue needs chunks");
    MDW_ASSERT(params_.chunkFlits > 0, "chunk size must be positive");
    MDW_ASSERT(params_.escapeReserve >= 0 &&
                   params_.escapeReserve < params_.chunks,
               "escape reserve %d out of range for %d chunks",
               params_.escapeReserve, params_.chunks);
}

int
CentralQueue::chunksFor(int flits) const
{
    return (flits + params_.chunkFlits - 1) / params_.chunkFlits;
}

bool
CentralQueue::canReserve(int totalFlits, bool upPhase) const
{
    const int headroom = upPhase ? params_.upPhaseHeadroom : 0;
    return chunksFor(totalFlits) <= freeChunks() - headroom;
}

CentralQueue::EntryId
CentralQueue::addReserved(PacketPtr pkt, int readers)
{
    MDW_ASSERT(pkt != nullptr, "null packet");
    MDW_ASSERT(readers >= 1, "entry needs at least one reader");
    const int need = chunksFor(pkt->totalFlits());
    MDW_ASSERT(need <= freeChunks(),
               "reservation of %d chunks with only %d free (check "
               "canReserve first)",
               need, freeChunks());
    Entry entry;
    entry.total = pkt->totalFlits();
    entry.pkt = std::move(pkt);
    entry.reserved = true;
    entry.sharedChunks = need;
    entry.readerPos.assign(static_cast<std::size_t>(readers), 0);
    usedShared_ += need;
    const EntryId id = nextId_++;
    entries_.emplace(id, std::move(entry));
    return id;
}

CentralQueue::EntryId
CentralQueue::addUnreserved(PacketPtr pkt, int readers)
{
    MDW_ASSERT(pkt != nullptr, "null packet");
    MDW_ASSERT(readers >= 1, "entry needs at least one reader");
    Entry entry;
    entry.total = pkt->totalFlits();
    entry.pkt = std::move(pkt);
    entry.reserved = false;
    entry.readerPos.assign(static_cast<std::size_t>(readers), 0);
    const EntryId id = nextId_++;
    entries_.emplace(id, std::move(entry));
    return id;
}

void
CentralQueue::grantEscape(EntryId id)
{
    Entry &entry = get(id);
    if (!entry.reserved)
        entry.escapeRights = true;
}

CentralQueue::Entry &
CentralQueue::get(EntryId id)
{
    auto it = entries_.find(id);
    MDW_ASSERT(it != entries_.end(), "central-queue entry %d not found",
               id);
    return it->second;
}

const CentralQueue::Entry &
CentralQueue::get(EntryId id) const
{
    auto it = entries_.find(id);
    MDW_ASSERT(it != entries_.end(), "central-queue entry %d not found",
               id);
    return it->second;
}

int
CentralQueue::writable(EntryId id) const
{
    const Entry &entry = get(id);
    const int pending = entry.total - entry.written;
    if (entry.reserved || pending == 0)
        return pending;
    // Unreserved: new chunks come from the shared pool, plus at most
    // one outstanding escape chunk for an output's current stream.
    const int touched = chunksFor(entry.written);
    const int slack =
        (touched * params_.chunkFlits) - entry.written; // in last chunk
    int chunks_avail = std::max(freeChunks(), 0);
    if (entry.escapeRights && entry.escapeChunks == 0 &&
        usedEscape_ < params_.escapeReserve) {
        ++chunks_avail;
    }
    return std::min(pending, slack + chunks_avail * params_.chunkFlits);
}

void
CentralQueue::write(EntryId id, int n)
{
    Entry &entry = get(id);
    MDW_ASSERT(n > 0 && n <= writable(id),
               "invalid write of %d flits (writable %d)", n,
               writable(id));
    if (!entry.reserved) {
        const int before = chunksFor(entry.written);
        const int after = chunksFor(entry.written + n);
        int grown = after - before;
        // Charge the shared pool first, then the escape reserve.
        const int from_shared = std::min(grown, freeChunks());
        usedShared_ += from_shared;
        entry.sharedChunks += from_shared;
        grown -= from_shared;
        if (grown > 0) {
            MDW_ASSERT(entry.escapeRights && grown == 1 &&
                           entry.escapeChunks == 0 &&
                           usedEscape_ < params_.escapeReserve,
                       "escape-chunk accounting violated "
                       "(grown=%d escape=%d/%d)",
                       grown, usedEscape_, params_.escapeReserve);
            ++usedEscape_;
            entry.escapeChunks = 1;
        }
    }
    entry.written += n;
}

int
CentralQueue::written(EntryId id) const
{
    return get(id).written;
}

int
CentralQueue::readable(EntryId id, int reader) const
{
    const Entry &entry = get(id);
    MDW_ASSERT(reader >= 0 &&
                   static_cast<std::size_t>(reader) <
                       entry.readerPos.size(),
               "reader %d out of range", reader);
    // Chunk-granularity access: only fully written chunks (or the
    // written tail of a complete packet) can be fetched.
    const int limit =
        entry.written == entry.total
            ? entry.total
            : (entry.written / params_.chunkFlits) * params_.chunkFlits;
    return limit - entry.readerPos[static_cast<std::size_t>(reader)];
}

int
CentralQueue::read(EntryId id, int reader, int maxN)
{
    Entry &entry = get(id);
    const int n = std::min(maxN, readable(id, reader));
    if (n <= 0)
        return 0;
    entry.readerPos[static_cast<std::size_t>(reader)] += n;
    recycle(id, entry);
    return n;
}

void
CentralQueue::recycle(EntryId id, Entry &entry)
{
    int min_pos = entry.total;
    for (int pos : entry.readerPos)
        min_pos = std::min(min_pos, pos);

    const bool complete =
        min_pos == entry.total && entry.written == entry.total;
    // Cumulative chunks no reader still needs.
    const int freeable = complete ? entry.heldChunks() +
                                        entry.freedChunks
                                  : min_pos / params_.chunkFlits;
    const int target =
        std::min(freeable, entry.heldChunks() + entry.freedChunks);
    if (target > entry.freedChunks) {
        int released = target - entry.freedChunks;
        entry.freedChunks = target;
        // Return escape chunks first so the trickle path frees up
        // for this entry's next write.
        const int from_escape = std::min(released, entry.escapeChunks);
        entry.escapeChunks -= from_escape;
        usedEscape_ -= from_escape;
        released -= from_escape;
        MDW_ASSERT(released <= entry.sharedChunks,
                   "freeing more chunks than charged");
        entry.sharedChunks -= released;
        usedShared_ -= released;
        MDW_ASSERT(usedShared_ >= 0 && usedEscape_ >= 0,
                   "negative chunk usage");
    }

    if (complete) {
        MDW_ASSERT(entry.heldChunks() == 0,
                   "entry completed with %d chunks still charged",
                   entry.heldChunks());
        entries_.erase(id);
    }
}

bool
CentralQueue::alive(EntryId id) const
{
    return entries_.count(id) > 0;
}

bool
CentralQueue::isReserved(EntryId id) const
{
    return get(id).reserved;
}

const PacketPtr &
CentralQueue::packet(EntryId id) const
{
    return get(id).pkt;
}

} // namespace mdw
