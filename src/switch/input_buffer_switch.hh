/**
 * @file
 * Input-buffer-based switch architecture (paper Section 5).
 *
 * Storage is statically partitioned into one FIFO buffer per input
 * port, each large enough to hold the largest packet in the system.
 * A multidestination worm at the head of an input buffer decodes its
 * destination set into a set of required output ports and replicates
 * *asynchronously*: each requested output port is acquired
 * independently through round-robin arbitration, and each acquired
 * branch streams flits at its own pace; a blocked branch never blocks
 * the others. A buffer slot is recycled (and its credit returned
 * upstream) once every branch has forwarded the flit.
 *
 * Deadlock freedom follows the paper's rule: the upstream sender may
 * start transferring a multidestination worm only when the whole
 * packet is guaranteed to fit in this input buffer (whole-packet
 * credit reservation), so any blocked worm is eventually completely
 * buffered and releases its upstream path. Unicast traffic uses plain
 * cut-through with per-flit credits (up/down routing is acyclic).
 *
 * The price of this organization is head-of-line blocking: only the
 * packet at the head of each input FIFO can be routed.
 */

#ifndef MDW_SWITCH_INPUT_BUFFER_SWITCH_HH
#define MDW_SWITCH_INPUT_BUFFER_SWITCH_HH

#include <cstdio>
#include <deque>

#include "switch/arbiter.hh"
#include "switch/switch_base.hh"

namespace mdw {

/** Parameters of the input-buffer architecture. */
struct IbParams
{
    /**
     * Flits of buffering per input port. Must be at least the largest
     * packet (header + payload) in the system; the network builder
     * validates this.
     */
    int bufferFlits = 288;
};

/** Input-buffered switch with asynchronous multicast replication. */
class InputBufferSwitch : public SwitchBase
{
  public:
    InputBufferSwitch(std::string name, SwitchId id,
                      const SwitchRouting *routing,
                      const SwitchParams &params,
                      const IbParams &ibParams);

    void step(Cycle now) override;

    Cycle nextWork(Cycle now) override;

    ReceivePolicy
    receivePolicy(PortId) const override
    {
        return ReceivePolicy{ibParams_.bufferFlits, true};
    }

    /** Flits currently buffered at input @p port, all lanes (tests). */
    int bufferOccupancy(PortId port) const;

    /** True if any lane of output @p port streams a branch (tests). */
    bool outputBusy(PortId port) const;

    /** Print the full internal state (deadlock diagnosis). */
    void dumpState(FILE *out) const;

    bool quiescent(std::string *why) const override;

    void attachTelemetry(Telemetry &telemetry) override;

  private:
    /** One replication branch of the head packet of an input. */
    struct Branch
    {
        PortId port = kInvalidPort;
        PacketPtr pkt; // destination-pruned descriptor
        int sent = 0;
        bool granted = false;

        bool done() const { return sent >= pkt->totalFlits(); }
    };

    /** One packet resident (possibly partially) in an input buffer. */
    struct PacketRecord
    {
        PacketPtr pkt;
        int arrived = 0;
    };

    /**
     * Per-(input port, lane) buffer state, laneIdx-flattened: each
     * lane owns an independent FIFO of the full advertised window, so
     * a multi-lane switch buffers lanes x bufferFlits per port.
     */
    struct InputState
    {
        std::deque<PacketRecord> packets;
        int freeSlots = 0;
        /** Head-packet flits already forwarded by every branch. */
        int released = 0;
        bool decoded = false;
        /** Output lane the head packet was allocated at decode; every
         *  replication branch streams on this lane (branch-consistent
         *  lane reservation). */
        int outLane = 0;
        /** Head packet still needs an up port to be granted. */
        bool upPending = false;
        std::vector<PortId> upCandidates;
        DestSet upDests{0};
        std::vector<Branch> branches;
    };

    /** Per-(output port, lane) binding, laneIdx-flattened. The bound
     *  input is a flattened (port, lane) index as well. */
    struct OutputState
    {
        int boundInput = -1;
        int boundBranch = -1;

        bool busy() const { return boundInput >= 0; }
    };

    void intake(Cycle now);
    /** Complete packets cut off by a failed input link (fault). */
    void fabricateFailedArrivals();
    void decodeHeads(Cycle now);
    /** Adaptive lane cost: required output (port, lane) slots busy. */
    int laneCost(const RouteDecision &route, int lane) const;
    void arbitrate();
    void transmit(Cycle now);
    /** Synchronous replication: all-or-nothing port acquisition. */
    void arbitrateSync();
    /** Synchronous replication: lock-step forwarding on all branches. */
    void transmitSync(Cycle now);
    void release(Cycle now);

    /** True when every branch of the head packet has its port. */
    static bool fullyGranted(const InputState &input);

    IbParams ibParams_;
    /** laneIdx-flattened: (port, lane) for ports 0..radix. */
    std::vector<InputState> inputs_;
    std::vector<OutputState> outputs_;
    std::vector<RoundRobinArbiter> outputArb_;
    RoundRobinArbiter syncArb_;
};

} // namespace mdw

#endif // MDW_SWITCH_INPUT_BUFFER_SWITCH_HH
