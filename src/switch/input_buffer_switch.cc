#include "switch/input_buffer_switch.hh"

#include <algorithm>

#include "sim/system.hh"

namespace mdw {

InputBufferSwitch::InputBufferSwitch(std::string name, SwitchId id,
                                     const SwitchRouting *routing,
                                     const SwitchParams &params,
                                     const IbParams &ibParams)
    : SwitchBase(std::move(name), id, routing, params),
      ibParams_(ibParams)
{
    MDW_ASSERT(ibParams_.bufferFlits > 0, "input buffer must be > 0");
    const auto radix = static_cast<std::size_t>(routing->radix());
    inputs_.resize(radix);
    outputs_.resize(radix);
    outputArb_.resize(radix);
    for (auto &input : inputs_)
        input.freeSlots = ibParams_.bufferFlits;
    for (auto &arb : outputArb_)
        arb.resize(static_cast<int>(radix));
    syncArb_.resize(static_cast<int>(radix));
}

bool
InputBufferSwitch::fullyGranted(const InputState &input)
{
    if (!input.decoded || input.upPending || input.branches.empty())
        return false;
    for (const Branch &branch : input.branches) {
        if (!branch.granted)
            return false;
    }
    return true;
}

int
InputBufferSwitch::bufferOccupancy(PortId port) const
{
    const auto &input = inputs_.at(static_cast<std::size_t>(port));
    return ibParams_.bufferFlits - input.freeSlots;
}

bool
InputBufferSwitch::outputBusy(PortId port) const
{
    return outputs_.at(static_cast<std::size_t>(port)).busy();
}

void
InputBufferSwitch::dumpState(FILE *out) const
{
    std::fprintf(out, "%s: input-buffer switch\n", name().c_str());
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &in = inputs_[i];
        if (in.packets.empty())
            continue;
        const PacketRecord &rec = in.packets.front();
        std::fprintf(out,
                     "  in%zu pkts=%zu head=%s arrived=%d released=%d "
                     "decoded=%d upPending=%d free=%d\n",
                     i, in.packets.size(), rec.pkt->toString().c_str(),
                     rec.arrived, in.released, in.decoded,
                     in.upPending, in.freeSlots);
        for (const Branch &branch : in.branches) {
            std::fprintf(out, "    branch port=%d sent=%d granted=%d\n",
                         branch.port, branch.sent, branch.granted);
        }
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (!outputs_[o].busy())
            continue;
        std::fprintf(out, "  out%zu bound to in%d branch %d credits=%d\n",
                     o, outputs_[o].boundInput,
                     outputs_[o].boundBranch, outs_[o].credits);
    }
}

void
InputBufferSwitch::step(Cycle now)
{
    collectCredits(now);
    intake(now);
    if (poisoned_)
        fabricateFailedArrivals();
    decodeHeads(now);
    if (params_.replication == ReplicationMode::Synchronous) {
        arbitrateSync();
        transmitSync(now);
    } else {
        arbitrate();
        transmit(now);
    }
    release(now);
}

Cycle
InputBufferSwitch::nextWork(Cycle now)
{
    // Buffered packets cover every ongoing activity: branches and
    // output bindings only exist for a resident head packet, and
    // release() frees slots only while packets are queued.
    for (const InputState &input : inputs_) {
        if (!input.packets.empty())
            return now + 1;
    }
    for (const OutputState &output : outputs_) {
        if (output.busy())
            return now + 1;
    }
    return earliestLinkArrival();
}

void
InputBufferSwitch::intake(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!ins_[i].connected() || !ins_[i].in->peek(now))
            continue;
        if (ins_[i].failed) {
            // Dead link: discard whatever still trickles in (the
            // fabrication path completes any cut-off packet instead).
            ins_[i].in->receive(now);
            noteTombstone();
            continue;
        }
        MDW_ASSERT(input.freeSlots > 0,
                   "switch %d input %zu: flit arrived with full buffer "
                   "(credit protocol violated)",
                   id_, i);
        Flit flit = ins_[i].in->receive(now);
        --input.freeSlots;
        stats_.flitsIn.inc();
        if (flit.isHead()) {
            MDW_ASSERT(flit.pkt->totalFlits() <= ibParams_.bufferFlits,
                       "packet %llu (%d flits) exceeds input buffer "
                       "(%d flits)",
                       static_cast<unsigned long long>(flit.pkt->id),
                       flit.pkt->totalFlits(), ibParams_.bufferFlits);
            input.packets.push_back(PacketRecord{flit.pkt, 1});
        } else {
            MDW_ASSERT(!input.packets.empty() &&
                           input.packets.back().pkt->id == flit.pkt->id,
                       "switch %d input %zu: interleaved packets on "
                       "one link",
                       id_, i);
            ++input.packets.back().arrived;
        }
        if (sim_)
            sim_->noteProgress();
    }
}

void
InputBufferSwitch::fabricateFailedArrivals()
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        if (!ins_[i].failed)
            continue;
        InputState &input = inputs_[i];
        if (input.packets.empty())
            continue;
        PacketRecord &rec = input.packets.back();
        if (rec.arrived >= rec.pkt->totalFlits() || input.freeSlots <= 0)
            continue;
        // The link died mid-packet: materialize the missing flits
        // locally (one per cycle, as the wire would have) and poison
        // the id so NICs discard the mangled delivery end-to-end.
        poisonPacket(*rec.pkt);
        --input.freeSlots;
        ++rec.arrived;
        stats_.flitsIn.inc();
        if (sim_)
            sim_->noteProgress();
    }
}

void
InputBufferSwitch::decodeHeads(Cycle now)
{
    for (auto &input : inputs_) {
        if (input.decoded || input.packets.empty())
            continue;
        const PacketRecord &rec = input.packets.front();
        if (rec.arrived < rec.pkt->headerFlits)
            continue;

        const RouteDecision route =
            routing_->decode(rec.pkt->dests, params_.variant);
        traceWorm(WormEvent::HeaderDecode, now, *rec.pkt);
        noteUnroutable(route);
        if (route.downBranches.empty() && !route.needsUp()) {
            // Every destination lost its route to the faults: poison
            // the packet and drain it branchless (release() consumes
            // it at arrival speed).
            poisonPacket(*rec.pkt);
            input.branches.clear();
            input.upPending = false;
            input.decoded = true;
            input.released = 0;
            stats_.packetsRouted.inc();
            continue;
        }
        input.branches.clear();
        input.branches.reserve(route.downBranches.size() + 1);
        for (const auto &[port, sub] : route.downBranches)
            input.branches.push_back(
                Branch{port, pruneBranch(rec.pkt, sub), 0, false});
        input.upPending = false;
        if (route.needsUp()) {
            if (params_.upPolicy == UpPortPolicy::Deterministic) {
                const PortId up = chooseUpPort(route, *rec.pkt, nullptr);
                input.branches.push_back(
                    Branch{up, pruneBranch(rec.pkt, route.upDests), 0,
                           false});
            } else {
                input.upPending = true;
                input.upCandidates = route.upCandidates;
                input.upDests = route.upDests;
            }
        }
        input.decoded = true;
        input.released = 0;
        stats_.packetsRouted.inc();
        const std::size_t copies =
            route.downBranches.size() + (route.needsUp() ? 1 : 0);
        if (copies > 1) {
            stats_.replications.inc(copies - 1);
            traceWorm(WormEvent::Replicate, now, *rec.pkt,
                      static_cast<std::int32_t>(copies - 1));
        }
    }
}

void
InputBufferSwitch::arbitrate()
{
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (outputs_[o].busy() || !outs_[o].connected())
            continue;
        // Gather inputs requesting this output: a concrete ungranted
        // branch, or an unresolved adaptive up-port request.
        std::vector<bool> request(inputs_.size(), false);
        std::vector<int> branchOf(inputs_.size(), -1);
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            InputState &input = inputs_[i];
            if (!input.decoded)
                continue;
            for (std::size_t b = 0; b < input.branches.size(); ++b) {
                const Branch &branch = input.branches[b];
                if (!branch.granted && !branch.done() &&
                    branch.port == static_cast<PortId>(o)) {
                    request[i] = true;
                    branchOf[i] = static_cast<int>(b);
                }
            }
            if (!request[i] && input.upPending &&
                std::find(input.upCandidates.begin(),
                          input.upCandidates.end(),
                          static_cast<PortId>(o)) !=
                    input.upCandidates.end()) {
                request[i] = true;
                branchOf[i] = -2; // up request marker
            }
        }

        const int winner = outputArb_[o].grant(request);
        if (winner < 0)
            continue;
        InputState &input = inputs_[static_cast<std::size_t>(winner)];
        int branch_idx = branchOf[static_cast<std::size_t>(winner)];
        if (branch_idx == -2) {
            // Adaptive up request: materialize the up branch here.
            const PacketPtr &pkt = input.packets.front().pkt;
            input.branches.push_back(
                Branch{static_cast<PortId>(o),
                       pruneBranch(pkt, input.upDests), 0, true});
            input.upPending = false;
            branch_idx = static_cast<int>(input.branches.size()) - 1;
        } else {
            input.branches[static_cast<std::size_t>(branch_idx)]
                .granted = true;
        }
        outputs_[o].boundInput = winner;
        outputs_[o].boundBranch = branch_idx;
    }
}

void
InputBufferSwitch::transmit(Cycle now)
{
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        OutputState &output = outputs_[o];
        if (!output.busy())
            continue;
        OutPort &port = outs_[o];
        InputState &input =
            inputs_[static_cast<std::size_t>(output.boundInput)];
        Branch &branch =
            input.branches[static_cast<std::size_t>(output.boundBranch)];
        const PacketRecord &rec = input.packets.front();
        MDW_ASSERT(rec.pkt->id == branch.pkt->id,
                   "output %zu bound to a non-head packet", o);

        if (branch.sent >= rec.arrived)
            continue; // flit not yet in the buffer
        if (port.failed) {
            // Tombstone sink: swallow the flit at wire speed so the
            // buffer slot recycles and sibling branches keep going.
            ++branch.sent;
            noteTombstone();
            if (sim_)
                sim_->noteProgress();
            if (branch.done()) {
                output.boundInput = -1;
                output.boundBranch = -1;
            }
            continue;
        }
        if (port.credits < 1 || port.out->busy(now) ||
            portThrottled(port, now))
            continue;
        if (branch.sent == 0 && !canStartPacket(port, *branch.pkt)) {
            stats_.reservationStallCycles.inc();
            traceWorm(WormEvent::ReserveStall, now, *branch.pkt,
                      static_cast<std::int32_t>(o));
            continue;
        }
        port.out->send(Flit{branch.pkt, branch.sent}, now);
        ++branch.sent;
        --port.credits;
        notePortSend(o);
        if (sim_)
            sim_->noteProgress();
        if (branch.done()) {
            traceWorm(WormEvent::TailDrain, now, *branch.pkt,
                      static_cast<std::int32_t>(o));
            output.boundInput = -1;
            output.boundBranch = -1;
        }
    }
}

void
InputBufferSwitch::arbitrateSync()
{
    // All-or-nothing acquisition (no hold-and-wait): an input gets
    // every output port its head packet needs in one shot, or none.
    // Inputs are served in round-robin order for fairness.
    std::vector<bool> ready(inputs_.size(), false);
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &input = inputs_[i];
        if (!input.decoded)
            continue;
        bool wants = input.upPending;
        for (const Branch &branch : input.branches)
            wants = wants || !branch.granted;
        ready[i] = wants;
    }

    // Try every waiting input once, rotating priority.
    for (std::size_t attempt = 0; attempt < inputs_.size(); ++attempt) {
        const int i = syncArb_.grant(ready);
        if (i < 0)
            return;
        ready[static_cast<std::size_t>(i)] = false;
        InputState &input = inputs_[static_cast<std::size_t>(i)];

        // Collect the full port set: ungranted branches plus, if
        // unresolved, one free up candidate.
        std::vector<PortId> needed;
        for (const Branch &branch : input.branches) {
            if (!branch.granted)
                needed.push_back(branch.port);
        }
        PortId up_choice = kInvalidPort;
        if (input.upPending) {
            for (PortId cand : input.upCandidates) {
                if (!outputs_[static_cast<std::size_t>(cand)].busy()) {
                    up_choice = cand;
                    break;
                }
            }
            if (up_choice == kInvalidPort)
                continue; // no free up port: acquire nothing
            needed.push_back(up_choice);
        }

        bool all_free = true;
        for (PortId port : needed) {
            if (outputs_[static_cast<std::size_t>(port)].busy()) {
                all_free = false;
                break;
            }
        }
        if (!all_free || needed.empty())
            continue;

        // Commit: bind every port.
        if (up_choice != kInvalidPort) {
            const PacketPtr &pkt = input.packets.front().pkt;
            input.branches.push_back(Branch{
                up_choice, pruneBranch(pkt, input.upDests), 0, false});
            input.upPending = false;
        }
        for (std::size_t b = 0; b < input.branches.size(); ++b) {
            Branch &branch = input.branches[b];
            if (branch.granted)
                continue;
            branch.granted = true;
            OutputState &output =
                outputs_[static_cast<std::size_t>(branch.port)];
            output.boundInput = i;
            output.boundBranch = static_cast<int>(b);
        }
    }
}

void
InputBufferSwitch::transmitSync(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!fullyGranted(input))
            continue;
        const PacketRecord &rec = input.packets.front();
        const int sent = input.branches.front().sent;
        if (sent >= rec.arrived)
            continue;
        if (sent >= rec.pkt->totalFlits())
            continue;

        // Lock-step: the flit moves only if EVERY branch can take it
        // this cycle (the synchronous-replication feedback).
        bool all_can = true;
        for (const Branch &branch : input.branches) {
            MDW_ASSERT(branch.sent == sent,
                       "synchronous branches diverged (%d vs %d)",
                       branch.sent, sent);
            OutPort &port =
                outs_[static_cast<std::size_t>(branch.port)];
            if (port.failed)
                continue; // tombstone sink always accepts
            if (port.credits < 1 || port.out->busy(now) ||
                portThrottled(port, now) ||
                (sent == 0 && !canStartPacket(port, *branch.pkt))) {
                all_can = false;
                break;
            }
        }
        if (!all_can) {
            if (sent == 0) {
                stats_.reservationStallCycles.inc();
                traceWorm(WormEvent::ReserveStall, now, *rec.pkt);
            }
            continue;
        }

        bool done = false;
        for (Branch &branch : input.branches) {
            OutPort &port =
                outs_[static_cast<std::size_t>(branch.port)];
            if (port.failed) {
                ++branch.sent;
                noteTombstone();
                done = branch.done();
                continue;
            }
            port.out->send(Flit{branch.pkt, branch.sent}, now);
            ++branch.sent;
            --port.credits;
            notePortSend(static_cast<std::size_t>(branch.port));
            done = branch.done();
        }
        if (sim_)
            sim_->noteProgress();
        if (done) {
            traceWorm(WormEvent::TailDrain, now, *rec.pkt);
            for (const Branch &branch : input.branches) {
                OutputState &output =
                    outputs_[static_cast<std::size_t>(branch.port)];
                output.boundInput = -1;
                output.boundBranch = -1;
            }
        }
    }
}

void
InputBufferSwitch::release(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!input.decoded || input.packets.empty())
            continue;
        const PacketRecord &rec = input.packets.front();
        const int total = rec.pkt->totalFlits();

        int min_sent = total;
        if (input.upPending)
            min_sent = 0;
        else if (input.branches.empty())
            min_sent = rec.arrived; // tombstoned head: drain on arrival
        for (const Branch &branch : input.branches)
            min_sent = std::min(min_sent, branch.sent);

        if (min_sent > input.released) {
            const int freed = min_sent - input.released;
            input.released = min_sent;
            input.freeSlots += freed;
            if (ins_[i].creditOut)
                ins_[i].creditOut->send(freed, now);
        }

        if (input.released == total) {
            MDW_ASSERT(rec.arrived == total,
                       "released more flits than arrived");
            input.packets.pop_front();
            input.decoded = false;
            input.branches.clear();
            input.upPending = false;
            input.released = 0;
        }
    }
}

void
InputBufferSwitch::attachTelemetry(Telemetry &telemetry)
{
    SwitchBase::attachTelemetry(telemetry);
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix =
        "switch." + std::to_string(id_) + ".";
    reg.registerIntGauge(prefix + "arb.output_grants", [this] {
        std::uint64_t total = 0;
        for (const RoundRobinArbiter &arb : outputArb_)
            total += arb.totalGrants();
        return total;
    });
    reg.registerIntGauge(prefix + "arb.sync_grants",
                         [this] { return syncArb_.totalGrants(); });
}

bool
InputBufferSwitch::quiescent(std::string *why) const
{
    if (!SwitchBase::quiescent(why))
        return false;
    const auto complain = [&](const std::string &what) {
        if (why)
            *why += name() + ": " + what + "; ";
        return false;
    };
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &input = inputs_[i];
        if (!input.packets.empty())
            return complain("input " + std::to_string(i) + " holds " +
                            std::to_string(input.packets.size()) +
                            " packet(s)");
        if (input.freeSlots != ibParams_.bufferFlits)
            return complain("input " + std::to_string(i) +
                            " buffer not fully drained");
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (outputs_[o].busy())
            return complain("output " + std::to_string(o) +
                            " still bound to a branch");
    }
    return true;
}

} // namespace mdw
