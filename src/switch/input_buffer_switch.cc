#include "switch/input_buffer_switch.hh"

#include <algorithm>

#include "sim/system.hh"

namespace mdw {

InputBufferSwitch::InputBufferSwitch(std::string name, SwitchId id,
                                     const SwitchRouting *routing,
                                     const SwitchParams &params,
                                     const IbParams &ibParams)
    : SwitchBase(std::move(name), id, routing, params),
      ibParams_(ibParams)
{
    MDW_ASSERT(ibParams_.bufferFlits > 0, "input buffer must be > 0");
    const auto radix = static_cast<std::size_t>(routing->radix());
    const auto slots = radix * static_cast<std::size_t>(lanes());
    inputs_.resize(slots);
    outputs_.resize(slots);
    outputArb_.resize(slots);
    for (auto &input : inputs_)
        input.freeSlots = ibParams_.bufferFlits;
    for (auto &arb : outputArb_)
        arb.resize(static_cast<int>(slots));
    syncArb_.resize(static_cast<int>(slots));
}

bool
InputBufferSwitch::fullyGranted(const InputState &input)
{
    if (!input.decoded || input.upPending || input.branches.empty())
        return false;
    for (const Branch &branch : input.branches) {
        if (!branch.granted)
            return false;
    }
    return true;
}

int
InputBufferSwitch::bufferOccupancy(PortId port) const
{
    int occupied = 0;
    for (int l = 0; l < lanes(); ++l) {
        const InputState &input =
            inputs_.at(laneIdx(static_cast<std::size_t>(port), l));
        occupied += ibParams_.bufferFlits - input.freeSlots;
    }
    return occupied;
}

bool
InputBufferSwitch::outputBusy(PortId port) const
{
    for (int l = 0; l < lanes(); ++l) {
        if (outputs_.at(laneIdx(static_cast<std::size_t>(port), l))
                .busy())
            return true;
    }
    return false;
}

void
InputBufferSwitch::dumpState(FILE *out) const
{
    std::fprintf(out, "%s: input-buffer switch (%d lanes)\n",
                 name().c_str(), lanes());
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &in = inputs_[i];
        if (in.packets.empty())
            continue;
        const PacketRecord &rec = in.packets.front();
        std::fprintf(out,
                     "  in%zu.%zu pkts=%zu head=%s arrived=%d "
                     "released=%d decoded=%d outLane=%d upPending=%d "
                     "free=%d\n",
                     i / static_cast<std::size_t>(lanes()),
                     i % static_cast<std::size_t>(lanes()),
                     in.packets.size(), rec.pkt->toString().c_str(),
                     rec.arrived, in.released, in.decoded, in.outLane,
                     in.upPending, in.freeSlots);
        for (const Branch &branch : in.branches) {
            std::fprintf(out, "    branch port=%d sent=%d granted=%d\n",
                         branch.port, branch.sent, branch.granted);
        }
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (!outputs_[o].busy())
            continue;
        const std::size_t port = o / static_cast<std::size_t>(lanes());
        const std::size_t lane = o % static_cast<std::size_t>(lanes());
        std::fprintf(out,
                     "  out%zu.%zu bound to in%d branch %d credits=%d\n",
                     port, lane, outputs_[o].boundInput,
                     outputs_[o].boundBranch, outs_[port].credits[lane]);
    }
}

void
InputBufferSwitch::step(Cycle now)
{
    collectCredits(now);
    intake(now);
    if (poisoned_)
        fabricateFailedArrivals();
    decodeHeads(now);
    if (params_.replication == ReplicationMode::Synchronous) {
        arbitrateSync();
        transmitSync(now);
    } else {
        arbitrate();
        transmit(now);
    }
    release(now);
    if (lanes() > 1) {
        int occupied = 0;
        for (const InputState &input : inputs_)
            occupied += ibParams_.bufferFlits - input.freeSlots;
        sampleLaneOccupancy(static_cast<double>(occupied), now);
    }
}

Cycle
InputBufferSwitch::nextWork(Cycle now)
{
    // Buffered packets cover every ongoing activity: branches and
    // output bindings only exist for a resident head packet, and
    // release() frees slots only while packets are queued.
    for (const InputState &input : inputs_) {
        if (!input.packets.empty())
            return now + 1;
    }
    for (const OutputState &output : outputs_) {
        if (output.busy())
            return now + 1;
    }
    return earliestLinkArrival();
}

void
InputBufferSwitch::intake(Cycle now)
{
    for (std::size_t i = 0; i < ins_.size(); ++i) {
        if (!ins_[i].connected() || !ins_[i].in->peek(now))
            continue;
        if (ins_[i].failed) {
            // Dead link: discard whatever still trickles in (the
            // fabrication path completes any cut-off packet instead).
            ins_[i].in->receive(now);
            noteTombstone();
            continue;
        }
        Flit flit = ins_[i].in->receive(now);
        MDW_ASSERT(flit.lane >= 0 && flit.lane < lanes(),
                   "switch %d input %zu: flit on lane %d of %d", id_,
                   i, flit.lane, lanes());
        InputState &input = inputs_[laneIdx(i, flit.lane)];
        MDW_ASSERT(input.freeSlots > 0,
                   "switch %d input %zu lane %d: flit arrived with "
                   "full buffer (credit protocol violated)",
                   id_, i, flit.lane);
        --input.freeSlots;
        stats_.flitsIn.inc();
        if (flit.isHead()) {
            MDW_ASSERT(flit.pkt->totalFlits() <= ibParams_.bufferFlits,
                       "packet %llu (%d flits) exceeds input buffer "
                       "(%d flits)",
                       static_cast<unsigned long long>(flit.pkt->id),
                       flit.pkt->totalFlits(), ibParams_.bufferFlits);
            input.packets.push_back(PacketRecord{flit.pkt, 1});
        } else {
            MDW_ASSERT(!input.packets.empty() &&
                           input.packets.back().pkt->id == flit.pkt->id,
                       "switch %d input %zu lane %d: interleaved "
                       "packets on one lane",
                       id_, i, flit.lane);
            ++input.packets.back().arrived;
        }
        if (sim_)
            sim_->noteProgress();
    }
}

void
InputBufferSwitch::fabricateFailedArrivals()
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        if (!ins_[i / static_cast<std::size_t>(lanes())].failed)
            continue;
        InputState &input = inputs_[i];
        if (input.packets.empty())
            continue;
        PacketRecord &rec = input.packets.back();
        if (rec.arrived >= rec.pkt->totalFlits() || input.freeSlots <= 0)
            continue;
        // The link died mid-packet: materialize the missing flits
        // locally (one per cycle, as the wire would have) and poison
        // the id so NICs discard the mangled delivery end-to-end.
        poisonPacket(*rec.pkt);
        --input.freeSlots;
        ++rec.arrived;
        stats_.flitsIn.inc();
        if (sim_)
            sim_->noteProgress();
    }
}

int
InputBufferSwitch::laneCost(const RouteDecision &route, int lane) const
{
    // Busy required output slots on this lane: each one is a stream
    // the new worm would queue behind.
    int cost = 0;
    for (const auto &[port, sub] : route.downBranches) {
        (void)sub;
        if (outputs_[laneIdx(static_cast<std::size_t>(port), lane)]
                .busy())
            ++cost;
    }
    if (route.needsUp()) {
        bool any_free = false;
        for (PortId cand : route.upCandidates) {
            if (!outputs_[laneIdx(static_cast<std::size_t>(cand),
                                  lane)]
                     .busy())
                any_free = true;
        }
        if (!any_free)
            ++cost;
    }
    return cost;
}

void
InputBufferSwitch::decodeHeads(Cycle now)
{
    for (auto &input : inputs_) {
        if (input.decoded || input.packets.empty())
            continue;
        const PacketRecord &rec = input.packets.front();
        if (rec.arrived < rec.pkt->headerFlits)
            continue;

        const RouteDecision route =
            routing_->decode(rec.pkt->dests, params_.variant);
        traceWorm(WormEvent::HeaderDecode, now, *rec.pkt);
        noteUnroutable(route);
        if (route.downBranches.empty() && !route.needsUp()) {
            // Every destination lost its route to the faults: poison
            // the packet and drain it branchless (release() consumes
            // it at arrival speed).
            poisonPacket(*rec.pkt);
            input.branches.clear();
            input.upPending = false;
            input.decoded = true;
            input.released = 0;
            stats_.packetsRouted.inc();
            continue;
        }
        // One lane choice per worm, applied to every replication
        // branch: a multidestination worm must hold the same lane
        // class on all of its output branches, or a branch on a bulk
        // lane could stall the whole worm behind bulk traffic and
        // defeat the class isolation.
        input.outLane = allocLane(*rec.pkt, now, [&](int lane) {
            return laneCost(route, lane);
        });
        input.branches.clear();
        input.branches.reserve(route.downBranches.size() + 1);
        for (const auto &[port, sub] : route.downBranches)
            input.branches.push_back(
                Branch{port, pruneBranch(rec.pkt, sub), 0, false});
        input.upPending = false;
        if (route.needsUp()) {
            if (params_.upPolicy == UpPortPolicy::Deterministic) {
                const PortId up = chooseUpPort(route, *rec.pkt,
                                               input.outLane, nullptr);
                input.branches.push_back(
                    Branch{up, pruneBranch(rec.pkt, route.upDests), 0,
                           false});
            } else {
                input.upPending = true;
                input.upCandidates = route.upCandidates;
                input.upDests = route.upDests;
            }
        }
        input.decoded = true;
        input.released = 0;
        stats_.packetsRouted.inc();
        const std::size_t copies =
            route.downBranches.size() + (route.needsUp() ? 1 : 0);
        if (copies > 1) {
            stats_.replications.inc(copies - 1);
            traceWorm(WormEvent::Replicate, now, *rec.pkt,
                      static_cast<std::int32_t>(copies - 1));
        }
    }
}

void
InputBufferSwitch::arbitrate()
{
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const std::size_t port = o / static_cast<std::size_t>(lanes());
        const int lane = static_cast<int>(
            o % static_cast<std::size_t>(lanes()));
        if (outputs_[o].busy() || !outs_[port].connected())
            continue;
        // Gather inputs requesting this (output, lane): a concrete
        // ungranted branch on this lane, or an unresolved adaptive
        // up-port request whose worm was allocated this lane.
        std::vector<bool> request(inputs_.size(), false);
        std::vector<int> branchOf(inputs_.size(), -1);
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            InputState &input = inputs_[i];
            if (!input.decoded || input.outLane != lane)
                continue;
            for (std::size_t b = 0; b < input.branches.size(); ++b) {
                const Branch &branch = input.branches[b];
                if (!branch.granted && !branch.done() &&
                    branch.port == static_cast<PortId>(port)) {
                    request[i] = true;
                    branchOf[i] = static_cast<int>(b);
                }
            }
            if (!request[i] && input.upPending &&
                std::find(input.upCandidates.begin(),
                          input.upCandidates.end(),
                          static_cast<PortId>(port)) !=
                    input.upCandidates.end()) {
                request[i] = true;
                branchOf[i] = -2; // up request marker
            }
        }

        const int winner = outputArb_[o].grant(request);
        if (winner < 0)
            continue;
        InputState &input = inputs_[static_cast<std::size_t>(winner)];
        int branch_idx = branchOf[static_cast<std::size_t>(winner)];
        if (branch_idx == -2) {
            // Adaptive up request: materialize the up branch here.
            const PacketPtr &pkt = input.packets.front().pkt;
            input.branches.push_back(
                Branch{static_cast<PortId>(port),
                       pruneBranch(pkt, input.upDests), 0, true});
            input.upPending = false;
            branch_idx = static_cast<int>(input.branches.size()) - 1;
        } else {
            input.branches[static_cast<std::size_t>(branch_idx)]
                .granted = true;
        }
        outputs_[o].boundInput = winner;
        outputs_[o].boundBranch = branch_idx;
    }
}

void
InputBufferSwitch::transmit(Cycle now)
{
    for (std::size_t port = 0; port < outs_.size(); ++port) {
        OutPort &out_port = outs_[port];
        // Latency-class lanes are served first, rotating within each
        // class partition (see serviceLane); with one lane this is
        // lane 0 every cycle (the pre-lane iteration order).
        for (int k = 0; k < lanes(); ++k) {
            const int lane = serviceLane(now, k);
            OutputState &output = outputs_[laneIdx(port, lane)];
            if (!output.busy())
                continue;
            InputState &input =
                inputs_[static_cast<std::size_t>(output.boundInput)];
            Branch &branch =
                input.branches[static_cast<std::size_t>(
                    output.boundBranch)];
            const PacketRecord &rec = input.packets.front();
            MDW_ASSERT(rec.pkt->id == branch.pkt->id,
                       "output %zu bound to a non-head packet", port);

            if (branch.sent >= rec.arrived)
                continue; // flit not yet in the buffer
            if (out_port.failed) {
                // Tombstone sink: swallow the flit at wire speed so
                // the buffer slot recycles and sibling branches keep
                // going.
                ++branch.sent;
                noteTombstone();
                if (sim_)
                    sim_->noteProgress();
                if (branch.done()) {
                    output.boundInput = -1;
                    output.boundBranch = -1;
                }
                continue;
            }
            if (out_port.credits[static_cast<std::size_t>(lane)] < 1 ||
                portThrottled(out_port, now))
                continue;
            if (out_port.out->busy(now)) {
                // The physical link already carried another lane's
                // flit this cycle; this lane was otherwise ready.
                if (lanes() > 1 &&
                    !(branch.sent == 0 &&
                      !canStartPacket(out_port, lane, *branch.pkt)))
                    noteLaneStall(now, *branch.pkt, port);
                continue;
            }
            if (branch.sent == 0 &&
                !canStartPacket(out_port, lane, *branch.pkt)) {
                stats_.reservationStallCycles.inc();
                traceWorm(WormEvent::ReserveStall, now, *branch.pkt,
                          static_cast<std::int32_t>(port));
                continue;
            }
            out_port.out->send(Flit{branch.pkt, branch.sent, lane},
                               now);
            ++branch.sent;
            --out_port.credits[static_cast<std::size_t>(lane)];
            notePortSend(port, lane);
            if (sim_)
                sim_->noteProgress();
            if (branch.done()) {
                traceWorm(WormEvent::TailDrain, now, *branch.pkt,
                          static_cast<std::int32_t>(port));
                output.boundInput = -1;
                output.boundBranch = -1;
            }
        }
    }
}

void
InputBufferSwitch::arbitrateSync()
{
    // All-or-nothing acquisition (no hold-and-wait): an input gets
    // every output (port, lane) slot its head packet needs in one
    // shot, or none. Inputs are served in round-robin order for
    // fairness.
    std::vector<bool> ready(inputs_.size(), false);
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &input = inputs_[i];
        if (!input.decoded)
            continue;
        bool wants = input.upPending;
        for (const Branch &branch : input.branches)
            wants = wants || !branch.granted;
        ready[i] = wants;
    }

    // Try every waiting input once, rotating priority.
    for (std::size_t attempt = 0; attempt < inputs_.size(); ++attempt) {
        const int i = syncArb_.grant(ready);
        if (i < 0)
            return;
        ready[static_cast<std::size_t>(i)] = false;
        InputState &input = inputs_[static_cast<std::size_t>(i)];
        const int lane = input.outLane;

        // Collect the full port set: ungranted branches plus, if
        // unresolved, one free up candidate — all on the worm's lane.
        std::vector<PortId> needed;
        for (const Branch &branch : input.branches) {
            if (!branch.granted)
                needed.push_back(branch.port);
        }
        PortId up_choice = kInvalidPort;
        if (input.upPending) {
            for (PortId cand : input.upCandidates) {
                if (!outputs_[laneIdx(static_cast<std::size_t>(cand),
                                      lane)]
                         .busy()) {
                    up_choice = cand;
                    break;
                }
            }
            if (up_choice == kInvalidPort)
                continue; // no free up port: acquire nothing
            needed.push_back(up_choice);
        }

        bool all_free = true;
        for (PortId port : needed) {
            if (outputs_[laneIdx(static_cast<std::size_t>(port), lane)]
                    .busy()) {
                all_free = false;
                break;
            }
        }
        if (!all_free || needed.empty())
            continue;

        // Commit: bind every port.
        if (up_choice != kInvalidPort) {
            const PacketPtr &pkt = input.packets.front().pkt;
            input.branches.push_back(Branch{
                up_choice, pruneBranch(pkt, input.upDests), 0, false});
            input.upPending = false;
        }
        for (std::size_t b = 0; b < input.branches.size(); ++b) {
            Branch &branch = input.branches[b];
            if (branch.granted)
                continue;
            branch.granted = true;
            OutputState &output = outputs_[laneIdx(
                static_cast<std::size_t>(branch.port), lane)];
            output.boundInput = i;
            output.boundBranch = static_cast<int>(b);
        }
    }
}

void
InputBufferSwitch::transmitSync(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!fullyGranted(input))
            continue;
        const PacketRecord &rec = input.packets.front();
        const int lane = input.outLane;
        const int sent = input.branches.front().sent;
        if (sent >= rec.arrived)
            continue;
        if (sent >= rec.pkt->totalFlits())
            continue;

        // Lock-step: the flit moves only if EVERY branch can take it
        // this cycle (the synchronous-replication feedback).
        bool all_can = true;
        for (const Branch &branch : input.branches) {
            MDW_ASSERT(branch.sent == sent,
                       "synchronous branches diverged (%d vs %d)",
                       branch.sent, sent);
            OutPort &port =
                outs_[static_cast<std::size_t>(branch.port)];
            if (port.failed)
                continue; // tombstone sink always accepts
            if (port.credits[static_cast<std::size_t>(lane)] < 1 ||
                port.out->busy(now) || portThrottled(port, now) ||
                (sent == 0 &&
                 !canStartPacket(port, lane, *branch.pkt))) {
                all_can = false;
                break;
            }
        }
        if (!all_can) {
            if (sent == 0) {
                stats_.reservationStallCycles.inc();
                traceWorm(WormEvent::ReserveStall, now, *rec.pkt);
            }
            continue;
        }

        bool done = false;
        for (Branch &branch : input.branches) {
            OutPort &port =
                outs_[static_cast<std::size_t>(branch.port)];
            if (port.failed) {
                ++branch.sent;
                noteTombstone();
                done = branch.done();
                continue;
            }
            port.out->send(Flit{branch.pkt, branch.sent, lane}, now);
            ++branch.sent;
            --port.credits[static_cast<std::size_t>(lane)];
            notePortSend(static_cast<std::size_t>(branch.port), lane);
            done = branch.done();
        }
        if (sim_)
            sim_->noteProgress();
        if (done) {
            traceWorm(WormEvent::TailDrain, now, *rec.pkt);
            for (const Branch &branch : input.branches) {
                OutputState &output = outputs_[laneIdx(
                    static_cast<std::size_t>(branch.port), lane)];
                output.boundInput = -1;
                output.boundBranch = -1;
            }
        }
    }
}

void
InputBufferSwitch::release(Cycle now)
{
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        InputState &input = inputs_[i];
        if (!input.decoded || input.packets.empty())
            continue;
        const PacketRecord &rec = input.packets.front();
        const int total = rec.pkt->totalFlits();

        int min_sent = total;
        if (input.upPending)
            min_sent = 0;
        else if (input.branches.empty())
            min_sent = rec.arrived; // tombstoned head: drain on arrival
        for (const Branch &branch : input.branches)
            min_sent = std::min(min_sent, branch.sent);

        if (min_sent > input.released) {
            const int freed = min_sent - input.released;
            input.released = min_sent;
            input.freeSlots += freed;
            const std::size_t port =
                i / static_cast<std::size_t>(lanes());
            const int lane = static_cast<int>(
                i % static_cast<std::size_t>(lanes()));
            if (ins_[port].creditOut)
                ins_[port].creditOut->send(freed, now, lane);
        }

        if (input.released == total) {
            MDW_ASSERT(rec.arrived == total,
                       "released more flits than arrived");
            input.packets.pop_front();
            input.decoded = false;
            input.branches.clear();
            input.upPending = false;
            input.released = 0;
        }
    }
}

void
InputBufferSwitch::attachTelemetry(Telemetry &telemetry)
{
    SwitchBase::attachTelemetry(telemetry);
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix =
        "switch." + std::to_string(id_) + ".";
    reg.registerIntGauge(prefix + "arb.output_grants", [this] {
        std::uint64_t total = 0;
        for (const RoundRobinArbiter &arb : outputArb_)
            total += arb.totalGrants();
        return total;
    });
    reg.registerIntGauge(prefix + "arb.sync_grants",
                         [this] { return syncArb_.totalGrants(); });
}

bool
InputBufferSwitch::quiescent(std::string *why) const
{
    if (!SwitchBase::quiescent(why))
        return false;
    const auto complain = [&](const std::string &what) {
        if (why)
            *why += name() + ": " + what + "; ";
        return false;
    };
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        const InputState &input = inputs_[i];
        if (!input.packets.empty())
            return complain("input " + std::to_string(i) + " holds " +
                            std::to_string(input.packets.size()) +
                            " packet(s)");
        if (input.freeSlots != ibParams_.bufferFlits)
            return complain("input " + std::to_string(i) +
                            " buffer not fully drained");
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (outputs_[o].busy())
            return complain("output " + std::to_string(o) +
                            " still bound to a branch");
    }
    return true;
}

} // namespace mdw
