/**
 * @file
 * In-switch barrier combining (the paper's stated future work,
 * developed in the authors' companion IPPS'97 reliable-hardware-
 * barrier paper, reference [34]).
 *
 * A barrier group is mapped onto a combining tree over the switches:
 * every member NIC emits a tiny BarrierArrive token; a switch on the
 * tree absorbs tokens from its configured set of arrival ports and,
 * once all have shown up, emits a single combined token toward its
 * tree parent. The root switch, instead of forwarding, originates
 * the release — an ordinary multidestination worm to all members —
 * so the gather costs one token per tree hop instead of one
 * software message per member.
 *
 * This header holds the per-switch combining state machine; the
 * planner that computes the tree lives in core/hw_barrier.hh (it
 * needs the whole topology), and the CentralBufferSwitch hosts the
 * unit (the SP-Switch-style architecture the companion paper
 * targets).
 */

#ifndef MDW_SWITCH_BARRIER_UNIT_HH
#define MDW_SWITCH_BARRIER_UNIT_HH

#include <map>
#include <set>
#include <vector>

#include "message/packet.hh"
#include "sim/types.hh"

namespace mdw {

/** Combining-tree role of one switch for one barrier group. */
struct BarrierSwitchEntry
{
    /** Input ports an arrival token is expected from each round. */
    std::vector<PortId> expectedPorts;
    /** True at the combining root (emits the release multicast). */
    bool isRoot = false;
    /** Tree parent's port (up port token is forwarded on). */
    PortId upPort = kInvalidPort;
};

/** Per-switch barrier combining state for all groups. */
class BarrierUnit
{
  public:
    /** What the unit asks the switch to emit after combining. */
    struct Emit
    {
        /** Group whose combining completed. */
        int group = -1;
        /** True: originate the release; false: forward one token. */
        bool release = false;
        /** Output port for a forwarded token. */
        PortId upPort = kInvalidPort;
    };

    /** Install (or replace) a group's combining role. */
    void configure(int group, BarrierSwitchEntry entry);

    /** True if this switch participates in @p group. */
    bool participates(int group) const;

    /**
     * Absorb an arrival token for @p group seen on input @p port.
     * Returns an Emit action when the combining set completed (the
     * state resets for the next round), or std::nullopt-like
     * (group = -1) otherwise.
     */
    Emit onArrive(int group, PortId port);

    /** Number of configured groups (tests). */
    std::size_t groupCount() const { return groups_.size(); }

    /** Tokens currently combined and waiting for peers (tests). */
    std::size_t pendingArrivals(int group) const;

  private:
    struct GroupState
    {
        BarrierSwitchEntry entry;
        std::set<PortId> arrived;
    };

    std::map<int, GroupState> groups_;
};

} // namespace mdw

#endif // MDW_SWITCH_BARRIER_UNIT_HH
