/**
 * @file
 * Central-buffer-based switch architecture (paper Section 4),
 * modeled on the IBM SP2 / SP Switch.
 *
 * Each input port has a small FIFO. A unicast packet whose output
 * port is idle cuts through a bypass crossbar; otherwise its flits
 * are written into the shared central queue (in chunks) and linked
 * onto the target output port's service queue. A multidestination
 * worm always flows through the central queue: it is accepted only
 * when enough chunks for the *whole packet* can be reserved, stored
 * once, and read out independently by one reader per requested
 * output port (asynchronous replication; chunks are recycled when
 * the slowest reader passes them).
 *
 * Bandwidth model (SP-Switch register-pipeline flavor): per cycle at
 * most one chunk moves from an input FIFO into the central queue and
 * at most one chunk moves from the central queue into an output
 * FIFO; each output port transmits one flit per cycle downstream.
 */

#ifndef MDW_SWITCH_CENTRAL_BUFFER_SWITCH_HH
#define MDW_SWITCH_CENTRAL_BUFFER_SWITCH_HH

#include <cstdio>
#include <deque>

#include <functional>

#include "switch/arbiter.hh"
#include "switch/barrier_unit.hh"
#include "switch/central_queue.hh"
#include "switch/switch_base.hh"

namespace mdw {

/** Parameters of the central-buffer architecture. */
struct CbParams
{
    /** Central queue storage in chunks. */
    int cqChunks = 128;
    /** Flits per chunk. */
    int chunkFlits = 8;
    /**
     * Input FIFO depth in flits. Must hold the largest routing
     * header (decode needs the full header); the network builder
     * raises it if necessary.
     */
    int inputFifoFlits = 16;
    /** Per-output staging FIFO depth in flits. */
    int outputFifoFlits = 16;
    /**
     * Largest packet (header + payload) the system can produce, in
     * flits; sizes the up-phase reservation headroom (see
     * CqParams::upPhaseHeadroom). Set by the network builder; 0
     * disables the partition (single-stage systems have no up
     * phase).
     */
    int maxPacketFlits = 0;
};

/** SP2-style central-buffer switch with multidestination support. */
class CentralBufferSwitch : public SwitchBase
{
  public:
    CentralBufferSwitch(std::string name, SwitchId id,
                        const SwitchRouting *routing,
                        const SwitchParams &params,
                        const CbParams &cbParams);

    void step(Cycle now) override;

    Cycle nextWork(Cycle now) override;

    ReceivePolicy
    receivePolicy(PortId) const override
    {
        return ReceivePolicy{cbParams_.inputFifoFlits, false};
    }

    /** Chunks currently occupied in the central queue (tests). */
    int cqUsedChunks() const { return cq_.usedChunks(); }
    /** Resident packets in the central queue (tests). */
    std::size_t cqEntries() const { return cq_.entryCount(); }
    /** Flits buffered at input @p port (tests). */
    int inputOccupancy(PortId port) const;
    /** Time-averaged central-queue occupancy, chunks. */
    double avgCqChunks(Cycle now) const { return cqOcc_.average(now); }

    /** Print the full internal state (deadlock diagnosis). */
    void dumpState(FILE *out) const;

    bool quiescent(std::string *why) const override;

    void attachTelemetry(Telemetry &telemetry) override;

    // --- Hardware barrier support (companion IPPS'97 scheme) -------

    /** Builds an id-stamped packet from a descriptor (manager hook). */
    using MakePacket = std::function<PacketPtr(PacketDesc)>;
    /** Builds the release descriptor for a completed group (root). */
    using ReleaseFactory = std::function<PacketDesc(int group)>;

    /** Install the barrier hooks (called by HwBarrierManager). */
    void setBarrierHooks(MakePacket makePacket,
                         ReleaseFactory releaseFactory);

    /** Install this switch's combining role for @p group. */
    void configureBarrier(int group, BarrierSwitchEntry entry);

    /** Barrier tokens absorbed so far (tests). */
    std::uint64_t barrierTokensCombined() const
    {
        return barrierTokens_.value();
    }

  private:
    /** How the head packet of an input is being served. */
    enum class InMode { Deciding, Bypass, CentralQueue, Tombstone };

    struct PacketRecord
    {
        PacketPtr pkt;
        int arrived = 0;
    };

    /**
     * Per-(input port, lane) FIFO state, laneIdx-flattened: each lane
     * owns an independent FIFO of the full advertised window.
     */
    struct InputState
    {
        std::deque<PacketRecord> packets;
        int freeSlots = 0;
        InMode mode = InMode::Deciding;
        /** Head-packet flits taken out of the FIFO so far. */
        int consumed = 0;
        /** Output lane the head packet was allocated at decode; every
         *  replication branch is queued on it (branch-consistent lane
         *  reservation). */
        int outLane = 0;
        /** Bypass: target output and pruned descriptor. */
        PortId bypassPort = kInvalidPort;
        PacketPtr bypassPkt;
        /** Central-queue mode: entry being written. */
        CentralQueue::EntryId entry = CentralQueue::kNoEntry;
    };

    /** One output port's claim on a central-queue entry. */
    struct QueueItem
    {
        CentralQueue::EntryId entry = CentralQueue::kNoEntry;
        int reader = 0;
        PacketPtr branchPkt;
    };

    /** Per-(output port, lane) service state, laneIdx-flattened. The
     *  bypass input is a flattened (port, lane) index as well; all
     *  lanes of one port share the physical link downstream. */
    struct OutputState
    {
        enum class Mode { Idle, Bypass, Stream } mode = Mode::Idle;
        int bypassInput = -1;
        QueueItem current;
        /** Flits fetched from the CQ but not yet sent downstream. */
        int fifoFlits = 0;
        /** Flits of the current stream fetched from the CQ. */
        int readSeq = 0;
        /** Flits of the current stream sent downstream. */
        int sentSeq = 0;
        std::deque<QueueItem> queue;

        bool idle() const { return mode == Mode::Idle; }
    };

    void intake(Cycle now);
    /** Complete packets cut off by a failed input link (fault). */
    void fabricateFailedArrivals(Cycle now);
    /** Drain inputs whose head packet has nowhere to go (fault). */
    void drainTombstones(Cycle now);
    void decide(Cycle now);
    /** Consume an arrival token at input @p i and maybe emit. */
    void consumeBarrierToken(std::size_t i, Cycle now);
    /** Try to inject pending barrier emissions into the queue. */
    void processBarrierEmissions(Cycle now);
    void decideUnicast(std::size_t input, const RouteDecision &route,
                       Cycle now);
    void decideMulticast(std::size_t input, const RouteDecision &route,
                         Cycle now);
    void bypassTransmit(Cycle now);
    void cqWrite(Cycle now);
    void activateStreams();
    void cqRead(Cycle now);
    void streamTransmit(Cycle now);
    void finishHeadPacket(InputState &input);

    /** Queue-length cost used by adaptive up-port choice. */
    int outputBacklog(PortId port, int lane) const;
    /** Adaptive lane cost: backlog of the required outputs on @p lane. */
    int laneCost(const RouteDecision &route, int lane) const;

    /** Inputs currently stalled on a failed chunk reservation. */
    int reservationWaiters_ = 0;

    CbParams cbParams_;
    CentralQueue cq_;
    BarrierUnit barrier_;
    MakePacket makePacket_;
    ReleaseFactory releaseFactory_;
    std::deque<BarrierUnit::Emit> barrierEmissions_;
    Counter barrierTokens_;
    /** laneIdx-flattened: (port, lane) for ports 0..radix. */
    std::vector<InputState> inputs_;
    std::vector<OutputState> outputs_;
    RoundRobinArbiter writeArb_;
    RoundRobinArbiter readArb_;
    TimeAverage cqOcc_;
};

} // namespace mdw

#endif // MDW_SWITCH_CENTRAL_BUFFER_SWITCH_HH
