#include "switch/switch_base.hh"

#include <functional>

#include "sim/system.hh"

namespace mdw {

const char *
toString(ReplicationMode mode)
{
    switch (mode) {
      case ReplicationMode::Asynchronous:
        return "asynchronous";
      case ReplicationMode::Synchronous:
        return "synchronous";
    }
    return "?";
}

SwitchBase::SwitchBase(std::string name, SwitchId id,
                       const SwitchRouting *routing,
                       const SwitchParams &params)
    : Component(std::move(name)), id_(id), routing_(routing),
      params_(params),
      ins_(static_cast<std::size_t>(routing->radix())),
      outs_(static_cast<std::size_t>(routing->radix())),
      portTx_(static_cast<std::size_t>(routing->radix())),
      laneTx_(static_cast<std::size_t>(routing->radix()) *
              static_cast<std::size_t>(params.lanes)),
      rng_(Rng(params.seed).fork(static_cast<std::uint64_t>(id) + 17))
{
    MDW_ASSERT(routing != nullptr, "switch %d without routing", id);
    MDW_ASSERT(params.lanes >= 1, "switch %d with %d lanes", id,
               params.lanes);
}

void
SwitchBase::connectIn(PortId port, Channel<Flit> *in,
                      CreditChannel *creditOut)
{
    auto &p = ins_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d input %d connected twice",
               id_, port);
    p.in = in;
    p.creditOut = creditOut;
    // Arriving flits must be able to rouse a sleeping switch.
    in->setWakeSink(this);
}

void
SwitchBase::connectOut(PortId port, Channel<Flit> *out,
                       CreditChannel *creditIn,
                       const ReceivePolicy &policy)
{
    auto &p = outs_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d output %d connected twice",
               id_, port);
    p.out = out;
    p.creditIn = creditIn;
    // Every lane gets the receiver's full advertised window: the
    // downstream per-lane buffers are independent, so total buffering
    // scales with the lane count (per the multi-lane MIN model).
    p.credits.assign(static_cast<std::size_t>(params_.lanes),
                     policy.window);
    p.initialCredits = policy.window;
    p.mcastWholePacket = policy.mcastWholePacket;
    // Returning credits must be collected promptly even while idle,
    // or quiescence (credits back home) would stall under the fast
    // path.
    creditIn->setWakeSink(this);
}

Cycle
SwitchBase::earliestLinkArrival() const
{
    Cycle next = kNoCycle;
    for (const InPort &p : ins_) {
        if (p.in != nullptr && p.in->nextArrival() < next)
            next = p.in->nextArrival();
    }
    for (const OutPort &p : outs_) {
        if (p.creditIn != nullptr && p.creditIn->nextArrival() < next)
            next = p.creditIn->nextArrival();
    }
    return next;
}

void
SwitchBase::setRouting(const SwitchRouting *routing)
{
    MDW_ASSERT(routing != nullptr, "switch %d rerouted to null", id_);
    MDW_ASSERT(routing->radix() == routing_->radix(),
               "switch %d rerouted to a different radix", id_);
    routing_ = routing;
}

void
SwitchBase::failInPort(PortId port)
{
    ins_.at(static_cast<std::size_t>(port)).failed = true;
    // The tombstone/phantom-completion paths run in step(); make sure
    // a sleeping switch notices the state change.
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
SwitchBase::failOutPort(PortId port)
{
    outs_.at(static_cast<std::size_t>(port)).failed = true;
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
SwitchBase::degradeOutPort(PortId port, int factor)
{
    MDW_ASSERT(factor >= 1, "degrade factor %d < 1", factor);
    outs_.at(static_cast<std::size_t>(port)).degrade = factor;
}

void
SwitchBase::noteUnroutable(const RouteDecision &route)
{
    if (route.unroutable.empty())
        return;
    MDW_ASSERT(poisoned_ != nullptr,
               "switch %d: unroutable destinations on an intact "
               "network",
               id_);
    stats_.unroutableDests.inc(route.unroutable.count());
}

bool
SwitchBase::quiescent(std::string *why) const
{
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        const OutPort &out = outs_[p];
        if (!out.connected() || out.failed)
            continue;
        for (int l = 0; l < params_.lanes; ++l) {
            const int held =
                out.credits[static_cast<std::size_t>(l)];
            if (held != out.initialCredits) {
                if (why) {
                    *why += "switch " + std::to_string(id_) +
                            " output " + std::to_string(p) + " lane " +
                            std::to_string(l) + " holds " +
                            std::to_string(out.initialCredits - held) +
                            " outstanding credits; ";
                }
                return false;
            }
        }
    }
    return true;
}

std::uint64_t
SwitchBase::portTxFlits(PortId port) const
{
    return portTx_.at(static_cast<std::size_t>(port)).value();
}

bool
SwitchBase::outConnected(PortId port) const
{
    return outs_.at(static_cast<std::size_t>(port)).connected();
}

void
SwitchBase::notePortSend(std::size_t port, int lane)
{
    stats_.flitsOut.inc();
    portTx_[port].inc();
    laneTx_[laneIdx(port, lane)].inc();
}

void
SwitchBase::collectCredits(Cycle now)
{
    for (auto &p : outs_) {
        if (!p.creditIn)
            continue;
        // A failed output's credits are meaningless (the tombstone
        // sink never spends them); discard so the channel drains and
        // the quiescence check sees every credit channel empty.
        if (p.failed)
            (void)p.creditIn->receive(now);
        else
            (void)p.creditIn->receiveByLane(now, p.credits);
    }
}

bool
SwitchBase::canStartPacket(const OutPort &port, int lane,
                           const PacketDesc &pkt) const
{
    if (port.failed)
        return true; // Tombstone sink: accepts anything, instantly.
    const int credits = port.credits[static_cast<std::size_t>(lane)];
    if (port.mcastWholePacket && pkt.kind == PacketKind::HwMulticast)
        return credits >= pkt.totalFlits();
    return credits >= 1;
}

int
SwitchBase::serviceLane(Cycle now, int slot) const
{
    const int total = params_.lanes;
    if (total == 1)
        return 0;
    // Class 1 owns the upper partition and is served first.
    const int base = laneClassBase(total, 1);
    const int latency = total - base;
    if (slot < latency)
        return base +
               static_cast<int>((now + static_cast<Cycle>(slot)) %
                                static_cast<Cycle>(latency));
    slot -= latency;
    return static_cast<int>((now + static_cast<Cycle>(slot)) %
                            static_cast<Cycle>(base));
}

int
SwitchBase::allocLane(const PacketDesc &pkt, Cycle now,
                      const std::function<int(int)> &laneCost) const
{
    const int base = laneClassBase(params_.lanes, pkt.trafficClass);
    int lane = base;
    if (params_.laneAlloc == LaneAlloc::Adaptive && laneCost) {
        // Cheapest lane of the class partition; ties go to the
        // lowest lane so the choice is deterministic.
        const int size =
            laneClassSize(params_.lanes, pkt.trafficClass);
        int best_cost = laneCost(base);
        for (int l = base + 1; l < base + size; ++l) {
            const int cost = laneCost(l);
            if (cost < best_cost) {
                best_cost = cost;
                lane = l;
            }
        }
    }
    if (params_.lanes > 1)
        traceWorm(WormEvent::LaneAlloc, now, pkt,
                  static_cast<std::int32_t>(lane));
    return lane;
}

void
SwitchBase::attachTelemetry(Telemetry &telemetry)
{
    tracer_ = telemetry.tracer();
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix =
        "switch." + std::to_string(id_) + ".";
    reg.registerCounter(prefix + "flits_in", &stats_.flitsIn);
    reg.registerCounter(prefix + "flits_out", &stats_.flitsOut);
    reg.registerCounter(prefix + "packets_routed",
                        &stats_.packetsRouted);
    reg.registerCounter(prefix + "replications",
                        &stats_.replications);
    reg.registerCounter(prefix + "reservation_stall_cycles",
                        &stats_.reservationStallCycles);
    reg.registerCounter(prefix + "tombstoned_flits",
                        &stats_.tombstonedFlits);
    reg.registerCounter(prefix + "unroutable_dests",
                        &stats_.unroutableDests);
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        if (!outs_[p].connected())
            continue;
        reg.registerCounter(prefix + "port." + std::to_string(p) +
                                ".tx_flits",
                            &portTx_[p]);
    }
    if (params_.lanes > 1) {
        reg.registerCounter(prefix + "lane.stall_cycles",
                            &stats_.laneStallCycles);
        reg.registerTimeAverage(prefix + "lane.occupancy_flits",
                                &laneOcc_, [this] {
                                    return sim_ ? sim_->now()
                                                : Cycle{0};
                                });
        for (std::size_t p = 0; p < outs_.size(); ++p) {
            if (!outs_[p].connected())
                continue;
            for (int l = 0; l < params_.lanes; ++l) {
                reg.registerCounter(
                    prefix + "port." + std::to_string(p) + ".lane." +
                        std::to_string(l) + ".tx_flits",
                    &laneTx_[laneIdx(p, l)]);
            }
        }
    }
}

PortId
SwitchBase::chooseUpPort(const RouteDecision &route,
                         const PacketDesc &pkt, int lane,
                         const std::function<bool(PortId)> &freeOk) const
{
    MDW_ASSERT(!route.upCandidates.empty(), "no up candidates");
    const auto &cands = route.upCandidates;
    const std::size_t n = cands.size();
    // Deterministic default: spread by source and packet id so
    // distinct flows take distinct up links; the packet's lane
    // rotates the choice (rotateUpCandidate) so each lane's flows
    // prefer a different up link. Lane 0 reduces to the single-lane
    // hash exactly.
    const std::size_t hash = rotateUpCandidate(
        (static_cast<std::size_t>(pkt.src) * 0x9e3779b9u +
         static_cast<std::size_t>(pkt.id) * 0x85ebca6bu) %
            n,
        lane, n);
    if (params_.upPolicy == UpPortPolicy::Deterministic || !freeOk)
        return cands[hash];
    // Adaptive: first available candidate scanning from the hash
    // position (ties broken by the hash so load still spreads).
    for (std::size_t i = 0; i < n; ++i) {
        const PortId cand = cands[(hash + i) % n];
        if (freeOk(cand))
            return cand;
    }
    return cands[hash];
}

} // namespace mdw
