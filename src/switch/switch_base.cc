#include "switch/switch_base.hh"

#include <functional>

#include "sim/system.hh"

namespace mdw {

const char *
toString(ReplicationMode mode)
{
    switch (mode) {
      case ReplicationMode::Asynchronous:
        return "asynchronous";
      case ReplicationMode::Synchronous:
        return "synchronous";
    }
    return "?";
}

SwitchBase::SwitchBase(std::string name, SwitchId id,
                       const SwitchRouting *routing,
                       const SwitchParams &params)
    : Component(std::move(name)), id_(id), routing_(routing),
      params_(params),
      ins_(static_cast<std::size_t>(routing->radix())),
      outs_(static_cast<std::size_t>(routing->radix())),
      portTx_(static_cast<std::size_t>(routing->radix())),
      rng_(Rng(params.seed).fork(static_cast<std::uint64_t>(id) + 17))
{
    MDW_ASSERT(routing != nullptr, "switch %d without routing", id);
}

void
SwitchBase::connectIn(PortId port, Channel<Flit> *in,
                      CreditChannel *creditOut)
{
    auto &p = ins_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d input %d connected twice",
               id_, port);
    p.in = in;
    p.creditOut = creditOut;
    // Arriving flits must be able to rouse a sleeping switch.
    in->setWakeSink(this);
}

void
SwitchBase::connectOut(PortId port, Channel<Flit> *out,
                       CreditChannel *creditIn,
                       const ReceivePolicy &policy)
{
    auto &p = outs_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d output %d connected twice",
               id_, port);
    p.out = out;
    p.creditIn = creditIn;
    p.credits = policy.window;
    p.initialCredits = policy.window;
    p.mcastWholePacket = policy.mcastWholePacket;
    // Returning credits must be collected promptly even while idle,
    // or quiescence (credits back home) would stall under the fast
    // path.
    creditIn->setWakeSink(this);
}

Cycle
SwitchBase::earliestLinkArrival() const
{
    Cycle next = kNoCycle;
    for (const InPort &p : ins_) {
        if (p.in != nullptr && p.in->nextArrival() < next)
            next = p.in->nextArrival();
    }
    for (const OutPort &p : outs_) {
        if (p.creditIn != nullptr && p.creditIn->nextArrival() < next)
            next = p.creditIn->nextArrival();
    }
    return next;
}

void
SwitchBase::setRouting(const SwitchRouting *routing)
{
    MDW_ASSERT(routing != nullptr, "switch %d rerouted to null", id_);
    MDW_ASSERT(routing->radix() == routing_->radix(),
               "switch %d rerouted to a different radix", id_);
    routing_ = routing;
}

void
SwitchBase::failInPort(PortId port)
{
    ins_.at(static_cast<std::size_t>(port)).failed = true;
    // The tombstone/phantom-completion paths run in step(); make sure
    // a sleeping switch notices the state change.
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
SwitchBase::failOutPort(PortId port)
{
    outs_.at(static_cast<std::size_t>(port)).failed = true;
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
SwitchBase::degradeOutPort(PortId port, int factor)
{
    MDW_ASSERT(factor >= 1, "degrade factor %d < 1", factor);
    outs_.at(static_cast<std::size_t>(port)).degrade = factor;
}

void
SwitchBase::noteUnroutable(const RouteDecision &route)
{
    if (route.unroutable.empty())
        return;
    MDW_ASSERT(poisoned_ != nullptr,
               "switch %d: unroutable destinations on an intact "
               "network",
               id_);
    stats_.unroutableDests.inc(route.unroutable.count());
}

bool
SwitchBase::quiescent(std::string *why) const
{
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        const OutPort &out = outs_[p];
        if (!out.connected() || out.failed)
            continue;
        if (out.credits != out.initialCredits) {
            if (why) {
                *why += "switch " + std::to_string(id_) + " output " +
                        std::to_string(p) + " holds " +
                        std::to_string(out.initialCredits - out.credits) +
                        " outstanding credits; ";
            }
            return false;
        }
    }
    return true;
}

std::uint64_t
SwitchBase::portTxFlits(PortId port) const
{
    return portTx_.at(static_cast<std::size_t>(port)).value();
}

bool
SwitchBase::outConnected(PortId port) const
{
    return outs_.at(static_cast<std::size_t>(port)).connected();
}

void
SwitchBase::notePortSend(std::size_t port)
{
    stats_.flitsOut.inc();
    portTx_[port].inc();
}

void
SwitchBase::collectCredits(Cycle now)
{
    for (auto &p : outs_) {
        if (!p.creditIn)
            continue;
        const int arrived = p.creditIn->receive(now);
        // A failed output's credits are meaningless (the tombstone
        // sink never spends them); discard so the channel drains and
        // the quiescence check sees every credit channel empty.
        if (!p.failed)
            p.credits += arrived;
    }
}

bool
SwitchBase::canStartPacket(const OutPort &port,
                           const PacketDesc &pkt) const
{
    if (port.failed)
        return true; // Tombstone sink: accepts anything, instantly.
    if (port.mcastWholePacket && pkt.kind == PacketKind::HwMulticast)
        return port.credits >= pkt.totalFlits();
    return port.credits >= 1;
}

void
SwitchBase::attachTelemetry(Telemetry &telemetry)
{
    tracer_ = telemetry.tracer();
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix =
        "switch." + std::to_string(id_) + ".";
    reg.registerCounter(prefix + "flits_in", &stats_.flitsIn);
    reg.registerCounter(prefix + "flits_out", &stats_.flitsOut);
    reg.registerCounter(prefix + "packets_routed",
                        &stats_.packetsRouted);
    reg.registerCounter(prefix + "replications",
                        &stats_.replications);
    reg.registerCounter(prefix + "reservation_stall_cycles",
                        &stats_.reservationStallCycles);
    reg.registerCounter(prefix + "tombstoned_flits",
                        &stats_.tombstonedFlits);
    reg.registerCounter(prefix + "unroutable_dests",
                        &stats_.unroutableDests);
    for (std::size_t p = 0; p < outs_.size(); ++p) {
        if (!outs_[p].connected())
            continue;
        reg.registerCounter(prefix + "port." + std::to_string(p) +
                                ".tx_flits",
                            &portTx_[p]);
    }
}

PortId
SwitchBase::chooseUpPort(const RouteDecision &route,
                         const PacketDesc &pkt,
                         const std::function<bool(PortId)> &freeOk) const
{
    MDW_ASSERT(!route.upCandidates.empty(), "no up candidates");
    const auto &cands = route.upCandidates;
    const std::size_t n = cands.size();
    // Deterministic default: spread by source and packet id so
    // distinct flows take distinct up links.
    const std::size_t hash =
        (static_cast<std::size_t>(pkt.src) * 0x9e3779b9u +
         static_cast<std::size_t>(pkt.id) * 0x85ebca6bu) %
        n;
    if (params_.upPolicy == UpPortPolicy::Deterministic || !freeOk)
        return cands[hash];
    // Adaptive: first available candidate scanning from the hash
    // position (ties broken by the hash so load still spreads).
    for (std::size_t i = 0; i < n; ++i) {
        const PortId cand = cands[(hash + i) % n];
        if (freeOk(cand))
            return cand;
    }
    return cands[hash];
}

} // namespace mdw
