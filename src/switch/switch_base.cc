#include "switch/switch_base.hh"

#include <functional>

namespace mdw {

const char *
toString(ReplicationMode mode)
{
    switch (mode) {
      case ReplicationMode::Asynchronous:
        return "asynchronous";
      case ReplicationMode::Synchronous:
        return "synchronous";
    }
    return "?";
}

SwitchBase::SwitchBase(std::string name, SwitchId id,
                       const SwitchRouting *routing,
                       const SwitchParams &params)
    : Component(std::move(name)), id_(id), routing_(routing),
      params_(params),
      ins_(static_cast<std::size_t>(routing->radix())),
      outs_(static_cast<std::size_t>(routing->radix())),
      portTx_(static_cast<std::size_t>(routing->radix())),
      rng_(Rng(params.seed).fork(static_cast<std::uint64_t>(id) + 17))
{
    MDW_ASSERT(routing != nullptr, "switch %d without routing", id);
}

void
SwitchBase::connectIn(PortId port, Channel<Flit> *in,
                      CreditChannel *creditOut)
{
    auto &p = ins_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d input %d connected twice",
               id_, port);
    p.in = in;
    p.creditOut = creditOut;
}

void
SwitchBase::connectOut(PortId port, Channel<Flit> *out,
                       CreditChannel *creditIn,
                       const ReceivePolicy &policy)
{
    auto &p = outs_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(!p.connected(), "switch %d output %d connected twice",
               id_, port);
    p.out = out;
    p.creditIn = creditIn;
    p.credits = policy.window;
    p.mcastWholePacket = policy.mcastWholePacket;
}

std::uint64_t
SwitchBase::portTxFlits(PortId port) const
{
    return portTx_.at(static_cast<std::size_t>(port)).value();
}

bool
SwitchBase::outConnected(PortId port) const
{
    return outs_.at(static_cast<std::size_t>(port)).connected();
}

void
SwitchBase::notePortSend(std::size_t port)
{
    stats_.flitsOut.inc();
    portTx_[port].inc();
}

void
SwitchBase::collectCredits(Cycle now)
{
    for (auto &p : outs_) {
        if (p.creditIn)
            p.credits += p.creditIn->receive(now);
    }
}

bool
SwitchBase::canStartPacket(const OutPort &port,
                           const PacketDesc &pkt) const
{
    if (port.mcastWholePacket && pkt.kind == PacketKind::HwMulticast)
        return port.credits >= pkt.totalFlits();
    return port.credits >= 1;
}

PortId
SwitchBase::chooseUpPort(const RouteDecision &route,
                         const PacketDesc &pkt,
                         const std::function<bool(PortId)> &freeOk) const
{
    MDW_ASSERT(!route.upCandidates.empty(), "no up candidates");
    const auto &cands = route.upCandidates;
    const std::size_t n = cands.size();
    // Deterministic default: spread by source and packet id so
    // distinct flows take distinct up links.
    const std::size_t hash =
        (static_cast<std::size_t>(pkt.src) * 0x9e3779b9u +
         static_cast<std::size_t>(pkt.id) * 0x85ebca6bu) %
        n;
    if (params_.upPolicy == UpPortPolicy::Deterministic || !freeOk)
        return cands[hash];
    // Adaptive: first available candidate scanning from the hash
    // position (ties broken by the hash so load still spreads).
    for (std::size_t i = 0; i < n; ++i) {
        const PortId cand = cands[(hash + i) % n];
        if (freeOk(cand))
            return cand;
    }
    return cands[hash];
}

} // namespace mdw
