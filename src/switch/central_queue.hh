/**
 * @file
 * The dynamically shared central buffer (paper Section 4).
 *
 * Storage is organized as fixed-size chunks (SP2: 8 flits). A packet
 * resident in the queue is a chain of chunks plus a set of *readers*,
 * one per output port that must transmit a copy. A multidestination
 * worm is stored ONCE and read out by every branch; a chunk is
 * recycled when the slowest reader has drained it (reference
 * counting). Multidestination worms reserve chunks for the entire
 * packet before being accepted (the paper's deadlock-freedom rule);
 * unicast packets allocate chunks on demand and stall when the shared
 * pool is exhausted.
 *
 * Deadlock freedom of the shared pool: a packet that stalls mid-write
 * holds its input FIFO and, transitively, its whole upstream wormhole
 * path, so two full central queues feeding each other could deadlock.
 * Following the multi-queue shared-buffer tradition (Tamir/Frazier,
 * which the paper cites for this architecture), `escapeReserve`
 * chunks (one per output port) are kept out of the shared pool: the
 * *current stream* of each output may always allocate one escape
 * chunk at a time even when the pool is full. Since an output always
 * drains its current stream (links form an acyclic up*-down* graph
 * ending at always-sinking NICs), the escape chunk cycles
 * write->read->free and every resident packet trickles through;
 * buffer-dependency cycles cannot form.
 *
 * This class is the bookkeeping core; the CentralBufferSwitch layers
 * the chunk-per-cycle write/read bandwidth model on top.
 */

#ifndef MDW_SWITCH_CENTRAL_QUEUE_HH
#define MDW_SWITCH_CENTRAL_QUEUE_HH

#include <unordered_map>

#include "message/packet.hh"

namespace mdw {

/** Geometry of the central queue. */
struct CqParams
{
    /** Total chunks of storage (SP-Switch flavor: 128). */
    int chunks = 128;
    /** Flits per chunk (SP-Switch: 8). */
    int chunkFlits = 8;
    /**
     * Chunks excluded from the shared pool and dedicated to
     * per-output escape allocation (set to the switch radix by the
     * builder; see the file comment).
     */
    int escapeReserve = 0;
    /**
     * Shared-pool chunks that *up-phase* whole-packet reservations
     * must leave free (chunksFor(largest packet); 0 disables).
     * Reservation waits can cycle between adjacent stages — an
     * up-phase worm resident in one queue waiting to reserve in the
     * next while a down-phase worm waits the other way. Keeping
     * room for one maximum-size down-phase worm makes reservation
     * dependencies well-founded: down-phase reservations always
     * eventually succeed (their holders drain stage-by-stage toward
     * the hosts), and up-phase reservations then resolve by
     * induction toward the root stage.
     */
    int upPhaseHeadroom = 0;
};

/** Chunked, reference-counted shared packet store. */
class CentralQueue
{
  public:
    using EntryId = int;
    static constexpr EntryId kNoEntry = -1;

    explicit CentralQueue(const CqParams &params);

    /** Chunks needed to hold @p flits flits. */
    int chunksFor(int flits) const;

    /**
     * Can a whole-packet reservation of @p totalFlits succeed now?
     * @param upPhase True if the worm still travels toward the LCA
     *        stage; up-phase reservations must leave
     *        upPhaseHeadroom chunks of the shared pool free.
     */
    bool canReserve(int totalFlits, bool upPhase = false) const;

    /**
     * Admit a multidestination worm with an up-front whole-packet
     * chunk reservation from the shared pool. Caller must check
     * canReserve() first.
     * @param readers Number of output branches that will read it.
     */
    EntryId addReserved(PacketPtr pkt, int readers);

    /** Admit a packet without reservation (unicast path). */
    EntryId addUnreserved(PacketPtr pkt, int readers = 1);

    /**
     * Grant @p id the right to use its output's escape chunk; called
     * by the switch when the entry becomes an output's current
     * stream. Idempotent; reserved entries ignore it (their chunks
     * are prepaid).
     */
    void grantEscape(EntryId id);

    /**
     * Flits that may be written now: bounded by the packet length
     * and, for unreserved entries, by shared-pool availability plus
     * at most one outstanding escape chunk when granted.
     */
    int writable(EntryId id) const;

    /** Append @p n flits (n <= writable(id)). */
    void write(EntryId id, int n);

    /** Flits written so far. */
    int written(EntryId id) const;

    /**
     * Flits reader @p reader may take now, at chunk granularity:
     * only completely written chunks (or the packet tail) are
     * readable, modeling the chunk-wide RAM access.
     */
    int readable(EntryId id, int reader) const;

    /**
     * Advance reader @p reader by up to @p maxN flits (bounded by
     * readable()); recycles chunks passed by every reader and erases
     * the entry once fully written and fully read. Returns the number
     * of flits actually read.
     */
    int read(EntryId id, int reader, int maxN);

    /** True while the entry exists (not yet fully consumed). */
    bool alive(EntryId id) const;

    /** True if the entry was admitted with a whole-packet
     *  reservation. */
    bool isReserved(EntryId id) const;

    const PacketPtr &packet(EntryId id) const;

    /** Chunks in use, shared pool + escape chunks. */
    int usedChunks() const { return usedShared_ + usedEscape_; }
    /** Free chunks of the shared pool. */
    int freeChunks() const { return sharedCapacity() - usedShared_; }
    /** Shared-pool capacity (total minus the escape reserve). */
    int sharedCapacity() const
    {
        return params_.chunks - params_.escapeReserve;
    }
    int capacityChunks() const { return params_.chunks; }
    /** Number of resident packets. */
    std::size_t entryCount() const { return entries_.size(); }

  private:
    struct Entry
    {
        PacketPtr pkt;
        int total = 0;
        int written = 0;
        bool reserved = false;
        bool escapeRights = false;
        /** Chunks charged to the shared pool. */
        int sharedChunks = 0;
        /** Chunks charged to the escape reserve (0 or 1). */
        int escapeChunks = 0;
        int freedChunks = 0;
        std::vector<int> readerPos;

        int heldChunks() const { return sharedChunks + escapeChunks; }
    };

    Entry &get(EntryId id);
    const Entry &get(EntryId id) const;
    void recycle(EntryId id, Entry &entry);

    CqParams params_;
    int usedShared_ = 0;
    int usedEscape_ = 0;
    EntryId nextId_ = 1;
    std::unordered_map<EntryId, Entry> entries_;
};

} // namespace mdw

#endif // MDW_SWITCH_CENTRAL_QUEUE_HH
