#include "switch/arbiter.hh"

#include "sim/logging.hh"

namespace mdw {

const char *
toString(LaneAlloc alloc)
{
    switch (alloc) {
      case LaneAlloc::StaticClass:
        return "static";
      case LaneAlloc::Adaptive:
        return "adaptive";
    }
    return "?";
}

namespace {

int
clampLaneClass(int trafficClass)
{
    if (trafficClass < 0)
        return 0;
    if (trafficClass >= kLaneClasses)
        return kLaneClasses - 1;
    return trafficClass;
}

} // namespace

int
laneClassBase(int lanes, int trafficClass)
{
    MDW_ASSERT(lanes >= 1, "lane partition over %d lanes", lanes);
    if (lanes == 1)
        return 0;
    return clampLaneClass(trafficClass) == 0 ? 0 : (lanes + 1) / 2;
}

int
laneClassSize(int lanes, int trafficClass)
{
    MDW_ASSERT(lanes >= 1, "lane partition over %d lanes", lanes);
    if (lanes == 1)
        return 1;
    const int split = (lanes + 1) / 2;
    return clampLaneClass(trafficClass) == 0 ? split : lanes - split;
}

RoundRobinArbiter::RoundRobinArbiter(int requesters)
    : size_(requesters)
{
    MDW_ASSERT(requesters >= 0, "negative requester count");
}

void
RoundRobinArbiter::resize(int requesters)
{
    MDW_ASSERT(requesters >= 0, "negative requester count");
    size_ = requesters;
    last_ = -1;
}

int
RoundRobinArbiter::grant(const std::vector<bool> &request)
{
    MDW_ASSERT(static_cast<int>(request.size()) == size_,
               "request vector size %zu != arbiter size %d",
               request.size(), size_);
    for (int i = 1; i <= size_; ++i) {
        const int idx = (last_ + i) % size_;
        if (request[static_cast<std::size_t>(idx)]) {
            last_ = idx;
            ++grants_;
            return idx;
        }
    }
    return -1;
}

int
RoundRobinArbiter::grantFrom(const std::vector<int> &requesters)
{
    if (requesters.empty() || size_ == 0)
        return -1;
    int best = -1;
    int best_rank = size_ + 1;
    for (int r : requesters) {
        MDW_ASSERT(r >= 0 && r < size_, "requester %d out of range", r);
        const int rank = (r - last_ - 1 + size_) % size_;
        if (rank < best_rank) {
            best_rank = rank;
            best = r;
        }
    }
    if (best >= 0) {
        last_ = best;
        ++grants_;
    }
    return best;
}

} // namespace mdw
