#include "switch/barrier_unit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mdw {

void
BarrierUnit::configure(int group, BarrierSwitchEntry entry)
{
    MDW_ASSERT(group >= 0, "negative barrier group id");
    MDW_ASSERT(!entry.expectedPorts.empty(),
               "barrier entry with no arrival ports");
    MDW_ASSERT(entry.isRoot || entry.upPort != kInvalidPort,
               "non-root barrier entry needs a tree parent port");
    GroupState state;
    state.entry = std::move(entry);
    groups_[group] = std::move(state);
}

bool
BarrierUnit::participates(int group) const
{
    return groups_.count(group) > 0;
}

BarrierUnit::Emit
BarrierUnit::onArrive(int group, PortId port)
{
    auto it = groups_.find(group);
    MDW_ASSERT(it != groups_.end(),
               "arrival for unconfigured barrier group %d", group);
    GroupState &state = it->second;
    MDW_ASSERT(std::find(state.entry.expectedPorts.begin(),
                         state.entry.expectedPorts.end(),
                         port) != state.entry.expectedPorts.end(),
               "barrier group %d: unexpected arrival on port %d",
               group, port);
    MDW_ASSERT(!state.arrived.count(port),
               "barrier group %d: duplicate arrival on port %d",
               group, port);
    state.arrived.insert(port);

    Emit emit;
    if (state.arrived.size() < state.entry.expectedPorts.size())
        return emit; // still waiting (group = -1)

    state.arrived.clear(); // ready for the next round
    emit.group = group;
    emit.release = state.entry.isRoot;
    emit.upPort = state.entry.upPort;
    return emit;
}

std::size_t
BarrierUnit::pendingArrivals(int group) const
{
    auto it = groups_.find(group);
    return it == groups_.end() ? 0 : it->second.arrived.size();
}

} // namespace mdw
