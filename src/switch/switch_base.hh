/**
 * @file
 * Common machinery shared by the two switch architectures: port
 * wiring, credit-based link flow control, the multidestination
 * whole-packet reservation rule, and per-switch statistics.
 */

#ifndef MDW_SWITCH_SWITCH_BASE_HH
#define MDW_SWITCH_SWITCH_BASE_HH

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "message/flit.hh"
#include "sim/channel.hh"
#include "sim/component.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "switch/arbiter.hh"
#include "topology/routing.hh"

namespace mdw {

/**
 * What a component advertises about one of its input ports, consumed
 * by the wiring code to initialize the upstream sender's credit
 * counter and reservation behaviour.
 */
struct ReceivePolicy
{
    /** Flits of buffering behind the link (initial credits). */
    int window = 0;
    /**
     * True if a multidestination worm may only start transfer on this
     * link once the whole packet fits in the receiver's buffer (the
     * input-buffer architecture's deadlock-avoidance rule). False for
     * receivers that make their own internal acceptance decision
     * (central-buffer switch) or always consume (NIC ejection).
     */
    bool mcastWholePacket = false;
};

/**
 * How a switch replicates a multidestination worm to several output
 * ports (paper Section 3).
 */
enum class ReplicationMode
{
    /**
     * Each granted branch forwards at its own pace; a blocked branch
     * never blocks the others. The paper's preferred mechanism.
     */
    Asynchronous,
    /**
     * Branches proceed in lock-step: all required output ports are
     * acquired atomically (all-or-nothing, avoiding hold-and-wait
     * deadlock) and a flit is forwarded only when every branch can
     * accept it, modeling the feedback architecture of synchronous
     * replication. Only the input-buffer architecture supports this;
     * the central queue's store-once readers are inherently
     * asynchronous.
     */
    Synchronous,
};

const char *toString(ReplicationMode mode);

/** Parameters common to both switch architectures. */
struct SwitchParams
{
    RoutingVariant variant = RoutingVariant::ReplicateAfterLca;
    UpPortPolicy upPolicy = UpPortPolicy::Adaptive;
    ReplicationMode replication = ReplicationMode::Asynchronous;
    /**
     * Virtual lanes per physical link. Each lane gets its own flit
     * buffers and credit counter; the physical link still carries at
     * most one flit per cycle. 1 = the original single-lane switch.
     */
    int lanes = 1;
    /** How traffic classes map onto lanes (see LaneAlloc). */
    LaneAlloc laneAlloc = LaneAlloc::StaticClass;
    std::uint64_t seed = 1;
};

/** Per-switch activity counters. */
struct SwitchStats
{
    Counter flitsIn;
    Counter flitsOut;
    Counter packetsRouted;
    /** Extra output copies created beyond the first (replications). */
    Counter replications;
    /** Cycles a multidestination head waited for buffer reservation. */
    Counter reservationStallCycles;
    /** Flits swallowed by failed ports (fault injection). */
    Counter tombstonedFlits;
    /** Destinations dropped because no route survived the faults. */
    Counter unroutableDests;
    /** Cycles a lane had a flit ready but lost the physical-link
     *  mux to another lane (only counted when lanes > 1). */
    Counter laneStallCycles;
};

/**
 * Base class: owns the port arrays and implements link-level credit
 * flow control. Concrete architectures implement step().
 */
class SwitchBase : public Component
{
  public:
    /**
     * @param name Diagnostic name.
     * @param id Switch id within the topology.
     * @param routing This switch's frozen routing state (not owned).
     * @param params Common parameters.
     */
    SwitchBase(std::string name, SwitchId id,
               const SwitchRouting *routing, const SwitchParams &params);

    /** Attach the receive side of port @p port. */
    void connectIn(PortId port, Channel<Flit> *in,
                   CreditChannel *creditOut);

    /**
     * Attach the send side of port @p port.
     * @param policy The downstream receiver's advertised policy.
     */
    void connectOut(PortId port, Channel<Flit> *out,
                    CreditChannel *creditIn,
                    const ReceivePolicy &policy);

    /** The policy this switch advertises for its input @p port. */
    virtual ReceivePolicy receivePolicy(PortId port) const = 0;

    SwitchId id() const { return id_; }
    const SwitchStats &stats() const { return stats_; }
    const SwitchRouting &routing() const { return *routing_; }

    /** Flits ever sent on output @p port (link utilization). */
    std::uint64_t portTxFlits(PortId port) const;

    /**
     * Time-averaged flits buffered across the per-lane input storage
     * of this switch; sampled every step on multi-lane switches, flat
     * zero on single-lane ones (network lane-occupancy rollup).
     */
    const TimeAverage &laneOccupancy() const { return laneOcc_; }

    /** True if output @p port has a link attached. */
    bool outConnected(PortId port) const;

    /**
     * Swap in a replacement routing table (not owned; must outlive
     * the switch). Used by fault-aware rerouting: packets decoded
     * after the swap follow the new table, packets already branched
     * keep their decisions (failed ports swallow those flits).
     */
    void setRouting(const SwitchRouting *routing);

    /**
     * Fail input @p port: flits still arriving on the dead link are
     * discarded, and the architecture phantom-completes any packet
     * caught mid-reception (fabricating its missing flits internally
     * and poisoning its id) so no buffer is left half-filled forever.
     */
    void failInPort(PortId port);

    /**
     * Fail output @p port: it becomes a tombstone sink that consumes
     * flits at wire speed without sending, so upstream replication
     * state and shared buffers drain instead of wedging.
     */
    void failOutPort(PortId port);

    bool inFailed(PortId port) const
    {
        return ins_.at(static_cast<std::size_t>(port)).failed;
    }
    bool outFailed(PortId port) const
    {
        return outs_.at(static_cast<std::size_t>(port)).failed;
    }

    /** Throttle output @p port to one flit per @p factor cycles. */
    void degradeOutPort(PortId port, int factor);

    /**
     * Attach the shared poison registry (owned by the resilience
     * layer). Packets truncated by a fault register their id here;
     * NICs drop poisoned deliveries end-to-end (modeling CRC
     * discard) and retransmission re-covers the destinations.
     */
    void setPoisonRegistry(std::unordered_set<PacketId> *poisoned)
    {
        poisoned_ = poisoned;
    }

    /**
     * End-of-run invariant: no buffered flits, no active streams, and
     * every non-failed output's credits returned to their initial
     * value. On failure returns false and appends a reason to @p why
     * (if given). Architectures extend this with their buffer checks.
     */
    virtual bool quiescent(std::string *why) const;

    /**
     * Register this switch's stats under "switch.<id>." (per-port tx
     * counters under "switch.<id>.port.<p>.") and pick up the shared
     * worm tracer. Called once by the network after wiring, so only
     * connected ports register. Architectures extend this with their
     * own metrics.
     */
    virtual void attachTelemetry(Telemetry &telemetry);

  protected:
    struct InPort
    {
        Channel<Flit> *in = nullptr;
        CreditChannel *creditOut = nullptr;
        bool failed = false;
        bool connected() const { return in != nullptr; }
    };

    struct OutPort
    {
        Channel<Flit> *out = nullptr;
        CreditChannel *creditIn = nullptr;
        /** Per-lane credit counters (size = params.lanes); each lane
         *  gets the receiver's full advertised window. */
        std::vector<int> credits;
        int initialCredits = 0;
        bool mcastWholePacket = false;
        bool failed = false;
        /** Forward at most one flit per this many cycles (>1 only on
         *  degraded links). */
        int degrade = 1;
        bool connected() const { return out != nullptr; }
    };

    /** Pull arrived credits on every output port (lane-demuxed). */
    void collectCredits(Cycle now);

    /** Lanes per link (== params.lanes, >= 1). */
    int lanes() const { return params_.lanes; }

    /** Flattened (port, lane) index used by per-lane switch state. */
    std::size_t
    laneIdx(std::size_t port, int lane) const
    {
        return port * static_cast<std::size_t>(params_.lanes) +
               static_cast<std::size_t>(lane);
    }

    /**
     * Allocate the lane a freshly decoded packet will use through
     * this switch, per the configured policy: the fixed base lane of
     * its class partition (static) or the cheapest lane of that
     * partition by @p laneCost (adaptive; ties to the lowest lane).
     * The choice is made once per packet — every replication branch
     * uses it — and traced as LaneAlloc when the switch is
     * multi-lane.
     */
    int allocLane(const PacketDesc &pkt, Cycle now,
                  const std::function<int(int)> &laneCost) const;

    /**
     * The @p slot'th lane in a transmit port's service order this
     * cycle. The latency-sensitive partition (class 1) is served
     * before the bulk partition so a tagged worm never waits behind
     * background flits at the link mux; within each partition the
     * start rotates with the cycle for fairness. A lane can still
     * only send when the link is free, so bulk lanes drain whenever
     * the latency partition is idle — priority, not starvation.
     * With lanes == 1 every slot is lane 0 (single-lane identity).
     */
    int serviceLane(Cycle now, int slot) const;

    /** Count a cycle in which @p lane of @p port was ready to send
     *  but the physical link mux went to another lane. */
    void
    noteLaneStall(Cycle now, const PacketDesc &pkt, std::size_t port)
    {
        stats_.laneStallCycles.inc();
        traceWorm(WormEvent::LaneStall, now, pkt,
                  static_cast<std::int32_t>(port));
    }

    /** Sample the per-lane buffered-flit total (multi-lane only). */
    void
    sampleLaneOccupancy(double flits, Cycle now)
    {
        laneOcc_.update(flits, now);
    }

    /**
     * Earliest in-flight arrival on any attached link: data flits on
     * the inputs (including failed ones, whose flits must still be
     * drained into tombstones) and returning credits on the outputs.
     * kNoCycle when every link is empty. Architectures combine this
     * with their buffer occupancy to implement nextWork().
     */
    Cycle earliestLinkArrival() const;

    /**
     * May the first flit of @p pkt start crossing @p lane of output
     * @p port this cycle? Applies the whole-packet reservation rule
     * for multidestination worms when the receiver demands it,
     * against that lane's credit counter.
     */
    bool canStartPacket(const OutPort &port, int lane,
                        const PacketDesc &pkt) const;

    /**
     * Pick the up port for a packet from decode candidates; the
     * packet's lane rotates the deterministic spread so distinct
     * lanes prefer distinct up links (lane 0 matches the single-lane
     * choice exactly).
     * @param freeOk Predicate: is this port currently a good
     *        (available) choice? Used by the adaptive policy; if no
     *        candidate satisfies it, adaptive falls back to the
     *        deterministic choice.
     */
    PortId chooseUpPort(const RouteDecision &route,
                        const PacketDesc &pkt, int lane,
                        const std::function<bool(PortId)> &freeOk) const;

    /** Count one flit leaving through @p lane of @p port. */
    void notePortSend(std::size_t port, int lane = 0);

    /**
     * True if @p port must skip sending this cycle: failed ports are
     * handled by the tombstone paths, degraded ports pace themselves.
     */
    bool portThrottled(const OutPort &port, Cycle now) const
    {
        return port.degrade > 1 && now % static_cast<Cycle>(port.degrade);
    }

    /** Swallow one flit at a failed port and count it. */
    void noteTombstone() { stats_.tombstonedFlits.inc(); }

    /** Register a truncated packet with the poison registry. */
    void poisonPacket(const PacketDesc &pkt)
    {
        if (poisoned_)
            poisoned_->insert(pkt.id);
    }

    /**
     * Drop any destinations the (tolerant, post-fault) routing table
     * reported unroutable; panics if unroutable destinations appear
     * without fault tolerance (an intact network must route all).
     */
    void noteUnroutable(const RouteDecision &route);

    /** Record a worm lifecycle event at this switch (no-op unless
     *  tracing is enabled). */
    void
    traceWorm(WormEvent kind, Cycle now, const PacketDesc &pkt,
              std::int32_t arg = 0) const
    {
        MDW_TRACE_EVENT(tracer_, kind, now, pkt.id, pkt.msg, id_,
                        false, arg);
    }

    SwitchId id_;
    const SwitchRouting *routing_;
    SwitchParams params_;
    std::vector<InPort> ins_;
    std::vector<OutPort> outs_;
    std::vector<Counter> portTx_;
    /** Per-(port, lane) tx flits, laneIdx-flattened; registered as
     *  metrics only on multi-lane switches. */
    std::vector<Counter> laneTx_;
    TimeAverage laneOcc_;
    Rng rng_;
    SwitchStats stats_;
    /** Shared poison registry; null while fault injection is off. */
    std::unordered_set<PacketId> *poisoned_ = nullptr;
    /** Shared worm tracer; null while tracing is off. */
    WormTracer *tracer_ = nullptr;
};

} // namespace mdw

#endif // MDW_SWITCH_SWITCH_BASE_HH
