/**
 * @file
 * Round-robin arbitration primitives used by switch output ports and
 * the central-queue read/write ports, plus the virtual-lane
 * allocation policy shared by both switch architectures.
 */

#ifndef MDW_SWITCH_ARBITER_HH
#define MDW_SWITCH_ARBITER_HH

#include <cstdint>
#include <vector>

namespace mdw {

/** How a switch maps a packet's traffic class onto a virtual lane. */
enum class LaneAlloc
{
    /**
     * Each traffic class owns a fixed lane (the base lane of its
     * class partition). Deterministic and fully isolating: bulk
     * traffic can never occupy a latency-class lane buffer.
     */
    StaticClass,
    /**
     * Pick the least-backlogged lane *within* the packet's class
     * partition, per switch, at header-decode time. Classes still
     * never share a lane, so isolation holds; the extra lanes of a
     * partition absorb bursts.
     */
    Adaptive,
};

const char *toString(LaneAlloc alloc);

/** Number of traffic classes the lane partition distinguishes. */
inline constexpr int kLaneClasses = 2;

/** Most lanes a link may carry; config values above this clamp. */
inline constexpr int kMaxLanes = 8;

/**
 * First lane of @p trafficClass's partition when the link runs
 * @p lanes lanes. Class 0 (bulk) owns [0, ceil(lanes/2)); class 1
 * (latency-sensitive) owns [ceil(lanes/2), lanes). With lanes == 1
 * both classes collapse onto lane 0 — no isolation, identical to the
 * single-lane switch. Out-of-range classes clamp to the nearest
 * class so a stray tag degrades service instead of crashing.
 */
int laneClassBase(int lanes, int trafficClass);

/** Number of lanes in @p trafficClass's partition (>= 1). */
int laneClassSize(int lanes, int trafficClass);

/**
 * Classic rotating-priority arbiter over a fixed number of
 * requesters. After a grant, the granted requester becomes the
 * lowest-priority one, which gives per-requester fairness under
 * persistent contention.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int requesters = 0);

    /** Reset to @p requesters inputs, priority starting at 0. */
    void resize(int requesters);

    /**
     * Grant one of the requesting inputs (request[i] true), starting
     * the search after the last grant. Returns the granted index and
     * rotates priority, or -1 if nobody requests.
     */
    int grant(const std::vector<bool> &request);

    /**
     * Same, with requests given as a list of requester indices
     * (order-insensitive).
     */
    int grantFrom(const std::vector<int> &requesters);

    int size() const { return size_; }

    /** Grants ever issued (telemetry). */
    std::uint64_t totalGrants() const { return grants_; }

  private:
    int size_ = 0;
    int last_ = -1;
    std::uint64_t grants_ = 0;
};

} // namespace mdw

#endif // MDW_SWITCH_ARBITER_HH
