/**
 * @file
 * Round-robin arbitration primitives used by switch output ports and
 * the central-queue read/write ports.
 */

#ifndef MDW_SWITCH_ARBITER_HH
#define MDW_SWITCH_ARBITER_HH

#include <cstdint>
#include <vector>

namespace mdw {

/**
 * Classic rotating-priority arbiter over a fixed number of
 * requesters. After a grant, the granted requester becomes the
 * lowest-priority one, which gives per-requester fairness under
 * persistent contention.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int requesters = 0);

    /** Reset to @p requesters inputs, priority starting at 0. */
    void resize(int requesters);

    /**
     * Grant one of the requesting inputs (request[i] true), starting
     * the search after the last grant. Returns the granted index and
     * rotates priority, or -1 if nobody requests.
     */
    int grant(const std::vector<bool> &request);

    /**
     * Same, with requests given as a list of requester indices
     * (order-insensitive).
     */
    int grantFrom(const std::vector<int> &requesters);

    int size() const { return size_; }

    /** Grants ever issued (telemetry). */
    std::uint64_t totalGrants() const { return grants_; }

  private:
    int size_ = 0;
    int last_ = -1;
    std::uint64_t grants_ = 0;
};

} // namespace mdw

#endif // MDW_SWITCH_ARBITER_HH
