/**
 * @file
 * Software multicast planning — the U-Min-style binomial tree
 * baseline [Xu/Gui/Ni, SC'94].
 *
 * A multicast to d destinations is implemented with unicast messages
 * in ceil(log2(d + 1)) phases: the responsible node repeatedly splits
 * its (rank-ordered) coverage set in half and delegates the far half
 * to that half's first member, piggy-backing the delegated list on
 * the message. Rank-ordered recursive halving keeps each phase's
 * transfers in disjoint subtrees of a k-ary n-tree, which is the
 * contention-free property U-Min establishes for MINs.
 */

#ifndef MDW_HOST_SW_MCAST_HH
#define MDW_HOST_SW_MCAST_HH

#include <vector>

#include "message/dest_set.hh"
#include "sim/types.hh"

namespace mdw {

/** One unicast hop of a software multicast tree. */
struct SwSend
{
    NodeId target = kInvalidNode;
    /** Destinations the target must cover in later phases. */
    std::vector<NodeId> delegated;
};

/**
 * Plan the unicast sends node @p self must issue to cover
 * @p toCover (which must not contain @p self), in issue order.
 * Every node in @p toCover appears exactly once across the returned
 * targets and delegated lists.
 */
std::vector<SwSend> planBinomialSends(NodeId self,
                                      const std::vector<NodeId> &toCover);

/** Number of phases of the binomial tree covering 1 + d nodes. */
int binomialPhases(std::size_t d);

} // namespace mdw

#endif // MDW_HOST_SW_MCAST_HH
