/**
 * @file
 * Workload interface between the host layer and traffic generators.
 *
 * A Workload is polled by every NIC for messages to post (the
 * open-loop half, unchanged from the original TrafficSource API) and
 * is additionally *notified* of message progress: onPosted() when a
 * polled spec has been assigned a message id, onDelivered() for every
 * per-destination copy, and onCompleted() when the tracker retires
 * the whole message. Closed-loop workloads use those notifications to
 * release dependent messages, which in turn wakes the sleeping NIC of
 * the releasing node through the wake hook — so the idle-skipping
 * fast path stays bit-identical to the always-polled oracle.
 *
 * Determinism contract (the "release rule"): a hook observing an
 * event at cycle t may schedule new emissions no earlier than t+1.
 * Deliveries happen while components are being stepped, in an order
 * the oracle and the fast path do not guarantee to share; deferring
 * the reaction one cycle makes the reaction order observable only
 * through the (deterministic) cycle timeline.
 */

#ifndef MDW_HOST_WORKLOAD_HH
#define MDW_HOST_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "message/dest_set.hh"
#include "sim/types.hh"

namespace mdw {

/** A message the workload asks a NIC to send. */
struct MessageSpec
{
    bool multicast = false;
    NodeId dest = kInvalidNode; // unicast
    DestSet dests{0};           // multicast
    int payloadFlits = 64;
    /**
     * Traffic class for virtual-lane isolation: 0 = bulk (default),
     * 1 = latency-sensitive. Workloads tag e.g. multicast foreground
     * traffic so multi-lane switches route it on its own lane
     * partition. Inert when the fabric runs a single lane.
     */
    int trafficClass = 0;
    /**
     * Workload-private correlation id carried back through
     * onPosted(), so a closed-loop generator can match the MsgId the
     * NIC allocates to the logical operation that emitted the spec.
     * 0 = untracked (open-loop generators never set it).
     */
    std::uint64_t token = 0;
};

/**
 * Interface the workload layer implements. Open-loop generators only
 * override poll()/nextArrival(); closed-loop ones also consume the
 * notification hooks below.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Append messages node @p node creates at cycle @p now. */
    virtual void poll(NodeId node, Cycle now,
                      std::vector<MessageSpec> &out) = 0;

    /**
     * Earliest cycle >= @p now at which poll() may yield a message
     * for @p node, or kNoCycle if it never will again *absent new
     * completions*. Lets the fast-path kernel put an idle NIC to
     * sleep between arrivals; a closed-loop workload that answers
     * kNoCycle must wake() the node when a completion later releases
     * work for it. The default -- "maybe right now" -- keeps the NIC
     * polling every cycle, which is always correct.
     */
    virtual Cycle
    nextArrival(NodeId node, Cycle now)
    {
        (void)node;
        return now;
    }

    /**
     * A message was posted by @p src's NIC and assigned @p msg.
     * @p token is the originating spec's correlation id (0 for
     * untracked specs and for messages posted directly through the
     * NIC API, e.g. by the collective engine). Invoked *before* the
     * send leaves the NIC, so it always precedes onDelivered() and
     * onCompleted() for @p msg — even when a post retires
     * synchronously because every destination is written off as
     * unreachable.
     */
    virtual void
    onPosted(NodeId src, std::uint64_t token, MsgId msg, Cycle now)
    {
        (void)src;
        (void)token;
        (void)msg;
        (void)now;
    }

    /** One copy of @p msg was delivered at @p node (after reassembly,
     *  duplicates excluded). Fires for *every* tracked message at
     *  this node, not only those this workload posted. */
    virtual void
    onDelivered(MsgId msg, NodeId node, Cycle now)
    {
        (void)msg;
        (void)node;
        (void)now;
    }

    /**
     * The tracker retired @p msg (every destination delivered or
     * written off as unreachable). Also fires for messages other
     * agents posted (e.g. the collective engine), so implementations
     * must ignore unknown ids.
     */
    virtual void
    onCompleted(MsgId msg, NodeId src, Cycle now)
    {
        (void)msg;
        (void)src;
        (void)now;
    }

    /**
     * True when the workload will never emit again: no future
     * arrivals and no blocked work awaiting a completion. Closed-loop
     * run loops drain on `exhausted() && net.idle()`. Open-loop
     * generators keep the default (the experiment harness bounds them
     * by stopCycle instead).
     */
    virtual bool exhausted() const { return true; }

    /** Wake @p node's NIC no later than cycle @p when (fast path). */
    using WakeFn = std::function<void(NodeId, Cycle)>;

    /** Installed by Network::attachWorkload; not for user code. */
    void setWakeHook(WakeFn fn) { wakeHook_ = std::move(fn); }

  protected:
    /** Request a wake of @p node at @p when; no-op until attached. */
    void
    wake(NodeId node, Cycle when)
    {
        if (wakeHook_)
            wakeHook_(node, when);
    }

  private:
    WakeFn wakeHook_;
};

/** Pre-redesign name of the interface (open-loop call sites). */
using TrafficSource = Workload;

} // namespace mdw

#endif // MDW_HOST_WORKLOAD_HH
