#include "host/nic.hh"

#include <algorithm>
#include <cmath>

#include "host/sw_mcast.hh"
#include "sim/system.hh"

namespace mdw {

const char *
toString(McastScheme scheme)
{
    switch (scheme) {
      case McastScheme::Hardware:
        return "hardware";
      case McastScheme::Software:
        return "software";
    }
    return "?";
}

Nic::Nic(std::string name, NodeId id, std::size_t numHosts,
         const NicParams &params, PacketFactory *factory,
         McastTracker *tracker)
    : Component(std::move(name)), id_(id), numHosts_(numHosts),
      params_(params), factory_(factory), tracker_(tracker)
{
    MDW_ASSERT(factory != nullptr && tracker != nullptr,
               "NIC %d needs a factory and a tracker", id);
    MDW_ASSERT(params_.lanes >= 1, "NIC %d: lanes must be >= 1", id);
    rxCurrent_.resize(static_cast<std::size_t>(params_.lanes));
    rxArrived_.resize(static_cast<std::size_t>(params_.lanes), 0);
}

void
Nic::attachTelemetry(Telemetry &telemetry)
{
    tracer_ = telemetry.tracer();
    MetricsRegistry &reg = telemetry.registry();
    const std::string prefix = "nic." + std::to_string(id_) + ".";
    reg.registerCounter(prefix + "messages_posted",
                        &stats_.messagesPosted);
    reg.registerCounter(prefix + "packets_injected",
                        &stats_.packetsInjected);
    reg.registerCounter(prefix + "flits_injected",
                        &stats_.flitsInjected);
    reg.registerCounter(prefix + "flits_ejected",
                        &stats_.flitsEjected);
    reg.registerCounter(prefix + "packets_delivered",
                        &stats_.packetsDelivered);
    reg.registerCounter(prefix + "sw_forwards", &stats_.swForwards);
    reg.registerCounter(prefix + "retransmits", &stats_.retransmits);
    reg.registerCounter(prefix + "poisoned_drops",
                        &stats_.poisonedDrops);
    reg.registerCounter(prefix + "csum_fails", &stats_.csumFails);
}

void
Nic::connectTx(Channel<Flit> *out, CreditChannel *creditIn,
               const ReceivePolicy &downstream)
{
    MDW_ASSERT(txOut_ == nullptr, "NIC %d tx connected twice", id_);
    txOut_ = out;
    txCreditIn_ = creditIn;
    // Each lane runs its own credit loop of the full window (the
    // switch buffers every lane independently).
    txCredits_.assign(static_cast<std::size_t>(params_.lanes),
                      downstream.window);
    txMcastWholePacket_ = downstream.mcastWholePacket;
    // A credit-blocked NIC sleeps until the switch returns credits.
    creditIn->setWakeSink(this);
}

void
Nic::connectRx(Channel<Flit> *in, CreditChannel *creditOut)
{
    MDW_ASSERT(rxIn_ == nullptr, "NIC %d rx connected twice", id_);
    rxIn_ = in;
    rxCreditOut_ = creditOut;
    // Arriving flits must be able to rouse a sleeping NIC.
    in->setWakeSink(this);
}

MsgId
Nic::postUnicast(NodeId dest, int payloadFlits, Cycle now,
                 std::uint64_t token, int trafficClass)
{
    MDW_ASSERT(dest != id_, "NIC %d unicast to itself", id_);
    MDW_ASSERT(payloadFlits > 0, "empty payload");
    const MsgId msg = factory_->newMsgId();
    tracker_->expectMessage(msg, id_, 1, now, false);
    stats_.messagesPosted.inc();
    // Before launch(): write-offs inside launch() can retire the
    // message synchronously, and the completion hook must find the
    // token already registered.
    if (source_)
        source_->onPosted(id_, token, msg, now);

    DestSet dests(numHosts_);
    dests.set(dest);
    launch(msg, dests, false, payloadFlits, trafficClass, now);
    return msg;
}

MsgId
Nic::postMulticast(const DestSet &dests, int payloadFlits, Cycle now,
                   std::uint64_t token, int trafficClass)
{
    MDW_ASSERT(!dests.empty(), "multicast with no destinations");
    MDW_ASSERT(!dests.test(id_), "NIC %d multicast includes itself",
               id_);
    const MsgId msg = factory_->newMsgId();
    tracker_->expectMessage(msg, id_, dests.count(), now, true);
    stats_.messagesPosted.inc();
    if (source_)
        source_->onPosted(id_, token, msg, now);
    launch(msg, dests, true, payloadFlits, trafficClass, now);
    return msg;
}

void
Nic::launch(MsgId msg, const DestSet &dests, bool multicast,
            int payloadFlits, int trafficClass, Cycle now)
{
    const DestSet remaining = pruneUnreachable(msg, dests, now);
    if (remaining.empty())
        return;
    if (params_.retransmitTimeout > 0) {
        MDW_ASSERT(tracker_->resilient(),
                   "NIC %d: retransmission needs a resilient tracker",
                   id_);
        Pending pending;
        pending.dests = remaining;
        pending.payloadFlits = payloadFlits;
        pending.multicast = multicast;
        pending.trafficClass = trafficClass;
        pending.interval = params_.retransmitTimeout;
        pending.deadline = now + pending.interval;
        nextRetx_ = std::min(nextRetx_, pending.deadline);
        pending_.emplace(msg, std::move(pending));
        // The retry timer must run even if nothing gets queued below
        // (dead up-link): the deadline sweep is what writes the
        // destinations off.
        requestWake(now);
    }
    sendCopies(msg, remaining, multicast, payloadFlits, trafficClass,
               now);
}

DestSet
Nic::pruneUnreachable(MsgId msg, const DestSet &dests, Cycle now)
{
    if (!txFailed_ && !reachable_)
        return dests;
    DestSet remaining(numHosts_);
    for (NodeId dest : dests.toVector()) {
        if (!txFailed_ && reachable_->test(dest)) {
            remaining.set(dest);
        } else {
            MDW_ASSERT(tracker_->resilient(),
                       "NIC %d: unreachable destination %d without a "
                       "resilient tracker",
                       id_, dest);
            tracker_->markUnreachable(msg, dest, now);
        }
    }
    return remaining;
}

void
Nic::sendCopies(MsgId msg, const DestSet &dests, bool multicast,
                int payloadFlits, int trafficClass, Cycle now)
{
    if (!multicast) {
        for (NodeId dest : dests.toVector()) {
            PacketDesc proto;
            proto.msg = msg;
            proto.src = id_;
            proto.dests = DestSet(numHosts_);
            proto.dests.set(dest);
            proto.kind = PacketKind::Unicast;
            proto.headerFlits = params_.enc.unicastHeaderFlits;
            proto.payloadFlits = payloadFlits;
            proto.trafficClass = trafficClass;
            proto.created = now;
            enqueueSegmented(std::move(proto));
        }
        return;
    }

    if (params_.scheme == McastScheme::Hardware) {
        if (params_.encoding == McastEncoding::BitString) {
            PacketDesc proto;
            proto.msg = msg;
            proto.src = id_;
            proto.dests = dests;
            proto.kind = PacketKind::HwMulticast;
            proto.headerFlits =
                bitStringHeaderFlits(numHosts_, params_.enc);
            proto.payloadFlits = payloadFlits;
            proto.trafficClass = trafficClass;
            proto.created = now;
            enqueueSegmented(std::move(proto));
            return;
        } else {
            const auto groups =
                planMultiportPhases(static_cast<std::size_t>(
                                        params_.multiportK),
                                    params_.multiportLevels, dests);
            for (const DestSet &group : groups) {
                PacketDesc proto;
                proto.msg = msg;
                proto.src = id_;
                proto.dests = group;
                proto.kind = PacketKind::HwMulticast;
                proto.headerFlits = multiportHeaderFlits(
                    params_.multiportLevels, params_.enc);
                proto.payloadFlits = payloadFlits;
                proto.trafficClass = trafficClass;
                proto.created = now;
                enqueueSegmented(std::move(proto));
            }
        }
        return;
    }

    // Software scheme: U-Min binomial unicast tree.
    const auto sends = planBinomialSends(id_, dests.toVector());
    for (const SwSend &send : sends) {
        PacketDesc proto;
        proto.msg = msg;
        proto.src = id_;
        proto.dests = DestSet(numHosts_);
        proto.dests.set(send.target);
        proto.kind = PacketKind::SwMulticastCarrier;
        proto.headerFlits =
            swCarrierHeaderFlits(send.delegated.size());
        proto.payloadFlits = payloadFlits;
        proto.trafficClass = trafficClass;
        proto.created = now;
        proto.swDelegated = send.delegated;
        proto.swPhase = 0;
        enqueueSegmented(std::move(proto));
    }
}

void
Nic::postBarrierArrive(int group, Cycle now)
{
    MDW_ASSERT(group >= 0, "invalid barrier group %d", group);
    PacketDesc proto;
    proto.src = id_;
    proto.dests = DestSet(numHosts_); // not destination-routed
    proto.kind = PacketKind::BarrierArrive;
    proto.headerFlits = 2;
    proto.payloadFlits = 0;
    proto.barrierGroup = group;
    proto.created = now;
    enqueueJob(std::move(proto));
}

int
Nic::swCarrierHeaderFlits(std::size_t delegated) const
{
    int header = params_.enc.unicastHeaderFlits;
    if (params_.swListOverhead && delegated > 0) {
        int bits_per_id = 1;
        while ((1ULL << bits_per_id) < numHosts_)
            ++bits_per_id;
        const int bits = static_cast<int>(delegated) * bits_per_id;
        header += (bits + params_.enc.flitBits - 1) / params_.enc.flitBits;
    }
    return header;
}

void
Nic::enqueueJob(PacketDesc proto)
{
    if (txFailed_)
        return; // dead up-link: nothing can leave this host
    SendJob job;
    job.proto = std::move(proto);
    txQueue_.push_back(std::move(job));
    // Every queue entry point funnels through here, so this one wake
    // covers application posts, carrier forwards, barrier tokens, and
    // retransmissions landing on a sleeping NIC.
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
Nic::enqueueSegmented(PacketDesc proto)
{
    MDW_ASSERT(params_.maxPayloadFlits > 0, "maxPayloadFlits not set");
    const int max_payload = params_.maxPayloadFlits;
    if (proto.payloadFlits <= max_payload) {
        enqueueJob(std::move(proto));
        return;
    }
    const int total = proto.payloadFlits;
    const int packets = (total + max_payload - 1) / max_payload;
    proto.msgPackets = packets;
    for (int i = 0; i < packets; ++i) {
        PacketDesc seg = proto;
        seg.msgSeq = i;
        seg.payloadFlits = std::min(max_payload,
                                    total - i * max_payload);
        // Delegation info only needs to ride once; keep it on every
        // segment so the receiver can forward from whichever
        // descriptor it holds when reassembly completes.
        enqueueJob(std::move(seg));
    }
}

void
Nic::step(Cycle now)
{
    if (txCreditIn_)
        (void)txCreditIn_->receiveByLane(now, txCredits_);
    pollSource(now);
    stepTx(now);
    stepRx(now);
    if (params_.retransmitTimeout > 0)
        checkRetransmits(now);
}

Cycle
Nic::nextWork(Cycle now)
{
    Cycle next = kNoCycle;
    const auto consider = [&next](Cycle when) {
        if (when < next)
            next = when;
    };
    if (txCreditIn_ != nullptr)
        consider(txCreditIn_->nextArrival());
    if (rxIn_ != nullptr)
        consider(rxIn_->nextArrival());
    if (source_ != nullptr)
        consider(source_->nextArrival(id_, now + 1));
    if (!txFailed_ && txOut_ != nullptr && !txQueue_.empty()) {
        // Mirror stepTx's gating for each lane's head job: an
        // unprepared or not-yet-ready head has a known wake-up; a
        // ready head only needs stepping while credits allow a send
        // (the credit channel wakes us otherwise).
        std::vector<bool> seen(static_cast<std::size_t>(params_.lanes),
                               false);
        for (const SendJob &job : txQueue_) {
            const std::size_t lane = static_cast<std::size_t>(
                injectLane(job.proto.trafficClass));
            if (seen[lane])
                continue;
            seen[lane] = true;
            if (!job.prepared) {
                consider(now + 1);
            } else if (now < job.readyAt) {
                // Software send overhead: the packet is built once
                // the overhead elapses, so sleep straight through it.
                consider(job.readyAt);
            } else if (job.pkt == nullptr) {
                consider(now + 1);
            } else {
                const bool whole_packet =
                    job.sent == 0 && txMcastWholePacket_ &&
                    job.pkt->kind == PacketKind::HwMulticast;
                const int needed =
                    whole_packet ? job.pkt->totalFlits() : 1;
                if (txCredits_[lane] >= needed)
                    consider(now + 1);
            }
        }
    }
    if (params_.retransmitTimeout > 0 && !pending_.empty())
        consider(nextRetx_ > now ? nextRetx_ : now + 1);
    return next;
}

void
Nic::checkRetransmits(Cycle now)
{
    if (pending_.empty() || now < nextRetx_)
        return;
    nextRetx_ = kNoCycle;
    for (auto it = pending_.begin(); it != pending_.end();) {
        Pending &p = it->second;
        const MsgId msg = it->first;
        if (tracker_->isComplete(msg)) {
            it = pending_.erase(it);
            continue;
        }
        if (now < p.deadline) {
            nextRetx_ = std::min(nextRetx_, p.deadline);
            ++it;
            continue;
        }
        // Deadline passed with destinations still owing a copy:
        // write off the ones with no surviving route (or with the
        // retry budget exhausted), resend to the rest.
        DestSet resend(numHosts_);
        for (NodeId dest : p.dests.toVector()) {
            if (tracker_->isDelivered(msg, dest))
                continue;
            const bool routable =
                !txFailed_ && (!reachable_ || reachable_->test(dest));
            if (!routable || p.attempts >= params_.maxRetransmits)
                tracker_->markUnreachable(msg, dest, now);
            else
                resend.set(dest);
        }
        if (resend.empty()) {
            it = pending_.erase(it);
            continue;
        }
        ++p.attempts;
        stats_.retransmits.inc();
        MDW_TRACE_EVENT(tracer_, WormEvent::Retransmit, now, 0, msg,
                        id_, true, p.attempts);
        p.dests = resend;
        sendCopies(msg, resend, p.multicast, p.payloadFlits,
                   p.trafficClass, now);
        p.interval = std::min(p.interval * 2,
                              params_.retransmitTimeout * 8);
        p.deadline = now + p.interval;
        nextRetx_ = std::min(nextRetx_, p.deadline);
        ++it;
    }
}

void
Nic::pollSource(Cycle now)
{
    if (!source_)
        return;
    std::vector<MessageSpec> specs;
    source_->poll(id_, now, specs);
    for (const MessageSpec &spec : specs) {
        // The post itself invokes source_->onPosted() before the
        // message can possibly complete (see postUnicast()).
        if (spec.multicast)
            postMulticast(spec.dests, spec.payloadFlits, now,
                          spec.token, spec.trafficClass);
        else
            postUnicast(spec.dest, spec.payloadFlits, now, spec.token,
                        spec.trafficClass);
    }
}

void
Nic::stepTx(Cycle now)
{
    if (txFailed_ || txQueue_.empty() || !txOut_)
        return;
    // One injection engine per lane: the first queued job of each
    // lane is that lane's head, and heads prepare (pay the software
    // send overhead) independently, so a credit-blocked bulk packet
    // never head-of-line blocks a latency-class one. The physical
    // link still carries one flit per cycle; higher lanes — the
    // latency partition — are offered it first, mirroring the
    // switches' serviceLane order. With one lane every job shares
    // lane 0 and this is exactly the old single-queue behavior.
    std::vector<std::deque<SendJob>::iterator> heads(
        static_cast<std::size_t>(params_.lanes), txQueue_.end());
    for (auto it = txQueue_.begin(); it != txQueue_.end(); ++it) {
        const auto lane = static_cast<std::size_t>(
            injectLane(it->proto.trafficClass));
        if (heads[lane] == txQueue_.end())
            heads[lane] = it;
    }
    for (int lane = params_.lanes - 1; lane >= 0; --lane) {
        const auto it = heads[static_cast<std::size_t>(lane)];
        if (it == txQueue_.end())
            continue;
        SendJob &job = *it;
        if (!job.prepared) {
            job.prepared = true;
            job.readyAt = now + params_.sendOverhead;
        }
        if (now < job.readyAt)
            continue;
        if (!job.pkt) {
            job.proto.injected = now;
            job.pkt = factory_->make(job.proto);
            stats_.packetsInjected.inc();
            MDW_TRACE_EVENT(tracer_, WormEvent::Inject, now,
                            job.pkt->id, job.pkt->msg, id_, true, 0);
        }
        if (txCredits_[static_cast<std::size_t>(lane)] < 1)
            continue;
        if (job.sent == 0 && txMcastWholePacket_ &&
            job.pkt->kind == PacketKind::HwMulticast &&
            txCredits_[static_cast<std::size_t>(lane)] <
                job.pkt->totalFlits()) {
            continue; // whole-packet reservation toward an IB switch
        }
        txOut_->send(Flit{job.pkt, job.sent, lane}, now);
        ++job.sent;
        --txCredits_[static_cast<std::size_t>(lane)];
        stats_.flitsInjected.inc();
        if (sim_)
            sim_->noteProgress();
        if (job.sent == job.pkt->totalFlits())
            txQueue_.erase(it);
        return; // the link took its one flit for this cycle
    }
}

void
Nic::stepRx(Cycle now)
{
    if (!rxIn_ || !rxIn_->peek(now))
        return;
    if (rxFailed_) {
        // Dead down-link: drain and discard so the channel empties
        // (the failed switch port discards credits anyway).
        rxIn_->receive(now);
        return;
    }
    const Flit flit = rxIn_->receive(now);
    MDW_ASSERT(flit.lane >= 0 && flit.lane < params_.lanes,
               "NIC %d: flit on lane %d of %d", id_, flit.lane,
               params_.lanes);
    const auto lane = static_cast<std::size_t>(flit.lane);
    if (rxCreditOut_)
        rxCreditOut_->send(1, now, flit.lane); // always sinks traffic
    stats_.flitsEjected.inc();
    if (sim_)
        sim_->noteProgress();

    PacketPtr &current = rxCurrent_[lane];
    int &arrived = rxArrived_[lane];
    if (flit.isHead()) {
        MDW_ASSERT(current == nullptr,
                   "NIC %d: head flit while packet %llu in reassembly",
                   id_,
                   current
                       ? static_cast<unsigned long long>(current->id)
                       : 0ULL);
        current = flit.pkt;
        arrived = 1;
    } else {
        MDW_ASSERT(current && current->id == flit.pkt->id,
                   "NIC %d: flit of unexpected packet", id_);
        ++arrived;
    }
    if (flit.isTail()) {
        MDW_ASSERT(arrived == flit.pkt->totalFlits(),
                   "NIC %d: tail after %d of %d flits", id_, arrived,
                   flit.pkt->totalFlits());
        if (poisoned_ && poisoned_->count(flit.pkt->id) != 0) {
            // A fault truncated this packet in flight and the network
            // phantom-completed it; the end-to-end check discards it
            // here. Retransmission re-covers the destination.
            stats_.poisonedDrops.inc();
            MDW_TRACE_EVENT(tracer_, WormEvent::PoisonDrop, now,
                            flit.pkt->id, flit.pkt->msg, id_, true, 0);
        } else if (flit.pkt->taint && flit.pkt->taint->tainted()) {
            // The payload checksum fails: a link let corruption slip
            // past its CRC somewhere on this replication branch. The
            // delivery is discarded (never reported to the tracker,
            // so the message can only complete with verified copies);
            // the source's retransmission path re-covers us.
            stats_.csumFails.inc();
            MDW_TRACE_EVENT(tracer_, WormEvent::PoisonDrop, now,
                            flit.pkt->id, flit.pkt->msg, id_, true, 1);
        } else {
            deliver(current, now);
        }
        current = nullptr;
        arrived = 0;
    }
}

void
Nic::deliver(const PacketPtr &pkt, Cycle now)
{
    MDW_ASSERT(pkt->dests.count() == 1 && pkt->dests.test(id_),
               "NIC %d received a packet for someone else "
               "(dest count %zu)",
               id_, pkt->dests.count());
    stats_.packetsDelivered.inc();
    MDW_TRACE_EVENT(tracer_, WormEvent::Deliver, now, pkt->id,
                    pkt->msg, id_, true, 0);

    if (tracker_->resilient() && tracker_->isDelivered(pkt->msg, id_)) {
        // A redundant copy (retransmission raced the original): let
        // the tracker count the duplicate, but do not forward
        // carriers or disturb reassembly state again.
        tracker_->onDelivered(pkt->msg, id_, now, 0);
        return;
    }

    int message_payload = pkt->payloadFlits;
    if (pkt->msgPackets > 1) {
        // Reassemble: the message is delivered at this node once all
        // of its segments have landed.
        RxMessage &rx = rxMessages_[pkt->msg];
        if (!rx.seen.insert(pkt->msgSeq).second)
            return; // retransmitted segment already held
        rx.payload += pkt->payloadFlits;
        if (static_cast<int>(rx.seen.size()) < pkt->msgPackets)
            return;
        message_payload = rx.payload;
        rxMessages_.erase(pkt->msg);
    }
    if (source_)
        source_->onDelivered(pkt->msg, id_, now);
    tracker_->onDelivered(pkt->msg, id_, now, message_payload);
    if (onDelivery_)
        onDelivery_(*pkt, message_payload, now);

    if (pkt->kind == PacketKind::SwMulticastCarrier &&
        !pkt->swDelegated.empty()) {
        // Forward to the delegated subtree after the software
        // receive overhead.
        PacketPtr captured = pkt;
        const int payload = message_payload;
        MDW_ASSERT(sim_ != nullptr,
                   "NIC %d must be registered to forward carriers",
                   id_);
        sim_->events().schedule(now + params_.recvOverhead,
                                [this, captured, payload] {
                                    forwardSwCarrier(captured, payload);
                                });
    }
}

void
Nic::forwardSwCarrier(PacketPtr pkt, int payloadFlits)
{
    stats_.swForwards.inc();
    const auto sends = planBinomialSends(id_, pkt->swDelegated);
    for (const SwSend &send : sends) {
        PacketDesc proto;
        proto.msg = pkt->msg;
        proto.src = id_;
        proto.dests = DestSet(numHosts_);
        proto.dests.set(send.target);
        proto.kind = PacketKind::SwMulticastCarrier;
        proto.headerFlits = swCarrierHeaderFlits(send.delegated.size());
        proto.payloadFlits = payloadFlits;
        proto.trafficClass = pkt->trafficClass;
        proto.msgPackets = 1;
        proto.msgSeq = 0;
        proto.created = pkt->created;
        proto.swDelegated = send.delegated;
        proto.swPhase = pkt->swPhase + 1;
        enqueueSegmented(std::move(proto));
    }
}

void
Nic::failTx()
{
    MDW_ASSERT(tracker_->resilient(),
               "NIC %d: failTx without a resilient tracker", id_);
    txFailed_ = true;
    // Whatever was queued can no longer leave; the flits of a packet
    // already part-way onto the wire are phantom-completed by the
    // switch's failed input port. Undelivered destinations are
    // written off by the retransmission timeout (or immediately, for
    // messages posted from now on).
    txQueue_.clear();
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

void
Nic::failRx()
{
    rxFailed_ = true;
    std::fill(rxCurrent_.begin(), rxCurrent_.end(), nullptr);
    std::fill(rxArrived_.begin(), rxArrived_.end(), 0);
    if (sim_ != nullptr)
        requestWake(sim_->now());
}

bool
Nic::quiescent(std::string *why) const
{
    const auto complain = [&](const std::string &what) {
        if (why)
            *why += name() + ": " + what + "; ";
        return false;
    };
    if (!txFailed_ && !txQueue_.empty())
        return complain(std::to_string(txQueue_.size()) +
                        " packet(s) still queued for injection");
    for (const PacketPtr &current : rxCurrent_) {
        if (current)
            return complain("packet mid-reassembly at ejection");
    }
    for (const auto &[msg, rx] : rxMessages_) {
        // A segment of a written-off message may legitimately never
        // arrive; only messages the tracker still considers live
        // count as stranded state.
        if (!tracker_->isComplete(msg))
            return complain("message " + std::to_string(msg) +
                            " partially reassembled");
    }
    return true;
}

} // namespace mdw
