/**
 * @file
 * Network interface (NIC) of a processing node.
 *
 * Responsibilities:
 *  - injection: serializes posted messages onto the injection link,
 *    paying a software send overhead per packet (start-up cost);
 *  - hardware multicast: emits a single multidestination worm
 *    (bit-string encoding) or a minimal set of worms (multiport
 *    encoding product groups);
 *  - software multicast: emits the U-Min binomial-tree unicast
 *    carriers and, on receiving a carrier with delegated
 *    destinations, forwards after a receive overhead;
 *  - ejection: consumes arriving flits, reassembles packets, and
 *    reports deliveries to the McastTracker.
 */

#ifndef MDW_HOST_NIC_HH
#define MDW_HOST_NIC_HH

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "host/mcast_tracker.hh"
#include "host/workload.hh"
#include "message/encoding.hh"
#include "message/flit.hh"
#include "sim/channel.hh"
#include "sim/component.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "switch/switch_base.hh"

namespace mdw {

/** How a node implements multicast sends. */
enum class McastScheme
{
    /** Single-phase multidestination worms. */
    Hardware,
    /** U-Min binomial unicast tree. */
    Software,
};

const char *toString(McastScheme scheme);

/** NIC configuration. */
struct NicParams
{
    /** Cycles of software start-up per packet send. */
    Cycle sendOverhead = 100;
    /** Cycles of software processing before forwarding a received
     *  software-multicast carrier. */
    Cycle recvOverhead = 100;
    /** Ejection-side buffering advertised to the switch (flits). */
    int rxWindowFlits = 16;
    /**
     * Virtual lanes on the host links; mirrored from the switch
     * configuration by the network builder. The NIC injects each
     * packet on its traffic class's static lane and keeps per-lane
     * credit and reassembly state.
     */
    int lanes = 1;
    /**
     * Largest payload one packet may carry; longer messages are
     * segmented into several packets and reassembled at the
     * receiver (delivery is reported when the last one lands).
     */
    int maxPayloadFlits = 256;
    McastScheme scheme = McastScheme::Hardware;
    McastEncoding encoding = McastEncoding::BitString;
    EncodingParams enc;
    /**
     * Multiport encoding: tree arity and number of digit levels of
     * the topology (ignored for bit-string).
     */
    int multiportK = 4;
    int multiportLevels = 3;
    /**
     * If true, software-multicast carriers pay extra header flits for
     * the piggy-backed delegated-destination list.
     */
    bool swListOverhead = false;
    /**
     * Cycles to wait for a message's deliveries before retransmitting
     * to the destinations that still owe a copy (fault recovery).
     * 0 disables retransmission entirely. Requires the tracker's
     * resilient mode.
     */
    Cycle retransmitTimeout = 0;
    /**
     * Retransmission attempts per message before the remaining
     * destinations are written off as unreachable. The retry interval
     * doubles per attempt, capped at 8x retransmitTimeout.
     */
    int maxRetransmits = 4;
};

/** Per-NIC activity counters. */
struct NicStats
{
    Counter messagesPosted;
    Counter packetsInjected;
    Counter flitsInjected;
    Counter flitsEjected;
    Counter packetsDelivered;
    Counter swForwards;
    /** Whole-message retransmission rounds issued (fault recovery). */
    Counter retransmits;
    /** Packets discarded at ejection because a fault mangled them. */
    Counter poisonedDrops;
    /** Packets whose end-to-end payload checksum failed at delivery
     *  (corruption evaded the link CRC somewhere upstream). */
    Counter csumFails;
};

/** One processing node's network interface. */
class Nic : public Component
{
  public:
    /**
     * @param numHosts System size (destination universe).
     * @param factory Shared packet-id allocator.
     * @param tracker Shared delivery tracker.
     */
    Nic(std::string name, NodeId id, std::size_t numHosts,
        const NicParams &params, PacketFactory *factory,
        McastTracker *tracker);

    /** Wire the injection link toward the switch. */
    void connectTx(Channel<Flit> *out, CreditChannel *creditIn,
                   const ReceivePolicy &downstream);

    /** Wire the ejection link from the switch. */
    void connectRx(Channel<Flit> *in, CreditChannel *creditOut);

    /** Ejection policy advertised to the upstream switch. */
    ReceivePolicy
    receivePolicy() const
    {
        return ReceivePolicy{params_.rxWindowFlits, false};
    }

    /** Attach a workload polled every cycle (not owned). The NIC
     *  also feeds the workload's onPosted/onDelivered hooks. */
    void setWorkload(Workload *workload) { source_ = workload; }

    /** Pre-redesign name of setWorkload(). */
    void setTrafficSource(TrafficSource *source) { source_ = source; }

    /**
     * Callback invoked on every *message-level* delivery at this
     * node (after reassembly), with the descriptor of the completing
     * packet, the message's total payload, and the cycle. Used by
     * the collective-operations engine.
     */
    using DeliveryCallback =
        std::function<void(const PacketDesc &, int, Cycle)>;

    void
    setDeliveryCallback(DeliveryCallback callback)
    {
        onDelivery_ = std::move(callback);
    }

    /**
     * Post a unicast message (application API). @p token is the
     * workload correlation id reported through Workload::onPosted
     * (0 = untracked); the workload learns the message id *before*
     * the send is launched, because pruning unreachable destinations
     * can retire the message synchronously inside the post.
     * @return The message id (for delivery-callback matching).
     */
    MsgId postUnicast(NodeId dest, int payloadFlits, Cycle now,
                      std::uint64_t token = 0, int trafficClass = 0);

    /**
     * Post a multicast message; expands per the configured scheme
     * and encoding. @p dests must not contain this node. @p token as
     * for postUnicast().
     * @return The message id (for delivery-callback matching).
     */
    MsgId postMulticast(const DestSet &dests, int payloadFlits,
                        Cycle now, std::uint64_t token = 0,
                        int trafficClass = 0);

    /**
     * Emit a 2-flit hardware-barrier arrival token for @p group
     * (consumed by the switch combining units, never delivered).
     */
    void postBarrierArrive(int group, Cycle now);

    void step(Cycle now) override;

    Cycle nextWork(Cycle now) override;

    NodeId nodeId() const { return id_; }
    const NicStats &stats() const { return stats_; }

    /**
     * Register this NIC's stats under "nic.<id>." and pick up the
     * shared worm tracer. Called once by the network after wiring.
     */
    void attachTelemetry(Telemetry &telemetry);

    /** Packets waiting to be injected (saturation indicator). */
    std::size_t txBacklog() const { return txQueue_.size(); }

    // --- Fault-injection hooks (resilience layer) ------------------

    /**
     * Attach the shared poison registry: a packet whose id appears
     * there was truncated by a fault and phantom-completed in the
     * network; this NIC silently discards such deliveries (modeling
     * an end-to-end CRC check).
     */
    void setPoisonRegistry(const std::unordered_set<PacketId> *poisoned)
    {
        poisoned_ = poisoned;
    }

    /**
     * Attach this host's reachable-destination set (maintained by the
     * resilience layer; updated in place as faults land). Posts and
     * retransmissions write unreachable destinations off immediately
     * instead of burning retries.
     */
    void setReachable(const DestSet *reachable)
    {
        reachable_ = reachable;
    }

    /**
     * Kill the injection side (the host's up-link died): queued
     * packets are dropped and every future post is written off as
     * undeliverable. Requires the tracker's resilient mode.
     */
    void failTx();

    /** Kill the ejection side: arriving flits are drained and
     *  discarded. */
    void failRx();

    /**
     * End-of-run invariant: nothing queued for injection, no packet
     * mid-reassembly, and (strict mode) no partially reassembled
     * message. Appends a reason to @p why on failure.
     */
    bool quiescent(std::string *why) const;

  private:
    struct SendJob
    {
        PacketDesc proto;
        PacketPtr pkt;      // created when transfer starts
        int sent = 0;
        bool prepared = false;
        Cycle readyAt = 0;
    };

    void pollSource(Cycle now);
    void stepTx(Cycle now);
    void stepRx(Cycle now);
    /**
     * Expand one (re)transmission of @p msg toward @p dests per the
     * configured scheme/encoding and queue the packets. Shared by the
     * post* entry points and the retransmission path (which must not
     * allocate a new message id).
     */
    void sendCopies(MsgId msg, const DestSet &dests, bool multicast,
                    int payloadFlits, int trafficClass, Cycle now);
    /** Filter dests through reachability, writing the rest off. */
    DestSet pruneUnreachable(MsgId msg, const DestSet &dests,
                             Cycle now);
    /** First transmission: prune, arm the retry timer, send. */
    void launch(MsgId msg, const DestSet &dests, bool multicast,
                int payloadFlits, int trafficClass, Cycle now);
    /** Fire retransmissions whose delivery deadline has passed. */
    void checkRetransmits(Cycle now);
    void enqueueJob(PacketDesc proto);
    /** Split @p proto into maxPayloadFlits-sized packets and queue. */
    void enqueueSegmented(PacketDesc proto);
    void deliver(const PacketPtr &pkt, Cycle now);
    void forwardSwCarrier(PacketPtr pkt, int payloadFlits);
    int swCarrierHeaderFlits(std::size_t delegated) const;

    NodeId id_;
    std::size_t numHosts_;
    NicParams params_;
    PacketFactory *factory_;
    McastTracker *tracker_;
    Workload *source_ = nullptr;

    /** Static lane a packet of @p trafficClass is injected on. */
    int injectLane(int trafficClass) const
    {
        return laneClassBase(params_.lanes, trafficClass);
    }

    // Injection side.
    Channel<Flit> *txOut_ = nullptr;
    CreditChannel *txCreditIn_ = nullptr;
    /** Per-lane credits toward the switch input FIFOs. */
    std::vector<int> txCredits_;
    bool txMcastWholePacket_ = false;
    std::deque<SendJob> txQueue_;

    // Ejection side. Reassembly is per lane: the switch interleaves
    // packets of different lanes on the physical ejection link.
    Channel<Flit> *rxIn_ = nullptr;
    CreditChannel *rxCreditOut_ = nullptr;
    std::vector<PacketPtr> rxCurrent_;
    std::vector<int> rxArrived_;

    DeliveryCallback onDelivery_;

    /** Reassembly of multi-packet messages. */
    struct RxMessage
    {
        /** Segment sequence numbers seen (dedups retransmissions). */
        std::unordered_set<int> seen;
        int payload = 0;
    };
    std::unordered_map<MsgId, RxMessage> rxMessages_;

    /** One message awaiting delivery confirmation (retransmission). */
    struct Pending
    {
        DestSet dests{0};
        int payloadFlits = 0;
        bool multicast = false;
        /** Lane class of the original send; retransmits keep it. */
        int trafficClass = 0;
        int attempts = 0;
        Cycle interval = 0;
        Cycle deadline = 0;
    };
    /** Ordered by message id so retry bursts are deterministic. */
    std::map<MsgId, Pending> pending_;
    Cycle nextRetx_ = kNoCycle;

    const std::unordered_set<PacketId> *poisoned_ = nullptr;
    const DestSet *reachable_ = nullptr;
    bool txFailed_ = false;
    bool rxFailed_ = false;

    /** Shared worm tracer; null while tracing is off. */
    WormTracer *tracer_ = nullptr;

    NicStats stats_;
};

} // namespace mdw

#endif // MDW_HOST_NIC_HH
