/**
 * @file
 * End-to-end message accounting.
 *
 * Tracks every logical message (unicast or multicast) from creation
 * to its deliveries and computes the paper's two multicast latency
 * metrics [Nupairoj/Ni]: (a) latency of the LAST received copy and
 * (b) the average over per-destination copies. Messages created
 * inside the measurement window feed the samplers; everything else is
 * still tracked (for drain/watchdog logic) but not sampled.
 */

#ifndef MDW_HOST_MCAST_TRACKER_HH
#define MDW_HOST_MCAST_TRACKER_HH

#include <cstdint>
#include <unordered_map>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mdw {

/** Tracks deliveries of all in-flight logical messages. */
class McastTracker
{
  public:
    /** Register a new logical message. */
    void expectMessage(MsgId msg, NodeId src, std::size_t destCount,
                       Cycle created, bool isMulticast);

    /** Record the delivery of one copy at node @p dest. */
    void onDelivered(MsgId msg, NodeId dest, Cycle now,
                     int payloadFlits);

    /**
     * Set the measurement window: messages *created* in
     * [start, end) are sampled; payload flits *delivered* in
     * [start, end) count toward throughput.
     */
    void setWindow(Cycle start, Cycle end);

    /** Messages registered and not yet fully delivered. */
    std::size_t inFlight() const { return live_.size(); }

    /** In-flight messages that were created inside the window. */
    std::size_t measuredInFlight() const { return measuredLive_; }

    /** Completed unicast message latencies (created -> delivered). */
    const Sampler &unicastLatency() const { return unicast_; }
    /** Completed multicast latency, last-copy metric. */
    const Sampler &mcastLastLatency() const { return mcastLast_; }
    /** Completed multicast latency, per-copy average metric. */
    const Sampler &mcastAvgLatency() const { return mcastAvg_; }

    /** Latency distribution of measured unicasts (32-cycle bins). */
    const Histogram &unicastHist() const { return unicastHist_; }
    /** Last-copy latency distribution of measured multicasts. */
    const Histogram &mcastLastHist() const { return mcastLastHist_; }

    /** Payload flits delivered during the window. */
    std::uint64_t windowDeliveredFlits() const { return windowFlits_; }

    /** Total copies delivered (all time). */
    std::uint64_t totalDeliveries() const { return deliveries_; }
    /** Total messages completed (all time). */
    std::uint64_t totalCompleted() const { return completed_; }

    /** True if message @p msg has completed (tests). */
    bool isComplete(MsgId msg) const { return !live_.count(msg); }

    /** Forget samplers and counters, keep live messages. */
    void resetStats();

  private:
    struct Record
    {
        NodeId src = kInvalidNode;
        std::size_t expected = 0;
        std::size_t arrived = 0;
        Cycle created = 0;
        Cycle lastArrival = 0;
        double latencySum = 0.0;
        bool isMulticast = false;
        bool measured = false;
    };

    std::unordered_map<MsgId, Record> live_;
    std::size_t measuredLive_ = 0;

    Cycle windowStart_ = 0;
    Cycle windowEnd_ = kNoCycle;

    Sampler unicast_;
    Sampler mcastLast_;
    Sampler mcastAvg_;
    Histogram unicastHist_{32.0, 4096};
    Histogram mcastLastHist_{32.0, 4096};
    std::uint64_t windowFlits_ = 0;
    std::uint64_t deliveries_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace mdw

#endif // MDW_HOST_MCAST_TRACKER_HH
