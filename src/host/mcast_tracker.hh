/**
 * @file
 * End-to-end message accounting.
 *
 * Tracks every logical message (unicast or multicast) from creation
 * to its deliveries and computes the paper's two multicast latency
 * metrics [Nupairoj/Ni]: (a) latency of the LAST received copy and
 * (b) the average over per-destination copies. Messages created
 * inside the measurement window feed the samplers; everything else is
 * still tracked (for drain/watchdog logic) but not sampled.
 */

#ifndef MDW_HOST_MCAST_TRACKER_HH
#define MDW_HOST_MCAST_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mdw {

/** Tracks deliveries of all in-flight logical messages. */
class McastTracker
{
  public:
    /** Register a new logical message. */
    void expectMessage(MsgId msg, NodeId src, std::size_t destCount,
                       Cycle created, bool isMulticast);

    /** Record the delivery of one copy at node @p dest. */
    void onDelivered(MsgId msg, NodeId dest, Cycle now,
                     int payloadFlits);

    /**
     * Called whenever a message retires (all destinations delivered
     * or written off), with its id, source and the retiring cycle.
     * Fires after the tracker's own state is updated, so
     * isComplete(msg) is true inside the hook. Closed-loop workloads
     * hang off this to release dependent messages.
     */
    using CompletionHook = std::function<void(MsgId, NodeId, Cycle)>;

    void
    setCompletionHook(CompletionHook hook)
    {
        onComplete_ = std::move(hook);
    }

    /**
     * Switch to resilient accounting (fault injection / NIC
     * retransmission): redundant copies at a destination are
     * deduplicated instead of panicking, copies of already-completed
     * messages are swallowed, and destinations can be written off as
     * unreachable. Without this call, behaviour is byte-identical to
     * the strict tracker. Enable before any traffic flows.
     */
    void enableResilience() { resilient_ = true; }
    bool resilient() const { return resilient_; }

    /**
     * Give up on one destination of @p msg (no surviving route).
     * Counts toward completion so the message can retire partially
     * delivered. Returns false if the message already completed or
     * the destination was already delivered/marked.
     */
    bool markUnreachable(MsgId msg, NodeId dest, Cycle now);

    /**
     * Has @p dest's copy of @p msg been delivered (or the destination
     * written off)? True for completed messages. Resilient mode only;
     * used by the NIC to skip satisfied destinations on retransmit.
     */
    bool isDelivered(MsgId msg, NodeId dest) const;

    /** Redundant copies swallowed by deduplication (resilient). */
    std::uint64_t duplicateDeliveries() const { return duplicates_; }
    /** Messages retired with at least one unreachable destination. */
    std::uint64_t partialCompleted() const { return partialCompleted_; }
    /** Destination copies written off as unreachable. */
    std::uint64_t unreachableDests() const { return unreachableDests_; }

    /**
     * Set the measurement window: messages *created* in
     * [start, end) are sampled; payload flits *delivered* in
     * [start, end) count toward throughput.
     */
    void setWindow(Cycle start, Cycle end);

    /** Messages registered and not yet fully delivered. */
    std::size_t inFlight() const { return live_.size(); }

    /** In-flight messages that were created inside the window. */
    std::size_t measuredInFlight() const { return measuredLive_; }

    /** Completed unicast message latencies (created -> delivered). */
    const Sampler &unicastLatency() const { return unicast_; }
    /** Completed multicast latency, last-copy metric. */
    const Sampler &mcastLastLatency() const { return mcastLast_; }
    /** Completed multicast latency, per-copy average metric. */
    const Sampler &mcastAvgLatency() const { return mcastAvg_; }

    /** Latency distribution of measured unicasts (32-cycle bins). */
    const Histogram &unicastHist() const { return unicastHist_; }
    /** Last-copy latency distribution of measured multicasts. */
    const Histogram &mcastLastHist() const { return mcastLastHist_; }

    /** Payload flits delivered during the window. */
    std::uint64_t windowDeliveredFlits() const { return windowFlits_; }

    /** Total copies delivered (all time). */
    std::uint64_t totalDeliveries() const { return deliveries_; }
    /** Total messages completed (all time). */
    std::uint64_t totalCompleted() const { return completed_; }

    /** True if message @p msg has completed (tests). */
    bool isComplete(MsgId msg) const { return !live_.count(msg); }

    /** Forget samplers and counters, keep live messages. */
    void resetStats();

  private:
    struct Record
    {
        NodeId src = kInvalidNode;
        std::size_t expected = 0;
        std::size_t arrived = 0;
        /** Destinations written off as unreachable (resilient). */
        std::size_t unreachable = 0;
        Cycle created = 0;
        Cycle lastArrival = 0;
        double latencySum = 0.0;
        bool isMulticast = false;
        bool measured = false;
        /** Destinations delivered or written off (resilient only). */
        std::unordered_set<NodeId> resolved;
    };

    /** Retire a record whose destinations are all accounted for. */
    void finish(std::unordered_map<MsgId, Record>::iterator it,
                Cycle now);

    std::unordered_map<MsgId, Record> live_;
    std::size_t measuredLive_ = 0;

    Cycle windowStart_ = 0;
    Cycle windowEnd_ = kNoCycle;

    Sampler unicast_;
    Sampler mcastLast_;
    Sampler mcastAvg_;
    Histogram unicastHist_{32.0, 4096};
    Histogram mcastLastHist_{32.0, 4096};
    std::uint64_t windowFlits_ = 0;
    std::uint64_t deliveries_ = 0;
    std::uint64_t completed_ = 0;

    bool resilient_ = false;
    /** Messages fully retired; swallows late redundant copies. */
    std::unordered_set<MsgId> completedIds_;
    std::uint64_t duplicates_ = 0;
    std::uint64_t partialCompleted_ = 0;
    std::uint64_t unreachableDests_ = 0;

    CompletionHook onComplete_;
};

} // namespace mdw

#endif // MDW_HOST_MCAST_TRACKER_HH
