#include "host/mcast_tracker.hh"

#include "sim/logging.hh"

namespace mdw {

void
McastTracker::expectMessage(MsgId msg, NodeId src,
                            std::size_t destCount, Cycle created,
                            bool isMulticast)
{
    MDW_ASSERT(destCount >= 1, "message %llu with no destinations",
               static_cast<unsigned long long>(msg));
    Record rec;
    rec.src = src;
    rec.expected = destCount;
    rec.created = created;
    rec.isMulticast = isMulticast;
    rec.measured = created >= windowStart_ && created < windowEnd_;
    const auto [it, inserted] = live_.emplace(msg, rec);
    MDW_ASSERT(inserted, "message %llu registered twice",
               static_cast<unsigned long long>(msg));
    (void)it;
    if (rec.measured)
        ++measuredLive_;
}

void
McastTracker::onDelivered(MsgId msg, NodeId dest, Cycle now,
                          int payloadFlits)
{
    auto it = live_.find(msg);
    MDW_ASSERT(it != live_.end(),
               "delivery at node %d for unknown message %llu", dest,
               static_cast<unsigned long long>(msg));
    Record &rec = it->second;
    MDW_ASSERT(rec.arrived < rec.expected,
               "message %llu over-delivered at node %d",
               static_cast<unsigned long long>(msg), dest);
    ++rec.arrived;
    ++deliveries_;
    rec.lastArrival = now;
    rec.latencySum += static_cast<double>(now - rec.created);
    if (now >= windowStart_ && now < windowEnd_)
        windowFlits_ += static_cast<std::uint64_t>(payloadFlits);

    if (rec.arrived == rec.expected) {
        if (rec.measured) {
            const double last =
                static_cast<double>(rec.lastArrival - rec.created);
            const double avg =
                rec.latencySum / static_cast<double>(rec.expected);
            if (rec.isMulticast) {
                mcastLast_.add(last);
                mcastAvg_.add(avg);
                mcastLastHist_.add(last);
            } else {
                unicast_.add(last);
                unicastHist_.add(last);
            }
            --measuredLive_;
        }
        ++completed_;
        live_.erase(it);
    }
}

void
McastTracker::setWindow(Cycle start, Cycle end)
{
    MDW_ASSERT(start <= end, "inverted measurement window");
    windowStart_ = start;
    windowEnd_ = end;
}

void
McastTracker::resetStats()
{
    unicast_.reset();
    mcastLast_.reset();
    mcastAvg_.reset();
    unicastHist_.reset();
    mcastLastHist_.reset();
    windowFlits_ = 0;
    deliveries_ = 0;
    completed_ = 0;
}

} // namespace mdw
