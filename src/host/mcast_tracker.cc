#include "host/mcast_tracker.hh"

#include "sim/logging.hh"

namespace mdw {

void
McastTracker::expectMessage(MsgId msg, NodeId src,
                            std::size_t destCount, Cycle created,
                            bool isMulticast)
{
    MDW_ASSERT(destCount >= 1, "message %llu with no destinations",
               static_cast<unsigned long long>(msg));
    Record rec;
    rec.src = src;
    rec.expected = destCount;
    rec.created = created;
    rec.isMulticast = isMulticast;
    rec.measured = created >= windowStart_ && created < windowEnd_;
    const auto [it, inserted] = live_.emplace(msg, rec);
    MDW_ASSERT(inserted, "message %llu registered twice",
               static_cast<unsigned long long>(msg));
    (void)it;
    if (rec.measured)
        ++measuredLive_;
}

void
McastTracker::onDelivered(MsgId msg, NodeId dest, Cycle now,
                          int payloadFlits)
{
    auto it = live_.find(msg);
    if (resilient_) {
        if (it == live_.end()) {
            // A redundant copy of an already-completed message (a
            // retransmission raced the original): swallow it.
            MDW_ASSERT(completedIds_.count(msg) != 0,
                       "delivery at node %d for unknown message %llu",
                       dest, static_cast<unsigned long long>(msg));
            ++duplicates_;
            return;
        }
        if (!it->second.resolved.insert(dest).second) {
            ++duplicates_;
            return;
        }
    } else {
        MDW_ASSERT(it != live_.end(),
                   "delivery at node %d for unknown message %llu", dest,
                   static_cast<unsigned long long>(msg));
    }
    Record &rec = it->second;
    MDW_ASSERT(rec.arrived + rec.unreachable < rec.expected,
               "message %llu over-delivered at node %d",
               static_cast<unsigned long long>(msg), dest);
    ++rec.arrived;
    ++deliveries_;
    rec.lastArrival = now;
    rec.latencySum += static_cast<double>(now - rec.created);
    if (now >= windowStart_ && now < windowEnd_)
        windowFlits_ += static_cast<std::uint64_t>(payloadFlits);

    if (rec.arrived + rec.unreachable == rec.expected)
        finish(it, now);
}

bool
McastTracker::markUnreachable(MsgId msg, NodeId dest, Cycle now)
{
    MDW_ASSERT(resilient_, "markUnreachable on a strict tracker");
    auto it = live_.find(msg);
    if (it == live_.end())
        return false; // already completed
    Record &rec = it->second;
    if (!rec.resolved.insert(dest).second)
        return false; // delivered or already written off
    ++rec.unreachable;
    ++unreachableDests_;
    if (rec.arrived + rec.unreachable == rec.expected)
        finish(it, now);
    return true;
}

bool
McastTracker::isDelivered(MsgId msg, NodeId dest) const
{
    MDW_ASSERT(resilient_, "isDelivered on a strict tracker");
    auto it = live_.find(msg);
    if (it == live_.end()) {
        MDW_ASSERT(completedIds_.count(msg) != 0,
                   "isDelivered for unknown message %llu",
                   static_cast<unsigned long long>(msg));
        return true;
    }
    return it->second.resolved.count(dest) != 0;
}

void
McastTracker::finish(std::unordered_map<MsgId, Record>::iterator it,
                     Cycle now)
{
    Record &rec = it->second;
    const MsgId msg = it->first;
    const NodeId src = rec.src;
    const bool partial = rec.unreachable > 0;
    if (rec.measured) {
        // Partially-delivered messages never feed the latency
        // samplers: a last-copy latency over a shrunken destination
        // set would not be comparable across fault rates.
        if (!partial) {
            const double last =
                static_cast<double>(rec.lastArrival - rec.created);
            const double avg =
                rec.latencySum / static_cast<double>(rec.expected);
            if (rec.isMulticast) {
                mcastLast_.add(last);
                mcastAvg_.add(avg);
                mcastLastHist_.add(last);
            } else {
                unicast_.add(last);
                unicastHist_.add(last);
            }
        }
        --measuredLive_;
    }
    if (partial)
        ++partialCompleted_;
    else
        ++completed_;
    if (resilient_)
        completedIds_.insert(it->first);
    live_.erase(it);
    if (onComplete_)
        onComplete_(msg, src, now);
}

void
McastTracker::setWindow(Cycle start, Cycle end)
{
    MDW_ASSERT(start <= end, "inverted measurement window");
    windowStart_ = start;
    windowEnd_ = end;
}

void
McastTracker::resetStats()
{
    unicast_.reset();
    mcastLast_.reset();
    mcastAvg_.reset();
    unicastHist_.reset();
    mcastLastHist_.reset();
    windowFlits_ = 0;
    deliveries_ = 0;
    completed_ = 0;
    duplicates_ = 0;
    partialCompleted_ = 0;
    unreachableDests_ = 0;
}

} // namespace mdw
