#include "host/sw_mcast.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mdw {

std::vector<SwSend>
planBinomialSends(NodeId self, const std::vector<NodeId> &toCover)
{
    std::vector<SwSend> sends;
    // Coverage set is [self] + rest; repeatedly split in half and
    // delegate the second half to its first member.
    std::vector<NodeId> rest = toCover;
    while (!rest.empty()) {
        MDW_ASSERT(std::find(rest.begin(), rest.end(), self) ==
                       rest.end(),
                   "node %d asked to cover itself", self);
        const std::size_t n = rest.size() + 1; // including self
        const std::size_t keep = (n + 1) / 2;  // first half w/ self
        // rest[0 .. keep-2] stays ours; rest[keep-1 ..] is delegated.
        SwSend send;
        send.target = rest[keep - 1];
        send.delegated.assign(rest.begin() +
                                  static_cast<std::ptrdiff_t>(keep),
                              rest.end());
        rest.resize(keep - 1);
        sends.push_back(std::move(send));
    }
    return sends;
}

int
binomialPhases(std::size_t d)
{
    int phases = 0;
    std::size_t covered = 1;
    while (covered < d + 1) {
        covered *= 2;
        ++phases;
    }
    return phases;
}

} // namespace mdw
