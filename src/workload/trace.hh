/**
 * @file
 * Trace-driven workload: replay an explicit list of message postings
 * from memory or from a text trace file, so recorded or hand-crafted
 * communication patterns can be fed through the simulator.
 *
 * Format v1 — one event per line, '#' starts a comment:
 *
 *     <cycle> <src> U <dest> <payloadFlits>
 *     <cycle> <src> M <payloadFlits> <dest1,dest2,...>
 *
 * Format v2 (dependency-carrying; first line is the `# mdw-trace/2`
 * magic) prefixes every event with a unique positive id and accepts
 * an optional trailing dependency list:
 *
 *     <id> <cycle> <src> U <dest> <payloadFlits> [deps=<id1,id2,...>]
 *     <id> <cycle> <src> M <payloadFlits> <d1,d2,...> [deps=...]
 *
 * A v2 event is released at max(<cycle>, last dependency completion
 * + 1): <cycle> is its earliest issue time, and the +1 is the release
 * rule that keeps the idle-skipping fast path bit-identical to the
 * cycle-accurate oracle (see host/workload.hh).
 */

#ifndef MDW_WORKLOAD_TRACE_HH
#define MDW_WORKLOAD_TRACE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "workload/closed_loop.hh"

namespace mdw {

/** One posting in a trace. */
struct TraceEvent
{
    /** v2: unique positive event id (0 = v1 event, cannot be a
     *  dependency target). */
    std::uint64_t id = 0;
    /** v2: ids whose *completion* this event waits for. */
    std::vector<std::uint64_t> deps;
    /** Earliest cycle the event may issue. */
    Cycle when = 0;
    NodeId src = kInvalidNode;
    MessageSpec spec;
};

/** Replays TraceEvents through the closed-loop Workload interface. */
class TraceTraffic : public ClosedLoopWorkload
{
  public:
    /** Empty trace over a universe of @p numHosts nodes. */
    explicit TraceTraffic(std::size_t numHosts);

    /** Parse @p path; fatal() with a line number on malformed input. */
    static TraceTraffic fromFile(const std::string &path,
                                 std::size_t numHosts);

    /** Serialize @p events to @p path (v2 iff any event carries an id
     *  or dependencies; mixing id-less events into a v2 trace is
     *  fatal). */
    static void writeFile(const std::string &path,
                          const std::vector<TraceEvent> &events);

    /** Append one event (validated against the universe). Only legal
     *  before resolveDependencies()/the first poll. */
    void add(TraceEvent event);

    /**
     * Freeze the event list: resolve dependency ids, fatal() on an
     * unknown id or a dependency cycle, and schedule every
     * dependency-free event. Called implicitly by the first
     * poll()/nextArrival() and by fromFile().
     */
    void resolveDependencies();

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    Cycle nextArrival(NodeId node, Cycle now) override;

    bool exhausted() const override { return pending() == 0; }

    /** Events not yet handed to a NIC (blocked or scheduled). */
    std::size_t
    pending() const
    {
        return events_.size() - emittedCount();
    }

    /** Total events loaded. */
    std::size_t size() const { return events_.size(); }

    /** The loaded events, in insertion order (round-trip tests). */
    const std::vector<TraceEvent> &events() const { return events_; }

  protected:
    void onTokenCompleted(std::uint64_t token, Cycle now) override;

  private:
    void release(std::size_t index);

    std::size_t numHosts_;
    std::vector<TraceEvent> events_;
    /** Explicit (non-zero) event id -> index in events_. */
    std::unordered_map<std::uint64_t, std::size_t> byId_;
    /** Per event, indices of the events waiting on its completion. */
    std::vector<std::vector<std::size_t>> dependents_;
    /** Unsatisfied dependencies per event. */
    std::vector<std::size_t> indegree_;
    /** Earliest release allowed by completed dependencies. */
    std::vector<Cycle> readyAt_;
    bool resolved_ = false;
};

} // namespace mdw

#endif // MDW_WORKLOAD_TRACE_HH
