/**
 * @file
 * Trace-driven workload: replay an explicit list of message postings
 * from memory or from a text trace file, so recorded or hand-crafted
 * communication patterns can be fed through the simulator.
 *
 * Trace file format — one event per line, '#' starts a comment:
 *
 *     <cycle> <src> U <dest> <payloadFlits>
 *     <cycle> <src> M <payloadFlits> <dest1,dest2,...>
 */

#ifndef MDW_WORKLOAD_TRACE_HH
#define MDW_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "host/nic.hh"

namespace mdw {

/** One posting in a trace. */
struct TraceEvent
{
    Cycle when = 0;
    NodeId src = kInvalidNode;
    MessageSpec spec;
};

/** Replays TraceEvents through the TrafficSource interface. */
class TraceTraffic : public TrafficSource
{
  public:
    /** Empty trace over a universe of @p numHosts nodes. */
    explicit TraceTraffic(std::size_t numHosts);

    /** Parse @p path; fatal() with a line number on malformed input. */
    static TraceTraffic fromFile(const std::string &path,
                                 std::size_t numHosts);

    /** Serialize @p events to @p path in the trace format. */
    static void writeFile(const std::string &path,
                          const std::vector<TraceEvent> &events);

    /** Append one event (validated against the universe). */
    void add(TraceEvent event);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    /** Events not yet handed out. */
    std::size_t pending() const { return pending_; }

    /** Total events loaded. */
    std::size_t size() const { return total_; }

  private:
    std::size_t numHosts_;
    /** Per node, events sorted by cycle with a replay cursor. */
    struct NodeQueue
    {
        std::vector<TraceEvent> events;
        std::size_t next = 0;
        bool sorted = false;
    };
    std::vector<NodeQueue> nodes_;
    std::size_t pending_ = 0;
    std::size_t total_ = 0;
};

} // namespace mdw

#endif // MDW_WORKLOAD_TRACE_HH
