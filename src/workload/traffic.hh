/**
 * @file
 * Synthetic traffic generators for the paper's evaluation workloads:
 * uniform unicast, multiple multicast (every node issues random
 * degree-d multicasts), and bimodal (a unicast background with a
 * fraction of multicast messages).
 */

#ifndef MDW_WORKLOAD_TRAFFIC_HH
#define MDW_WORKLOAD_TRAFFIC_HH

#include <map>
#include <string>
#include <vector>

#include "host/workload.hh"
#include "sim/rng.hh"

namespace mdw {

/** Which synthetic workload to generate. */
enum class TrafficPattern
{
    UniformUnicast,
    MultipleMulticast,
    Bimodal,
    /**
     * Unicast background in which a fraction of messages target one
     * hot node (the paper's future-work traffic class).
     */
    HotSpot,
};

const char *toString(TrafficPattern pattern);

/** Which family of workload an experiment drives. */
enum class WorkloadKind
{
    /** Open-loop Bernoulli arrivals (the paper's evaluation mode). */
    Synthetic,
    /** Closed-loop collective kernels (workload/kernels.hh). */
    Collective,
    /** Trace replay, optionally dependency-carrying (workload/trace.hh). */
    Trace,
};

const char *toString(WorkloadKind kind);

/** Which collective kernel a Collective workload iterates. */
enum class CollectiveOp
{
    /** Gather-to-root control messages, then a multicast release. */
    Barrier,
    /** Reduce tree to the root, then a payload-carrying multicast. */
    Allreduce,
    /** A rotating owner multicasts invalidations to the sharers. */
    Invalidate,
};

const char *toString(CollectiveOp op);

/** Parameters of a generated workload (all kinds). */
struct WorkloadParams
{
    WorkloadKind kind = WorkloadKind::Synthetic;

    // --- Synthetic (open-loop) -------------------------------------
    TrafficPattern pattern = TrafficPattern::MultipleMulticast;
    /**
     * Offered load in *payload* flits per node per cycle, counting
     * each message once at its source (a multicast's fan-out
     * multiplies delivered, not offered, load).
     */
    double load = 0.1;
    /** Payload flits per message. */
    int payloadFlits = 64;
    /** Destinations per multicast. */
    int mcastDegree = 8;
    /** Fraction of messages that are multicast (Bimodal only). */
    double mcastFraction = 0.1;
    /**
     * Traffic class stamped on generated multicasts (unicasts stay
     * class 0). Set to 1 so a bimodal workload routes its multicast
     * foreground on the latency-sensitive lane partition. Default 0
     * keeps single-class behavior.
     */
    int mcastClass = 0;
    /** Fraction of messages aimed at the hot node (HotSpot only). */
    double hotFraction = 0.2;
    /** The hot node (HotSpot only). */
    NodeId hotNode = 0;
    std::uint64_t seed = 42;
    /** Generation starts at this cycle. */
    Cycle startCycle = 0;
    /** Generation stops at this cycle (kNoCycle = never). */
    Cycle stopCycle = kNoCycle;

    // --- Collective (closed-loop) ----------------------------------
    CollectiveOp collective = CollectiveOp::Allreduce;
    /** Iterations per communicator group. */
    int rounds = 8;
    /** Independent communicator groups (multi-tenant when > 1). */
    int groups = 1;
    /**
     * Members per group: 0 = every host (single group) or a
     * heavy-tailed random size per group (multi-tenant); >= 2 fixes
     * the size. Membership is drawn from `seed`.
     */
    int groupSize = 0;
    /** Think-time cycles between a round's completion and the next. */
    Cycle think = 0;

    // --- Trace replay ----------------------------------------------
    /** Trace file to replay (workload.kind=trace). */
    std::string tracePath;
};

/** Pre-redesign name (the struct used to cover synthetic only). */
using TrafficParams = WorkloadParams;

/** Open-loop Bernoulli-arrival workload generator. */
class SyntheticTraffic : public Workload
{
  public:
    SyntheticTraffic(std::size_t numHosts, const TrafficParams &params);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    Cycle nextArrival(NodeId node, Cycle now) override;

    /** Message arrivals per node per cycle implied by the load. */
    double messageRate() const { return rate_; }

    /** Messages generated so far across all nodes. */
    std::uint64_t generated() const { return generated_; }

  private:
    struct NodeState
    {
        Rng rng{1};
        Cycle next = kNoCycle;
        bool started = false;
    };

    MessageSpec makeSpec(NodeState &state, NodeId self);
    NodeId randomOther(NodeState &state, NodeId self);
    DestSet randomDests(NodeState &state, NodeId self, int degree);

    std::size_t numHosts_;
    TrafficParams params_;
    double rate_;
    std::vector<NodeState> nodes_;
    std::uint64_t generated_ = 0;
};

/**
 * Deterministic scripted workload for tests and examples: an explicit
 * list of (cycle, node, message) postings.
 */
class ScriptedTraffic : public Workload
{
  public:
    /** Schedule @p spec to be posted by @p node at cycle @p when. */
    void post(Cycle when, NodeId node, MessageSpec spec);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    /** Exact per-node lookup (O(log n)): the fast path sleeps the
     *  NIC straight through to its next scripted posting. */
    Cycle nextArrival(NodeId node, Cycle now) override;

    bool exhausted() const override { return pending_ == 0; }

    /** Postings not yet handed out. */
    std::size_t pending() const { return pending_; }

  private:
    /** Per node, postings keyed by cycle. */
    std::map<NodeId, std::map<Cycle, std::vector<MessageSpec>>> script_;
    std::size_t pending_ = 0;
};

} // namespace mdw

#endif // MDW_WORKLOAD_TRAFFIC_HH
