/**
 * @file
 * Synthetic traffic generators for the paper's evaluation workloads:
 * uniform unicast, multiple multicast (every node issues random
 * degree-d multicasts), and bimodal (a unicast background with a
 * fraction of multicast messages).
 */

#ifndef MDW_WORKLOAD_TRAFFIC_HH
#define MDW_WORKLOAD_TRAFFIC_HH

#include <map>
#include <vector>

#include "host/nic.hh"
#include "sim/rng.hh"

namespace mdw {

/** Which synthetic workload to generate. */
enum class TrafficPattern
{
    UniformUnicast,
    MultipleMulticast,
    Bimodal,
    /**
     * Unicast background in which a fraction of messages target one
     * hot node (the paper's future-work traffic class).
     */
    HotSpot,
};

const char *toString(TrafficPattern pattern);

/** Parameters of a synthetic workload. */
struct TrafficParams
{
    TrafficPattern pattern = TrafficPattern::MultipleMulticast;
    /**
     * Offered load in *payload* flits per node per cycle, counting
     * each message once at its source (a multicast's fan-out
     * multiplies delivered, not offered, load).
     */
    double load = 0.1;
    /** Payload flits per message. */
    int payloadFlits = 64;
    /** Destinations per multicast. */
    int mcastDegree = 8;
    /** Fraction of messages that are multicast (Bimodal only). */
    double mcastFraction = 0.1;
    /** Fraction of messages aimed at the hot node (HotSpot only). */
    double hotFraction = 0.2;
    /** The hot node (HotSpot only). */
    NodeId hotNode = 0;
    std::uint64_t seed = 42;
    /** Generation starts at this cycle. */
    Cycle startCycle = 0;
    /** Generation stops at this cycle (kNoCycle = never). */
    Cycle stopCycle = kNoCycle;
};

/** Open-loop Bernoulli-arrival workload generator. */
class SyntheticTraffic : public TrafficSource
{
  public:
    SyntheticTraffic(std::size_t numHosts, const TrafficParams &params);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    Cycle nextArrival(NodeId node, Cycle now) override;

    /** Message arrivals per node per cycle implied by the load. */
    double messageRate() const { return rate_; }

    /** Messages generated so far across all nodes. */
    std::uint64_t generated() const { return generated_; }

  private:
    struct NodeState
    {
        Rng rng{1};
        Cycle next = kNoCycle;
        bool started = false;
    };

    MessageSpec makeSpec(NodeState &state, NodeId self);
    NodeId randomOther(NodeState &state, NodeId self);
    DestSet randomDests(NodeState &state, NodeId self, int degree);

    std::size_t numHosts_;
    TrafficParams params_;
    double rate_;
    std::vector<NodeState> nodes_;
    std::uint64_t generated_ = 0;
};

/**
 * Deterministic scripted workload for tests and examples: an explicit
 * list of (cycle, node, message) postings.
 */
class ScriptedTraffic : public TrafficSource
{
  public:
    /** Schedule @p spec to be posted by @p node at cycle @p when. */
    void post(Cycle when, NodeId node, MessageSpec spec);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    Cycle nextArrival(NodeId node, Cycle now) override;

    /** Postings not yet handed out. */
    std::size_t pending() const { return pending_; }

  private:
    std::map<std::pair<Cycle, NodeId>, std::vector<MessageSpec>> script_;
    std::size_t pending_ = 0;
};

} // namespace mdw

#endif // MDW_WORKLOAD_TRAFFIC_HH
