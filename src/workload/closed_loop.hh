/**
 * @file
 * Base machinery for closed-loop workloads: a per-node priority queue
 * of scheduled emissions, token bookkeeping that maps the NIC's
 * message ids back to workload-level operations, and enforcement of
 * the release rule (a hook observing cycle t may schedule no earlier
 * than t+1) that keeps the idle-skipping fast path bit-identical to
 * the cycle-accurate oracle.
 *
 * Subclasses implement the actual dependency logic in
 * onTokenCompleted()/onTokenDelivered() and emit with scheduleSend().
 */

#ifndef MDW_WORKLOAD_CLOSED_LOOP_HH
#define MDW_WORKLOAD_CLOSED_LOOP_HH

#include <queue>
#include <unordered_map>
#include <vector>

#include "host/workload.hh"

namespace mdw {

/** Workload base that emits scheduled sends and tracks completions. */
class ClosedLoopWorkload : public Workload
{
  public:
    explicit ClosedLoopWorkload(std::size_t numHosts);

    void poll(NodeId node, Cycle now,
              std::vector<MessageSpec> &out) override;

    Cycle nextArrival(NodeId node, Cycle now) override;

    void onPosted(NodeId src, std::uint64_t token, MsgId msg,
                  Cycle now) override;

    void onDelivered(MsgId msg, NodeId node, Cycle now) override;

    void onCompleted(MsgId msg, NodeId src, Cycle now) override;

    std::size_t numHosts() const { return queues_.size(); }

    /** Emissions scheduled but not yet handed to a NIC. */
    std::size_t queuedEmissions() const { return queued_; }

    /** Emissions handed to a NIC so far (scheduled minus queued). */
    std::size_t emittedCount() const { return scheduled_ - queued_; }

  protected:
    /**
     * Schedule @p spec to leave @p node at cycle @p when; @p token
     * (non-zero) identifies the send in the onToken* callbacks.
     * When called from inside a notification hook observing cycle t,
     * @p when must be at least t+1 (asserted): reacting in the same
     * cycle would make results depend on component step order.
     *
     * Tokens must be unique among pending sends and *mode
     * independent*: two emissions for the same node at the same cycle
     * are handed to the NIC in token order, because the oracle and
     * the fast path do not share intra-cycle hook arrival order.
     * Derive tokens from the logical operation (trace event index,
     * per-group sequence number, ...), never from a counter bumped in
     * hook order across independent dependency chains.
     */
    void scheduleSend(NodeId node, Cycle when, MessageSpec spec,
                      std::uint64_t token);

    /** One copy of the send tagged @p token landed at @p at. */
    virtual void
    onTokenDelivered(std::uint64_t token, NodeId at, Cycle now)
    {
        (void)token;
        (void)at;
        (void)now;
    }

    /** The send tagged @p token fully retired at cycle @p now. */
    virtual void onTokenCompleted(std::uint64_t token, Cycle now) = 0;

  private:
    struct Emission
    {
        Cycle when = 0;
        MessageSpec spec; // spec.token breaks when-ties
    };
    struct Later
    {
        bool
        operator()(const Emission &a, const Emission &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            // The token, not schedule order: two same-cycle releases
            // may be scheduled by hooks whose arrival order the two
            // scheduler modes do not share.
            return a.spec.token > b.spec.token;
        }
    };
    using EmissionQueue =
        std::priority_queue<Emission, std::vector<Emission>, Later>;

    std::vector<EmissionQueue> queues_;
    std::unordered_map<MsgId, std::uint64_t> tokenOf_;
    std::size_t queued_ = 0;
    std::size_t scheduled_ = 0;

    /** Release-rule bookkeeping: set while dispatching a hook. */
    bool inHook_ = false;
    Cycle hookCycle_ = 0;
};

} // namespace mdw

#endif // MDW_WORKLOAD_CLOSED_LOOP_HH
