#include "workload/traffic.hh"

#include "sim/logging.hh"

namespace mdw {

const char *
toString(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformUnicast:
        return "uniform-unicast";
      case TrafficPattern::MultipleMulticast:
        return "multiple-multicast";
      case TrafficPattern::Bimodal:
        return "bimodal";
      case TrafficPattern::HotSpot:
        return "hot-spot";
    }
    return "?";
}

const char *
toString(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Synthetic:
        return "synthetic";
      case WorkloadKind::Collective:
        return "collective";
      case WorkloadKind::Trace:
        return "trace";
    }
    return "?";
}

const char *
toString(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::Barrier:
        return "barrier";
      case CollectiveOp::Allreduce:
        return "allreduce";
      case CollectiveOp::Invalidate:
        return "invalidate";
    }
    return "?";
}

SyntheticTraffic::SyntheticTraffic(std::size_t numHosts,
                                   const TrafficParams &params)
    : numHosts_(numHosts), params_(params)
{
    MDW_ASSERT(numHosts >= 2, "traffic needs at least two hosts");
    MDW_ASSERT(params.payloadFlits > 0, "payload must be positive");
    MDW_ASSERT(params.load >= 0.0, "negative load");
    MDW_ASSERT(params.hotFraction >= 0.0 && params.hotFraction <= 1.0,
               "hot-spot fraction out of [0,1]");
    MDW_ASSERT(params.hotNode >= 0 &&
                   static_cast<std::size_t>(params.hotNode) < numHosts,
               "hot node %d out of range", params.hotNode);
    const bool multicasts =
        params.pattern == TrafficPattern::MultipleMulticast ||
        (params.pattern == TrafficPattern::Bimodal &&
         params.mcastFraction > 0.0);
    MDW_ASSERT(!multicasts ||
                   (params.mcastDegree >= 1 &&
                    static_cast<std::size_t>(params.mcastDegree) <
                        numHosts),
               "multicast degree %d invalid for %zu hosts",
               params.mcastDegree, numHosts);
    MDW_ASSERT(params.mcastFraction >= 0.0 &&
                   params.mcastFraction <= 1.0,
               "multicast fraction out of [0,1]");

    rate_ = params.load / static_cast<double>(params.payloadFlits);
    MDW_ASSERT(rate_ <= 1.0, "per-node message rate %f > 1/cycle",
               rate_);

    Rng root(params.seed);
    nodes_.resize(numHosts);
    for (std::size_t i = 0; i < numHosts; ++i)
        nodes_[i].rng = root.fork(i + 1000);
}

void
SyntheticTraffic::poll(NodeId node, Cycle now,
                       std::vector<MessageSpec> &out)
{
    if (rate_ <= 0.0 || now < params_.startCycle ||
        now >= params_.stopCycle)
        return;
    NodeState &state = nodes_.at(static_cast<std::size_t>(node));
    if (!state.started) {
        state.started = true;
        state.next =
            params_.startCycle + state.rng.geometricGap(rate_) - 1;
    }
    while (state.next <= now) {
        out.push_back(makeSpec(state, node));
        ++generated_;
        state.next += state.rng.geometricGap(rate_);
    }
}

Cycle
SyntheticTraffic::nextArrival(NodeId node, Cycle now)
{
    if (rate_ <= 0.0)
        return kNoCycle;
    const NodeState &state =
        nodes_.at(static_cast<std::size_t>(node));
    if (!state.started) {
        // The RNG must not be touched here: the first gap is drawn by
        // the first poll() at or after startCycle, exactly as on the
        // always-polled path.
        return params_.startCycle < params_.stopCycle
                   ? params_.startCycle
                   : kNoCycle;
    }
    if (state.next >= params_.stopCycle)
        return kNoCycle;
    // Defensive: an overdue arrival keeps the caller polling.
    return state.next < now ? now : state.next;
}

MessageSpec
SyntheticTraffic::makeSpec(NodeState &state, NodeId self)
{
    MessageSpec spec;
    spec.payloadFlits = params_.payloadFlits;
    bool multicast = false;
    switch (params_.pattern) {
      case TrafficPattern::UniformUnicast:
        multicast = false;
        break;
      case TrafficPattern::MultipleMulticast:
        multicast = true;
        break;
      case TrafficPattern::Bimodal:
        multicast = state.rng.chance(params_.mcastFraction);
        break;
      case TrafficPattern::HotSpot:
        multicast = false;
        break;
    }
    spec.multicast = multicast;
    if (multicast) {
        spec.dests = randomDests(state, self, params_.mcastDegree);
        spec.trafficClass = params_.mcastClass;
    } else if (params_.pattern == TrafficPattern::HotSpot &&
               self != params_.hotNode &&
               state.rng.chance(params_.hotFraction)) {
        spec.dest = params_.hotNode;
    } else {
        spec.dest = randomOther(state, self);
    }
    return spec;
}

NodeId
SyntheticTraffic::randomOther(NodeState &state, NodeId self)
{
    // Uniform over the other numHosts-1 nodes.
    auto pick = static_cast<NodeId>(state.rng.below(numHosts_ - 1));
    if (pick >= self)
        ++pick;
    return pick;
}

DestSet
SyntheticTraffic::randomDests(NodeState &state, NodeId self, int degree)
{
    DestSet dests(numHosts_);
    int placed = 0;
    while (placed < degree) {
        const NodeId pick = randomOther(state, self);
        if (!dests.test(pick)) {
            dests.set(pick);
            ++placed;
        }
    }
    return dests;
}

void
ScriptedTraffic::post(Cycle when, NodeId node, MessageSpec spec)
{
    script_[node][when].push_back(std::move(spec));
    ++pending_;
}

Cycle
ScriptedTraffic::nextArrival(NodeId node, Cycle now)
{
    const auto it = script_.find(node);
    if (it == script_.end() || it->second.empty())
        return kNoCycle;
    const Cycle when = it->second.begin()->first;
    // Defensive: an overdue posting keeps the caller polling.
    return when < now ? now : when;
}

void
ScriptedTraffic::poll(NodeId node, Cycle now,
                      std::vector<MessageSpec> &out)
{
    const auto it = script_.find(node);
    if (it == script_.end())
        return;
    auto &byCycle = it->second;
    while (!byCycle.empty() && byCycle.begin()->first <= now) {
        for (MessageSpec &spec : byCycle.begin()->second) {
            out.push_back(std::move(spec));
            --pending_;
        }
        byCycle.erase(byCycle.begin());
    }
    if (byCycle.empty())
        script_.erase(it);
}

} // namespace mdw
