#include "workload/kernels.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mdw {

namespace {

/** Payload of a control message (barrier token, release). */
constexpr int kControlFlits = 4;

} // namespace

CollectiveKernelWorkload::CollectiveKernelWorkload(
    std::size_t numHosts, const WorkloadParams &params)
    : ClosedLoopWorkload(numHosts), params_(params)
{
    MDW_ASSERT(params.kind == WorkloadKind::Collective,
               "kernel workload built from a %s config",
               toString(params.kind));
    MDW_ASSERT(params.rounds >= 1, "collective needs rounds >= 1");
    MDW_ASSERT(params.groups >= 1, "collective needs groups >= 1");
    MDW_ASSERT(params.groupSize == 0 ||
                   (params.groupSize >= 2 &&
                    static_cast<std::size_t>(params.groupSize) <=
                        numHosts),
               "group size %d invalid for %zu hosts", params.groupSize,
               numHosts);
    MDW_ASSERT(params.payloadFlits > 0, "payload must be positive");

    Rng rng(params.seed);
    groups_.resize(static_cast<std::size_t>(params.groups));
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        Group &grp = groups_[g];
        if (params.groups == 1 && params.groupSize == 0) {
            // The whole machine, root 0 (the E10/E13 headline shape).
            grp.members.resize(numHosts);
            for (std::size_t i = 0; i < numHosts; ++i)
                grp.members[i] = static_cast<NodeId>(i);
        } else {
            std::size_t size =
                static_cast<std::size_t>(params.groupSize);
            if (size == 0) {
                // Heavy-tailed communicator sizes: geometric over
                // octaves (half the tenants double in size), capped
                // at the machine.
                size = 2;
                while (size < numHosts && rng.chance(0.5))
                    size *= 2;
                size = std::min(size, numHosts);
            }
            std::vector<NodeId> pool(numHosts);
            for (std::size_t i = 0; i < numHosts; ++i)
                pool[i] = static_cast<NodeId>(i);
            rng.shuffle(pool);
            grp.members.assign(pool.begin(),
                               pool.begin() +
                                   static_cast<std::ptrdiff_t>(size));
        }
        grp.others = DestSet(numHosts);
        for (std::size_t i = 1; i < grp.members.size(); ++i)
            grp.others.set(grp.members[i]);

        // Desynchronize tenants so multi-tenant runs are not in
        // artificial lockstep; a single group starts immediately.
        const Cycle jitter =
            groups_.size() > 1 ? rng.below(128) : 0;
        startRound(g, params.startCycle + jitter);
    }
}

std::uint64_t
CollectiveKernelWorkload::newToken(std::size_t g)
{
    // Tokens break same-cycle emission ties in the base class, so
    // they must not depend on cross-group hook arrival order (which
    // the two scheduler modes need not share). Each group's sends are
    // totally ordered by its own dependency chain, so a per-group
    // sequence interleaved with the group index is mode independent.
    const std::uint64_t token =
        groups_[g].tokenSeq++ * groups_.size() + g + 1;
    tokenGroup_.emplace(token, g);
    return token;
}

void
CollectiveKernelWorkload::startRound(std::size_t g, Cycle at)
{
    Group &grp = groups_[g];
    grp.roundStart = at;
    const NodeId root = grp.members[0];
    const int payload = params_.collective == CollectiveOp::Barrier
                            ? kControlFlits
                            : params_.payloadFlits;

    if (params_.collective == CollectiveOp::Invalidate) {
        // The directory owner of this round multicasts invalidations
        // to every sharer; the round is done when all copies land.
        const std::size_t size = grp.members.size();
        const NodeId owner =
            grp.members[static_cast<std::size_t>(grp.round) % size];
        DestSet sharers(grp.others.size());
        for (const NodeId m : grp.members) {
            if (m != owner)
                sharers.set(m);
        }
        grp.phase = Phase::Release;
        grp.waiting = 1;
        MessageSpec spec;
        spec.multicast = true;
        spec.dests = std::move(sharers);
        spec.payloadFlits = payload;
        scheduleSend(owner, at, std::move(spec), newToken(g));
        return;
    }

    // Barrier / allreduce: gather to the root first.
    grp.phase = Phase::Gather;
    grp.waiting = grp.members.size() - 1;
    for (std::size_t i = 1; i < grp.members.size(); ++i) {
        MessageSpec spec;
        spec.multicast = false;
        spec.dest = root;
        spec.payloadFlits = payload;
        scheduleSend(grp.members[i], at, std::move(spec),
                     newToken(g));
    }
}

void
CollectiveKernelWorkload::onTokenCompleted(std::uint64_t token,
                                           Cycle now)
{
    const auto it = tokenGroup_.find(token);
    MDW_ASSERT(it != tokenGroup_.end(), "unknown kernel token %llu",
               static_cast<unsigned long long>(token));
    const std::size_t g = it->second;
    tokenGroup_.erase(it);

    Group &grp = groups_[g];
    MDW_ASSERT(grp.waiting > 0, "group %zu completion underflow", g);
    if (--grp.waiting > 0)
        return;

    if (grp.phase == Phase::Gather) {
        // Every arrival landed at the root: release the result (the
        // +1 is the release rule; see host/workload.hh).
        grp.phase = Phase::Release;
        grp.waiting = 1;
        MessageSpec spec;
        spec.multicast = true;
        spec.dests = grp.others;
        spec.payloadFlits =
            params_.collective == CollectiveOp::Barrier
                ? kControlFlits
                : params_.payloadFlits;
        scheduleSend(grp.members[0], now + 1, std::move(spec),
                     newToken(g));
        return;
    }
    finishRound(g, now);
}

void
CollectiveKernelWorkload::finishRound(std::size_t g, Cycle now)
{
    Group &grp = groups_[g];
    roundCycles_.add(static_cast<double>(now - grp.roundStart));
    ++grp.round;
    if (grp.round >= params_.rounds) {
        ++doneGroups_;
        return;
    }
    startRound(g, now + 1 + params_.think);
}

} // namespace mdw
