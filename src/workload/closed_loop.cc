#include "workload/closed_loop.hh"

#include "sim/logging.hh"

namespace mdw {

ClosedLoopWorkload::ClosedLoopWorkload(std::size_t numHosts)
    : queues_(numHosts)
{
    MDW_ASSERT(numHosts >= 2,
               "closed-loop workload needs at least two hosts");
}

void
ClosedLoopWorkload::poll(NodeId node, Cycle now,
                         std::vector<MessageSpec> &out)
{
    auto &queue = queues_.at(static_cast<std::size_t>(node));
    while (!queue.empty() && queue.top().when <= now) {
        out.push_back(queue.top().spec);
        queue.pop();
        --queued_;
    }
}

Cycle
ClosedLoopWorkload::nextArrival(NodeId node, Cycle now)
{
    const auto &queue = queues_.at(static_cast<std::size_t>(node));
    if (queue.empty())
        return kNoCycle;
    // Defensive: an overdue emission keeps the caller polling.
    return queue.top().when < now ? now : queue.top().when;
}

void
ClosedLoopWorkload::onPosted(NodeId src, std::uint64_t token,
                             MsgId msg, Cycle now)
{
    (void)src;
    (void)now;
    if (token == 0)
        return;
    const bool inserted = tokenOf_.emplace(msg, token).second;
    MDW_ASSERT(inserted, "message %llu posted twice",
               static_cast<unsigned long long>(msg));
}

void
ClosedLoopWorkload::onDelivered(MsgId msg, NodeId node, Cycle now)
{
    const auto it = tokenOf_.find(msg);
    if (it == tokenOf_.end())
        return; // not ours (collective engine, untagged spec, ...)
    inHook_ = true;
    hookCycle_ = now;
    onTokenDelivered(it->second, node, now);
    inHook_ = false;
}

void
ClosedLoopWorkload::onCompleted(MsgId msg, NodeId src, Cycle now)
{
    (void)src;
    const auto it = tokenOf_.find(msg);
    if (it == tokenOf_.end())
        return; // not ours
    const std::uint64_t token = it->second;
    tokenOf_.erase(it);
    inHook_ = true;
    hookCycle_ = now;
    onTokenCompleted(token, now);
    inHook_ = false;
}

void
ClosedLoopWorkload::scheduleSend(NodeId node, Cycle when,
                                 MessageSpec spec, std::uint64_t token)
{
    MDW_ASSERT(node >= 0 &&
                   static_cast<std::size_t>(node) < queues_.size(),
               "scheduleSend: node %d out of range", node);
    MDW_ASSERT(token != 0, "scheduleSend needs a non-zero token");
    MDW_ASSERT(!inHook_ || when > hookCycle_,
               "release rule violated: emission at cycle %llu "
               "scheduled from a hook observing cycle %llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(hookCycle_));
    spec.token = token;
    Emission emission;
    emission.when = when;
    emission.spec = std::move(spec);
    queues_[static_cast<std::size_t>(node)].push(std::move(emission));
    ++queued_;
    ++scheduled_;
    wake(node, when);
}

} // namespace mdw
