#include "workload/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mdw {

TraceTraffic::TraceTraffic(std::size_t numHosts)
    : numHosts_(numHosts), nodes_(numHosts)
{
    MDW_ASSERT(numHosts >= 2, "trace needs at least two hosts");
}

void
TraceTraffic::add(TraceEvent event)
{
    MDW_ASSERT(event.src >= 0 &&
                   static_cast<std::size_t>(event.src) < numHosts_,
               "trace source %d out of range", event.src);
    if (event.spec.multicast) {
        MDW_ASSERT(event.spec.dests.size() == numHosts_,
                   "trace multicast universe mismatch");
        MDW_ASSERT(!event.spec.dests.empty() &&
                       !event.spec.dests.test(event.src),
                   "trace multicast destinations invalid");
    } else {
        MDW_ASSERT(event.spec.dest >= 0 &&
                       static_cast<std::size_t>(event.spec.dest) <
                           numHosts_ &&
                       event.spec.dest != event.src,
                   "trace destination %d invalid", event.spec.dest);
    }
    MDW_ASSERT(event.spec.payloadFlits > 0, "trace payload invalid");
    auto &queue = nodes_[static_cast<std::size_t>(event.src)];
    queue.events.push_back(std::move(event));
    queue.sorted = false;
    ++pending_;
    ++total_;
}

void
TraceTraffic::poll(NodeId node, Cycle now,
                   std::vector<MessageSpec> &out)
{
    auto &queue = nodes_.at(static_cast<std::size_t>(node));
    if (!queue.sorted) {
        std::stable_sort(queue.events.begin() +
                             static_cast<std::ptrdiff_t>(queue.next),
                         queue.events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.when < b.when;
                         });
        queue.sorted = true;
    }
    while (queue.next < queue.events.size() &&
           queue.events[queue.next].when <= now) {
        out.push_back(queue.events[queue.next].spec);
        ++queue.next;
        --pending_;
    }
}

TraceTraffic
TraceTraffic::fromFile(const std::string &path, std::size_t numHosts)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());

    TraceTraffic trace(numHosts);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        unsigned long long when = 0;
        long src = 0;
        std::string kind;
        if (!(fields >> when >> src >> kind)) {
            // Blank or comment-only line.
            std::istringstream blank(line);
            std::string token;
            if (blank >> token)
                fatal("%s:%d: malformed trace line", path.c_str(),
                      line_no);
            continue;
        }

        TraceEvent event;
        event.when = when;
        event.src = static_cast<NodeId>(src);
        if (kind == "U" || kind == "u") {
            long dest = 0;
            int payload = 0;
            if (!(fields >> dest >> payload))
                fatal("%s:%d: malformed unicast event", path.c_str(),
                      line_no);
            event.spec.multicast = false;
            event.spec.dest = static_cast<NodeId>(dest);
            event.spec.payloadFlits = payload;
        } else if (kind == "M" || kind == "m") {
            int payload = 0;
            std::string dest_list;
            if (!(fields >> payload >> dest_list))
                fatal("%s:%d: malformed multicast event", path.c_str(),
                      line_no);
            event.spec.multicast = true;
            event.spec.payloadFlits = payload;
            event.spec.dests = DestSet(numHosts);
            std::istringstream dests(dest_list);
            std::string item;
            while (std::getline(dests, item, ',')) {
                if (item.empty())
                    continue;
                char *end = nullptr;
                const long d = std::strtol(item.c_str(), &end, 10);
                if (end == item.c_str() || *end != '\0' || d < 0 ||
                    static_cast<std::size_t>(d) >= numHosts) {
                    fatal("%s:%d: bad destination '%s'", path.c_str(),
                          line_no, item.c_str());
                }
                event.spec.dests.set(static_cast<NodeId>(d));
            }
            if (event.spec.dests.empty())
                fatal("%s:%d: multicast with no destinations",
                      path.c_str(), line_no);
        } else {
            fatal("%s:%d: unknown event kind '%s'", path.c_str(),
                  line_no, kind.c_str());
        }
        trace.add(std::move(event));
    }
    return trace;
}

void
TraceTraffic::writeFile(const std::string &path,
                        const std::vector<TraceEvent> &events)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    out << "# mdworm trace: <cycle> <src> U <dest> <payload>\n"
        << "#              <cycle> <src> M <payload> <d1,d2,...>\n";
    for (const TraceEvent &event : events) {
        if (event.spec.multicast) {
            out << event.when << ' ' << event.src << " M "
                << event.spec.payloadFlits << ' ';
            bool first = true;
            event.spec.dests.forEach([&](NodeId d) {
                if (!first)
                    out << ',';
                first = false;
                out << d;
            });
            out << '\n';
        } else {
            out << event.when << ' ' << event.src << " U "
                << event.spec.dest << ' ' << event.spec.payloadFlits
                << '\n';
        }
    }
}

} // namespace mdw
