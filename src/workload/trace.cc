#include "workload/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mdw {

namespace {

constexpr const char *kV2Magic = "# mdw-trace/2";

/** Parse a comma-separated id list; fatal() via @p where on junk. */
std::vector<std::uint64_t>
parseIdList(const std::string &list, const std::string &path,
            int line_no)
{
    std::vector<std::uint64_t> ids;
    std::istringstream items(list);
    std::string item;
    while (std::getline(items, item, ',')) {
        if (item.empty())
            continue;
        char *end = nullptr;
        const unsigned long long id =
            std::strtoull(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0' || id == 0) {
            fatal("%s:%d: bad dependency id '%s'", path.c_str(),
                  line_no, item.c_str());
        }
        ids.push_back(id);
    }
    return ids;
}

} // namespace

TraceTraffic::TraceTraffic(std::size_t numHosts)
    : ClosedLoopWorkload(numHosts), numHosts_(numHosts)
{
}

void
TraceTraffic::add(TraceEvent event)
{
    MDW_ASSERT(!resolved_,
               "trace events cannot be added after replay started");
    MDW_ASSERT(event.src >= 0 &&
                   static_cast<std::size_t>(event.src) < numHosts_,
               "trace source %d out of range", event.src);
    if (event.spec.multicast) {
        MDW_ASSERT(event.spec.dests.size() == numHosts_,
                   "trace multicast universe mismatch");
        MDW_ASSERT(!event.spec.dests.empty() &&
                       !event.spec.dests.test(event.src),
                   "trace multicast destinations invalid");
    } else {
        MDW_ASSERT(event.spec.dest >= 0 &&
                       static_cast<std::size_t>(event.spec.dest) <
                           numHosts_ &&
                       event.spec.dest != event.src,
                   "trace destination %d invalid", event.spec.dest);
    }
    MDW_ASSERT(event.spec.payloadFlits > 0, "trace payload invalid");
    MDW_ASSERT(event.id != 0 || event.deps.empty(),
               "trace event with dependencies needs an id");
    if (event.id != 0) {
        const bool inserted =
            byId_.emplace(event.id, events_.size()).second;
        if (!inserted)
            fatal("duplicate trace event id %llu",
                  static_cast<unsigned long long>(event.id));
    }
    events_.push_back(std::move(event));
}

void
TraceTraffic::resolveDependencies()
{
    if (resolved_)
        return;
    resolved_ = true;
    const std::size_t n = events_.size();
    dependents_.assign(n, {});
    indegree_.assign(n, 0);
    readyAt_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::uint64_t dep : events_[i].deps) {
            const auto it = byId_.find(dep);
            if (it == byId_.end())
                fatal("trace event %llu depends on unknown id %llu",
                      static_cast<unsigned long long>(events_[i].id),
                      static_cast<unsigned long long>(dep));
            dependents_[it->second].push_back(i);
            ++indegree_[i];
        }
    }

    // Kahn's algorithm: if the zero-indegree wave cannot reach every
    // event, the leftovers form at least one dependency cycle.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree_[i] == 0)
            frontier.push_back(i);
    }
    std::vector<std::size_t> degree = indegree_;
    std::size_t reached = frontier.size();
    while (!frontier.empty()) {
        const std::size_t i = frontier.back();
        frontier.pop_back();
        for (const std::size_t d : dependents_[i]) {
            if (--degree[d] == 0) {
                frontier.push_back(d);
                ++reached;
            }
        }
    }
    if (reached != n) {
        for (std::size_t i = 0; i < n; ++i) {
            if (degree[i] != 0)
                fatal("dependency cycle involving trace event %llu",
                      static_cast<unsigned long long>(events_[i].id));
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (indegree_[i] == 0)
            release(i);
    }
}

void
TraceTraffic::release(std::size_t index)
{
    const TraceEvent &event = events_[index];
    scheduleSend(event.src, std::max(event.when, readyAt_[index]),
                 event.spec, index + 1);
}

void
TraceTraffic::poll(NodeId node, Cycle now,
                   std::vector<MessageSpec> &out)
{
    resolveDependencies();
    ClosedLoopWorkload::poll(node, now, out);
}

Cycle
TraceTraffic::nextArrival(NodeId node, Cycle now)
{
    resolveDependencies();
    return ClosedLoopWorkload::nextArrival(node, now);
}

void
TraceTraffic::onTokenCompleted(std::uint64_t token, Cycle now)
{
    const std::size_t index = static_cast<std::size_t>(token) - 1;
    for (const std::size_t d : dependents_[index]) {
        // The release rule: a completion at cycle t enables dependent
        // sends no earlier than t+1.
        readyAt_[d] = std::max(readyAt_[d], now + 1);
        MDW_ASSERT(indegree_[d] > 0, "dependency count underflow");
        if (--indegree_[d] == 0)
            release(d);
    }
}

TraceTraffic
TraceTraffic::fromFile(const std::string &path, std::size_t numHosts)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());

    TraceTraffic trace(numHosts);
    std::string line;
    int line_no = 0;
    bool v2 = false;
    bool first = true;
    /** v2: event id -> defining line (for dependency diagnostics). */
    std::unordered_map<std::uint64_t, int> lineOf;
    while (std::getline(in, line)) {
        ++line_no;
        if (first) {
            first = false;
            if (line.rfind(kV2Magic, 0) == 0) {
                v2 = true;
                continue;
            }
        }
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);

        TraceEvent event;
        unsigned long long when = 0;
        long src = 0;
        std::string kind;
        bool parsed = false;
        if (v2) {
            unsigned long long id = 0;
            parsed =
                static_cast<bool>(fields >> id >> when >> src >> kind);
            if (parsed && id == 0)
                fatal("%s:%d: event id must be positive", path.c_str(),
                      line_no);
            event.id = id;
        } else {
            parsed = static_cast<bool>(fields >> when >> src >> kind);
        }
        if (!parsed) {
            // Blank or comment-only line.
            std::istringstream blank(line);
            std::string token;
            if (blank >> token)
                fatal("%s:%d: malformed trace line", path.c_str(),
                      line_no);
            continue;
        }

        event.when = when;
        event.src = static_cast<NodeId>(src);
        if (kind == "U" || kind == "u") {
            long dest = 0;
            int payload = 0;
            if (!(fields >> dest >> payload))
                fatal("%s:%d: malformed unicast event", path.c_str(),
                      line_no);
            event.spec.multicast = false;
            event.spec.dest = static_cast<NodeId>(dest);
            event.spec.payloadFlits = payload;
        } else if (kind == "M" || kind == "m") {
            int payload = 0;
            std::string dest_list;
            if (!(fields >> payload >> dest_list))
                fatal("%s:%d: malformed multicast event", path.c_str(),
                      line_no);
            event.spec.multicast = true;
            event.spec.payloadFlits = payload;
            event.spec.dests = DestSet(numHosts);
            std::istringstream dests(dest_list);
            std::string item;
            while (std::getline(dests, item, ',')) {
                if (item.empty())
                    continue;
                char *end = nullptr;
                const long d = std::strtol(item.c_str(), &end, 10);
                if (end == item.c_str() || *end != '\0' || d < 0 ||
                    static_cast<std::size_t>(d) >= numHosts) {
                    fatal("%s:%d: bad destination '%s'", path.c_str(),
                          line_no, item.c_str());
                }
                event.spec.dests.set(static_cast<NodeId>(d));
            }
            if (event.spec.dests.empty())
                fatal("%s:%d: multicast with no destinations",
                      path.c_str(), line_no);
        } else {
            fatal("%s:%d: unknown event kind '%s'", path.c_str(),
                  line_no, kind.c_str());
        }

        std::string trailing;
        if (fields >> trailing) {
            if (!v2 || trailing.rfind("deps=", 0) != 0)
                fatal("%s:%d: unexpected trailing token '%s'",
                      path.c_str(), line_no, trailing.c_str());
            event.deps =
                parseIdList(trailing.substr(5), path, line_no);
        }
        if (fields >> trailing)
            fatal("%s:%d: unexpected trailing token '%s'",
                  path.c_str(), line_no, trailing.c_str());

        if (v2) {
            if (!lineOf.emplace(event.id, line_no).second)
                fatal("%s:%d: duplicate event id %llu", path.c_str(),
                      line_no,
                      static_cast<unsigned long long>(event.id));
        }
        trace.add(std::move(event));
    }

    // Validate dependency targets with line numbers while we still
    // have them (resolveDependencies would fatal without locations).
    if (v2) {
        for (const TraceEvent &event : trace.events_) {
            for (const std::uint64_t dep : event.deps) {
                if (!lineOf.count(dep))
                    fatal("%s:%d: unknown dependency id %llu",
                          path.c_str(), lineOf.at(event.id),
                          static_cast<unsigned long long>(dep));
            }
        }
    }
    trace.resolveDependencies();
    return trace;
}

void
TraceTraffic::writeFile(const std::string &path,
                        const std::vector<TraceEvent> &events)
{
    const bool v2 =
        std::any_of(events.begin(), events.end(),
                    [](const TraceEvent &e) {
                        return e.id != 0 || !e.deps.empty();
                    });
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    if (v2) {
        out << kV2Magic
            << ": <id> <cycle> <src> U <dest> <payload> [deps=...]\n"
            << "#             <id> <cycle> <src> M <payload> "
               "<d1,d2,...> [deps=...]\n";
    } else {
        out << "# mdworm trace: <cycle> <src> U <dest> <payload>\n"
            << "#              <cycle> <src> M <payload> <d1,d2,...>\n";
    }
    for (const TraceEvent &event : events) {
        if (v2) {
            if (event.id == 0)
                fatal("v2 trace event without an id (when=%llu)",
                      static_cast<unsigned long long>(event.when));
            out << event.id << ' ';
        }
        if (event.spec.multicast) {
            out << event.when << ' ' << event.src << " M "
                << event.spec.payloadFlits << ' ';
            bool firstDest = true;
            event.spec.dests.forEach([&](NodeId d) {
                if (!firstDest)
                    out << ',';
                firstDest = false;
                out << d;
            });
        } else {
            out << event.when << ' ' << event.src << " U "
                << event.spec.dest << ' ' << event.spec.payloadFlits;
        }
        if (!event.deps.empty()) {
            out << " deps=";
            for (std::size_t i = 0; i < event.deps.size(); ++i) {
                if (i)
                    out << ',';
                out << event.deps[i];
            }
        }
        out << '\n';
    }
}

} // namespace mdw
