/**
 * @file
 * Closed-loop collective kernels composed from the modeled message
 * primitives: iterated barrier (gather-to-root control unicasts, then
 * a multicast release), allreduce (the same shape with a reduce
 * payload), and cache-invalidation storms (a rotating owner
 * multicasts invalidations to the sharers; their "acks" are the
 * delivery completions of the multicast itself). With groups > 1 the
 * generator becomes multi-tenant: many independent communicator
 * groups with (by default) heavy-tailed sizes progress concurrently,
 * each gated by its own completions.
 *
 * The per-round completion time lands in roundCycles() -- the E13
 * metric (allreduce/barrier completion time x system size x scheme).
 */

#ifndef MDW_WORKLOAD_KERNELS_HH
#define MDW_WORKLOAD_KERNELS_HH

#include "sim/stats.hh"
#include "workload/closed_loop.hh"
#include "workload/traffic.hh"

namespace mdw {

/** Iterated collective kernels over one or more communicator groups. */
class CollectiveKernelWorkload : public ClosedLoopWorkload
{
  public:
    CollectiveKernelWorkload(std::size_t numHosts,
                             const WorkloadParams &params);

    bool
    exhausted() const override
    {
        return doneGroups_ == groups_.size();
    }

    /** Completion time of every finished round, across all groups. */
    const Sampler &roundCycles() const { return roundCycles_; }

    /** Rounds finished so far, across all groups. */
    std::uint64_t roundsCompleted() const
    {
        return static_cast<std::uint64_t>(roundCycles_.count());
    }

    std::size_t numGroups() const { return groups_.size(); }

    /** Members of group @p g (members[0] is the root). */
    const std::vector<NodeId> &groupMembers(std::size_t g) const
    {
        return groups_[g].members;
    }

  protected:
    void onTokenCompleted(std::uint64_t token, Cycle now) override;

  private:
    enum class Phase
    {
        Gather,  ///< members -> root unicasts in flight
        Release, ///< root -> members multicast in flight
    };

    struct Group
    {
        std::vector<NodeId> members; ///< members[0] = root
        DestSet others{0};           ///< members minus the root
        int round = 0;
        Phase phase = Phase::Gather;
        /** Outstanding completions before the phase advances. */
        std::size_t waiting = 0;
        Cycle roundStart = 0;
        /** This group's own send count (token derivation). */
        std::uint64_t tokenSeq = 0;
    };

    void startRound(std::size_t g, Cycle at);
    void finishRound(std::size_t g, Cycle now);
    std::uint64_t newToken(std::size_t g);

    WorkloadParams params_;
    std::vector<Group> groups_;
    std::size_t doneGroups_ = 0;
    /** Token -> owning group index. */
    std::unordered_map<std::uint64_t, std::size_t> tokenGroup_;
    Sampler roundCycles_;
};

} // namespace mdw

#endif // MDW_WORKLOAD_KERNELS_HH
