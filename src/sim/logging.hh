/**
 * @file
 * gem5-flavored status and error reporting for the simulator.
 *
 * fatal(): the simulation cannot continue because of a user error
 * (bad configuration, impossible parameter combination). Exits with
 * status 1.
 *
 * panic(): an internal invariant was violated — a simulator bug.
 * Aborts so a debugger or core dump can capture the state.
 *
 * warn()/inform(): non-fatal status messages.
 */

#ifndef MDW_SIM_LOGGING_HH
#define MDW_SIM_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace mdw {

/** Verbosity levels for inform()/debug(). */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an unrecoverable user-caused error and exit(1).
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Install a hook run by fatal() after the message but before exit(1),
 * so long-running drivers can flush a partial audit trail instead of
 * losing it. The hook is cleared before it runs (a fatal() inside the
 * hook exits directly); pass nullptr to disarm.
 */
void setFatalHook(std::function<void()> hook);

/**
 * Report a violated internal invariant and abort().
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status (shown at LogLevel::Info+). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose tracing (shown at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Implementation hook for MDW_ASSERT: report the failed condition,
 * location, and a printf-formatted explanation, then abort().
 */
[[noreturn]] void panicAssert(const char *cond, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert a simulator invariant; on failure, panic with the message.
 * Active in all build types (cheap enough for a flit-level model).
 * A printf-style message (with arguments) is required.
 */
#define MDW_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::mdw::panicAssert(#cond, __FILE__, __LINE__,               \
                               __VA_ARGS__);                            \
        }                                                               \
    } while (0)

} // namespace mdw

#endif // MDW_SIM_LOGGING_HH
