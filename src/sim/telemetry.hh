/**
 * @file
 * Observability layer: a hierarchical metrics registry plus an
 * opt-in worm-lifecycle tracer.
 *
 * MetricsRegistry holds *references* to the statistics objects the
 * components already own (Counters, Samplers, TimeAverages) under
 * hierarchical dotted names ("switch.3.port.2.tx_flits",
 * "nic.7.retransmits"); components register once at construction and
 * keep updating their own objects on the hot path, so registration
 * adds no per-cycle cost. snapshot() walks the (sorted) registry and
 * produces a MetricsSnapshot — a self-contained value type that can
 * be carried in results, looked up by name, merged across runs in
 * submission order (Sampler::merge semantics), and compared bitwise.
 *
 * WormTracer records flit-level lifecycle events (inject,
 * header-decode, replicate, reserve-stall, tail-drain, deliver,
 * poison-drop, retransmit) into a preallocated ring buffer and
 * exports Chrome-trace JSON (loadable in Perfetto / chrome://tracing)
 * and a JSONL stream. Timestamps are simulation cycles only — never
 * wall clock — so exports are deterministic. When tracing is
 * disabled the tracer pointer held by components is null and every
 * hook is a single predictable branch; defining MDW_TELEMETRY_DISABLED
 * at compile time removes even that branch (the hooks inline to
 * nothing).
 */

#ifndef MDW_SIM_TELEMETRY_HH
#define MDW_SIM_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/shard_context.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mdw {

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/**
 * One named measurement inside a MetricsSnapshot: a monotonic
 * counter, an instantaneous gauge, or a full Sampler. Gauges turn
 * into per-run Samplers when snapshots are merged (a sum would be
 * meaningless for e.g. a load average).
 */
struct MetricValue
{
    enum class Kind : std::uint8_t { Counter, Gauge, Sampler };

    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Sampler sampler;

    static MetricValue makeCounter(std::uint64_t v);
    static MetricValue makeGauge(double v);
    static MetricValue makeSampler(const Sampler &s);

    /** Merge @p other in: counters add, samplers Sampler::merge,
     *  gauges collapse into a Sampler over the merged runs. */
    void merge(const MetricValue &other);

    /** Exact (bitwise, not tolerance-based) equality. */
    bool identical(const MetricValue &other) const;
};

/**
 * Keyed, self-contained snapshot of every registered metric — the
 * value type ExperimentResult carries. Lookups on missing names
 * return zero / an empty sampler so accessors stay total.
 */
class MetricsSnapshot
{
  public:
    std::uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;
    const Sampler &sampler(const std::string &name) const;
    bool has(const std::string &name) const;

    void setCounter(const std::string &name, std::uint64_t v);
    void setGauge(const std::string &name, double v);
    void setSampler(const std::string &name, const Sampler &s);

    /** Sum of every counter whose name ends with @p suffix (rolls a
     *  per-component metric up over the hierarchy). */
    std::uint64_t sumCounters(const std::string &suffix) const;

    /**
     * Merge @p other into this snapshot. Deterministic given a fixed
     * merge order: the sweep runner merges per-run snapshots in
     * submission order, so aggregates are bit-identical at any thread
     * count.
     */
    void merge(const MetricsSnapshot &other);

    bool identical(const MetricsSnapshot &other) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::map<std::string, MetricValue> &entries() const
    {
        return entries_;
    }

    /** One JSON object {"name": value | {sampler fields}, ...},
     *  sorted by name (deterministic). */
    std::string toJson() const;

  private:
    std::map<std::string, MetricValue> entries_;
};

/**
 * Registry of live metric sources. Components register their stat
 * objects (by pointer; the component retains ownership and must
 * outlive the registry's snapshots) or gauge functions under unique
 * hierarchical names. snapshot() reads every source once.
 */
class MetricsRegistry
{
  public:
    using GaugeFn = std::function<double()>;
    using IntGaugeFn = std::function<std::uint64_t()>;
    using NowFn = std::function<Cycle()>;

    void registerCounter(const std::string &name, const Counter *c);
    void registerSampler(const std::string &name, const Sampler *s);
    void registerGauge(const std::string &name, GaugeFn fn);
    void registerIntGauge(const std::string &name, IntGaugeFn fn);
    /** Registers "<name>.avg" and "<name>.peak" gauges over @p t,
     *  evaluated at snapshot time via @p now. */
    void registerTimeAverage(const std::string &name,
                             const TimeAverage *t, NowFn now);

    MetricsSnapshot snapshot() const;

    std::size_t size() const { return entries_.size(); }
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        const Counter *counter = nullptr;
        const Sampler *sampler = nullptr;
        GaugeFn gauge;
        IntGaugeFn intGauge;
    };

    void insert(const std::string &name, Entry entry);

    std::map<std::string, Entry> entries_;
};

// ---------------------------------------------------------------------
// Worm lifecycle tracing
// ---------------------------------------------------------------------

/** Lifecycle stations of a multidestination worm. */
enum class WormEvent : std::uint8_t
{
    /** First flit put on the injection link at the source NIC. */
    Inject,
    /** Routing header fully arrived and decoded at a switch. */
    HeaderDecode,
    /** Worm replicated to >1 output branch (arg = extra copies). */
    Replicate,
    /** Head stalled waiting for buffer reservation / output grant. */
    ReserveStall,
    /** Tail flit left a switch output (branch fully forwarded). */
    TailDrain,
    /** Packet delivered (accepted) at a destination NIC. */
    Deliver,
    /** Delivery discarded by the end-to-end poison check (fault). */
    PoisonDrop,
    /** Whole-message retransmission round issued by a source NIC. */
    Retransmit,
    /** Link CRC caught a corrupted flit at a receiver (arg = port). */
    CrcFail,
    /** Receiver NAKed; the sender will replay (arg = port). */
    Nak,
    /** Link-level retransmission of one flit (arg = attempt). */
    Replay,
    /** A link-flap window started losing traffic (arg = port). */
    LinkFlap,
    /** A multi-lane switch assigned a worm its lane (arg = lane). */
    LaneAlloc,
    /** A lane had a flit ready but lost the physical-link mux
     *  (arg = port); only emitted when the switch runs > 1 lane. */
    LaneStall,
};

const char *toString(WormEvent event);

/** One recorded lifecycle event (fixed-size; ring-buffer friendly). */
struct WormTraceEvent
{
    Cycle cycle = 0;
    PacketId packet = 0;
    MsgId msg = 0;
    /** Switch id, or node id when atHost. */
    std::int32_t component = 0;
    /** Event-specific detail: port, extra copies, attempt number. */
    std::int32_t arg = 0;
    WormEvent kind = WormEvent::Inject;
    bool atHost = false;
};

/**
 * Immutable export of a tracer's contents (events oldest-first plus
 * drop accounting), shared by results so sweeps stay thread-safe.
 */
struct WormTrace
{
    std::vector<WormTraceEvent> events;
    /** Events ever recorded (recorded - events.size() were dropped). */
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;

    /** Chrome-trace ("traceEvents") JSON; loads in Perfetto. */
    std::string chromeJson() const;
    /** One JSON object per line. */
    std::string jsonl() const;
};

/**
 * Preallocated ring buffer of lifecycle events. When full, the
 * oldest events are overwritten (and counted as dropped) so a
 * deadlock diagnosis always holds the *most recent* history.
 *
 * Under the sharded scheduler (setShards) the tracer keeps one ring
 * per parallel shard plus one for serial contexts, each at full
 * capacity, and record() routes through the thread-local shard index
 * so parallel switch steps never contend. snapshot() merges the rings
 * back into the exact flat-scheduler order: sharded runs only record
 * at the current cycle, switch events (atHost == false, parallel
 * rings) precede host events (serial ring) within a cycle, and
 * components step in ascending-id order within each class — so a
 * stable sort on (cycle, atHost, component) reproduces the flat
 * sequence, and keeping the last `capacity` merged events matches the
 * flat ring exactly (each ring's overlap with the global tail is a
 * suffix of its own sequence no longer than its capacity).
 */
class WormTracer
{
  public:
    explicit WormTracer(std::size_t capacity);

    void
    record(WormEvent kind, Cycle cycle, PacketId packet, MsgId msg,
           std::int32_t component, bool atHost, std::int32_t arg = 0)
    {
        Ring &ring =
            rings_[static_cast<std::size_t>(shardctx::current + 1)];
        WormTraceEvent &slot = ring.buf[ring.head];
        slot.cycle = cycle;
        slot.packet = packet;
        slot.msg = msg;
        slot.component = component;
        slot.arg = arg;
        slot.kind = kind;
        slot.atHost = atHost;
        ring.head = ring.head + 1 == ring.buf.size() ? 0 : ring.head + 1;
        ++ring.recorded;
    }

    /** Provision rings for @p shards parallel shards (serial-only
     *  contexts keep working either way). Call before recording. */
    void setShards(std::size_t shards);

    std::size_t capacity() const { return capacity_; }
    /** Events ever recorded (including since-overwritten ones). */
    std::uint64_t recorded() const;
    /** Events overwritten by ring wraparound. */
    std::uint64_t dropped() const { return recorded() - size(); }
    /** Events currently held (what snapshot() would export). */
    std::size_t size() const;

    /** Copy out the surviving events, oldest first. */
    WormTrace snapshot() const;

    void clear();

  private:
    struct Ring
    {
        std::vector<WormTraceEvent> buf;
        std::size_t head = 0;
        std::uint64_t recorded = 0;
    };

    /** Surviving events of one ring, oldest first. */
    static void appendHeld(const Ring &ring,
                           std::vector<WormTraceEvent> &out);

    std::size_t capacity_;
    /** [0] = serial contexts, [1 + s] = parallel shard s. */
    std::vector<Ring> rings_;
};

/**
 * Telemetry hook used on component hot paths: expands to a plain
 * null check, or to nothing when MDW_TELEMETRY_DISABLED is defined
 * (the compile-time-inlined no-op path).
 */
#ifndef MDW_TELEMETRY_DISABLED
#define MDW_TRACE_EVENT(tracer, kind, cycle, pkt, msg, comp, atHost, \
                        arg)                                         \
    do {                                                             \
        if (tracer)                                                  \
            (tracer)->record((kind), (cycle), (pkt), (msg), (comp),  \
                             (atHost), (arg));                       \
    } while (0)
#else
#define MDW_TRACE_EVENT(tracer, kind, cycle, pkt, msg, comp, atHost, \
                        arg)                                         \
    do {                                                             \
    } while (0)
#endif

// ---------------------------------------------------------------------
// Telemetry context
// ---------------------------------------------------------------------

/** Observability configuration (part of NetworkConfig). */
struct TelemetryParams
{
    /** Record worm lifecycle events into the ring buffer. */
    bool trace = false;
    /** Ring-buffer capacity in events. */
    std::uint32_t traceCapacity = 1u << 16;
};

/**
 * Per-network observability context: the registry every component
 * registers into plus the (optional) tracer they all share.
 */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryParams &params = {});

    MetricsRegistry &registry() { return registry_; }
    const MetricsRegistry &registry() const { return registry_; }

    /** Null when tracing is disabled (the zero-overhead path). */
    WormTracer *tracer() { return tracer_.get(); }
    const WormTracer *tracer() const { return tracer_.get(); }

    const TelemetryParams &params() const { return params_; }

  private:
    TelemetryParams params_;
    MetricsRegistry registry_;
    std::unique_ptr<WormTracer> tracer_;
};

} // namespace mdw

#endif // MDW_SIM_TELEMETRY_HH
