/**
 * @file
 * Deterministic fault injection: descriptions of link and switch
 * failures to be applied at scheduled cycles.
 *
 * A FaultPlan is pure data — it names components and cycles but knows
 * nothing about recovery. The resilience layer (core/resilience.hh)
 * interprets the plan against a live network: draining failed ports,
 * recomputing routing, and arming the host-level retransmission path.
 *
 * Random plans are derived from Rng::streamSeed so a faulted sweep
 * stays bit-identical at any thread count, exactly like the traffic
 * streams (see core/sweep.hh).
 */

#ifndef MDW_SIM_FAULT_HH
#define MDW_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/** What breaks. */
enum class FaultKind
{
    /** Both directions of one switch-switch link stop working. */
    LinkDown,
    /** A whole switch (all its ports and attached hosts) dies. */
    SwitchDown,
    /** A link stays up but forwards at most one flit every @c factor
     *  cycles in each direction. */
    LinkDegrade,
};

const char *toString(FaultKind kind);

/** One scheduled failure. */
struct FaultEvent
{
    FaultKind kind = FaultKind::LinkDown;
    /** Cycle at which the fault takes effect (applied at cycle start,
     *  before any component steps). */
    Cycle when = 0;
    /** The failing switch (SwitchDown), or the lower-id endpoint of
     *  the failing link. */
    SwitchId sw = kInvalidSwitch;
    /** Port on @c sw identifying the link (LinkDown / LinkDegrade). */
    int port = -1;
    /** LinkDegrade: forward at most one flit per this many cycles. */
    int factor = 1;

    std::string describe() const;
};

/**
 * Shape parameters for a randomly drawn plan (the config-facing
 * knobs: fault.links=, fault.switches=, fault.start=, fault.end=,
 * fault.seed=; transients: fault.ber=, fault.residual=, fault.flaps=,
 * fault.flapMin=, fault.flapMax=).
 */
struct FaultSpec
{
    /** Number of distinct switch-switch links to kill. */
    int links = 0;
    /** Number of switches to kill. */
    int switches = 0;
    /** Fault cycles are drawn uniformly from [start, end]. */
    Cycle start = 0;
    Cycle end = 0;
    /** Stream seed for the draw (independent of traffic RNG). */
    std::uint64_t seed = 1;

    // --- Transient regime (link-level, recoverable) -----------------
    /** Per-flit per-link-traversal corruption probability. */
    double ber = 0.0;
    /** Probability a corrupted flit also evades the link CRC (an
     *  undetected error, caught only by the end-to-end checksum). */
    double residual = 0.0;
    /** Number of link-flap (down/up) windows to draw; starts fall in
     *  [start, end], durations in [flapMin, flapMax]. */
    int flaps = 0;
    Cycle flapMin = 64;
    Cycle flapMax = 1024;

    bool empty() const { return links <= 0 && switches <= 0; }
    /** True when any transient mechanism is configured. */
    bool transient() const { return ber > 0.0 || flaps > 0; }
};

/**
 * One link-flap window: the named link loses every flit whose wire
 * slot falls in [start, end). The link-level retry rides out short
 * windows; long ones exhaust the retry budget and escalate to a
 * fail-stop LinkDown.
 */
struct FlapWindow
{
    /** Lower-id endpoint of the flapping link, as in FaultEvent. */
    SwitchId sw = kInvalidSwitch;
    int port = -1;
    Cycle start = 0;
    Cycle end = 0;

    std::string describe() const;
};

/** An ordered (by cycle) list of scheduled failures. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    // --- Transient schedule (interpreted by the link layer) ---------
    /** Per-flit per-traversal corruption probability on every
     *  switch-switch link. */
    double ber = 0.0;
    /** Probability a corrupted flit evades the link CRC. */
    double residual = 0.0;
    /** Stream seed for per-link corruption draws. */
    std::uint64_t transientSeed = 1;
    /** Scheduled link-flap windows (sorted by start in finalize()). */
    std::vector<FlapWindow> flaps;

    bool hasTransients() const { return ber > 0.0 || !flaps.empty(); }
    bool empty() const { return events.empty() && !hasTransients(); }

    /** Append one event (kept unsorted until finalize()). */
    void add(FaultEvent event) { events.push_back(event); }

    /** Sort events by cycle (stable: ties keep insertion order). */
    void finalize();

    /**
     * Draw the transient schedule from @p spec: the BER applies to
     * every link; spec.flaps windows land on distinct candidate links
     * at uniform cycles in [spec.start, spec.end] with uniform
     * durations in [spec.flapMin, spec.flapMax]. Uses streams disjoint
     * from random()'s, so adding transients never perturbs which
     * links fail-stop. Deterministic in @p spec alone.
     */
    void drawTransients(const FaultSpec &spec,
                        const std::vector<std::pair<SwitchId, int>>
                            &candidateLinks);

    /**
     * Draw a random plan: @p spec.links distinct entries from
     * @p candidateLinks and @p spec.switches distinct entries from
     * @p candidateSwitches, each at a uniform cycle in
     * [spec.start, spec.end]. Candidate links are (switch, port)
     * pairs; pass each physical link once (e.g. from its lower-id
     * endpoint). Deterministic in @p spec alone.
     */
    static FaultPlan random(const FaultSpec &spec,
                            const std::vector<std::pair<SwitchId, int>>
                                &candidateLinks,
                            const std::vector<SwitchId>
                                &candidateSwitches);
};

} // namespace mdw

#endif // MDW_SIM_FAULT_HH
