/**
 * @file
 * Thread-local shard context for the sharded scheduler.
 *
 * While a worker thread advances one shard through the parallel
 * phase of a cycle, it publishes the shard index here so that
 * shard-routed facilities (the worm tracer's per-shard rings, the
 * simulator's per-shard progress flags) can file writes under the
 * right shard without taking a lock. Serial contexts — the flat
 * scheduler, the serial phase of a sharded cycle, everything outside
 * stepping — leave the index at -1 and take the ordinary
 * single-threaded path.
 */

#ifndef MDW_SIM_SHARD_CONTEXT_HH
#define MDW_SIM_SHARD_CONTEXT_HH

namespace mdw {
namespace shardctx {

/** Shard currently being stepped by this thread, or -1. */
extern thread_local int current;

} // namespace shardctx
} // namespace mdw

#endif // MDW_SIM_SHARD_CONTEXT_HH
