/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We implement xoshiro256** seeded through splitmix64 rather than using
 * std::mt19937 so that simulation results are bit-reproducible across
 * standard libraries and platforms. Every component that needs
 * randomness owns its own Rng, forked deterministically from the
 * top-level seed, so adding a component never perturbs the stream seen
 * by another.
 */

#ifndef MDW_SIM_RNG_HH
#define MDW_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace mdw {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Geometric inter-arrival gap for a Bernoulli(p) process, >= 1. */
    std::uint64_t geometricGap(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Deterministically derive a child generator. Children with
     * distinct tags have independent-looking streams.
     */
    Rng fork(std::uint64_t tag) const;

    /**
     * Seed of independent stream @p index of a family rooted at
     * @p base. Used by the sweep runner to give every run in a
     * parameter sweep its own RNG stream from one base seed, so that
     * results depend only on (base, index) — never on which thread
     * executed the run.
     */
    static std::uint64_t streamSeed(std::uint64_t base,
                                    std::uint64_t index);

  private:
    std::uint64_t s_[4];
    std::uint64_t seed_;
};

} // namespace mdw

#endif // MDW_SIM_RNG_HH
