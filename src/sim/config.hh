/**
 * @file
 * Typed key=value configuration store.
 *
 * Subsystems consume plain parameter structs; this store is the
 * string-facing layer used by benches, examples and tests to override
 * defaults from the command line ("key=value" arguments).
 */

#ifndef MDW_SIM_CONFIG_HH
#define MDW_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdw {

/** String-keyed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Warns (once per key per process, on stderr) about tokens that
     * were parsed from the command line but never read by anyone — a
     * typo like `thread=4` would otherwise be silently ignored.
     * Programmatic set() does not arm the warning.
     */
    ~Config();

    Config(const Config &) = default;
    Config &operator=(const Config &) = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** Parse a single "key=value" token; fatal() on bad syntax. */
    void parseToken(const std::string &token);

    /**
     * Parse argv-style arguments; every argument must be key=value.
     * Returns the number of tokens consumed.
     */
    int parseArgs(int argc, char **argv);

    bool has(const std::string &key) const;

    /** Typed getters; fatal() if present but malformed. */
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /** Keys that were set but never read (catches typos). */
    std::vector<std::string> unreadKeys() const;

    /** Unread keys that came from parseToken/parseArgs (user typos). */
    std::vector<std::string> unreadParsedKeys() const;

    /** All keys in sorted order. */
    std::vector<std::string> keys() const;

  private:
    const std::string *lookup(const std::string &key) const;

    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> read_;
    /** Keys that arrived via parseToken (vs programmatic set()). */
    std::map<std::string, bool> parsed_;
};

} // namespace mdw

#endif // MDW_SIM_CONFIG_HH
