#include "sim/fault.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mdw {

const char *
toString(FaultKind kind)
{
    switch (kind) {
    case FaultKind::LinkDown:
        return "link-down";
    case FaultKind::SwitchDown:
        return "switch-down";
    case FaultKind::LinkDegrade:
        return "link-degrade";
    }
    return "?";
}

std::string
FaultEvent::describe() const
{
    char buf[96];
    if (kind == FaultKind::SwitchDown) {
        std::snprintf(buf, sizeof(buf), "%s sw%d @%llu", toString(kind),
                      sw, static_cast<unsigned long long>(when));
    } else {
        std::snprintf(buf, sizeof(buf), "%s sw%d.p%d @%llu",
                      toString(kind), sw, port,
                      static_cast<unsigned long long>(when));
    }
    return buf;
}

std::string
FlapWindow::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "link-flap sw%d.p%d @[%llu,%llu)",
                  sw, port, static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end));
    return buf;
}

void
FaultPlan::finalize()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.when < b.when;
                     });
    std::stable_sort(flaps.begin(), flaps.end(),
                     [](const FlapWindow &a, const FlapWindow &b) {
                         return a.start < b.start;
                     });
}

namespace {

/** Uniform cycle in [start, end] (inclusive; start if degenerate). */
Cycle
drawCycle(Rng &rng, Cycle start, Cycle end)
{
    if (end <= start)
        return start;
    return start + rng.below(end - start + 1);
}

} // namespace

FaultPlan
FaultPlan::random(const FaultSpec &spec,
                  const std::vector<std::pair<SwitchId, int>>
                      &candidateLinks,
                  const std::vector<SwitchId> &candidateSwitches)
{
    FaultPlan plan;
    if (spec.empty())
        return plan;

    // Distinct derived streams so adding switch faults never perturbs
    // which links die (and vice versa).
    Rng linkRng(Rng::streamSeed(spec.seed, 0x11));
    Rng swRng(Rng::streamSeed(spec.seed, 0x22));

    // Partial Fisher-Yates over an index vector: draw without
    // replacement, deterministically.
    std::vector<std::size_t> idx(candidateLinks.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    const std::size_t nLinks =
        std::min<std::size_t>(spec.links > 0 ? spec.links : 0,
                              idx.size());
    if (spec.links > 0 &&
        static_cast<std::size_t>(spec.links) > idx.size()) {
        warn("fault plan: only %zu candidate links for %d requested "
             "link faults",
             idx.size(), spec.links);
    }
    for (std::size_t i = 0; i < nLinks; ++i) {
        const std::size_t j =
            i + linkRng.below(idx.size() - i);
        std::swap(idx[i], idx[j]);
        FaultEvent ev;
        ev.kind = FaultKind::LinkDown;
        ev.sw = candidateLinks[idx[i]].first;
        ev.port = candidateLinks[idx[i]].second;
        ev.when = drawCycle(linkRng, spec.start, spec.end);
        plan.add(ev);
    }

    std::vector<std::size_t> sidx(candidateSwitches.size());
    for (std::size_t i = 0; i < sidx.size(); ++i)
        sidx[i] = i;
    const std::size_t nSw =
        std::min<std::size_t>(spec.switches > 0 ? spec.switches : 0,
                              sidx.size());
    if (spec.switches > 0 &&
        static_cast<std::size_t>(spec.switches) > sidx.size()) {
        warn("fault plan: only %zu candidate switches for %d requested "
             "switch faults",
             sidx.size(), spec.switches);
    }
    for (std::size_t i = 0; i < nSw; ++i) {
        const std::size_t j = i + swRng.below(sidx.size() - i);
        std::swap(sidx[i], sidx[j]);
        FaultEvent ev;
        ev.kind = FaultKind::SwitchDown;
        ev.sw = candidateSwitches[sidx[i]];
        ev.when = drawCycle(swRng, spec.start, spec.end);
        plan.add(ev);
    }

    plan.finalize();
    return plan;
}

void
FaultPlan::drawTransients(const FaultSpec &spec,
                          const std::vector<std::pair<SwitchId, int>>
                              &candidateLinks)
{
    ber = spec.ber;
    residual = spec.residual;
    transientSeed = spec.seed;
    if (spec.flaps <= 0)
        return;

    // 0x33: disjoint from random()'s link (0x11) and switch (0x22)
    // streams, so turning flaps on never moves the fail-stop draws.
    Rng flapRng(Rng::streamSeed(spec.seed, 0x33));
    std::vector<std::size_t> idx(candidateLinks.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    const std::size_t nFlaps =
        std::min<std::size_t>(static_cast<std::size_t>(spec.flaps),
                              idx.size());
    if (static_cast<std::size_t>(spec.flaps) > idx.size()) {
        warn("fault plan: only %zu candidate links for %d requested "
             "flap windows",
             idx.size(), spec.flaps);
    }
    const Cycle lo = spec.flapMin >= 1 ? spec.flapMin : 1;
    const Cycle hi = spec.flapMax >= lo ? spec.flapMax : lo;
    for (std::size_t i = 0; i < nFlaps; ++i) {
        const std::size_t j = i + flapRng.below(idx.size() - i);
        std::swap(idx[i], idx[j]);
        FlapWindow w;
        w.sw = candidateLinks[idx[i]].first;
        w.port = candidateLinks[idx[i]].second;
        w.start = drawCycle(flapRng, spec.start, spec.end);
        w.end = w.start + drawCycle(flapRng, lo, hi);
        flaps.push_back(w);
    }
}

} // namespace mdw
