/**
 * @file
 * A deterministic discrete-event queue.
 *
 * The cycle-driven kernel covers the data path; the event queue covers
 * sparse timed actions (NIC software-overhead expiry, watchdog checks,
 * experiment phase transitions). Events scheduled for the same cycle
 * fire in scheduling order, which keeps runs reproducible.
 */

#ifndef MDW_SIM_EVENT_QUEUE_HH
#define MDW_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/** Min-heap of timed callbacks with FIFO tie-breaking. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action to fire at cycle @p when. */
    void schedule(Cycle when, Action action);

    /** Fire all events due at or before @p now, in order. */
    void runDue(Cycle now);

    /** Cycle of the earliest pending event, or kNoCycle. */
    Cycle nextEventCycle() const;

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace mdw

#endif // MDW_SIM_EVENT_QUEUE_HH
