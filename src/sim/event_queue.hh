/**
 * @file
 * A deterministic discrete-event queue.
 *
 * The cycle-driven kernel covers the data path; the event queue covers
 * sparse timed actions (NIC software-overhead expiry, watchdog checks,
 * experiment phase transitions). Events scheduled for the same cycle
 * fire in scheduling order, which keeps runs reproducible.
 */

#ifndef MDW_SIM_EVENT_QUEUE_HH
#define MDW_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/** Min-heap of timed callbacks with FIFO tie-breaking. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule @p action to fire at cycle @p when. */
    void schedule(Cycle when, Action action);

    /** Fire all events due at or before @p now, in order. */
    void runDue(Cycle now);

    /** Cycle of the earliest pending event, or kNoCycle. */
    Cycle nextEventCycle() const;

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

    /** Events ever scheduled over the queue's lifetime. */
    std::uint64_t totalScheduled() const { return totalScheduled_; }

    /** Events ever fired over the queue's lifetime. */
    std::uint64_t totalFired() const { return totalFired_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Action action;
    };

    // Explicit binary min-heap on (when, seq) rather than
    // std::priority_queue: top() there is const, which forces a
    // const_cast to move the action out. Here popTop() moves the
    // whole event out legitimately.
    static bool earlier(const Event &a, const Event &b);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    Event popTop();

    std::vector<Event> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t totalScheduled_ = 0;
    std::uint64_t totalFired_ = 0;
};

} // namespace mdw

#endif // MDW_SIM_EVENT_QUEUE_HH
