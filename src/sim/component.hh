/**
 * @file
 * Base class for clocked simulation components.
 */

#ifndef MDW_SIM_COMPONENT_HH
#define MDW_SIM_COMPONENT_HH

#include <cstddef>
#include <string>
#include <utility>

#include "sim/types.hh"

namespace mdw {

class Simulator;

/**
 * A clocked component. The Simulator calls step() exactly once per
 * cycle on every registered component; all inter-component state
 * exchange must flow through delay-stamped channels so the call order
 * cannot affect results.
 *
 * Under the fast path (Simulator::setFastPath) idle components are
 * retired from the per-cycle tick set: after every stepped cycle the
 * kernel asks nextWork() for the earliest future cycle at which the
 * component could do anything observable, and only re-steps it from
 * that cycle on (or earlier, if someone calls requestWake()). A
 * component may answer conservatively -- being stepped while idle must
 * always be a no-op -- but must never answer late: sleeping through a
 * cycle where it would have moved state breaks the bit-identity
 * guarantee against the always-stepped path.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance this component by one cycle. */
    virtual void step(Cycle now) = 0;

    /**
     * Earliest future cycle (> @p now) at which this component may
     * have work, or kNoCycle to sleep until an external requestWake().
     * Called by the fast-path kernel after the component was stepped
     * at @p now. The default keeps legacy components ticking every
     * cycle, which is always correct.
     */
    virtual Cycle
    nextWork(Cycle now)
    {
        return now + 1;
    }

    /**
     * Ask the kernel to step this component at cycle @p when (clamped
     * to the current cycle). No-op on the always-stepped path and for
     * unregistered components, so producers may call it
     * unconditionally.
     *
     * The hot early-out: while the component is in the tick set the
     * retire pass re-evaluates nextWork() anyway, so the wake carries
     * no information — skip the kernel call entirely. The flag stays
     * set on the always-stepped path and for unregistered components,
     * where wake() would be a no-op too.
     */
    void
    requestWake(Cycle when)
    {
        if (schedActive_)
            return;
        requestWakeSlow(when);
    }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Called by the Simulator when the component is registered. */
    void attach(Simulator *sim) { sim_ = sim; }

  protected:
    /** Owning simulator (valid after registration). */
    Simulator *sim_ = nullptr;

  private:
    friend class Simulator;

    void requestWakeSlow(Cycle when);

    std::string name_;
    /** Index in the owning Simulator's registration order. */
    std::size_t simIndex_ = 0;
    /**
     * True while this component is in its simulator's per-cycle tick
     * set (always true on the cycle path and before registration).
     * Maintained by the Simulator; read by requestWake()'s early-out.
     */
    char schedActive_ = 1;
};

} // namespace mdw

#endif // MDW_SIM_COMPONENT_HH
