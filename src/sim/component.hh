/**
 * @file
 * Base class for clocked simulation components.
 */

#ifndef MDW_SIM_COMPONENT_HH
#define MDW_SIM_COMPONENT_HH

#include <string>
#include <utility>

#include "sim/types.hh"

namespace mdw {

class Simulator;

/**
 * A clocked component. The Simulator calls step() exactly once per
 * cycle on every registered component; all inter-component state
 * exchange must flow through delay-stamped channels so the call order
 * cannot affect results.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance this component by one cycle. */
    virtual void step(Cycle now) = 0;

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Called by the Simulator when the component is registered. */
    void attach(Simulator *sim) { sim_ = sim; }

  protected:
    /** Owning simulator (valid after registration). */
    Simulator *sim_ = nullptr;

  private:
    std::string name_;
};

} // namespace mdw

#endif // MDW_SIM_COMPONENT_HH
