/**
 * @file
 * Delay-stamped point-to-point channels.
 *
 * All communication between simulated components flows through
 * channels with a minimum delay of one cycle. An item sent at cycle t
 * becomes visible to the receiver at cycle t + delay, which makes the
 * per-cycle component step order irrelevant to simulation results.
 *
 * A data Channel models a physical link: at most one item (flit) may
 * be sent per cycle. A CreditChannel carries flow-control credits in
 * the reverse direction and may batch several credits per cycle.
 */

#ifndef MDW_SIM_CHANNEL_HH
#define MDW_SIM_CHANNEL_HH

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/boundary.hh"
#include "sim/component.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mdw {

/**
 * Optional per-channel link-layer hook (transient-fault subsystem).
 *
 * When attached, send() consults the hook to resolve the item's
 * *final* arrival cycle — the hook may model corruption, NAK/replay
 * rounds and flap outages by returning a later cycle (or kNoCycle to
 * drop the item on a dead link) — and receive() lets it verify the
 * delivered item. Arrivals must stay monotone so the channel remains
 * a FIFO; the default (no hook) path is byte-identical to a plain
 * fixed-delay channel.
 */
template <typename T>
class ChannelHook
{
  public:
    virtual ~ChannelHook() = default;

    /**
     * Resolve the final arrival cycle of @p item sent at @p now.
     * May mutate the item (stamp sequence numbers / CRCs). Returns
     * kNoCycle to drop the item instead of delivering it.
     */
    virtual Cycle onSend(T &item, Cycle now) = 0;

    /** Called when the receiver takes delivery of @p item. */
    virtual void onReceive(const T &item) = 0;
};

/**
 * One-item-per-cycle unidirectional link with fixed delay.
 *
 * When the sending component lives in a parallel shard and the
 * receiver does not (sharded scheduler), the channel is switched into
 * *boundary mode*: send() appends to a channel-local mailbox owned by
 * the sending shard's thread and the simulator moves the mailbox into
 * the receiver-visible queue at the cycle barrier. Because delay >= 1,
 * an item sent at cycle t is never observable at t, so the deferred
 * push is invisible to results.
 */
template <typename T>
class Channel : public BoundaryChannel
{
  public:
    /**
     * @param name Diagnostic name.
     * @param delay Cycles between send and earliest receive (>= 1).
     */
    explicit Channel(std::string name, Cycle delay = 1)
        : name_(std::move(name)), delay_(delay)
    {
        MDW_ASSERT(delay_ >= 1, "channel %s: delay must be >= 1",
                   name_.c_str());
    }

    /** Send one item; at most one send per cycle is legal. */
    void
    send(T item, Cycle now)
    {
        MDW_ASSERT(lastSend_ != now || !sentYet_,
                   "channel %s: two sends in cycle %llu", name_.c_str(),
                   static_cast<unsigned long long>(now));
        lastSend_ = now;
        sentYet_ = true;
        ++totalSends_;
        Cycle arrival = now + delay_;
        if (hook_ != nullptr) {
            arrival = hook_->onSend(item, now);
            if (arrival == kNoCycle)
                return; // dropped on a dead/escalated link
            MDW_ASSERT(arrival >= now + delay_,
                       "channel %s: hook arrival before wire delay",
                       name_.c_str());
            MDW_ASSERT(queue_.empty() ||
                           arrival >= queue_.back().ready,
                       "channel %s: hook broke FIFO arrival order",
                       name_.c_str());
        }
        if (boundary_) {
            pending_.push_back(Entry{arrival, std::move(item)});
            if (!dirty_) {
                dirty_ = true;
                registrar_->boundaryDirty(srcShard_, this);
            }
            return;
        }
        queue_.push_back(Entry{arrival, std::move(item)});
        if (sink_ != nullptr)
            sink_->requestWake(arrival);
    }

    /**
     * Switch the channel into boundary mode (see class comment);
     * @p srcShard is the sending component's shard. Pass null to
     * revert to direct delivery. Incompatible with a link-layer hook.
     */
    void
    setBoundary(BoundaryRegistrar *registrar, std::uint32_t srcShard)
    {
        MDW_ASSERT(registrar == nullptr || hook_ == nullptr,
                   "channel %s: boundary mode with a link hook",
                   name_.c_str());
        MDW_ASSERT(pending_.empty(),
                   "channel %s: mode change with buffered sends",
                   name_.c_str());
        registrar_ = registrar;
        srcShard_ = srcShard;
        boundary_ = registrar != nullptr;
    }

    // BoundaryChannel: barrier drain (main thread; the sending shard
    // finished its phase, so pending_ is quiescent).
    std::size_t
    flushBoundary() override
    {
        const std::size_t moved = pending_.size();
        dirty_ = false;
        if (moved == 0)
            return 0;
        // One wake at the earliest arrival suffices: once awake, the
        // sink's nextWork() accounts for every queued arrival.
        const Cycle first = pending_.front().ready;
        for (Entry &entry : pending_)
            queue_.push_back(std::move(entry));
        pending_.clear();
        if (sink_ != nullptr)
            sink_->requestWake(first);
        return moved;
    }

    /**
     * Attach a link-layer hook (transient-fault subsystem); null
     * detaches. The channel does not own the hook.
     */
    void
    setHook(ChannelHook<T> *hook)
    {
        MDW_ASSERT(hook == nullptr || !boundary_,
                   "channel %s: link hook in boundary mode",
                   name_.c_str());
        hook_ = hook;
    }
    ChannelHook<T> *hook() const { return hook_; }

    /**
     * Register the receiving component so sends wake it if it is
     * sleeping when the item lands (fast path only).
     */
    void setWakeSink(Component *sink) { sink_ = sink; }

    /** Cycle the oldest in-flight item arrives, or kNoCycle. */
    Cycle
    nextArrival() const
    {
        // Constant delay keeps the queue ready-ordered, so front() is
        // the earliest arrival.
        return queue_.empty() ? kNoCycle : queue_.front().ready;
    }

    /** True if send() was already called this cycle. */
    bool
    busy(Cycle now) const
    {
        return sentYet_ && lastSend_ == now;
    }

    /** Pointer to the oldest item that has arrived, or nullptr. */
    const T *
    peek(Cycle now) const
    {
        if (queue_.empty() || queue_.front().ready > now)
            return nullptr;
        return &queue_.front().item;
    }

    /** Remove and return the oldest arrived item (must exist). */
    T
    receive(Cycle now)
    {
        MDW_ASSERT(peek(now) != nullptr,
                   "channel %s: receive with nothing arrived",
                   name_.c_str());
        T item = std::move(queue_.front().item);
        queue_.pop_front();
        if (hook_ != nullptr)
            hook_->onReceive(item);
        return item;
    }

    /** Number of items in flight (sent, not yet received). */
    std::size_t
    inFlight() const
    {
        return queue_.size() + pending_.size();
    }

    /** Items ever sent over the channel's lifetime. */
    std::uint64_t totalSends() const { return totalSends_; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Channel delay in cycles. */
    Cycle delay() const { return delay_; }

  private:
    struct Entry
    {
        Cycle ready;
        T item;
    };

    std::string name_;
    Cycle delay_;
    std::deque<Entry> queue_;
    Cycle lastSend_ = 0;
    bool sentYet_ = false;
    std::uint64_t totalSends_ = 0;
    Component *sink_ = nullptr;
    ChannelHook<T> *hook_ = nullptr;
    // Boundary mode: mailbox written only by the sending shard's
    // thread, drained only at the barrier.
    std::vector<Entry> pending_;
    BoundaryRegistrar *registrar_ = nullptr;
    std::uint32_t srcShard_ = 0;
    bool boundary_ = false;
    bool dirty_ = false;
};

/**
 * Reverse-direction credit carrier. Multiple credits may be granted in
 * the same cycle (e.g. when a whole chunk of flits is drained at
 * once); same-cycle grants for the same lane are merged into one
 * entry. Each grant is tagged with the virtual lane whose buffer it
 * replenishes (lane 0 when the link runs a single lane), so the
 * sender can maintain independent per-lane credit counts over one
 * physical reverse wire.
 */
class CreditChannel : public BoundaryChannel
{
  public:
    explicit CreditChannel(std::string name, Cycle delay = 1);

    /** Grant @p count credits for @p lane, visible after delay. */
    void send(int count, Cycle now, int lane = 0);

    /** Collect all credits that have arrived by @p now, summed over
     *  lanes (single-lane receivers). */
    int receive(Cycle now);

    /**
     * Collect all credits that have arrived by @p now, accumulating
     * each grant into @p laneCounts[lane]. @p laneCounts must span
     * every lane the sender grants on. Returns the total collected.
     */
    int receiveByLane(Cycle now, std::vector<int> &laneCounts);

    /** Switch to boundary mode (see Channel); null reverts. */
    void setBoundary(BoundaryRegistrar *registrar,
                     std::uint32_t srcShard);

    // BoundaryChannel: barrier drain (main thread).
    std::size_t flushBoundary() override;

    /**
     * Register the receiving component so grants wake it if it is
     * sleeping when the credits land (fast path only).
     */
    void setWakeSink(Component *sink) { sink_ = sink; }

    /** Cycle the oldest in-flight grant arrives, or kNoCycle. */
    Cycle
    nextArrival() const
    {
        return queue_.empty() ? kNoCycle : queue_.front().ready;
    }

    /** Credits in flight (granted, not yet collected). */
    int inFlight() const { return inFlight_; }

    /** Credits ever granted over the channel's lifetime. */
    std::uint64_t totalSends() const { return totalSends_; }

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        Cycle ready;
        int count;
        int lane;
    };

    std::string name_;
    Cycle delay_;
    std::deque<Entry> queue_;
    int inFlight_ = 0;
    std::uint64_t totalSends_ = 0;
    Component *sink_ = nullptr;
    std::vector<Entry> pending_;
    BoundaryRegistrar *registrar_ = nullptr;
    std::uint32_t srcShard_ = 0;
    bool boundary_ = false;
    bool dirty_ = false;
};

} // namespace mdw

#endif // MDW_SIM_CHANNEL_HH
