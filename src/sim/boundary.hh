/**
 * @file
 * Interfaces between boundary-mode channels and the sharded
 * scheduler. Split out of sim/system.hh so sim/channel.hh can attach
 * to the registrar without pulling in the Simulator's definition.
 */

#ifndef MDW_SIM_BOUNDARY_HH
#define MDW_SIM_BOUNDARY_HH

#include <cstddef>
#include <cstdint>

namespace mdw {

/**
 * A channel operating in boundary mode: its sends are buffered into a
 * per-channel mailbox instead of touching the receiver-visible queue,
 * and the simulator drains the mailbox at the cycle barrier (in
 * deterministic shard/registration order) by calling flushBoundary().
 */
class BoundaryChannel
{
  public:
    virtual ~BoundaryChannel() = default;

    /** Move buffered sends into the receiver-visible queue and apply
     *  the deferred sink wakes. Returns the number of items moved. */
    virtual std::size_t flushBoundary() = 0;
};

/**
 * Who a boundary channel reports its first buffered send of a cycle
 * to. Implemented by the Simulator.
 */
class BoundaryRegistrar
{
  public:
    virtual ~BoundaryRegistrar() = default;

    /** Called (once per dirty episode) by the sending shard. */
    virtual void boundaryDirty(std::uint32_t srcShard,
                               BoundaryChannel *channel) = 0;
};

} // namespace mdw

#endif // MDW_SIM_BOUNDARY_HH
