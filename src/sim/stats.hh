/**
 * @file
 * Statistics primitives for simulation measurement.
 */

#ifndef MDW_SIM_STATS_HH
#define MDW_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/**
 * Streaming scalar sample statistics (count, mean, variance via
 * Welford's algorithm, min, max).
 */
class Sampler
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another sampler's samples into this one. */
    void merge(const Sampler &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return n_; }
    double sum() const { return mean_ * static_cast<double>(n_); }
    /** Mean of the samples (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width linear histogram with an overflow bin and percentile
 * queries. Bin i covers [i * binWidth, (i + 1) * binWidth).
 */
class Histogram
{
  public:
    /**
     * @param binWidth Width of each bin (> 0).
     * @param binCount Number of regular bins (values beyond go to the
     *                 overflow bin).
     */
    Histogram(double binWidth, std::size_t binCount);

    void add(double x);

    /**
     * Merge another histogram's bins into this one. Differing bin
     * counts are handled by widening; differing bin widths are
     * handled by rebinning the finer histogram into the coarser
     * width when one width is an integer multiple of the other, and
     * rejected (fatal) otherwise — counts are never silently
     * misfiled into the wrong bins.
     */
    void merge(const Histogram &other);

    void reset();

    std::uint64_t count() const { return total_; }
    std::uint64_t overflow() const { return overflow_; }
    double mean() const { return sampler_.mean(); }
    double stddev() const { return sampler_.stddev(); }
    double min() const { return sampler_.min(); }
    double max() const { return sampler_.max(); }

    /**
     * Approximate q-quantile (0 <= q <= 1) assuming uniform density
     * within bins; returns max() if the quantile falls in overflow.
     */
    double percentile(double q) const;

    const std::vector<std::uint64_t> &bins() const { return bins_; }
    double binWidth() const { return binWidth_; }

  private:
    /** Rebin in place to @p factor times the current bin width. */
    void coarsen(std::size_t factor);

    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    Sampler sampler_;
};

/**
 * Time-weighted average of a piecewise-constant quantity such as
 * buffer occupancy. Call update() whenever the value changes.
 */
class TimeAverage
{
  public:
    /** Record that the value becomes @p value at cycle @p now. */
    void update(double value, Cycle now);

    /** Time-weighted mean over [start, now]. */
    double average(Cycle now) const;

    /** Restart accumulation at @p now keeping the current value. */
    void reset(Cycle now);

    double current() const { return value_; }
    double peak() const { return peak_; }

  private:
    double value_ = 0.0;
    double peak_ = 0.0;
    double weighted_ = 0.0;
    Cycle start_ = 0;
    Cycle last_ = 0;
};

/** Simple named monotonic counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

} // namespace mdw

#endif // MDW_SIM_STATS_HH
