#include "sim/channel.hh"

namespace mdw {

CreditChannel::CreditChannel(std::string name, Cycle delay)
    : name_(std::move(name)), delay_(delay)
{
    MDW_ASSERT(delay_ >= 1, "credit channel %s: delay must be >= 1",
               name_.c_str());
}

void
CreditChannel::send(int count, Cycle now)
{
    MDW_ASSERT(count > 0, "credit channel %s: non-positive grant %d",
               name_.c_str(), count);
    const Cycle ready = now + delay_;
    if (!queue_.empty() && queue_.back().ready == ready) {
        queue_.back().count += count;
    } else {
        queue_.push_back(Entry{ready, count});
    }
    inFlight_ += count;
    totalSends_ += static_cast<std::uint64_t>(count);
    if (sink_ != nullptr)
        sink_->requestWake(ready);
}

int
CreditChannel::receive(Cycle now)
{
    int total = 0;
    while (!queue_.empty() && queue_.front().ready <= now) {
        total += queue_.front().count;
        queue_.pop_front();
    }
    inFlight_ -= total;
    return total;
}

} // namespace mdw
