#include "sim/channel.hh"

namespace mdw {

CreditChannel::CreditChannel(std::string name, Cycle delay)
    : name_(std::move(name)), delay_(delay)
{
    MDW_ASSERT(delay_ >= 1, "credit channel %s: delay must be >= 1",
               name_.c_str());
}

void
CreditChannel::send(int count, Cycle now, int lane)
{
    MDW_ASSERT(count > 0, "credit channel %s: non-positive grant %d",
               name_.c_str(), count);
    MDW_ASSERT(lane >= 0, "credit channel %s: negative lane %d",
               name_.c_str(), lane);
    const Cycle ready = now + delay_;
    totalSends_ += static_cast<std::uint64_t>(count);
    if (boundary_) {
        // inFlight_ is charged at the barrier flush, not here: the
        // sink's shard decrements it in receive(), so the sending
        // shard must not touch it mid-phase (the two run
        // concurrently). Quiescence checks only look between cycles,
        // when every mailbox has already been flushed.
        if (!pending_.empty() && pending_.back().ready == ready &&
            pending_.back().lane == lane) {
            pending_.back().count += count;
        } else {
            pending_.push_back(Entry{ready, count, lane});
        }
        if (!dirty_) {
            dirty_ = true;
            registrar_->boundaryDirty(srcShard_, this);
        }
        return;
    }
    inFlight_ += count;
    if (!queue_.empty() && queue_.back().ready == ready &&
        queue_.back().lane == lane) {
        queue_.back().count += count;
    } else {
        queue_.push_back(Entry{ready, count, lane});
    }
    if (sink_ != nullptr)
        sink_->requestWake(ready);
}

void
CreditChannel::setBoundary(BoundaryRegistrar *registrar,
                           std::uint32_t srcShard)
{
    MDW_ASSERT(pending_.empty(),
               "credit channel %s: mode change with buffered grants",
               name_.c_str());
    registrar_ = registrar;
    srcShard_ = srcShard;
    boundary_ = registrar != nullptr;
}

std::size_t
CreditChannel::flushBoundary()
{
    const std::size_t moved = pending_.size();
    dirty_ = false;
    if (moved == 0)
        return 0;
    const Cycle first = pending_.front().ready;
    for (const Entry &entry : pending_) {
        inFlight_ += entry.count;
        if (!queue_.empty() && queue_.back().ready == entry.ready &&
            queue_.back().lane == entry.lane)
            queue_.back().count += entry.count;
        else
            queue_.push_back(entry);
    }
    pending_.clear();
    if (sink_ != nullptr)
        sink_->requestWake(first);
    return moved;
}

int
CreditChannel::receive(Cycle now)
{
    int total = 0;
    while (!queue_.empty() && queue_.front().ready <= now) {
        total += queue_.front().count;
        queue_.pop_front();
    }
    inFlight_ -= total;
    return total;
}

int
CreditChannel::receiveByLane(Cycle now, std::vector<int> &laneCounts)
{
    int total = 0;
    while (!queue_.empty() && queue_.front().ready <= now) {
        const Entry &front = queue_.front();
        MDW_ASSERT(front.lane <
                       static_cast<int>(laneCounts.size()),
                   "credit channel %s: grant on lane %d but receiver "
                   "runs %zu lanes",
                   name_.c_str(), front.lane, laneCounts.size());
        laneCounts[static_cast<std::size_t>(front.lane)] +=
            front.count;
        total += front.count;
        queue_.pop_front();
    }
    inFlight_ -= total;
    return total;
}

} // namespace mdw
