#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace mdw {

bool
EventQueue::earlier(const Event &a, const Event &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < n && earlier(heap_[right], heap_[left]))
            best = right;
        if (!earlier(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

EventQueue::Event
EventQueue::popTop()
{
    Event top = std::move(heap_.front());
    if (heap_.size() > 1) {
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

void
EventQueue::schedule(Cycle when, Action action)
{
    MDW_ASSERT(action != nullptr, "scheduling a null event action");
    heap_.push_back(Event{when, nextSeq_++, std::move(action)});
    siftUp(heap_.size() - 1);
    ++totalScheduled_;
}

void
EventQueue::runDue(Cycle now)
{
    while (!heap_.empty() && heap_.front().when <= now) {
        // The action may schedule further events, so pop first.
        Event event = popTop();
        ++totalFired_;
        event.action();
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.front().when;
}

} // namespace mdw
