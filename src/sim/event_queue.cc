#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace mdw {

void
EventQueue::schedule(Cycle when, Action action)
{
    MDW_ASSERT(action != nullptr, "scheduling a null event action");
    heap_.push(Event{when, nextSeq_++, std::move(action)});
}

void
EventQueue::runDue(Cycle now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // The action may schedule further events, so pop first.
        Action action = std::move(const_cast<Event &>(heap_.top()).action);
        heap_.pop();
        action();
    }
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.top().when;
}

} // namespace mdw
