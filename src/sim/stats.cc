#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mdw {

void
Sampler::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Sampler::merge(const Sampler &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Sampler::reset()
{
    *this = Sampler();
}

double
Sampler::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Sampler::stddev() const
{
    return std::sqrt(variance());
}

double
Sampler::min() const
{
    return n_ ? min_ : 0.0;
}

double
Sampler::max() const
{
    return n_ ? max_ : 0.0;
}

Histogram::Histogram(double binWidth, std::size_t binCount)
    : binWidth_(binWidth), bins_(binCount, 0)
{
    MDW_ASSERT(binWidth > 0.0, "histogram bin width must be positive");
    MDW_ASSERT(binCount > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    sampler_.add(x);
    ++total_;
    if (x < 0.0) {
        // Negative values are clamped into the first bin.
        ++bins_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(x / binWidth_);
    if (idx >= bins_.size())
        ++overflow_;
    else
        ++bins_[idx];
}

void
Histogram::coarsen(std::size_t factor)
{
    MDW_ASSERT(factor > 0, "histogram coarsening factor must be > 0");
    if (factor == 1)
        return;
    const std::size_t newCount = (bins_.size() + factor - 1) / factor;
    std::vector<std::uint64_t> coarse(newCount, 0);
    for (std::size_t i = 0; i < bins_.size(); ++i)
        coarse[i / factor] += bins_[i];
    bins_ = std::move(coarse);
    binWidth_ *= static_cast<double>(factor);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.total_ == 0)
        return;
    if (other.binWidth_ != binWidth_) {
        // Rebin the finer histogram to the coarser width when the
        // widths are commensurate; anything else would misfile
        // counts, so reject it outright.
        const double fine = std::min(binWidth_, other.binWidth_);
        const double coarse = std::max(binWidth_, other.binWidth_);
        const double ratio = coarse / fine;
        const auto factor =
            static_cast<std::size_t>(std::llround(ratio));
        if (factor < 1 ||
            std::abs(ratio - static_cast<double>(factor)) >
                1e-9 * ratio) {
            fatal("merging histograms with incommensurate bin "
                  "widths (%g vs %g)",
                  binWidth_, other.binWidth_);
        }
        if (binWidth_ < other.binWidth_) {
            coarsen(factor);
        } else {
            Histogram rebinned = other;
            rebinned.coarsen(factor);
            merge(rebinned);
            return;
        }
    }
    if (other.bins_.size() > bins_.size())
        bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sampler_.merge(other.sampler_);
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sampler_.reset();
}

double
Histogram::percentile(double q) const
{
    MDW_ASSERT(q >= 0.0 && q <= 1.0, "percentile q=%f out of [0,1]", q);
    if (total_ == 0)
        return 0.0;
    const double target = q * static_cast<double>(total_);
    double seen = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double in_bin = static_cast<double>(bins_[i]);
        if (seen + in_bin >= target && in_bin > 0.0) {
            const double frac = (target - seen) / in_bin;
            const double value =
                (static_cast<double>(i) + frac) * binWidth_;
            // Interpolation can overshoot the largest sample.
            return std::min(value, sampler_.max());
        }
        seen += in_bin;
    }
    return sampler_.max();
}

void
TimeAverage::update(double value, Cycle now)
{
    MDW_ASSERT(now >= last_, "TimeAverage updated backwards in time");
    weighted_ += value_ * static_cast<double>(now - last_);
    value_ = value;
    peak_ = std::max(peak_, value);
    last_ = now;
}

double
TimeAverage::average(Cycle now) const
{
    const double span = static_cast<double>(now - start_);
    if (span <= 0.0)
        return value_;
    const double tail = value_ * static_cast<double>(now - last_);
    return (weighted_ + tail) / span;
}

void
TimeAverage::reset(Cycle now)
{
    weighted_ = 0.0;
    start_ = now;
    last_ = now;
    peak_ = value_;
}

} // namespace mdw
