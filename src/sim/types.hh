/**
 * @file
 * Fundamental scalar types shared across the mdworm simulator.
 */

#ifndef MDW_SIM_TYPES_HH
#define MDW_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mdw {

/** Simulation time, measured in switch clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a processing node (host) attached to the network. */
using NodeId = std::int32_t;

/** Identifier of a switch in the network. */
using SwitchId = std::int32_t;

/** Port index within a switch or NIC. */
using PortId = std::int16_t;

/** Globally unique packet identifier. */
using PacketId = std::uint64_t;

/** Globally unique message identifier (a message may span packets). */
using MsgId = std::uint64_t;

/** Sentinel for "no cycle" / "not yet". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid node. */
inline constexpr NodeId kInvalidNode = -1;

/** Sentinel for invalid switch. */
inline constexpr SwitchId kInvalidSwitch = -1;

/** Sentinel for invalid port. */
inline constexpr PortId kInvalidPort = -1;

} // namespace mdw

#endif // MDW_SIM_TYPES_HH
