/**
 * @file
 * The cycle-driven simulation engine.
 */

#ifndef MDW_SIM_SYSTEM_HH
#define MDW_SIM_SYSTEM_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/boundary.hh"
#include "sim/component.hh"
#include "sim/event_queue.hh"
#include "sim/shard_context.hh"
#include "sim/types.hh"

namespace mdw {

/** Per-shard execution statistics (sharded scheduler only). */
struct ShardStat
{
    /** Components assigned to the shard. */
    std::size_t components = 0;
    /** Component step() calls executed by the shard. */
    std::uint64_t steps = 0;
    /** Items this shard pushed across boundary channels. */
    std::uint64_t boundarySends = 0;
    /**
     * Wall-clock nanoseconds spent executing the shard's parallel
     * phases (step + retire). Diagnostic only — identifies partition
     * imbalance; never feeds back into scheduling or results.
     */
    std::uint64_t wallNs = 0;
};

/**
 * Drives registered components one cycle at a time and fires due
 * events. Also hosts the global progress watchdog used to detect
 * deadlock (or livelock) during stress tests: components call
 * noteProgress() whenever they move a flit, and the watchdog trips if
 * there is pending work but no progress for a configurable number of
 * cycles.
 *
 * Two scheduling modes produce bit-identical results:
 *
 *  - Cycle path (default): every registered component is stepped on
 *    every cycle, unconditionally. This is the oracle.
 *  - Fast path (setFastPath(true)): components that report no work
 *    via Component::nextWork() are retired from the tick set and
 *    re-activated by a wake heap (self-scheduled wakes and
 *    requestWake() pushes from channels and peers). When the tick set
 *    is empty the clock jumps straight to the next activity --
 *    earliest wake, earliest event, run limit, or the cycle at which
 *    the watchdog would trip -- so uncontended stretches cost O(1)
 *    instead of O(components * cycles).
 *
 * On top of the fast path, setSharding() partitions the tick set into
 * parallel shards plus one serial bucket, and each cycle becomes a
 * three-phase barrier-synchronized sweep:
 *
 *  1. parallel phase: shard workers step their shard's active
 *     components (in registration order within the shard). Only
 *     components whose step() touches nothing but its own state, its
 *     channels, the tracer, and noteProgress() may live in a parallel
 *     shard (the network puts switches there). Channels that cross a
 *     shard boundary run in boundary mode: sends are buffered into
 *     per-channel mailboxes.
 *  2. barrier: the main thread folds per-shard progress flags and
 *     drains the boundary mailboxes in deterministic (src-shard,
 *     dirty-registration) order. Because every channel imposes >= 1
 *     cycle of delay, nothing sent at cycle t is observable before
 *     t + 1, so the deferred queue pushes are invisible to results.
 *  3. serial phase: everything else (NICs, engines, test components)
 *     is stepped by the main thread in registration order — exactly
 *     the order the flat scheduler used, so tracker/workload hook
 *     sequences are reproduced verbatim.
 *
 * The retire pass then runs per shard (parallel again), the watchdog
 * is checked, and the clock advances. Results are bit-identical to
 * the flat schedulers for any shard/thread count.
 *
 * Equivalence rests on two component-contract facts: stepping an idle
 * component is a no-op, and nextWork() never under-reports (see
 * Component). Active components are stepped in registration order, so
 * trace event order within a cycle is preserved too.
 */
class Simulator : public BoundaryRegistrar
{
  public:
    Simulator();
    ~Simulator() override;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component (not owned). Components added after
     *  setSharding() land in the serial bucket. */
    void add(Component *component);

    /** Current cycle (the one currently being, or next to be, run). */
    Cycle now() const { return now_; }

    /** Timed-callback queue, fired at the start of each cycle. */
    EventQueue &events() { return events_; }

    /**
     * Select the scheduling mode. Enabling the fast path (re)activates
     * every component; disabling it reverts to stepping everything
     * (and dissolves any sharding).
     */
    void setFastPath(bool on);

    /** True if the idle-skipping fast path is active. */
    bool fastPath() const { return fastPath_; }

    /**
     * Partition the components into @p parallelShards parallel shards
     * plus one serial bucket and run the parallel phase on up to
     * @p threads workers (1 = run the shard loop inline; results are
     * identical either way). @p shardOf maps every registration index
     * to its shard, with the value @p parallelShards meaning "serial
     * bucket". Requires the fast path. Call before running.
     */
    void setSharding(std::vector<std::uint32_t> shardOf,
                     std::size_t parallelShards, unsigned threads);

    /** Revert to the unsharded fast path. */
    void clearSharding();

    /** Parallel shards in use (0 when unsharded). */
    std::size_t shards() const
    {
        return sharded_ ? buckets_.size() - 1 : 0;
    }

    /** Per-shard execution statistics (empty when unsharded);
     *  entry [shards()] is the serial bucket. */
    std::vector<ShardStat> shardStats() const;

    /**
     * Schedule @p component to be stepped at cycle @p when (clamped to
     * the current cycle). Ignored on the cycle path, where everything
     * is stepped anyway. Called via Component::requestWake().
     */
    void wake(Component *component, Cycle when);

    /** Components stepped every cycle right now (fast path only). */
    std::size_t activeCount() const;

    /** Execute exactly one cycle. */
    void stepOne();

    /** Execute @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true (checked once per cycle) or
     * @p maxCycles elapse. Returns true if @p done became true.
     */
    bool runUntil(const std::function<bool()> &done, Cycle maxCycles);

    /** Components report flit movement here. */
    void
    noteProgress()
    {
        const int shard = shardctx::current;
        if (shard >= 0)
            shardProgress_[static_cast<std::size_t>(shard)] = 1;
        else
            lastProgress_ = now_;
    }

    /** Cycle of the most recent reported progress. */
    Cycle lastProgress() const { return lastProgress_; }

    /**
     * Arm the deadlock watchdog.
     * @param quietLimit Trip after this many progress-free cycles.
     * @param hasWork Returns true while packets are in flight.
     * @param onTrip Called when the watchdog fires; if empty, panic().
     */
    void setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                     std::function<void()> onTrip = nullptr);

    /** True if the watchdog has fired. */
    bool deadlockDetected() const { return deadlocked_; }

    std::size_t componentCount() const { return components_.size(); }

    // BoundaryRegistrar: a boundary channel's first buffered send of
    // the current dirty episode (sending shard's thread).
    void boundaryDirty(std::uint32_t srcShard,
                       BoundaryChannel *channel) override;

  private:
    void checkWatchdog();

    /** Move pending wakes due at now_ into the tick set. */
    void wakeDue(std::size_t bucket);
    /** Insert component @p idx into its bucket's tick set (sorted). */
    void activate(std::size_t idx);
    /** Drop stepped components that report no immediate work. */
    void retireIdle(std::size_t bucket);
    /** Step one bucket's active components in registration order. */
    void stepBucket(std::size_t bucket);
    /** Drain every dirty boundary mailbox (main thread, barrier). */
    void flushBoundaries();
    /**
     * First cycle in [now_, limit] at which anything can happen, or
     * now_ when the tick set is non-empty (no skipping possible).
     */
    Cycle nextActivity(Cycle limit) const;

    void stepOneSharded();
    /** Run @p phase over all parallel shards on the worker pool (or
     *  inline when no pool exists). */
    void runParallelPhase(int phase);
    void workerLoop();
    void runShardTask(int phase, std::size_t shard);
    void startPool(unsigned threads);
    void stopPool();

    std::vector<Component *> components_;
    EventQueue events_;
    Cycle now_ = 0;
    Cycle lastProgress_ = 0;

    Cycle watchdogQuiet_ = 0;
    std::function<bool()> watchdogHasWork_;
    std::function<void()> watchdogOnTrip_;
    bool deadlocked_ = false;

    // --- fast-path state ---
    struct Wake
    {
        Cycle when;
        std::size_t idx;
        bool operator>(const Wake &o) const { return when > o.when; }
    };

    /**
     * One schedulable partition of the components. Unsharded, there
     * is exactly one bucket holding everything; sharded, buckets
     * [0, shards) are the parallel shards and the last bucket is the
     * serial one.
     */
    struct Bucket
    {
        /** Sorted indices of components stepped every cycle. */
        std::vector<std::size_t> runList;
        /** Min-heap of pending wake-ups for sleeping components. */
        std::vector<Wake> wakeHeap;
        /** Traversal cursor into runList while stepping a cycle. */
        std::size_t cursor = 0;
        /** Next cycle the retire pass runs while contended (whole-
         *  bucket stride on top of the per-component backoff). */
        Cycle retireAt = 0;
        /** True while inside the per-cycle step traversal. */
        bool stepping = false;
        /** Components assigned to this bucket. */
        std::size_t size = 0;
        /** step() calls executed (sharded-mode accounting). */
        std::uint64_t steps = 0;
        /** Items flushed from this bucket's boundary channels. */
        std::uint64_t boundarySends = 0;
        /** Wall nanoseconds spent in this bucket's parallel phases. */
        std::uint64_t wallNs = 0;
        /** Channels with buffered sends awaiting the barrier flush. */
        std::vector<BoundaryChannel *> dirty;
    };

    bool fastPath_ = false;
    bool sharded_ = false;
    std::vector<Bucket> buckets_;
    /** Bucket of each component (all 0 when unsharded). */
    std::vector<std::uint32_t> bucketOf_;
    /** Earliest enqueued wake per component (dedup for wakeHeap). */
    std::vector<Cycle> wakeAt_;
    /**
     * Retire-pass backoff: skip the nextWork() probe of a component
     * that keeps reporting work until this cycle. Only engaged while
     * the bucket is mostly active (contended), where the probe is
     * pure overhead; delaying retirement never changes results
     * (stepping an idle component is a no-op).
     */
    std::vector<Cycle> retireCheckAt_;
    /** Consecutive busy retire probes (caps the backoff stride). */
    std::vector<std::uint8_t> busyStreak_;
    /** Per-shard progress flags folded into lastProgress_ at the
     *  barrier. */
    std::vector<char> shardProgress_;

    // --- worker pool (sharded mode with threads > 1) ---
    std::vector<std::thread> pool_;
    std::mutex poolMutex_;
    std::condition_variable poolCv_;
    std::condition_variable poolDoneCv_;
    std::uint64_t poolGeneration_ = 0;
    int poolPhase_ = 0;
    bool poolExit_ = false;
    std::atomic<std::size_t> poolNextShard_{0};
    std::size_t poolPending_ = 0;
};

} // namespace mdw

#endif // MDW_SIM_SYSTEM_HH
