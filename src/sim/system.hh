/**
 * @file
 * The cycle-driven simulation engine.
 */

#ifndef MDW_SIM_SYSTEM_HH
#define MDW_SIM_SYSTEM_HH

#include <functional>
#include <vector>

#include "sim/component.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mdw {

/**
 * Drives registered components one cycle at a time and fires due
 * events. Also hosts the global progress watchdog used to detect
 * deadlock (or livelock) during stress tests: components call
 * noteProgress() whenever they move a flit, and the watchdog trips if
 * there is pending work but no progress for a configurable number of
 * cycles.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component (not owned). */
    void add(Component *component);

    /** Current cycle (the one currently being, or next to be, run). */
    Cycle now() const { return now_; }

    /** Timed-callback queue, fired at the start of each cycle. */
    EventQueue &events() { return events_; }

    /** Execute exactly one cycle. */
    void stepOne();

    /** Execute @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true (checked once per cycle) or
     * @p maxCycles elapse. Returns true if @p done became true.
     */
    bool runUntil(const std::function<bool()> &done, Cycle maxCycles);

    /** Components report flit movement here. */
    void noteProgress() { lastProgress_ = now_; }

    /** Cycle of the most recent reported progress. */
    Cycle lastProgress() const { return lastProgress_; }

    /**
     * Arm the deadlock watchdog.
     * @param quietLimit Trip after this many progress-free cycles.
     * @param hasWork Returns true while packets are in flight.
     * @param onTrip Called when the watchdog fires; if empty, panic().
     */
    void setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                     std::function<void()> onTrip = nullptr);

    /** True if the watchdog has fired. */
    bool deadlockDetected() const { return deadlocked_; }

    std::size_t componentCount() const { return components_.size(); }

  private:
    void checkWatchdog();

    std::vector<Component *> components_;
    EventQueue events_;
    Cycle now_ = 0;
    Cycle lastProgress_ = 0;

    Cycle watchdogQuiet_ = 0;
    std::function<bool()> watchdogHasWork_;
    std::function<void()> watchdogOnTrip_;
    bool deadlocked_ = false;
};

} // namespace mdw

#endif // MDW_SIM_SYSTEM_HH
