/**
 * @file
 * The cycle-driven simulation engine.
 */

#ifndef MDW_SIM_SYSTEM_HH
#define MDW_SIM_SYSTEM_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/component.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mdw {

/**
 * Drives registered components one cycle at a time and fires due
 * events. Also hosts the global progress watchdog used to detect
 * deadlock (or livelock) during stress tests: components call
 * noteProgress() whenever they move a flit, and the watchdog trips if
 * there is pending work but no progress for a configurable number of
 * cycles.
 *
 * Two scheduling modes produce bit-identical results:
 *
 *  - Cycle path (default): every registered component is stepped on
 *    every cycle, unconditionally. This is the oracle.
 *  - Fast path (setFastPath(true)): components that report no work
 *    via Component::nextWork() are retired from the tick set and
 *    re-activated by a wake heap (self-scheduled wakes and
 *    requestWake() pushes from channels and peers). When the tick set
 *    is empty the clock jumps straight to the next activity --
 *    earliest wake, earliest event, run limit, or the cycle at which
 *    the watchdog would trip -- so uncontended stretches cost O(1)
 *    instead of O(components * cycles).
 *
 * Equivalence rests on two component-contract facts: stepping an idle
 * component is a no-op, and nextWork() never under-reports (see
 * Component). Active components are stepped in registration order, so
 * trace event order within a cycle is preserved too.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Register a component (not owned). */
    void add(Component *component);

    /** Current cycle (the one currently being, or next to be, run). */
    Cycle now() const { return now_; }

    /** Timed-callback queue, fired at the start of each cycle. */
    EventQueue &events() { return events_; }

    /**
     * Select the scheduling mode. Enabling the fast path (re)activates
     * every component; disabling it reverts to stepping everything.
     */
    void setFastPath(bool on);

    /** True if the idle-skipping fast path is active. */
    bool fastPath() const { return fastPath_; }

    /**
     * Schedule @p component to be stepped at cycle @p when (clamped to
     * the current cycle). Ignored on the cycle path, where everything
     * is stepped anyway. Called via Component::requestWake().
     */
    void wake(Component *component, Cycle when);

    /** Components stepped every cycle right now (fast path only). */
    std::size_t activeCount() const { return runList_.size(); }

    /** Execute exactly one cycle. */
    void stepOne();

    /** Execute @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until @p done returns true (checked once per cycle) or
     * @p maxCycles elapse. Returns true if @p done became true.
     */
    bool runUntil(const std::function<bool()> &done, Cycle maxCycles);

    /** Components report flit movement here. */
    void noteProgress() { lastProgress_ = now_; }

    /** Cycle of the most recent reported progress. */
    Cycle lastProgress() const { return lastProgress_; }

    /**
     * Arm the deadlock watchdog.
     * @param quietLimit Trip after this many progress-free cycles.
     * @param hasWork Returns true while packets are in flight.
     * @param onTrip Called when the watchdog fires; if empty, panic().
     */
    void setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                     std::function<void()> onTrip = nullptr);

    /** True if the watchdog has fired. */
    bool deadlockDetected() const { return deadlocked_; }

    std::size_t componentCount() const { return components_.size(); }

  private:
    void checkWatchdog();

    /** Move pending wakes due at now_ into the tick set. */
    void wakeDue();
    /** Insert component @p idx into the tick set (keeps it sorted). */
    void activate(std::size_t idx);
    /** Drop stepped components that report no immediate work. */
    void retireIdle();
    /**
     * First cycle in [now_, limit] at which anything can happen, or
     * now_ when the tick set is non-empty (no skipping possible).
     */
    Cycle nextActivity(Cycle limit) const;

    std::vector<Component *> components_;
    EventQueue events_;
    Cycle now_ = 0;
    Cycle lastProgress_ = 0;

    Cycle watchdogQuiet_ = 0;
    std::function<bool()> watchdogHasWork_;
    std::function<void()> watchdogOnTrip_;
    bool deadlocked_ = false;

    // --- fast-path state ---
    struct Wake
    {
        Cycle when;
        std::size_t idx;
        bool operator>(const Wake &o) const { return when > o.when; }
    };

    bool fastPath_ = false;
    /** Per-component membership flag for runList_. */
    std::vector<char> active_;
    /** Sorted indices of components stepped every cycle. */
    std::vector<std::size_t> runList_;
    /** Min-heap of pending wake-ups for sleeping components. */
    std::vector<Wake> wakeHeap_;
    /** Earliest enqueued wake per component (dedup for wakeHeap_). */
    std::vector<Cycle> wakeAt_;
    /** Traversal cursor into runList_ while stepping a cycle. */
    std::size_t cursor_ = 0;
    /** True while inside the per-cycle step traversal. */
    bool stepping_ = false;
};

} // namespace mdw

#endif // MDW_SIM_SYSTEM_HH
