#include "sim/telemetry.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/logging.hh"

namespace mdw {

namespace {

/** Shortest round-trippable formatting, stable across runs. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
samplerJson(const Sampler &s)
{
    std::string out = "{\"count\":";
    out += jsonNumber(s.count());
    out += ",\"mean\":";
    out += jsonNumber(s.mean());
    out += ",\"stddev\":";
    out += jsonNumber(s.stddev());
    out += ",\"min\":";
    out += jsonNumber(s.min());
    out += ",\"max\":";
    out += jsonNumber(s.max());
    out += "}";
    return out;
}

bool
samplerIdentical(const Sampler &a, const Sampler &b)
{
    return a.count() == b.count() && a.mean() == b.mean() &&
           a.variance() == b.variance() && a.min() == b.min() &&
           a.max() == b.max();
}

} // namespace

// ---------------------------------------------------------------------
// MetricValue
// ---------------------------------------------------------------------

MetricValue
MetricValue::makeCounter(std::uint64_t v)
{
    MetricValue m;
    m.kind = Kind::Counter;
    m.counter = v;
    return m;
}

MetricValue
MetricValue::makeGauge(double v)
{
    MetricValue m;
    m.kind = Kind::Gauge;
    m.gauge = v;
    return m;
}

MetricValue
MetricValue::makeSampler(const Sampler &s)
{
    MetricValue m;
    m.kind = Kind::Sampler;
    m.sampler = s;
    return m;
}

void
MetricValue::merge(const MetricValue &other)
{
    // A sum of instantaneous gauges is meaningless, so a gauge
    // collapses into a distribution on its first merge; later merges
    // then combine a Sampler with the next run's Gauge. Those are the
    // only cross-kind pairs allowed.
    if (kind == Kind::Gauge) {
        kind = Kind::Sampler;
        sampler.reset();
        sampler.add(gauge);
        gauge = 0.0;
    }
    if (kind == Kind::Sampler && other.kind == Kind::Gauge) {
        sampler.add(other.gauge);
        return;
    }
    MDW_ASSERT(kind == other.kind,
               "merging metric values of different kinds");
    switch (kind) {
      case Kind::Counter:
        counter += other.counter;
        return;
      case Kind::Sampler:
        sampler.merge(other.sampler);
        return;
      case Kind::Gauge:
        return; // unreachable: converted above
    }
}

bool
MetricValue::identical(const MetricValue &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case Kind::Counter:
        return counter == other.counter;
      case Kind::Gauge:
        return gauge == other.gauge;
      case Kind::Sampler:
        return samplerIdentical(sampler, other.sampler);
    }
    return false;
}

// ---------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------

std::uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        return 0;
    if (it->second.kind == MetricValue::Kind::Gauge)
        return static_cast<std::uint64_t>(it->second.gauge);
    return it->second.counter;
}

double
MetricsSnapshot::gauge(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        return 0.0;
    switch (it->second.kind) {
      case MetricValue::Kind::Counter:
        return static_cast<double>(it->second.counter);
      case MetricValue::Kind::Gauge:
        return it->second.gauge;
      case MetricValue::Kind::Sampler:
        return it->second.sampler.mean();
    }
    return 0.0;
}

const Sampler &
MetricsSnapshot::sampler(const std::string &name) const
{
    static const Sampler empty;
    const auto it = entries_.find(name);
    if (it == entries_.end() ||
        it->second.kind != MetricValue::Kind::Sampler) {
        return empty;
    }
    return it->second.sampler;
}

bool
MetricsSnapshot::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

void
MetricsSnapshot::setCounter(const std::string &name, std::uint64_t v)
{
    entries_[name] = MetricValue::makeCounter(v);
}

void
MetricsSnapshot::setGauge(const std::string &name, double v)
{
    entries_[name] = MetricValue::makeGauge(v);
}

void
MetricsSnapshot::setSampler(const std::string &name, const Sampler &s)
{
    entries_[name] = MetricValue::makeSampler(s);
}

std::uint64_t
MetricsSnapshot::sumCounters(const std::string &suffix) const
{
    std::uint64_t total = 0;
    for (const auto &[name, value] : entries_) {
        if (value.kind != MetricValue::Kind::Counter)
            continue;
        if (name.size() < suffix.size())
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        total += value.counter;
    }
    return total;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, value] : other.entries_) {
        const auto it = entries_.find(name);
        if (it == entries_.end())
            entries_.emplace(name, value);
        else
            it->second.merge(value);
    }
}

bool
MetricsSnapshot::identical(const MetricsSnapshot &other) const
{
    if (entries_.size() != other.entries_.size())
        return false;
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    for (; a != entries_.end(); ++a, ++b) {
        if (a->first != b->first || !a->second.identical(b->second))
            return false;
    }
    return true;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : entries_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"";
        out += name;
        out += "\":";
        switch (value.kind) {
          case MetricValue::Kind::Counter:
            out += jsonNumber(value.counter);
            break;
          case MetricValue::Kind::Gauge:
            out += jsonNumber(value.gauge);
            break;
          case MetricValue::Kind::Sampler:
            out += samplerJson(value.sampler);
            break;
        }
    }
    out += "}";
    return out;
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

void
MetricsRegistry::insert(const std::string &name, Entry entry)
{
    const auto [it, inserted] =
        entries_.emplace(name, std::move(entry));
    (void)it;
    if (!inserted)
        fatal("metric '%s' registered twice", name.c_str());
}

void
MetricsRegistry::registerCounter(const std::string &name,
                                 const Counter *c)
{
    MDW_ASSERT(c != nullptr, "null counter registered as '%s'",
               name.c_str());
    Entry e;
    e.counter = c;
    insert(name, std::move(e));
}

void
MetricsRegistry::registerSampler(const std::string &name,
                                 const Sampler *s)
{
    MDW_ASSERT(s != nullptr, "null sampler registered as '%s'",
               name.c_str());
    Entry e;
    e.sampler = s;
    insert(name, std::move(e));
}

void
MetricsRegistry::registerGauge(const std::string &name, GaugeFn fn)
{
    MDW_ASSERT(fn != nullptr, "null gauge registered as '%s'",
               name.c_str());
    Entry e;
    e.gauge = std::move(fn);
    insert(name, std::move(e));
}

void
MetricsRegistry::registerIntGauge(const std::string &name,
                                  IntGaugeFn fn)
{
    MDW_ASSERT(fn != nullptr, "null gauge registered as '%s'",
               name.c_str());
    Entry e;
    e.intGauge = std::move(fn);
    insert(name, std::move(e));
}

void
MetricsRegistry::registerTimeAverage(const std::string &name,
                                     const TimeAverage *t, NowFn now)
{
    MDW_ASSERT(t != nullptr && now != nullptr,
               "null time average registered as '%s'", name.c_str());
    registerGauge(name + ".avg",
                  [t, now] { return t->average(now()); });
    registerGauge(name + ".peak", [t] { return t->peak(); });
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[name, entry] : entries_) {
        if (entry.counter != nullptr)
            snap.setCounter(name, entry.counter->value());
        else if (entry.sampler != nullptr)
            snap.setSampler(name, *entry.sampler);
        else if (entry.intGauge)
            snap.setCounter(name, entry.intGauge());
        else
            snap.setGauge(name, entry.gauge());
    }
    return snap;
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        (void)entry;
        out.push_back(name);
    }
    return out;
}

// ---------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------

const char *
toString(WormEvent event)
{
    switch (event) {
      case WormEvent::Inject:
        return "inject";
      case WormEvent::HeaderDecode:
        return "header_decode";
      case WormEvent::Replicate:
        return "replicate";
      case WormEvent::ReserveStall:
        return "reserve_stall";
      case WormEvent::TailDrain:
        return "tail_drain";
      case WormEvent::Deliver:
        return "deliver";
      case WormEvent::PoisonDrop:
        return "poison_drop";
      case WormEvent::Retransmit:
        return "retransmit";
      case WormEvent::CrcFail:
        return "crc_fail";
      case WormEvent::Nak:
        return "nak";
      case WormEvent::Replay:
        return "replay";
      case WormEvent::LinkFlap:
        return "link_flap";
      case WormEvent::LaneAlloc:
        return "lane_alloc";
      case WormEvent::LaneStall:
        return "lane_stall";
    }
    return "unknown";
}

namespace {

void
appendEventJson(std::string &out, const WormTraceEvent &e)
{
    out += "{\"cycle\":";
    out += jsonNumber(e.cycle);
    out += ",\"event\":\"";
    out += toString(e.kind);
    out += "\",\"packet\":";
    out += jsonNumber(e.packet);
    out += ",\"msg\":";
    out += jsonNumber(e.msg);
    out += ",\"component\":";
    out += jsonNumber(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(e.component)));
    out += ",\"host\":";
    out += e.atHost ? "true" : "false";
    out += ",\"arg\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", e.arg);
    out += buf;
    out += "}";
}

} // namespace

std::string
WormTrace::chromeJson() const
{
    // Chrome trace-event format: instant events ("ph":"i") with the
    // simulation cycle as the timestamp; switches live in pid 1,
    // hosts in pid 2, component ids map to tids.
    std::string out = "{\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"switches\"}},";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
           "\"tid\":0,\"args\":{\"name\":\"hosts\"}}";
    for (const WormTraceEvent &e : events) {
        out += ",{\"name\":\"";
        out += toString(e.kind);
        out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        out += jsonNumber(e.cycle);
        out += ",\"pid\":";
        out += e.atHost ? "2" : "1";
        out += ",\"tid\":";
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%d", e.component);
        out += buf;
        out += ",\"args\":{\"packet\":";
        out += jsonNumber(e.packet);
        out += ",\"msg\":";
        out += jsonNumber(e.msg);
        out += ",\"arg\":";
        std::snprintf(buf, sizeof(buf), "%d", e.arg);
        out += buf;
        out += "}}";
    }
    out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
           "\"clock\":\"cycles\",\"recorded\":";
    out += jsonNumber(recorded);
    out += ",\"dropped\":";
    out += jsonNumber(dropped);
    out += "}}";
    return out;
}

std::string
WormTrace::jsonl() const
{
    std::string out;
    for (const WormTraceEvent &e : events) {
        appendEventJson(out, e);
        out += "\n";
    }
    return out;
}

WormTracer::WormTracer(std::size_t capacity) : capacity_(capacity)
{
    MDW_ASSERT(capacity > 0, "tracer needs a non-empty ring");
    rings_.resize(1);
    rings_[0].buf.resize(capacity_);
}

void
WormTracer::setShards(std::size_t shards)
{
    if (rings_.size() == shards + 1)
        return;
    rings_.clear();
    rings_.resize(shards + 1);
    for (Ring &ring : rings_)
        ring.buf.resize(capacity_);
}

std::uint64_t
WormTracer::recorded() const
{
    std::uint64_t total = 0;
    for (const Ring &ring : rings_)
        total += ring.recorded;
    return total;
}

std::size_t
WormTracer::size() const
{
    std::uint64_t held = 0;
    for (const Ring &ring : rings_) {
        held += ring.recorded < ring.buf.size() ? ring.recorded
                                                : ring.buf.size();
    }
    return held < capacity_ ? static_cast<std::size_t>(held)
                            : capacity_;
}

void
WormTracer::appendHeld(const Ring &ring,
                       std::vector<WormTraceEvent> &out)
{
    const std::size_t held =
        ring.recorded < ring.buf.size()
            ? static_cast<std::size_t>(ring.recorded)
            : ring.buf.size();
    // Oldest surviving event sits at head once the ring has wrapped.
    const std::size_t start =
        ring.recorded < ring.buf.size() ? 0 : ring.head;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring.buf[(start + i) % ring.buf.size()]);
}

WormTrace
WormTracer::snapshot() const
{
    WormTrace trace;
    trace.recorded = recorded();
    if (rings_.size() == 1) {
        // Serial tracer: export in recorded order. (This is the only
        // mode where events may carry out-of-order cycle stamps --
        // the link-layer hooks stamp future arrival cycles -- so the
        // merged-sort path below must not run here.)
        trace.events.reserve(size());
        appendHeld(rings_[0], trace.events);
        trace.dropped = trace.recorded - trace.events.size();
        return trace;
    }
    std::vector<WormTraceEvent> merged;
    merged.reserve(size() + capacity_);
    for (const Ring &ring : rings_)
        appendHeld(ring, merged);
    // Reconstruct the flat within-cycle order (see class comment);
    // ties beyond the key come from a single ring, so stability
    // preserves their recorded order.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const WormTraceEvent &a,
                        const WormTraceEvent &b) {
                         if (a.cycle != b.cycle)
                             return a.cycle < b.cycle;
                         if (a.atHost != b.atHost)
                             return !a.atHost;
                         return a.component < b.component;
                     });
    const std::size_t keep =
        merged.size() < capacity_ ? merged.size() : capacity_;
    trace.events.assign(merged.end() -
                            static_cast<std::ptrdiff_t>(keep),
                        merged.end());
    trace.dropped = trace.recorded - trace.events.size();
    return trace;
}

void
WormTracer::clear()
{
    for (Ring &ring : rings_) {
        ring.head = 0;
        ring.recorded = 0;
    }
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

Telemetry::Telemetry(const TelemetryParams &params) : params_(params)
{
    if (params_.trace) {
        tracer_ = std::make_unique<WormTracer>(
            params_.traceCapacity == 0 ? 1u : params_.traceCapacity);
    }
}

} // namespace mdw
