#include "sim/config.hh"

#include <cstdlib>
#include <set>

#include "sim/logging.hh"

namespace mdw {

namespace {

/** Warn about an unread CLI key at most once per process. */
void
warnUnreadOnce(const std::string &key)
{
    static std::set<std::string> warned;
    if (!warned.insert(key).second)
        return;
    warn("config key '%s' was set on the command line but never read "
         "(unknown key?)",
         key.c_str());
}

} // namespace

Config::~Config()
{
    for (const std::string &key : unreadParsedKeys())
        warnUnreadOnce(key);
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
    read_[key] = false;
}

void
Config::parseToken(const std::string &token)
{
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("config token '%s' is not key=value", token.c_str());
    set(token.substr(0, eq), token.substr(eq + 1));
    parsed_[token.substr(0, eq)] = true;
}

int
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        parseToken(argv[i]);
    return argc > 1 ? argc - 1 : 0;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

const std::string *
Config::lookup(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    read_[key] = true;
    return &it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    const std::string *v = lookup(key);
    if (!v)
        return dflt;
    char *end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              v->c_str());
    return parsed;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t dflt) const
{
    const std::string *v = lookup(key);
    if (!v)
        return dflt;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an unsigned integer",
              key.c_str(), v->c_str());
    return parsed;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    const std::string *v = lookup(key);
    if (!v)
        return dflt;
    char *end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              v->c_str());
    return parsed;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    const std::string *v = lookup(key);
    if (!v)
        return dflt;
    if (*v == "1" || *v == "true" || *v == "yes" || *v == "on")
        return true;
    if (*v == "0" || *v == "false" || *v == "no" || *v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          v->c_str());
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    const std::string *v = lookup(key);
    return v ? *v : dflt;
}

std::vector<std::string>
Config::unreadKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, was_read] : read_) {
        if (!was_read)
            out.push_back(key);
    }
    return out;
}

std::vector<std::string>
Config::unreadParsedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, was_read] : read_) {
        if (!was_read && parsed_.count(key))
            out.push_back(key);
    }
    return out;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

} // namespace mdw
