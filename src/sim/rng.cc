#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mdw {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    MDW_ASSERT(bound > 0, "below(0) is undefined");
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    MDW_ASSERT(lo <= hi, "range(%lld, %lld) is empty",
               static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    MDW_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint64_t
Rng::geometricGap(double p)
{
    MDW_ASSERT(p > 0.0 && p <= 1.0, "geometricGap p=%f out of (0,1]", p);
    if (p >= 1.0)
        return 1;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double g = std::ceil(std::log(u) / std::log1p(-p));
    return g < 1.0 ? 1 : static_cast<std::uint64_t>(g);
}

Rng
Rng::fork(std::uint64_t tag) const
{
    std::uint64_t x = seed_ ^ (tag * 0xd1342543de82ef95ULL + 1);
    return Rng(splitmix64(x));
}

std::uint64_t
Rng::streamSeed(std::uint64_t base, std::uint64_t index)
{
    // Mix the base before combining with the index so that nearby
    // (base, index) pairs never produce nearby seeds.
    std::uint64_t x = base;
    const std::uint64_t mixed = splitmix64(x);
    x = mixed ^ (index * 0xd1342543de82ef95ULL + 1);
    return splitmix64(x);
}

} // namespace mdw
