#include "sim/system.hh"

#include <utility>

#include "sim/logging.hh"

namespace mdw {

void
Simulator::add(Component *component)
{
    MDW_ASSERT(component != nullptr, "registering null component");
    component->attach(this);
    components_.push_back(component);
}

void
Simulator::stepOne()
{
    events_.runDue(now_);
    for (Component *c : components_)
        c->step(now_);
    checkWatchdog();
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles && !deadlocked_; ++i)
        stepOne();
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle maxCycles)
{
    const Cycle limit = now_ + maxCycles;
    while (now_ < limit && !deadlocked_) {
        if (done())
            return true;
        stepOne();
    }
    return done();
}

void
Simulator::setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                       std::function<void()> onTrip)
{
    watchdogQuiet_ = quietLimit;
    watchdogHasWork_ = std::move(hasWork);
    watchdogOnTrip_ = std::move(onTrip);
    lastProgress_ = now_;
}

void
Simulator::checkWatchdog()
{
    if (watchdogQuiet_ == 0 || deadlocked_)
        return;
    if (now_ - lastProgress_ < watchdogQuiet_)
        return;
    if (!watchdogHasWork_ || !watchdogHasWork_())
        return;
    deadlocked_ = true;
    if (watchdogOnTrip_) {
        watchdogOnTrip_();
    } else {
        panic("watchdog: no progress for %llu cycles at cycle %llu "
              "with work pending",
              static_cast<unsigned long long>(watchdogQuiet_),
              static_cast<unsigned long long>(now_));
    }
}

} // namespace mdw
