#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sim/logging.hh"

namespace mdw {

namespace shardctx {
thread_local int current = -1;
} // namespace shardctx

void
Component::requestWakeSlow(Cycle when)
{
    if (sim_ != nullptr)
        sim_->wake(this, when);
}

Simulator::Simulator()
{
    buckets_.emplace_back();
}

Simulator::~Simulator()
{
    stopPool();
}

void
Simulator::add(Component *component)
{
    MDW_ASSERT(component != nullptr, "registering null component");
    MDW_ASSERT(!buckets_[0].stepping,
               "registering a component mid-cycle");
    component->attach(this);
    component->simIndex_ = components_.size();
    component->schedActive_ = 1;
    components_.push_back(component);
    wakeAt_.push_back(kNoCycle);
    retireCheckAt_.push_back(0);
    busyStreak_.push_back(0);
    // Late registrations (engines, test components) go to the serial
    // bucket: only the network's construction-time partition may put
    // a component in a parallel shard.
    const std::uint32_t bucket =
        sharded_ ? static_cast<std::uint32_t>(buckets_.size() - 1)
                 : 0u;
    bucketOf_.push_back(bucket);
    ++buckets_[bucket].size;
    if (fastPath_)
        buckets_[bucket].runList.push_back(component->simIndex_);
}

void
Simulator::setFastPath(bool on)
{
    stopPool();
    sharded_ = false;
    fastPath_ = on;
    buckets_.clear();
    buckets_.emplace_back();
    Bucket &bucket = buckets_[0];
    bucket.size = components_.size();
    bucketOf_.assign(components_.size(), 0);
    std::fill(wakeAt_.begin(), wakeAt_.end(), kNoCycle);
    std::fill(retireCheckAt_.begin(), retireCheckAt_.end(), Cycle{0});
    std::fill(busyStreak_.begin(), busyStreak_.end(),
              std::uint8_t{0});
    for (Component *c : components_)
        c->schedActive_ = 1;
    if (fastPath_) {
        bucket.runList.reserve(components_.size());
        for (std::size_t i = 0; i < components_.size(); ++i)
            bucket.runList.push_back(i);
    }
}

void
Simulator::setSharding(std::vector<std::uint32_t> shardOf,
                       std::size_t parallelShards, unsigned threads)
{
    MDW_ASSERT(fastPath_,
               "sharding requires the idle-skipping fast path");
    MDW_ASSERT(shardOf.size() == components_.size(),
               "shard map covers %zu of %zu components",
               shardOf.size(), components_.size());
    MDW_ASSERT(parallelShards >= 1, "need at least one shard");
    stopPool();
    bucketOf_ = std::move(shardOf);
    buckets_.clear();
    buckets_.resize(parallelShards + 1);
    std::fill(wakeAt_.begin(), wakeAt_.end(), kNoCycle);
    std::fill(retireCheckAt_.begin(), retireCheckAt_.end(), Cycle{0});
    std::fill(busyStreak_.begin(), busyStreak_.end(),
              std::uint8_t{0});
    for (std::size_t i = 0; i < components_.size(); ++i) {
        const std::uint32_t bucket = bucketOf_[i];
        MDW_ASSERT(bucket <= parallelShards,
                   "component %zu mapped to shard %u of %zu", i,
                   bucket, parallelShards);
        components_[i]->schedActive_ = 1;
        ++buckets_[bucket].size;
        buckets_[bucket].runList.push_back(i);
    }
    shardProgress_.assign(parallelShards, 0);
    sharded_ = true;
    unsigned workers = threads;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers = std::min<unsigned>(
        workers, static_cast<unsigned>(parallelShards));
    // The main thread participates in the parallel phase, so a pool
    // of workers - 1 suffices; workers == 1 runs the shard loop
    // inline with no pool at all (bit-identical by construction).
    if (workers > 1)
        startPool(workers - 1);
}

void
Simulator::clearSharding()
{
    if (!sharded_)
        return;
    setFastPath(fastPath_);
}

std::vector<ShardStat>
Simulator::shardStats() const
{
    std::vector<ShardStat> stats;
    if (!sharded_)
        return stats;
    stats.reserve(buckets_.size());
    for (const Bucket &bucket : buckets_) {
        ShardStat s;
        s.components = bucket.size;
        s.steps = bucket.steps;
        s.boundarySends = bucket.boundarySends;
        s.wallNs = bucket.wallNs;
        stats.push_back(s);
    }
    return stats;
}

void
Simulator::wake(Component *component, Cycle when)
{
    if (!fastPath_)
        return;
    const std::size_t idx = component->simIndex_;
    MDW_ASSERT(idx < components_.size() &&
                   components_[idx] == component,
               "wake for component not registered here");
    // During the parallel phase a shard may only wake its own
    // components (cross-shard sends defer their wakes to the
    // boundary flush).
    MDW_ASSERT(shardctx::current < 0 ||
                   bucketOf_[idx] == static_cast<std::uint32_t>(
                                         shardctx::current),
               "cross-shard wake of %s during the parallel phase",
               component->name().c_str());
    if (component->schedActive_) {
        // Already ticking; the retire pass re-evaluates nextWork()
        // every stepped cycle, which subsumes this wake (and an
        // immediate activate() would be a no-op anyway).
        return;
    }
    if (when <= now_) {
        // Due immediately: join the tick set for this very cycle (or
        // the next one if the traversal already passed this index --
        // which matches when the cycle path would have seen the
        // freshly-posted state).
        activate(idx);
        return;
    }
    if (when < wakeAt_[idx]) {
        wakeAt_[idx] = when;
        Bucket &bucket = buckets_[bucketOf_[idx]];
        bucket.wakeHeap.push_back(Wake{when, idx});
        std::push_heap(bucket.wakeHeap.begin(), bucket.wakeHeap.end(),
                       std::greater<Wake>());
    }
}

void
Simulator::activate(std::size_t idx)
{
    Component *component = components_[idx];
    if (component->schedActive_)
        return;
    component->schedActive_ = 1;
    busyStreak_[idx] = 0;
    retireCheckAt_[idx] = 0;
    Bucket &bucket = buckets_[bucketOf_[idx]];
    const auto it = std::lower_bound(bucket.runList.begin(),
                                     bucket.runList.end(), idx);
    const auto pos =
        static_cast<std::size_t>(it - bucket.runList.begin());
    bucket.runList.insert(it, idx);
    // If the traversal already passed the insertion point, this
    // component is stepped starting next cycle; bump the cursor so the
    // in-flight traversal is not perturbed.
    if (bucket.stepping && pos < bucket.cursor)
        ++bucket.cursor;
}

void
Simulator::wakeDue(std::size_t b)
{
    Bucket &bucket = buckets_[b];
    while (!bucket.wakeHeap.empty() &&
           bucket.wakeHeap.front().when <= now_) {
        const Wake wake = bucket.wakeHeap.front();
        std::pop_heap(bucket.wakeHeap.begin(), bucket.wakeHeap.end(),
                      std::greater<Wake>());
        bucket.wakeHeap.pop_back();
        if (wakeAt_[wake.idx] == wake.when)
            wakeAt_[wake.idx] = kNoCycle;
        // Stale entries cause at worst a spurious no-op step.
        activate(wake.idx);
    }
}

void
Simulator::retireIdle(std::size_t b)
{
    Bucket &bucket = buckets_[b];
    // While most of the bucket is busy (a contended run), probing
    // nextWork() every cycle is pure overhead: skip whole retire
    // passes on a short bucket stride, and within a pass back off
    // per-component probes that keep reporting work. A component kept
    // active past its last real work only absorbs no-op steps, which
    // cannot change results; the moment the bucket drains below half,
    // probing is exact again so fully-idle systems still deregister
    // completely.
    // "Contended" from a quarter of the bucket active: drain phases
    // hover well below half-active while still churning, and exact
    // per-cycle probing there costs more than the no-op steps it
    // saves. Below the threshold probing is exact again, so a system
    // that goes quiescent still deregisters completely the moment its
    // last components report no work.
    const bool contended = bucket.size >= 8 &&
                           bucket.runList.size() * 4 >= bucket.size;
    if (contended && now_ < bucket.retireAt)
        return;
    std::size_t keep = 0;
    for (std::size_t r = 0; r < bucket.runList.size(); ++r) {
        const std::size_t idx = bucket.runList[r];
        if (contended && now_ < retireCheckAt_[idx]) {
            bucket.runList[keep++] = idx;
            continue;
        }
        const Cycle nw = components_[idx]->nextWork(now_);
        // While contended, a component whose next work is only a few
        // cycles out is cheaper to keep ticking (no-op steps) than to
        // retire: the wake-heap push/pop plus the sorted re-insert
        // into the run list cost more than the skipped steps, and
        // under load components oscillate constantly.
        const Cycle horizon = contended ? now_ + 8 : now_ + 1;
        if (nw <= horizon) {
            if (contended) {
                if (nw <= now_ + 1) {
                    // Stride doubles up to 32 cycles: a component
                    // busy for hundreds of cycles costs ~1 probe per
                    // 32, and the worst-case retirement delay stays
                    // trivial next to its busy period.
                    if (busyStreak_[idx] < 5)
                        ++busyStreak_[idx];
                    retireCheckAt_[idx] =
                        now_ + (Cycle{1} << busyStreak_[idx]);
                } else {
                    // Re-probe when its declared work comes due.
                    retireCheckAt_[idx] = nw;
                }
            }
            bucket.runList[keep++] = idx;
            continue;
        }
        busyStreak_[idx] = 0;
        components_[idx]->schedActive_ = 0;
        if (nw != kNoCycle && nw < wakeAt_[idx]) {
            wakeAt_[idx] = nw;
            bucket.wakeHeap.push_back(Wake{nw, idx});
            std::push_heap(bucket.wakeHeap.begin(),
                           bucket.wakeHeap.end(),
                           std::greater<Wake>());
        }
    }
    bucket.runList.resize(keep);
    if (contended)
        bucket.retireAt = now_ + 8;
}

void
Simulator::stepBucket(std::size_t b)
{
    Bucket &bucket = buckets_[b];
    bucket.stepping = true;
    if (!sharded_ && bucket.runList.size() == components_.size()) {
        // Saturated tick set (the common contended state): the sorted
        // run list is exactly 0..N-1, so traverse components_
        // directly — the same loop as the cycle path, without the
        // per-step indirection and bounds check. Nothing can be
        // activated mid-step because everything already is.
        bucket.cursor = bucket.runList.size();
        for (Component *c : components_)
            c->step(now_);
        bucket.stepping = false;
        return;
    }
    bucket.cursor = 0;
    // steps feeds the per-shard stats only; skip the counter on the
    // (hotter) unsharded path.
    const bool count = sharded_;
    while (bucket.cursor < bucket.runList.size()) {
        Component *c = components_[bucket.runList[bucket.cursor]];
        ++bucket.cursor;
        c->step(now_);
        if (count)
            ++bucket.steps;
    }
    bucket.stepping = false;
}

void
Simulator::boundaryDirty(std::uint32_t srcShard,
                         BoundaryChannel *channel)
{
    MDW_ASSERT(srcShard < buckets_.size(),
               "boundary channel on unknown shard %u", srcShard);
    buckets_[srcShard].dirty.push_back(channel);
}

void
Simulator::flushBoundaries()
{
    // Deterministic drain order: shards in index order, channels in
    // the order they went dirty (each shard steps sequentially, so
    // that order is itself deterministic), items in send order.
    // Results do not depend on this order -- every mailbox feeds its
    // own channel queue and the wake requests commute -- but a fixed
    // order keeps internal heap layouts reproducible too.
    for (Bucket &bucket : buckets_) {
        for (BoundaryChannel *ch : bucket.dirty)
            bucket.boundarySends +=
                static_cast<std::uint64_t>(ch->flushBoundary());
        bucket.dirty.clear();
    }
}

void
Simulator::runShardTask(int phase, std::size_t shard)
{
    const auto start = std::chrono::steady_clock::now();
    shardctx::current = static_cast<int>(shard);
    if (phase == 0)
        stepBucket(shard);
    else
        retireIdle(shard);
    shardctx::current = -1;
    buckets_[shard].wallNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

void
Simulator::runParallelPhase(int phase)
{
    const std::size_t shards = buckets_.size() - 1;
    if (pool_.empty()) {
        for (std::size_t s = 0; s < shards; ++s)
            runShardTask(phase, s);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        poolPhase_ = phase;
        poolNextShard_.store(0, std::memory_order_relaxed);
        poolPending_ = pool_.size();
        ++poolGeneration_;
    }
    poolCv_.notify_all();
    std::size_t s;
    while ((s = poolNextShard_.fetch_add(1)) < shards)
        runShardTask(phase, s);
    std::unique_lock<std::mutex> lock(poolMutex_);
    poolDoneCv_.wait(lock, [this] { return poolPending_ == 0; });
}

void
Simulator::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        int phase;
        {
            std::unique_lock<std::mutex> lock(poolMutex_);
            poolCv_.wait(lock, [&] {
                return poolExit_ || poolGeneration_ != seen;
            });
            if (poolExit_)
                return;
            seen = poolGeneration_;
            phase = poolPhase_;
        }
        const std::size_t shards = buckets_.size() - 1;
        std::size_t s;
        while ((s = poolNextShard_.fetch_add(1)) < shards)
            runShardTask(phase, s);
        {
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (--poolPending_ == 0)
                poolDoneCv_.notify_one();
        }
    }
}

void
Simulator::startPool(unsigned threads)
{
    poolExit_ = false;
    pool_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool_.emplace_back([this] { workerLoop(); });
}

void
Simulator::stopPool()
{
    if (pool_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        poolExit_ = true;
    }
    poolCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
    pool_.clear();
    poolExit_ = false;
}

void
Simulator::stepOneSharded()
{
    const std::size_t serial = buckets_.size() - 1;
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        wakeDue(b);
    events_.runDue(now_);
    runParallelPhase(0);
    for (std::size_t s = 0; s < serial; ++s) {
        if (shardProgress_[s]) {
            shardProgress_[s] = 0;
            lastProgress_ = now_;
        }
    }
    flushBoundaries();
    stepBucket(serial);
    runParallelPhase(1);
    retireIdle(serial);
    checkWatchdog();
    ++now_;
}

void
Simulator::stepOne()
{
    if (fastPath_) {
        if (sharded_) {
            stepOneSharded();
        } else {
            wakeDue(0);
            events_.runDue(now_);
            stepBucket(0);
            retireIdle(0);
            checkWatchdog();
            ++now_;
        }
    } else {
        events_.runDue(now_);
        for (Component *c : components_)
            c->step(now_);
        checkWatchdog();
        ++now_;
    }
}

std::size_t
Simulator::activeCount() const
{
    std::size_t total = 0;
    for (const Bucket &bucket : buckets_)
        total += bucket.runList.size();
    return total;
}

Cycle
Simulator::nextActivity(Cycle limit) const
{
    if (!fastPath_)
        return now_;
    Cycle target = limit;
    for (const Bucket &bucket : buckets_) {
        if (!bucket.runList.empty())
            return now_;
        if (!bucket.wakeHeap.empty() &&
            bucket.wakeHeap.front().when < target)
            target = bucket.wakeHeap.front().when;
    }
    const Cycle event = events_.nextEventCycle();
    if (event < target)
        target = event;
    if (watchdogQuiet_ > 0 && !deadlocked_ && watchdogHasWork_ &&
        watchdogHasWork_()) {
        // No component will mutate state before `target`, so hasWork
        // stays true across the whole gap: the watchdog must get its
        // chance to trip at exactly the cycle the cycle path would.
        const Cycle trip = lastProgress_ + watchdogQuiet_;
        if (trip < target)
            target = trip;
    }
    return target < now_ ? now_ : target;
}

void
Simulator::run(Cycle cycles)
{
    const Cycle limit = now_ + cycles;
    while (now_ < limit && !deadlocked_) {
        now_ = nextActivity(limit);
        if (now_ >= limit)
            break;
        stepOne();
    }
    // The cycle path leaves now_ == limit; keep that invariant when
    // the final skip overshoots nothing (nextActivity never exceeds
    // limit, so this only rounds up the empty tail).
    if (!deadlocked_ && now_ < limit)
        now_ = limit;
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle maxCycles)
{
    const Cycle limit = now_ + maxCycles;
    while (now_ < limit && !deadlocked_) {
        if (done())
            return true;
        now_ = nextActivity(limit);
        if (now_ >= limit)
            break;
        stepOne();
    }
    return done();
}

void
Simulator::setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                       std::function<void()> onTrip)
{
    watchdogQuiet_ = quietLimit;
    watchdogHasWork_ = std::move(hasWork);
    watchdogOnTrip_ = std::move(onTrip);
    lastProgress_ = now_;
}

void
Simulator::checkWatchdog()
{
    if (watchdogQuiet_ == 0 || deadlocked_)
        return;
    if (now_ - lastProgress_ < watchdogQuiet_)
        return;
    if (!watchdogHasWork_ || !watchdogHasWork_())
        return;
    deadlocked_ = true;
    if (watchdogOnTrip_) {
        watchdogOnTrip_();
    } else {
        panic("watchdog: no progress for %llu cycles at cycle %llu "
              "with work pending",
              static_cast<unsigned long long>(watchdogQuiet_),
              static_cast<unsigned long long>(now_));
    }
}

} // namespace mdw
