#include "sim/system.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace mdw {

void
Component::requestWake(Cycle when)
{
    if (sim_ != nullptr)
        sim_->wake(this, when);
}

void
Simulator::add(Component *component)
{
    MDW_ASSERT(component != nullptr, "registering null component");
    MDW_ASSERT(!stepping_, "registering a component mid-cycle");
    component->attach(this);
    component->simIndex_ = components_.size();
    components_.push_back(component);
    active_.push_back(1);
    wakeAt_.push_back(kNoCycle);
    if (fastPath_)
        runList_.push_back(component->simIndex_);
}

void
Simulator::setFastPath(bool on)
{
    MDW_ASSERT(!stepping_, "switching scheduling mode mid-cycle");
    fastPath_ = on;
    wakeHeap_.clear();
    runList_.clear();
    std::fill(active_.begin(), active_.end(), 1);
    std::fill(wakeAt_.begin(), wakeAt_.end(), kNoCycle);
    if (fastPath_) {
        runList_.reserve(components_.size());
        for (std::size_t i = 0; i < components_.size(); ++i)
            runList_.push_back(i);
    }
}

void
Simulator::wake(Component *component, Cycle when)
{
    if (!fastPath_)
        return;
    const std::size_t idx = component->simIndex_;
    MDW_ASSERT(idx < components_.size() && components_[idx] == component,
               "wake for component not registered here");
    if (when <= now_) {
        // Due immediately: join the tick set for this very cycle (or
        // the next one if the traversal already passed this index --
        // which matches when the cycle path would have seen the
        // freshly-posted state).
        activate(idx);
        return;
    }
    if (active_[idx]) {
        // Already ticking; the retire pass re-evaluates nextWork()
        // every stepped cycle, which subsumes this future wake.
        return;
    }
    if (when < wakeAt_[idx]) {
        wakeAt_[idx] = when;
        wakeHeap_.push_back(Wake{when, idx});
        std::push_heap(wakeHeap_.begin(), wakeHeap_.end(),
                       std::greater<Wake>());
    }
}

void
Simulator::activate(std::size_t idx)
{
    if (active_[idx])
        return;
    active_[idx] = 1;
    const auto it =
        std::lower_bound(runList_.begin(), runList_.end(), idx);
    const auto pos =
        static_cast<std::size_t>(it - runList_.begin());
    runList_.insert(it, idx);
    // If the traversal already passed the insertion point, this
    // component is stepped starting next cycle; bump the cursor so the
    // in-flight traversal is not perturbed.
    if (stepping_ && pos < cursor_)
        ++cursor_;
}

void
Simulator::wakeDue()
{
    while (!wakeHeap_.empty() && wakeHeap_.front().when <= now_) {
        const Wake wake = wakeHeap_.front();
        std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(),
                      std::greater<Wake>());
        wakeHeap_.pop_back();
        if (wakeAt_[wake.idx] == wake.when)
            wakeAt_[wake.idx] = kNoCycle;
        // Stale entries cause at worst a spurious no-op step.
        activate(wake.idx);
    }
}

void
Simulator::retireIdle()
{
    std::size_t keep = 0;
    for (std::size_t r = 0; r < runList_.size(); ++r) {
        const std::size_t idx = runList_[r];
        const Cycle nw = components_[idx]->nextWork(now_);
        if (nw <= now_ + 1) {
            runList_[keep++] = idx;
            continue;
        }
        active_[idx] = 0;
        if (nw != kNoCycle && nw < wakeAt_[idx]) {
            wakeAt_[idx] = nw;
            wakeHeap_.push_back(Wake{nw, idx});
            std::push_heap(wakeHeap_.begin(), wakeHeap_.end(),
                           std::greater<Wake>());
        }
    }
    runList_.resize(keep);
}

void
Simulator::stepOne()
{
    if (fastPath_) {
        wakeDue();
        events_.runDue(now_);
        stepping_ = true;
        cursor_ = 0;
        while (cursor_ < runList_.size()) {
            Component *c = components_[runList_[cursor_]];
            ++cursor_;
            c->step(now_);
        }
        stepping_ = false;
        retireIdle();
    } else {
        events_.runDue(now_);
        for (Component *c : components_)
            c->step(now_);
    }
    checkWatchdog();
    ++now_;
}

Cycle
Simulator::nextActivity(Cycle limit) const
{
    if (!fastPath_ || !runList_.empty())
        return now_;
    Cycle target = limit;
    const Cycle event = events_.nextEventCycle();
    if (event < target)
        target = event;
    if (!wakeHeap_.empty() && wakeHeap_.front().when < target)
        target = wakeHeap_.front().when;
    if (watchdogQuiet_ > 0 && !deadlocked_ && watchdogHasWork_ &&
        watchdogHasWork_()) {
        // No component will mutate state before `target`, so hasWork
        // stays true across the whole gap: the watchdog must get its
        // chance to trip at exactly the cycle the cycle path would.
        const Cycle trip = lastProgress_ + watchdogQuiet_;
        if (trip < target)
            target = trip;
    }
    return target < now_ ? now_ : target;
}

void
Simulator::run(Cycle cycles)
{
    const Cycle limit = now_ + cycles;
    while (now_ < limit && !deadlocked_) {
        now_ = nextActivity(limit);
        if (now_ >= limit)
            break;
        stepOne();
    }
    // The cycle path leaves now_ == limit; keep that invariant when
    // the final skip overshoots nothing (nextActivity never exceeds
    // limit, so this only rounds up the empty tail).
    if (!deadlocked_ && now_ < limit)
        now_ = limit;
}

bool
Simulator::runUntil(const std::function<bool()> &done, Cycle maxCycles)
{
    const Cycle limit = now_ + maxCycles;
    while (now_ < limit && !deadlocked_) {
        if (done())
            return true;
        now_ = nextActivity(limit);
        if (now_ >= limit)
            break;
        stepOne();
    }
    return done();
}

void
Simulator::setWatchdog(Cycle quietLimit, std::function<bool()> hasWork,
                       std::function<void()> onTrip)
{
    watchdogQuiet_ = quietLimit;
    watchdogHasWork_ = std::move(hasWork);
    watchdogOnTrip_ = std::move(onTrip);
    lastProgress_ = now_;
}

void
Simulator::checkWatchdog()
{
    if (watchdogQuiet_ == 0 || deadlocked_)
        return;
    if (now_ - lastProgress_ < watchdogQuiet_)
        return;
    if (!watchdogHasWork_ || !watchdogHasWork_())
        return;
    deadlocked_ = true;
    if (watchdogOnTrip_) {
        watchdogOnTrip_();
    } else {
        panic("watchdog: no progress for %llu cycles at cycle %llu "
              "with work pending",
              static_cast<unsigned long long>(watchdogQuiet_),
              static_cast<unsigned long long>(now_));
    }
}

} // namespace mdw
