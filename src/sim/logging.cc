#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mdw {

namespace {

LogLevel gLevel = LogLevel::Warn;

std::function<void()> gFatalHook;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
setFatalHook(std::function<void()> hook)
{
    gFatalHook = std::move(hook);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    if (gFatalHook) {
        const std::function<void()> hook = std::move(gFatalHook);
        gFatalHook = nullptr;
        hook();
    }
    std::exit(1);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ",
                 cond, file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (gLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace mdw
