/**
 * @file
 * Irregular switch networks (networks of workstations, paper Fig 1c)
 * with up*-down* routing.
 *
 * A random connected switch graph is generated (spanning tree plus
 * extra cross links), hosts are attached to random switches, and
 * links are oriented by BFS level from a root switch: the endpoint at
 * the switch closer to the root is the "down" end. Legal up*-down*
 * paths (zero or more up hops, then zero or more down hops) are
 * acyclic, so both unicast wormhole routing and LCA-style
 * multidestination worms are deadlock-free on the oriented graph.
 */

#ifndef MDW_TOPOLOGY_IRREGULAR_HH
#define MDW_TOPOLOGY_IRREGULAR_HH

#include <string>

#include "sim/rng.hh"
#include "topology/topology.hh"

namespace mdw {

/** Parameters of a random irregular network. */
struct IrregularParams
{
    /** Number of switches. */
    int switches = 16;
    /** Ports per switch. */
    int radix = 8;
    /** Number of hosts to attach. */
    int hosts = 32;
    /** Cross links added beyond the spanning tree. */
    int extraLinks = 8;
};

/** Random irregular (NOW-style) topology with up*-down* orientation. */
class IrregularTopology : public Topology
{
  public:
    /**
     * @param params Shape parameters (validated for port capacity).
     * @param rng Used for all structural randomness; pass a fixed
     *            seed for a reproducible network.
     */
    IrregularTopology(const IrregularParams &params, Rng rng);

    /** BFS level of a switch (root = 0). */
    int levelOf(SwitchId sw) const;

    int downLevels() const override;

    std::string describe() const override;

  private:
    IrregularParams params_;
    std::vector<int> level_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_IRREGULAR_HH
