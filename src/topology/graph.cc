#include "topology/graph.hh"

#include <queue>

#include "sim/logging.hh"

namespace mdw {

SwitchId
PortGraph::addSwitch(int radix)
{
    MDW_ASSERT(radix > 0, "switch radix must be positive");
    ports_.emplace_back(static_cast<std::size_t>(radix));
    return static_cast<SwitchId>(ports_.size() - 1);
}

NodeId
PortGraph::addHost()
{
    hosts_.emplace_back();
    inject_.emplace_back();
    return static_cast<NodeId>(hosts_.size() - 1);
}

void
PortGraph::checkSwitch(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 && static_cast<std::size_t>(sw) < ports_.size(),
               "switch id %d out of range", sw);
}

void
PortGraph::checkPort(SwitchId sw, PortId port) const
{
    checkSwitch(sw);
    MDW_ASSERT(port >= 0 &&
                   static_cast<std::size_t>(port) < ports_[sw].size(),
               "port %d out of range on switch %d", port, sw);
}

void
PortGraph::connectSwitches(SwitchId a, PortId pa, SwitchId b, PortId pb)
{
    checkPort(a, pa);
    checkPort(b, pb);
    MDW_ASSERT(!(a == b && pa == pb), "port connected to itself");
    MDW_ASSERT(!ports_[a][pa].connected(), "switch %d port %d busy", a, pa);
    MDW_ASSERT(!ports_[b][pb].connected(), "switch %d port %d busy", b, pb);
    ports_[a][pa] = PortPeer{PortPeer::Kind::Switch, kInvalidNode, b, pb};
    ports_[b][pb] = PortPeer{PortPeer::Kind::Switch, kInvalidNode, a, pa};
}

void
PortGraph::connectHostSide(NodeId host, SwitchId sw, PortId port,
                           PortPeer::HostRole role)
{
    MDW_ASSERT(host >= 0 && static_cast<std::size_t>(host) < hosts_.size(),
               "host id %d out of range", host);
    checkPort(sw, port);
    MDW_ASSERT(!ports_[sw][port].connected(), "switch %d port %d busy",
               sw, port);
    if (role != PortPeer::HostRole::Inject) {
        MDW_ASSERT(hosts_[host].sw == kInvalidSwitch,
                   "host %d already attached", host);
        hosts_[host] = HostAttach{sw, port};
    }
    if (role != PortPeer::HostRole::Eject) {
        MDW_ASSERT(inject_[host].sw == kInvalidSwitch,
                   "host %d inject side already attached", host);
        inject_[host] = HostAttach{sw, port};
    }
    ports_[sw][port] = PortPeer{PortPeer::Kind::Host, host,
                                kInvalidSwitch, kInvalidPort, role};
}

void
PortGraph::connectHost(NodeId host, SwitchId sw, PortId port)
{
    connectHostSide(host, sw, port, PortPeer::HostRole::Both);
}

void
PortGraph::connectHostInject(NodeId host, SwitchId sw, PortId port)
{
    connectHostSide(host, sw, port, PortPeer::HostRole::Inject);
}

void
PortGraph::connectHostEject(NodeId host, SwitchId sw, PortId port)
{
    connectHostSide(host, sw, port, PortPeer::HostRole::Eject);
}

int
PortGraph::radix(SwitchId sw) const
{
    checkSwitch(sw);
    return static_cast<int>(ports_[sw].size());
}

const PortPeer &
PortGraph::peer(SwitchId sw, PortId port) const
{
    checkPort(sw, port);
    return ports_[sw][port];
}

const HostAttach &
PortGraph::attach(NodeId host) const
{
    MDW_ASSERT(host >= 0 && static_cast<std::size_t>(host) < hosts_.size(),
               "host id %d out of range", host);
    return hosts_[host];
}

const HostAttach &
PortGraph::injectAttach(NodeId host) const
{
    MDW_ASSERT(host >= 0 && static_cast<std::size_t>(host) < hosts_.size(),
               "host id %d out of range", host);
    return inject_[host];
}

std::size_t
PortGraph::switchLinkCount() const
{
    std::size_t ends = 0;
    for (const auto &sw_ports : ports_) {
        for (const auto &p : sw_ports) {
            if (p.isSwitch())
                ++ends;
        }
    }
    MDW_ASSERT(ends % 2 == 0, "odd number of switch link endpoints");
    return ends / 2;
}

void
PortGraph::validate() const
{
    for (std::size_t s = 0; s < ports_.size(); ++s) {
        for (std::size_t p = 0; p < ports_[s].size(); ++p) {
            const PortPeer &peer = ports_[s][p];
            if (peer.isSwitch()) {
                const PortPeer &back = this->peer(peer.sw, peer.port);
                MDW_ASSERT(back.isSwitch() &&
                               back.sw == static_cast<SwitchId>(s) &&
                               back.port == static_cast<PortId>(p),
                           "asymmetric link at switch %zu port %zu", s, p);
            } else if (peer.isHost()) {
                const HostAttach &at =
                    peer.hostRole == PortPeer::HostRole::Inject
                        ? inject_[peer.host]
                        : hosts_[peer.host];
                MDW_ASSERT(at.sw == static_cast<SwitchId>(s) &&
                               at.port == static_cast<PortId>(p),
                           "host %d attach record mismatch", peer.host);
            }
        }
    }
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        MDW_ASSERT(hosts_[h].sw != kInvalidSwitch, "host %zu unattached",
                   h);
        MDW_ASSERT(inject_[h].sw != kInvalidSwitch,
                   "host %zu has no injection attach", h);
        const PortPeer &peer = ports_[hosts_[h].sw][hosts_[h].port];
        MDW_ASSERT(peer.isHost() &&
                       peer.host == static_cast<NodeId>(h),
                   "host %zu port record mismatch", h);
        const PortPeer &tx = ports_[inject_[h].sw][inject_[h].port];
        MDW_ASSERT(tx.isHost() && tx.host == static_cast<NodeId>(h),
                   "host %zu inject record mismatch", h);
    }
}

bool
PortGraph::connectedSwitches() const
{
    if (ports_.empty())
        return true;
    std::vector<bool> seen(ports_.size(), false);
    std::queue<SwitchId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
        const SwitchId s = frontier.front();
        frontier.pop();
        for (const auto &p : ports_[s]) {
            if (p.isSwitch() && !seen[p.sw]) {
                seen[p.sw] = true;
                ++visited;
                frontier.push(p.sw);
            }
        }
    }
    return visited == ports_.size();
}

} // namespace mdw
