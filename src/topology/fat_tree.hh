/**
 * @file
 * k-ary n-tree — the bidirectional MIN used in the paper's evaluation.
 *
 * A k-ary n-tree connects k^n hosts through n stages of radix-2k
 * switches (k down ports, k up ports; the root stage leaves its up
 * ports unconnected). Stage 0 is adjacent to the hosts; a link between
 * stage l and stage l+1 connects switches whose (n-1)-digit base-k
 * labels agree everywhere except digit l. This is the standard
 * least-common-ancestor network of the IBM SP2-class machines.
 */

#ifndef MDW_TOPOLOGY_FAT_TREE_HH
#define MDW_TOPOLOGY_FAT_TREE_HH

#include <string>

#include "topology/topology.hh"

namespace mdw {

/** Builder/descriptor for a k-ary n-tree. */
class FatTree : public Topology
{
  public:
    /**
     * @param k Arity (down ports per switch), >= 2.
     * @param n Number of stages, >= 1. Hosts = k^n.
     */
    FatTree(int k, int n);

    int k() const { return k_; }
    int n() const { return n_; }

    /** Stage (0 = host-adjacent) of a switch. */
    int levelOf(SwitchId sw) const;

    /** Label (index within its stage) of a switch. */
    int labelOf(SwitchId sw) const;

    /** Switch id for (level, label). */
    SwitchId switchAt(int level, int label) const;

    /** Switches per stage (= k^(n-1)). */
    int switchesPerLevel() const { return perLevel_; }

    int downLevels() const override { return n_; }

    std::string describe() const override;

    /**
     * Smallest k-ary n-tree (with this fixed k) holding at least
     * @p hosts hosts; returns the required n.
     */
    static int levelsFor(int k, std::size_t hosts);

  private:
    int k_;
    int n_;
    int perLevel_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_FAT_TREE_HH
