/**
 * @file
 * Unidirectional multistage interconnection network (the paper's
 * other regular switch-based class, Section 2). Every packet enters
 * at stage 0, traverses all n stages forward, and ejects at stage
 * n-1; there is no up phase, so a multidestination worm replicates
 * at every stage where its destination set spans more than one
 * output. Path-based multicast deadlocks in these networks [6];
 * single-phase tree replication with the whole-packet acceptance
 * rule does not (the stage order makes all buffer dependencies
 * acyclic).
 *
 * Construction: k^n hosts, n stages of k^(n-1) switches with k input
 * ports (k..2k-1) and k output ports (0..k-1). The inter-stage
 * wiring is the directed down-half of the k-ary n-tree: stage s
 * corresponds to tree level n-1-s, so a stage-0 switch forward-
 * reaches every host and each switch's output cones are disjoint —
 * exactly what destination-set decode needs. Hosts inject at stage 0
 * (host h at switch h/k, input port k + h%k) and eject at stage n-1
 * (switch h/k, output port h%k).
 */

#ifndef MDW_TOPOLOGY_UNI_MIN_HH
#define MDW_TOPOLOGY_UNI_MIN_HH

#include <string>

#include "topology/topology.hh"

namespace mdw {

/** Builder/descriptor for a unidirectional k-ary n-stage MIN. */
class UniMin : public Topology
{
  public:
    /**
     * @param k Switch arity (ports per side), >= 2.
     * @param n Number of stages, >= 1. Hosts = k^n.
     */
    UniMin(int k, int n);

    int k() const { return k_; }
    int n() const { return n_; }

    /** Stage (0 = injection side) of a switch. */
    int stageOf(SwitchId sw) const;

    /** Label (index within its stage) of a switch. */
    int labelOf(SwitchId sw) const;

    /** Switch id for (stage, label). */
    SwitchId switchAt(int stage, int label) const;

    int switchesPerStage() const { return perStage_; }

    int downLevels() const override { return n_; }

    std::string describe() const override;

  private:
    int k_;
    int n_;
    int perStage_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_UNI_MIN_HH
