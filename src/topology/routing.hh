/**
 * @file
 * Reachability-based routing for multidestination worms.
 *
 * Every output port of a switch is classified "down" (toward hosts;
 * host ports included) or "up" (toward the root stage). Each down
 * port carries an N-bit reachability mask: the hosts reachable from
 * it using down links only. Decoding a worm's destination set is then
 * a per-port AND — exactly the paper's bit-string decode logic.
 *
 * A worm travels up until all of its destinations are down-reachable
 * (the least-common-ancestor, LCA, stage) and replicates downward.
 * Two routing variants from the paper:
 *
 * - ReplicateAfterLca: no replication on the way up; the whole set
 *   rides to the LCA stage and all branching happens on the way down.
 * - ReplicateOnUpPath: while moving up, the worm additionally spawns
 *   branches for destinations already reachable below.
 */

#ifndef MDW_TOPOLOGY_ROUTING_HH
#define MDW_TOPOLOGY_ROUTING_HH

#include <utility>
#include <vector>

#include "message/dest_set.hh"
#include "sim/types.hh"

namespace mdw {

class PortGraph;

/** Port orientation in the (possibly virtual) routing tree. */
enum class PortDir { Down, Up, Unused };

const char *toString(PortDir dir);

/** How multidestination worms branch relative to the LCA stage. */
enum class RoutingVariant { ReplicateAfterLca, ReplicateOnUpPath };

const char *toString(RoutingVariant variant);

/** How a switch picks among equivalent up ports. */
enum class UpPortPolicy
{
    /** Hash of source and packet id selects one fixed up port. */
    Deterministic,
    /** Any currently free up port may be taken (first free wins). */
    Adaptive,
};

const char *toString(UpPortPolicy policy);

/**
 * Rotate an up-candidate index by the packet's virtual lane.
 *
 * Multi-lane switches give each lane its own preferred up link so
 * the adaptive up-path choice spreads over both links *and* lanes.
 * This stays deadlock-free for any lane assignment: routing remains
 * up-then-down on every lane (the lane never changes which ports are
 * "up"), so each lane's channel-dependency graph is the same acyclic
 * up/down DAG as the single-lane fabric — lanes multiply the escape
 * paths, they cannot close a cycle. Lane 0 is the identity, which
 * keeps lanes=1 routing bit-identical to the pre-lane switch.
 */
inline std::size_t
rotateUpCandidate(std::size_t hash, int lane, std::size_t candidates)
{
    return (hash + static_cast<std::size_t>(lane)) % candidates;
}

/** The output ports a worm must acquire at one switch. */
struct RouteDecision
{
    /** Down branches: (output port, pruned destination subset). */
    std::vector<std::pair<PortId, DestSet>> downBranches;
    /** Candidate up ports (exactly one must be taken) if upDests. */
    std::vector<PortId> upCandidates;
    /** Destination subset that continues upward (may be empty). */
    DestSet upDests;
    /**
     * Destinations with no legal path from this switch. Always empty
     * on an intact network (decode panics instead); only a tolerant
     * routing table — rebuilt around faults — reports them, and the
     * switch drops the corresponding branch so the worm keeps moving.
     */
    DestSet unroutable;

    bool needsUp() const { return !upDests.empty(); }
    std::size_t branchCount() const
    {
        return downBranches.size() + (needsUp() ? 1 : 0);
    }
};

/** Per-switch routing state. */
class SwitchRouting
{
  public:
    SwitchRouting(int radix, std::size_t num_hosts);

    /** Set a port's direction (default Unused). */
    void setDir(PortId port, PortDir dir);
    PortDir dir(PortId port) const;

    /** Down-reachability mask of a port (down ports only). */
    void setDownReach(PortId port, DestSet reach);
    const DestSet &downReach(PortId port) const;

    /**
     * Up-reachability mask of a port (up ports only): the hosts still
     * reachable by going up this port and then routing freely. Only
     * tolerant tables carry these — on an intact network every up
     * port reaches everything, so the masks would be dead weight.
     */
    void setUpReach(PortId port, DestSet reach);
    const DestSet &upReach(PortId port) const;

    /** Union of all down ports' reachability. */
    const DestSet &allDownReach() const { return allDown_; }

    /** All up ports in index order. */
    const std::vector<PortId> &upPorts() const { return upPorts_; }

    int radix() const { return static_cast<int>(ports_.size()); }

    /**
     * Route a destination set. Every destination must be coverable,
     * i.e. either down-reachable here or the switch must have an up
     * port. @p variant controls branching below the LCA.
     */
    RouteDecision decode(const DestSet &dests,
                         RoutingVariant variant) const;

    /**
     * Tolerant tables report uncoverable destinations in
     * RouteDecision::unroutable instead of panicking (used for tables
     * rebuilt around failed components).
     */
    void setTolerant(bool tolerant) { tolerant_ = tolerant; }
    bool tolerant() const { return tolerant_; }

    /** Finalize internal caches once all ports are configured. */
    void freeze();

  private:
    struct PortState
    {
        PortDir dir = PortDir::Unused;
        DestSet reach;
    };

    /** Keep only up candidates that serve the decision's up-set. */
    void filterUpCandidates(RouteDecision &out) const;

    std::vector<PortState> ports_;
    std::vector<PortId> upPorts_;
    std::vector<PortId> downPorts_;
    DestSet allDown_;
    /** Union of all up ports' reachability (tolerant tables only). */
    DestSet allUp_;
    std::size_t numHosts_;
    bool frozen_ = false;
    bool tolerant_ = false;
};

/**
 * Routing state for a whole network, computed from a PortGraph plus a
 * per-port direction assignment by propagating host reachability
 * through down links (memoized reverse-topological traversal; down
 * links must be acyclic, which holds for fat-trees and for up*-down*
 * orientations of irregular networks).
 */
class NetworkRouting
{
  public:
    /**
     * @param graph Validated network structure.
     * @param dirs dirs[s][p] is the direction of switch s port p.
     * @param tolerant Build tolerant per-switch tables (see
     *        SwitchRouting::setTolerant); used when rerouting around
     *        faults, where some hosts may genuinely be unreachable.
     */
    NetworkRouting(const PortGraph &graph,
                   const std::vector<std::vector<PortDir>> &dirs,
                   bool tolerant = false);

    const SwitchRouting &at(SwitchId sw) const;
    std::size_t numSwitches() const { return switches_.size(); }

  private:
    std::vector<SwitchRouting> switches_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_ROUTING_HH
