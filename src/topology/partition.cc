#include "topology/partition.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mdw {

std::size_t
ShardPlan::countIn(std::uint32_t s) const
{
    return static_cast<std::size_t>(
        std::count(switchShard.begin(), switchShard.end(), s));
}

namespace {

constexpr std::uint32_t kUnassigned = ~0u;

/** Hosts attached (inject or eject side) to each switch. */
std::vector<std::size_t>
hostLoad(const PortGraph &graph)
{
    std::vector<std::size_t> load(graph.numSwitches(), 0);
    for (SwitchId sw = 0;
         sw < static_cast<SwitchId>(graph.numSwitches()); ++sw) {
        for (PortId p = 0; p < static_cast<PortId>(graph.radix(sw));
             ++p) {
            if (graph.peer(sw, p).isHost())
                ++load[static_cast<std::size_t>(sw)];
        }
    }
    return load;
}

} // namespace

ShardPlan
makeShardPlan(const PortGraph &graph, std::size_t shards)
{
    MDW_ASSERT(shards >= 1, "partition needs at least one shard");
    const std::size_t numSwitches = graph.numSwitches();

    ShardPlan plan;
    plan.shards = shards;
    plan.switchShard.assign(numSwitches, 0);
    if (shards == 1 || numSwitches == 0)
        return plan;

    // Pass 1: spread the edge switches (the ones hosts attach to)
    // over the shards in id order, cutting by cumulative host count
    // so every shard serves about the same number of hosts.
    const std::vector<std::size_t> load = hostLoad(graph);
    std::size_t totalHosts = 0;
    for (std::size_t l : load)
        totalHosts += l;
    std::fill(plan.switchShard.begin(), plan.switchShard.end(),
              kUnassigned);
    std::size_t hostsBefore = 0;
    std::size_t edgeSeen = 0;
    std::size_t edgeCount = 0;
    for (std::size_t l : load)
        edgeCount += l > 0 ? 1 : 0;
    for (std::size_t sw = 0; sw < numSwitches; ++sw) {
        if (load[sw] == 0)
            continue;
        std::size_t shard;
        if (totalHosts > 0) {
            shard = hostsBefore * shards / totalHosts;
        } else {
            shard = edgeSeen * shards / (edgeCount ? edgeCount : 1);
        }
        plan.switchShard[sw] = static_cast<std::uint32_t>(
            std::min(shard, shards - 1));
        hostsBefore += load[sw];
        ++edgeSeen;
    }

    // Pass 2: pull interior switches towards the shard most of their
    // assigned neighbors sit in (ties break to the smallest shard
    // id). A few sweeps propagate labels up multi-stage topologies;
    // anything still unreached (disconnected interior) falls back to
    // id % shards.
    std::vector<std::size_t> votes(shards, 0);
    for (int sweep = 0; sweep < 4; ++sweep) {
        bool changed = false;
        for (std::size_t sw = 0; sw < numSwitches; ++sw) {
            if (plan.switchShard[sw] != kUnassigned)
                continue;
            std::fill(votes.begin(), votes.end(), 0);
            bool any = false;
            const int radix = graph.radix(static_cast<SwitchId>(sw));
            for (PortId p = 0; p < static_cast<PortId>(radix); ++p) {
                const PortPeer &peer =
                    graph.peer(static_cast<SwitchId>(sw), p);
                if (!peer.isSwitch())
                    continue;
                const std::uint32_t neighbor =
                    plan.switchShard[static_cast<std::size_t>(
                        peer.sw)];
                if (neighbor == kUnassigned)
                    continue;
                ++votes[neighbor];
                any = true;
            }
            if (!any)
                continue;
            const auto best =
                std::max_element(votes.begin(), votes.end());
            plan.switchShard[sw] = static_cast<std::uint32_t>(
                best - votes.begin());
            changed = true;
        }
        if (!changed)
            break;
    }
    for (std::size_t sw = 0; sw < numSwitches; ++sw) {
        if (plan.switchShard[sw] == kUnassigned) {
            plan.switchShard[sw] =
                static_cast<std::uint32_t>(sw % shards);
        }
    }

    // Record the cut: every switch-switch link with endpoints in
    // different shards, walked from the lower (switch, port) endpoint
    // exactly like the network builder's wiring pass so each physical
    // link appears once.
    for (SwitchId a = 0; a < static_cast<SwitchId>(numSwitches);
         ++a) {
        for (PortId pa = 0; pa < static_cast<PortId>(graph.radix(a));
             ++pa) {
            const PortPeer &peer = graph.peer(a, pa);
            if (!peer.isSwitch())
                continue;
            if (std::make_pair(a, pa) >
                std::make_pair(peer.sw, peer.port))
                continue;
            if (plan.switchShard[static_cast<std::size_t>(a)] ==
                plan.switchShard[static_cast<std::size_t>(peer.sw)])
                continue;
            BoundaryLink link;
            link.a = a;
            link.pa = pa;
            link.b = peer.sw;
            link.pb = peer.port;
            plan.boundaryLinks.push_back(link);
        }
    }
    return plan;
}

} // namespace mdw
