#include "topology/fat_tree.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mdw {

namespace {

/** digit @p pos (base k) of @p label. */
int
digitOf(int label, int k, int pos)
{
    for (int i = 0; i < pos; ++i)
        label /= k;
    return label % k;
}

/** @p label with digit @p pos replaced by @p value. */
int
withDigit(int label, int k, int pos, int value)
{
    int scale = 1;
    for (int i = 0; i < pos; ++i)
        scale *= k;
    const int old = (label / scale) % k;
    return label + (value - old) * scale;
}

} // namespace

FatTree::FatTree(int k, int n)
    : k_(k), n_(n)
{
    MDW_ASSERT(k >= 2, "fat-tree arity k=%d must be >= 2", k);
    MDW_ASSERT(n >= 1, "fat-tree must have n >= 1 stages, got %d", n);

    perLevel_ = 1;
    for (int i = 0; i < n - 1; ++i)
        perLevel_ *= k;

    std::size_t hosts = static_cast<std::size_t>(perLevel_) *
                        static_cast<std::size_t>(k);

    // Switches: n stages of perLevel_ radix-2k switches.
    for (int level = 0; level < n; ++level) {
        for (int label = 0; label < perLevel_; ++label) {
            const SwitchId sw = graph_.addSwitch(2 * k);
            MDW_ASSERT(sw == switchAt(level, label),
                       "switch id layout mismatch");
        }
    }
    for (std::size_t h = 0; h < hosts; ++h)
        graph_.addHost();

    // Hosts hang off stage-0 switches: down port c of leaf switch w
    // is host w*k + c.
    for (int label = 0; label < perLevel_; ++label) {
        for (int c = 0; c < k; ++c) {
            graph_.connectHost(static_cast<NodeId>(label * k + c),
                               switchAt(0, label),
                               static_cast<PortId>(c));
        }
    }

    // Inter-stage links: up port u of (l, w) connects to down port
    // digit_l(w) of (l+1, w with digit l := u). Enumerating from the
    // lower side covers every link exactly once.
    for (int level = 0; level + 1 < n; ++level) {
        for (int label = 0; label < perLevel_; ++label) {
            for (int u = 0; u < k; ++u) {
                const int upper = withDigit(label, k, level, u);
                graph_.connectSwitches(
                    switchAt(level, label),
                    static_cast<PortId>(k + u),
                    switchAt(level + 1, upper),
                    static_cast<PortId>(digitOf(label, k, level)));
            }
        }
    }

    // Port directions: 0..k-1 down, k..2k-1 up (unused at the root
    // stage, whose up ports have no links).
    dirs_.assign(graph_.numSwitches(),
                 std::vector<PortDir>(static_cast<std::size_t>(2 * k),
                                      PortDir::Unused));
    for (int level = 0; level < n; ++level) {
        for (int label = 0; label < perLevel_; ++label) {
            auto &row = dirs_[static_cast<std::size_t>(
                switchAt(level, label))];
            for (int c = 0; c < k; ++c)
                row[static_cast<std::size_t>(c)] = PortDir::Down;
            if (level + 1 < n) {
                for (int u = 0; u < k; ++u)
                    row[static_cast<std::size_t>(k + u)] = PortDir::Up;
            }
        }
    }

    finalize();
}

int
FatTree::levelOf(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 &&
                   static_cast<std::size_t>(sw) < graph_.numSwitches(),
               "switch id %d out of range", sw);
    return sw / perLevel_;
}

int
FatTree::labelOf(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 &&
                   static_cast<std::size_t>(sw) < graph_.numSwitches(),
               "switch id %d out of range", sw);
    return sw % perLevel_;
}

SwitchId
FatTree::switchAt(int level, int label) const
{
    MDW_ASSERT(level >= 0 && level < n_, "level %d out of range", level);
    MDW_ASSERT(label >= 0 && label < perLevel_, "label %d out of range",
               label);
    return static_cast<SwitchId>(level * perLevel_ + label);
}

std::string
FatTree::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%d-ary %d-tree (%zu hosts, %zu switches, radix %d)",
                  k_, n_, graph_.numHosts(), graph_.numSwitches(),
                  2 * k_);
    return buf;
}

int
FatTree::levelsFor(int k, std::size_t hosts)
{
    MDW_ASSERT(k >= 2, "arity must be >= 2");
    int n = 1;
    std::size_t capacity = static_cast<std::size_t>(k);
    while (capacity < hosts) {
        capacity *= static_cast<std::size_t>(k);
        ++n;
    }
    return n;
}

} // namespace mdw
