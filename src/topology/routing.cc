#include "topology/routing.hh"

#include "sim/logging.hh"
#include "topology/graph.hh"

namespace mdw {

const char *
toString(PortDir dir)
{
    switch (dir) {
      case PortDir::Down:
        return "down";
      case PortDir::Up:
        return "up";
      case PortDir::Unused:
        return "unused";
    }
    return "?";
}

const char *
toString(RoutingVariant variant)
{
    switch (variant) {
      case RoutingVariant::ReplicateAfterLca:
        return "replicate-after-lca";
      case RoutingVariant::ReplicateOnUpPath:
        return "replicate-on-up-path";
    }
    return "?";
}

const char *
toString(UpPortPolicy policy)
{
    switch (policy) {
      case UpPortPolicy::Deterministic:
        return "deterministic";
      case UpPortPolicy::Adaptive:
        return "adaptive";
    }
    return "?";
}

SwitchRouting::SwitchRouting(int radix, std::size_t num_hosts)
    : ports_(static_cast<std::size_t>(radix)), allDown_(num_hosts),
      allUp_(num_hosts), numHosts_(num_hosts)
{
    for (auto &p : ports_)
        p.reach = DestSet(num_hosts);
}

void
SwitchRouting::setDir(PortId port, PortDir dir)
{
    MDW_ASSERT(!frozen_, "routing modified after freeze");
    ports_.at(static_cast<std::size_t>(port)).dir = dir;
}

PortDir
SwitchRouting::dir(PortId port) const
{
    return ports_.at(static_cast<std::size_t>(port)).dir;
}

void
SwitchRouting::setDownReach(PortId port, DestSet reach)
{
    MDW_ASSERT(!frozen_, "routing modified after freeze");
    auto &state = ports_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(state.dir == PortDir::Down,
               "down-reach set on non-down port %d", port);
    state.reach = std::move(reach);
}

const DestSet &
SwitchRouting::downReach(PortId port) const
{
    return ports_.at(static_cast<std::size_t>(port)).reach;
}

void
SwitchRouting::setUpReach(PortId port, DestSet reach)
{
    MDW_ASSERT(!frozen_, "routing modified after freeze");
    auto &state = ports_.at(static_cast<std::size_t>(port));
    MDW_ASSERT(state.dir == PortDir::Up,
               "up-reach set on non-up port %d", port);
    state.reach = std::move(reach);
}

const DestSet &
SwitchRouting::upReach(PortId port) const
{
    return ports_.at(static_cast<std::size_t>(port)).reach;
}

void
SwitchRouting::freeze()
{
    MDW_ASSERT(!frozen_, "double freeze");
    upPorts_.clear();
    downPorts_.clear();
    allDown_ = DestSet(numHosts_);
    allUp_ = DestSet(numHosts_);
    for (std::size_t p = 0; p < ports_.size(); ++p) {
        switch (ports_[p].dir) {
          case PortDir::Up:
            upPorts_.push_back(static_cast<PortId>(p));
            allUp_ |= ports_[p].reach;
            break;
          case PortDir::Down:
            downPorts_.push_back(static_cast<PortId>(p));
            allDown_ |= ports_[p].reach;
            break;
          case PortDir::Unused:
            break;
        }
    }
    frozen_ = true;
}

RouteDecision
SwitchRouting::decode(const DestSet &dests, RoutingVariant variant) const
{
    MDW_ASSERT(frozen_, "decode before freeze");
    MDW_ASSERT(!dests.empty(), "decoding an empty destination set");

    RouteDecision out;
    out.upDests = DestSet(dests.size());
    out.unroutable = DestSet(dests.size());

    DestSet remaining = dests;
    for (PortId p : downPorts_) {
        if (remaining.empty())
            break;
        DestSet sub = remaining & downReach(p);
        if (sub.empty())
            continue;
        remaining -= sub;
        out.downBranches.emplace_back(p, std::move(sub));
    }

    if (!remaining.empty()) {
        if (tolerant_) {
            // Rebuilt-around-faults table: destinations no up port
            // can serve are reported unroutable here instead of
            // riding the worm to a dead end; whatever down branches
            // exist keep serving the reachable destinations.
            out.unroutable = remaining - allUp_;
            remaining -= out.unroutable;
            if (remaining.empty())
                return out;
        }
        MDW_ASSERT(!upPorts_.empty(),
                   "destinations unreachable and no up port");
        if (variant == RoutingVariant::ReplicateAfterLca) {
            // Below the LCA the worm does not branch: the whole set
            // rides up and all replication happens on the way down.
            out.downBranches.clear();
            out.upDests = tolerant_ ? dests - out.unroutable : dests;
        } else {
            out.upDests = std::move(remaining);
        }
        out.upCandidates = upPorts_;
        if (tolerant_)
            filterUpCandidates(out);
    }

    return out;
}

void
SwitchRouting::filterUpCandidates(RouteDecision &out) const
{
    // Fault-aware ascent: prefer up ports whose surviving reach
    // covers the whole up-set, so the worm heads for a root that can
    // still replicate to everyone. When faults fragment the network
    // so that no single port covers the set, fall back to maximal
    // coverage — the stragglers surface as unroutable higher up and
    // the source's retransmission re-covers them.
    std::vector<PortId> full, best;
    std::size_t best_count = 0;
    for (PortId p : upPorts_) {
        if (out.upDests.subsetOf(upReach(p))) {
            full.push_back(p);
            continue;
        }
        const std::size_t n = (out.upDests & upReach(p)).count();
        if (n > best_count) {
            best_count = n;
            best.clear();
        }
        if (n == best_count && n > 0)
            best.push_back(p);
    }
    if (!full.empty())
        out.upCandidates = std::move(full);
    else if (!best.empty())
        out.upCandidates = std::move(best);
}

NetworkRouting::NetworkRouting(
    const PortGraph &graph,
    const std::vector<std::vector<PortDir>> &dirs, bool tolerant)
{
    const std::size_t num_switches = graph.numSwitches();
    const std::size_t num_hosts = graph.numHosts();
    MDW_ASSERT(dirs.size() == num_switches,
               "direction table size mismatch");

    switches_.reserve(num_switches);
    for (std::size_t s = 0; s < num_switches; ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        MDW_ASSERT(dirs[s].size() ==
                       static_cast<std::size_t>(graph.radix(sw)),
                   "direction table radix mismatch at switch %zu", s);
        switches_.emplace_back(graph.radix(sw), num_hosts);
        switches_[s].setTolerant(tolerant);
        for (std::size_t p = 0; p < dirs[s].size(); ++p)
            switches_[s].setDir(static_cast<PortId>(p), dirs[s][p]);
    }

    // Memoized down-reachability per switch. Colors: 0 unvisited,
    // 1 in progress (cycle detection), 2 done.
    std::vector<int> color(num_switches, 0);
    std::vector<DestSet> down_reach(num_switches, DestSet(num_hosts));

    // Iterative DFS to avoid deep recursion on large networks.
    struct Frame
    {
        SwitchId sw;
        PortId next_port;
    };

    auto compute = [&](SwitchId root) {
        if (color[root] == 2)
            return;
        std::vector<Frame> stack;
        stack.push_back(Frame{root, 0});
        color[root] = 1;
        while (!stack.empty()) {
            Frame &frame = stack.back();
            const SwitchId sw = frame.sw;
            const int radix = graph.radix(sw);
            bool descended = false;
            while (frame.next_port < radix) {
                const PortId p = frame.next_port++;
                if (dirs[sw][p] != PortDir::Down)
                    continue;
                const PortPeer &peer = graph.peer(sw, p);
                if (peer.isHost()) {
                    down_reach[sw].set(peer.host);
                } else if (peer.isSwitch()) {
                    if (color[peer.sw] == 1) {
                        panic("down-link cycle through switches %d "
                              "and %d: up*/down* orientation invalid",
                              sw, peer.sw);
                    }
                    if (color[peer.sw] == 0) {
                        color[peer.sw] = 1;
                        stack.push_back(Frame{peer.sw, 0});
                        descended = true;
                        break;
                    }
                    down_reach[sw] |= down_reach[peer.sw];
                }
            }
            if (descended)
                continue;
            if (frame.next_port >= radix) {
                color[sw] = 2;
                stack.pop_back();
                if (!stack.empty()) {
                    down_reach[stack.back().sw] |= down_reach[sw];
                }
            }
        }
    };

    for (std::size_t s = 0; s < num_switches; ++s)
        compute(static_cast<SwitchId>(s));

    // Tolerant tables additionally carry up-reach masks: the hosts a
    // worm can still reach after ascending a given up port, i.e. the
    // union of down-reach over the up-closure of the port's peer.
    // Memoized over the (acyclic) up-link orientation, mirroring the
    // down-reach traversal above.
    std::vector<DestSet> up_reach;
    if (tolerant) {
        up_reach = down_reach;
        std::vector<int> ucolor(num_switches, 0);
        auto computeUp = [&](SwitchId root) {
            if (ucolor[root] == 2)
                return;
            std::vector<Frame> stack;
            stack.push_back(Frame{root, 0});
            ucolor[root] = 1;
            while (!stack.empty()) {
                Frame &frame = stack.back();
                const SwitchId sw = frame.sw;
                const int radix = graph.radix(sw);
                bool ascended = false;
                while (frame.next_port < radix) {
                    const PortId p = frame.next_port++;
                    if (dirs[sw][p] != PortDir::Up)
                        continue;
                    const PortPeer &peer = graph.peer(sw, p);
                    MDW_ASSERT(peer.isSwitch(),
                               "up port %d of switch %d leads to a host",
                               p, sw);
                    if (ucolor[peer.sw] == 1) {
                        panic("up-link cycle through switches %d "
                              "and %d: up*-down* orientation invalid",
                              sw, peer.sw);
                    }
                    if (ucolor[peer.sw] == 0) {
                        ucolor[peer.sw] = 1;
                        stack.push_back(Frame{peer.sw, 0});
                        ascended = true;
                        break;
                    }
                    up_reach[sw] |= up_reach[peer.sw];
                }
                if (ascended)
                    continue;
                if (frame.next_port >= radix) {
                    ucolor[sw] = 2;
                    stack.pop_back();
                    if (!stack.empty())
                        up_reach[stack.back().sw] |= up_reach[sw];
                }
            }
        };
        for (std::size_t s = 0; s < num_switches; ++s)
            computeUp(static_cast<SwitchId>(s));
    }

    // Fill per-port reachability masks.
    for (std::size_t s = 0; s < num_switches; ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        for (PortId p = 0; p < graph.radix(sw); ++p) {
            const PortDir dir = dirs[s][static_cast<std::size_t>(p)];
            if (dir == PortDir::Up && tolerant) {
                switches_[s].setUpReach(
                    p, up_reach[graph.peer(sw, p).sw]);
                continue;
            }
            if (dir != PortDir::Down)
                continue;
            const PortPeer &peer = graph.peer(sw, p);
            if (peer.isHost()) {
                DestSet reach(num_hosts);
                reach.set(peer.host);
                switches_[s].setDownReach(p, std::move(reach));
            } else if (peer.isSwitch()) {
                switches_[s].setDownReach(p, down_reach[peer.sw]);
            }
        }
        switches_[s].freeze();
    }
}

const SwitchRouting &
NetworkRouting::at(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 && static_cast<std::size_t>(sw) < switches_.size(),
               "switch id %d out of range", sw);
    return switches_[static_cast<std::size_t>(sw)];
}

} // namespace mdw
