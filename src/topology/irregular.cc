#include "topology/irregular.hh"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "sim/logging.hh"

namespace mdw {

namespace {

/** First free port on a switch, or kInvalidPort. */
PortId
freePort(const PortGraph &graph, SwitchId sw)
{
    for (PortId p = 0; p < graph.radix(sw); ++p) {
        if (!graph.peer(sw, p).connected())
            return p;
    }
    return kInvalidPort;
}

int
freePortCount(const PortGraph &graph, SwitchId sw)
{
    int count = 0;
    for (PortId p = 0; p < graph.radix(sw); ++p) {
        if (!graph.peer(sw, p).connected())
            ++count;
    }
    return count;
}

} // namespace

IrregularTopology::IrregularTopology(const IrregularParams &params,
                                     Rng rng)
    : params_(params)
{
    const int S = params.switches;
    const int R = params.radix;
    const int H = params.hosts;
    const int X = params.extraLinks;

    if (S < 1)
        fatal("irregular topology needs at least one switch");
    if (H < 1)
        fatal("irregular topology needs at least one host");
    const long long port_budget = static_cast<long long>(S) * R;
    const long long port_demand =
        2LL * (S - 1) + 2LL * X + static_cast<long long>(H);
    if (port_demand > port_budget) {
        fatal("irregular topology needs %lld ports but has %lld "
              "(switches=%d radix=%d hosts=%d extraLinks=%d)",
              port_demand, port_budget, S, R, H, X);
    }

    for (int s = 0; s < S; ++s)
        graph_.addSwitch(R);
    for (int h = 0; h < H; ++h)
        graph_.addHost();

    // Random spanning tree: each new switch links to a random earlier
    // switch that still has a free port.
    for (SwitchId s = 1; s < S; ++s) {
        SwitchId target = static_cast<SwitchId>(rng.below(
            static_cast<std::uint64_t>(s)));
        // Linear probe for a switch with a free port (the budget
        // check above guarantees one exists).
        for (int tries = 0; tries < S; ++tries) {
            if (freePort(graph_, target) != kInvalidPort)
                break;
            target = static_cast<SwitchId>((target + 1) % s);
        }
        const PortId pa = freePort(graph_, s);
        const PortId pb = freePort(graph_, target);
        MDW_ASSERT(pa != kInvalidPort && pb != kInvalidPort,
                   "no free port for spanning-tree link");
        graph_.connectSwitches(s, pa, target, pb);
    }

    // Extra cross links between random distinct switches with free
    // ports; give up on a link after a bounded number of attempts so
    // pathological parameter mixes degrade instead of hanging.
    int added = 0;
    for (int attempt = 0; added < X && attempt < 50 * (X + 1);
         ++attempt) {
        const SwitchId a = static_cast<SwitchId>(rng.below(S));
        const SwitchId b = static_cast<SwitchId>(rng.below(S));
        if (a == b)
            continue;
        const PortId pa = freePort(graph_, a);
        const PortId pb = freePort(graph_, b);
        if (pa == kInvalidPort || pb == kInvalidPort)
            continue;
        graph_.connectSwitches(a, pa, b, pb);
        ++added;
    }
    if (added < X) {
        warn("irregular topology: only %d of %d extra links placed",
             added, X);
    }

    // Attach hosts to random switches with free ports, preferring the
    // least-loaded so hosts spread out.
    for (NodeId h = 0; h < H; ++h) {
        SwitchId best = kInvalidSwitch;
        int best_free = -1;
        // Randomized scan start for variety, deterministic tie-break.
        const SwitchId start = static_cast<SwitchId>(rng.below(S));
        for (int i = 0; i < S; ++i) {
            const SwitchId s = static_cast<SwitchId>((start + i) % S);
            const int free = freePortCount(graph_, s);
            if (free > best_free) {
                best_free = free;
                best = s;
            }
        }
        MDW_ASSERT(best != kInvalidSwitch && best_free > 0,
                   "no free port for host %d", h);
        graph_.connectHost(h, best, freePort(graph_, best));
    }

    // BFS levels from switch 0 (the up*-down* root).
    level_.assign(static_cast<std::size_t>(S), -1);
    std::queue<SwitchId> frontier;
    frontier.push(0);
    level_[0] = 0;
    while (!frontier.empty()) {
        const SwitchId s = frontier.front();
        frontier.pop();
        for (PortId p = 0; p < graph_.radix(s); ++p) {
            const PortPeer &peer = graph_.peer(s, p);
            if (peer.isSwitch() && level_[peer.sw] < 0) {
                level_[peer.sw] = level_[s] + 1;
                frontier.push(peer.sw);
            }
        }
    }

    // Orient ports: the endpoint at the switch with the smaller
    // (level, id) key is the "down" end of the link; ties cannot
    // happen because equal keys mean the same switch. Host ports are
    // always down; free ports stay unused.
    dirs_.assign(graph_.numSwitches(), {});
    for (SwitchId s = 0; s < S; ++s) {
        dirs_[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(R), PortDir::Unused);
        for (PortId p = 0; p < R; ++p) {
            const PortPeer &peer = graph_.peer(s, p);
            if (peer.isHost()) {
                dirs_[s][static_cast<std::size_t>(p)] = PortDir::Down;
            } else if (peer.isSwitch()) {
                const auto key_self = std::make_pair(level_[s], s);
                const auto key_peer =
                    std::make_pair(level_[peer.sw], peer.sw);
                dirs_[s][static_cast<std::size_t>(p)] =
                    key_self < key_peer ? PortDir::Down : PortDir::Up;
            }
        }
    }

    finalize();
}

int
IrregularTopology::levelOf(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 &&
                   static_cast<std::size_t>(sw) < level_.size(),
               "switch id %d out of range", sw);
    return level_[static_cast<std::size_t>(sw)];
}

int
IrregularTopology::downLevels() const
{
    // Worst case: root to deepest switch.
    int max_level = 0;
    for (int l : level_)
        max_level = std::max(max_level, l);
    return max_level + 1;
}

std::string
IrregularTopology::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "irregular NOW (%zu switches radix %d, %zu hosts, "
                  "%zu links)",
                  graph_.numSwitches(), params_.radix, graph_.numHosts(),
                  graph_.switchLinkCount());
    return buf;
}

} // namespace mdw
