/**
 * @file
 * Structural description of a switch-based network: switches with
 * numbered ports, hosts, and the bidirectional links between them.
 * Topology builders (fat-tree, irregular) produce a PortGraph; the
 * network builder turns it into channels and components.
 */

#ifndef MDW_TOPOLOGY_GRAPH_HH
#define MDW_TOPOLOGY_GRAPH_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/** What sits on the far side of a switch port. */
struct PortPeer
{
    enum class Kind { None, Host, Switch };

    /**
     * Direction(s) a host port carries. Bidirectional topologies
     * attach a host's injection and ejection to one port; a
     * unidirectional MIN injects at the first stage and ejects at
     * the last, so the two sides live on different switches.
     */
    enum class HostRole { Both, Inject, Eject };

    Kind kind = Kind::None;
    NodeId host = kInvalidNode;
    SwitchId sw = kInvalidSwitch;
    PortId port = kInvalidPort;
    HostRole hostRole = HostRole::Both;

    bool connected() const { return kind != Kind::None; }
    bool isHost() const { return kind == Kind::Host; }
    bool isSwitch() const { return kind == Kind::Switch; }
};

/** Where a host attaches. */
struct HostAttach
{
    SwitchId sw = kInvalidSwitch;
    PortId port = kInvalidPort;
};

/**
 * Switch/host/link structure. All links are bidirectional (a port
 * pair); the builder records both endpoints and validate() checks
 * consistency.
 */
class PortGraph
{
  public:
    /** Add a switch with @p radix ports; returns its id. */
    SwitchId addSwitch(int radix);

    /** Add a host (not yet attached); returns its id. */
    NodeId addHost();

    /** Connect two switch ports (both must be free). */
    void connectSwitches(SwitchId a, PortId pa, SwitchId b, PortId pb);

    /** Attach a host (inject + eject) to one switch port. */
    void connectHost(NodeId host, SwitchId sw, PortId port);

    /** Attach only the host's injection side to a switch port. */
    void connectHostInject(NodeId host, SwitchId sw, PortId port);

    /** Attach only the host's ejection side to a switch port. */
    void connectHostEject(NodeId host, SwitchId sw, PortId port);

    std::size_t numSwitches() const { return ports_.size(); }
    std::size_t numHosts() const { return hosts_.size(); }

    int radix(SwitchId sw) const;

    const PortPeer &peer(SwitchId sw, PortId port) const;

    /** Where the host's ejection side attaches (its "home"). */
    const HostAttach &attach(NodeId host) const;

    /** Where the host's injection side attaches. */
    const HostAttach &injectAttach(NodeId host) const;

    /** Number of connected switch-to-switch links. */
    std::size_t switchLinkCount() const;

    /** panic() if any link is one-sided or a host is unattached. */
    void validate() const;

    /** True if every switch is reachable from switch 0. */
    bool connectedSwitches() const;

  private:
    void checkSwitch(SwitchId sw) const;
    void checkPort(SwitchId sw, PortId port) const;

    void connectHostSide(NodeId host, SwitchId sw, PortId port,
                         PortPeer::HostRole role);

    std::vector<std::vector<PortPeer>> ports_;
    /** Per host: ejection attach. */
    std::vector<HostAttach> hosts_;
    /** Per host: injection attach. */
    std::vector<HostAttach> inject_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_GRAPH_HH
