/**
 * @file
 * Deterministic switch partitioning for the sharded scheduler.
 *
 * The partitioner assigns every switch to one of `shards` shards so
 * that (a) host load is balanced — edge switches are distributed by
 * cumulative attached-host count — and (b) boundary traffic is kept
 * low — interior switches join the shard the majority of their
 * already-assigned neighbors belong to (a few label-propagation
 * sweeps). The result is a pure function of the graph and the shard
 * count: no randomness, no iteration-order dependence, so a given
 * (topology, shards) pair always produces the same plan.
 *
 * The plan only affects *how* the simulator schedules switch steps;
 * results are bit-identical for every plan, so partition quality is a
 * performance knob, not a correctness one.
 */

#ifndef MDW_TOPOLOGY_PARTITION_HH
#define MDW_TOPOLOGY_PARTITION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "topology/graph.hh"

namespace mdw {

/** One switch-to-switch link crossing a shard boundary. */
struct BoundaryLink
{
    SwitchId a = kInvalidSwitch;
    PortId pa = kInvalidPort;
    SwitchId b = kInvalidSwitch;
    PortId pb = kInvalidPort;
};

/** A shard assignment for every switch of a topology. */
struct ShardPlan
{
    /** Parallel shards the plan was built for (>= 1). */
    std::size_t shards = 1;
    /** Shard of each switch, indexed by switch id. */
    std::vector<std::uint32_t> switchShard;
    /**
     * Every switch-to-switch link whose endpoints landed in
     * different shards, one entry per physical link (recorded from
     * the lower (switch, port) endpoint, matching the network
     * builder's wiring pass).
     */
    std::vector<BoundaryLink> boundaryLinks;

    /** Switches assigned to shard @p s. */
    std::size_t countIn(std::uint32_t s) const;
};

/**
 * Partition @p graph into @p shards shards. shards == 1 (or an empty
 * graph) degenerates to everything-in-shard-0; shards may exceed the
 * switch count (the surplus shards stay empty).
 */
ShardPlan makeShardPlan(const PortGraph &graph, std::size_t shards);

} // namespace mdw

#endif // MDW_TOPOLOGY_PARTITION_HH
