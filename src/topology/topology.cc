#include "topology/topology.hh"

#include "sim/logging.hh"

namespace mdw {

PortDir
Topology::portDir(SwitchId sw, PortId port) const
{
    MDW_ASSERT(sw >= 0 && static_cast<std::size_t>(sw) < dirs_.size(),
               "switch id %d out of range", sw);
    const auto &row = dirs_[static_cast<std::size_t>(sw)];
    MDW_ASSERT(port >= 0 && static_cast<std::size_t>(port) < row.size(),
               "port %d out of range on switch %d", port, sw);
    return row[static_cast<std::size_t>(port)];
}

void
Topology::finalize()
{
    MDW_ASSERT(!routing_, "Topology::finalize called twice");
    graph_.validate();
    MDW_ASSERT(graph_.connectedSwitches(),
               "topology switch graph is not connected");
    routing_ = std::make_unique<NetworkRouting>(graph_, dirs_);

    // Every host must be reachable from every switch: the root(s) of
    // the routing tree must down-reach everything, and every switch
    // must be able to climb toward a root.
    for (std::size_t s = 0;
         rootsMustReachAll_ && s < graph_.numSwitches(); ++s) {
        const auto &sr = routing_->at(static_cast<SwitchId>(s));
        if (sr.upPorts().empty()) {
            MDW_ASSERT(sr.allDownReach().count() == graph_.numHosts(),
                       "root switch %zu cannot reach all hosts", s);
        }
    }
}

} // namespace mdw
