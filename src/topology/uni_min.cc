#include "topology/uni_min.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mdw {

namespace {

int
digitOf(int label, int k, int pos)
{
    for (int i = 0; i < pos; ++i)
        label /= k;
    return label % k;
}

int
withDigit(int label, int k, int pos, int value)
{
    int scale = 1;
    for (int i = 0; i < pos; ++i)
        scale *= k;
    const int old = (label / scale) % k;
    return label + (value - old) * scale;
}

} // namespace

UniMin::UniMin(int k, int n)
    : k_(k), n_(n)
{
    MDW_ASSERT(k >= 2, "uni-MIN arity k=%d must be >= 2", k);
    MDW_ASSERT(n >= 1, "uni-MIN needs n >= 1 stages, got %d", n);
    rootsMustReachAll_ = false;

    perStage_ = 1;
    for (int i = 0; i < n - 1; ++i)
        perStage_ *= k;
    const std::size_t hosts = static_cast<std::size_t>(perStage_) *
                              static_cast<std::size_t>(k);

    for (int stage = 0; stage < n; ++stage) {
        for (int label = 0; label < perStage_; ++label) {
            const SwitchId sw = graph_.addSwitch(2 * k);
            MDW_ASSERT(sw == switchAt(stage, label),
                       "switch id layout mismatch");
        }
    }
    for (std::size_t h = 0; h < hosts; ++h)
        graph_.addHost();

    // Hosts inject at stage 0 input ports and eject from stage n-1
    // output ports.
    for (int label = 0; label < perStage_; ++label) {
        for (int c = 0; c < k; ++c) {
            const NodeId h = static_cast<NodeId>(label * k + c);
            graph_.connectHostInject(h, switchAt(0, label),
                                     static_cast<PortId>(k + c));
            graph_.connectHostEject(h, switchAt(n - 1, label),
                                    static_cast<PortId>(c));
        }
    }

    // Inter-stage wiring: the directed down-half of the k-ary n-tree
    // (stage s = tree level n-1-s). Output port c of (s, v) connects
    // to input port k + digit_l(v) of (s+1, v[l <- c]) with
    // l = n-2-s.
    for (int stage = 0; stage + 1 < n; ++stage) {
        const int l = n - 2 - stage;
        for (int label = 0; label < perStage_; ++label) {
            for (int c = 0; c < k; ++c) {
                const int next = withDigit(label, k_, l, c);
                graph_.connectSwitches(
                    switchAt(stage, label), static_cast<PortId>(c),
                    switchAt(stage + 1, next),
                    static_cast<PortId>(k + digitOf(label, k_, l)));
            }
        }
    }

    // Routing directions: outputs forward ("down"), inputs unused
    // (nothing is ever routed backward).
    dirs_.assign(graph_.numSwitches(),
                 std::vector<PortDir>(static_cast<std::size_t>(2 * k),
                                      PortDir::Unused));
    for (auto &row : dirs_) {
        for (int c = 0; c < k; ++c)
            row[static_cast<std::size_t>(c)] = PortDir::Down;
    }

    finalize();
}

int
UniMin::stageOf(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 &&
                   static_cast<std::size_t>(sw) < graph_.numSwitches(),
               "switch id %d out of range", sw);
    return sw / perStage_;
}

int
UniMin::labelOf(SwitchId sw) const
{
    MDW_ASSERT(sw >= 0 &&
                   static_cast<std::size_t>(sw) < graph_.numSwitches(),
               "switch id %d out of range", sw);
    return sw % perStage_;
}

SwitchId
UniMin::switchAt(int stage, int label) const
{
    MDW_ASSERT(stage >= 0 && stage < n_, "stage %d out of range", stage);
    MDW_ASSERT(label >= 0 && label < perStage_, "label %d out of range",
               label);
    return static_cast<SwitchId>(stage * perStage_ + label);
}

std::string
UniMin::describe() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "unidirectional %d-ary %d-stage MIN (%zu hosts, "
                  "%zu switches)",
                  k_, n_, graph_.numHosts(), graph_.numSwitches());
    return buf;
}

} // namespace mdw
