/**
 * @file
 * Topology base class: structure + port directions + routing.
 */

#ifndef MDW_TOPOLOGY_TOPOLOGY_HH
#define MDW_TOPOLOGY_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "topology/graph.hh"
#include "topology/routing.hh"

namespace mdw {

/**
 * A concrete network shape. Builders populate the PortGraph and the
 * per-port direction table in their constructor and then call
 * finalize(), which validates the structure and computes routing.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    const PortGraph &graph() const { return graph_; }
    const NetworkRouting &routing() const { return *routing_; }

    /** Per-port direction table (dirs()[sw][port]); the resilience
     *  layer prunes a copy of this to reroute around dead links. */
    const std::vector<std::vector<PortDir>> &dirs() const
    {
        return dirs_;
    }

    std::size_t numHosts() const { return graph_.numHosts(); }
    std::size_t numSwitches() const { return graph_.numSwitches(); }

    PortDir portDir(SwitchId sw, PortId port) const;

    /**
     * Number of downward replication levels a worm can encounter
     * (used to size multiport-encoded headers).
     */
    virtual int downLevels() const = 0;

    /** Human-readable one-line description. */
    virtual std::string describe() const = 0;

  protected:
    Topology() = default;

    /** Validate structure and compute routing; call once. */
    void finalize();

    PortGraph graph_;
    std::vector<std::vector<PortDir>> dirs_;
    /**
     * Bidirectional topologies require every up-portless switch to
     * down-reach all hosts (it is a routing root). Unidirectional
     * MINs have many up-portless switches that legitimately reach
     * only their forward cone; they clear this.
     */
    bool rootsMustReachAll_ = true;

  private:
    std::unique_ptr<NetworkRouting> routing_;
};

} // namespace mdw

#endif // MDW_TOPOLOGY_TOPOLOGY_HH
