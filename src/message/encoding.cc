#include "message/encoding.hh"

#include <cstdint>

#include "sim/logging.hh"

namespace mdw {

const char *
toString(McastEncoding encoding)
{
    switch (encoding) {
      case McastEncoding::BitString:
        return "bit-string";
      case McastEncoding::Multiport:
        return "multiport";
    }
    return "?";
}

int
bitStringHeaderFlits(std::size_t nodes, const EncodingParams &params)
{
    MDW_ASSERT(params.flitBits > 0, "flitBits must be positive");
    const std::size_t bits = static_cast<std::size_t>(params.flitBits);
    return 1 + static_cast<int>((nodes + bits - 1) / bits);
}

int
multiportHeaderFlits(int downLevels, const EncodingParams &params)
{
    MDW_ASSERT(downLevels >= 0, "negative stage count");
    (void)params; // port masks fit one flit at radix <= flitBits
    return 1 + downLevels;
}

std::vector<std::uint8_t>
encodeBitString(const DestSet &dests)
{
    const std::size_t bytes = (dests.size() + 7) / 8;
    std::vector<std::uint8_t> out(bytes, 0);
    dests.forEach([&out](NodeId id) {
        out[static_cast<std::size_t>(id) / 8] |=
            static_cast<std::uint8_t>(1u << (id % 8));
    });
    return out;
}

DestSet
decodeBitString(const std::vector<std::uint8_t> &bytes, std::size_t nodes)
{
    MDW_ASSERT(bytes.size() >= (nodes + 7) / 8,
               "bit-string too short: %zu bytes for %zu nodes",
               bytes.size(), nodes);
    DestSet out(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
        if (bytes[i / 8] & (1u << (i % 8)))
            out.set(static_cast<NodeId>(i));
    }
    return out;
}

namespace {

/** Base-k digits of a leaf id, most significant level first. */
std::vector<std::size_t>
leafDigits(std::size_t k, int levels, NodeId leaf)
{
    std::vector<std::size_t> digits(static_cast<std::size_t>(levels));
    std::size_t v = static_cast<std::size_t>(leaf);
    for (int level = levels - 1; level >= 0; --level) {
        digits[static_cast<std::size_t>(level)] = v % k;
        v /= k;
    }
    MDW_ASSERT(v == 0, "leaf %d out of range for k=%zu levels=%d", leaf,
               k, levels);
    return digits;
}

/** Expand the product of per-level digit masks into a leaf set. */
void
expandProduct(std::size_t k, const std::vector<std::uint64_t> &masks,
              std::size_t level, std::size_t prefix, DestSet &out)
{
    if (level == masks.size()) {
        out.set(static_cast<NodeId>(prefix));
        return;
    }
    std::uint64_t mask = masks[level];
    while (mask) {
        const int digit = __builtin_ctzll(mask);
        mask &= mask - 1;
        expandProduct(k, masks, level + 1,
                      prefix * k + static_cast<std::size_t>(digit), out);
    }
}

struct ProductGroup
{
    std::vector<std::uint64_t> masks;
    DestSet covered;
};

} // namespace

std::vector<DestSet>
planMultiportPhases(std::size_t k, int levels, const DestSet &dests)
{
    MDW_ASSERT(k >= 2 && k <= 64, "radix k=%zu unsupported", k);
    MDW_ASSERT(levels >= 1, "levels must be >= 1");

    std::vector<ProductGroup> groups;
    DestSet unassigned = dests;

    for (NodeId d : dests.toVector()) {
        if (!unassigned.test(d))
            continue;
        const auto digits = leafDigits(k, levels, d);

        bool placed = false;
        for (auto &group : groups) {
            std::vector<std::uint64_t> candidate = group.masks;
            for (int level = 0; level < levels; ++level) {
                candidate[static_cast<std::size_t>(level)] |=
                    1ULL << digits[static_cast<std::size_t>(level)];
            }
            DestSet product(dests.size());
            expandProduct(k, candidate, 0, 0, product);
            // The grown product must not reach any node that is
            // neither already covered by this group nor still an
            // unassigned destination (no spurious deliveries, no
            // duplicate deliveries across groups).
            DestSet extra = product - group.covered;
            if (!extra.subsetOf(unassigned))
                continue;
            group.masks = std::move(candidate);
            unassigned -= extra;
            group.covered = std::move(product);
            placed = true;
            break;
        }
        if (!placed) {
            ProductGroup group;
            group.masks.assign(static_cast<std::size_t>(levels), 0);
            for (int level = 0; level < levels; ++level) {
                group.masks[static_cast<std::size_t>(level)] =
                    1ULL << digits[static_cast<std::size_t>(level)];
            }
            group.covered = DestSet(dests.size());
            group.covered.set(d);
            unassigned.clear(d);
            groups.push_back(std::move(group));
        }
    }

    std::vector<DestSet> out;
    out.reserve(groups.size());
    for (auto &group : groups)
        out.push_back(std::move(group.covered));
    return out;
}

} // namespace mdw
