/**
 * @file
 * Multidestination header encodings.
 *
 * Two schemes from the paper:
 *
 * - Bit-string encoding: the header carries one bit per node in the
 *   system. Any destination set is coverable in a single phase; the
 *   header costs ceil(N / flit bits) flits plus one type/length flit,
 *   so it grows with system size.
 *
 * - Multiport encoding [Sivaram/Panda/Stunkel, SPDP'96]: the header
 *   carries one output-port mask per stage. Decoding is trivial, and
 *   the header length is independent of system size, but a single
 *   worm can only cover "product" destination sets (the same child
 *   subtree indices selected at every level), so an arbitrary
 *   multicast may need several worms (phases).
 */

#ifndef MDW_MESSAGE_ENCODING_HH
#define MDW_MESSAGE_ENCODING_HH

#include <cstdint>
#include <vector>

#include "message/dest_set.hh"

namespace mdw {

/** Which multidestination header encoding a system uses. */
enum class McastEncoding
{
    BitString,
    Multiport,
};

const char *toString(McastEncoding encoding);

/** Link/flit geometry used to size headers. */
struct EncodingParams
{
    /** Payload bits per flit (SP-Switch: 8-bit flits). */
    int flitBits = 8;
    /** Header flits of an ordinary unicast packet. */
    int unicastHeaderFlits = 2;
};

/** Header flits of a bit-string-encoded multidestination worm. */
int bitStringHeaderFlits(std::size_t nodes, const EncodingParams &params);

/**
 * Header flits of a multiport-encoded worm traversing @p downLevels
 * replication stages (one port-mask flit per stage + 1 control flit).
 */
int multiportHeaderFlits(int downLevels, const EncodingParams &params);

/** Serialize a destination set to header bytes (LSB = node 0). */
std::vector<std::uint8_t> encodeBitString(const DestSet &dests);

/** Inverse of encodeBitString(). */
DestSet decodeBitString(const std::vector<std::uint8_t> &bytes,
                        std::size_t nodes);

/**
 * Partition @p dests into the destination sets of single multiport
 * worms for a k-ary tree with @p levels leaf-digit levels (leaf ids in
 * [0, k^levels)). Each returned set is an exact "product set", the
 * sets are pairwise disjoint, and their union equals @p dests.
 *
 * Uses a greedy first-fit heuristic; minimizing the number of phases
 * is not required for correctness.
 */
std::vector<DestSet> planMultiportPhases(std::size_t k, int levels,
                                         const DestSet &dests);

} // namespace mdw

#endif // MDW_MESSAGE_ENCODING_HH
