#include "message/flit.hh"

#include <cstdio>

namespace mdw {

std::string
Flit::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "flit %d/%d of pkt %llu%s%s", seq,
                  pkt ? pkt->totalFlits() : 0,
                  pkt ? static_cast<unsigned long long>(pkt->id) : 0ULL,
                  isHead() ? " [head]" : "",
                  (pkt && isTail()) ? " [tail]" : "");
    return buf;
}

} // namespace mdw
