#include "message/flit.hh"

#include <cstdio>

namespace mdw {

std::uint16_t
crc16(const std::uint64_t *words, std::size_t count)
{
    // CRC-16/CCITT-FALSE, bitwise over each word's bytes. Slow-path
    // only: computed per link traversal when transient faults are
    // configured, never on the fault-free hot path.
    std::uint16_t crc = 0xffff;
    for (std::size_t w = 0; w < count; ++w) {
        for (int b = 0; b < 8; ++b) {
            const auto byte =
                static_cast<std::uint8_t>(words[w] >> (8 * b));
            crc ^= static_cast<std::uint16_t>(byte) << 8;
            for (int i = 0; i < 8; ++i) {
                crc = (crc & 0x8000)
                          ? static_cast<std::uint16_t>((crc << 1) ^
                                                       0x1021)
                          : static_cast<std::uint16_t>(crc << 1);
            }
        }
    }
    return crc;
}

std::uint16_t
Flit::computeCrc() const
{
    const std::uint64_t words[3] = {
        pkt ? static_cast<std::uint64_t>(pkt->id) : 0,
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(seq))
         << 32) |
            linkSeq,
        errorMask,
    };
    return crc16(words, 3);
}

void
Flit::seal(std::uint32_t linkSequence)
{
    linkSeq = linkSequence;
    crc = computeCrc();
}

std::string
Flit::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "flit %d/%d of pkt %llu%s%s", seq,
                  pkt ? pkt->totalFlits() : 0,
                  pkt ? static_cast<unsigned long long>(pkt->id) : 0ULL,
                  isHead() ? " [head]" : "",
                  (pkt && isTail()) ? " [tail]" : "");
    return buf;
}

} // namespace mdw
