#include "message/link_layer.hh"

#include "sim/logging.hh"

namespace mdw {

LinkLayer::LinkLayer(std::string name, SwitchId sw, int port,
                     Cycle delay, const LinkLayerParams &params,
                     std::uint64_t seed)
    : name_(std::move(name)), sw_(sw), port_(port), delay_(delay),
      params_(params), rng_(seed)
{
    MDW_ASSERT(params_.retryLimit >= 1,
               "link %s: retryLimit must be >= 1", name_.c_str());
    MDW_ASSERT(params_.replayBufferFlits >= 1,
               "link %s: replay buffer must hold >= 1 flit",
               name_.c_str());
}

void
LinkLayer::setFlaps(std::vector<FlapWindow> flaps)
{
    flaps_ = std::move(flaps);
    flapTraced_.assign(flaps_.size(), false);
}

void
LinkLayer::attachTelemetry(Telemetry &telemetry,
                           const std::string &prefix)
{
    tracer_ = telemetry.tracer();
    MetricsRegistry &reg = telemetry.registry();
    reg.registerCounter(prefix + "corrupted", &stats_.corrupted);
    reg.registerCounter(prefix + "naks", &stats_.naks);
    reg.registerCounter(prefix + "replays", &stats_.replays);
    reg.registerCounter(prefix + "timeouts", &stats_.timeouts);
    reg.registerCounter(prefix + "residual_errors",
                        &stats_.residualErrors);
    reg.registerCounter(prefix + "replay_stall_cycles",
                        &stats_.replayStallCycles);
    reg.registerCounter(prefix + "dropped", &stats_.dropped);
}

bool
LinkLayer::inFlap(Cycle cycle, std::size_t *window) const
{
    for (std::size_t i = 0; i < flaps_.size(); ++i) {
        if (cycle >= flaps_[i].start && cycle < flaps_[i].end) {
            if (window)
                *window = i;
            return true;
        }
    }
    return false;
}

void
LinkLayer::popAcked(Cycle cycle)
{
    while (!window_.empty() && window_.front() <= cycle)
        window_.pop_front();
}

Cycle
LinkLayer::drop(const Flit &flit)
{
    stats_.dropped.inc();
    if (poisoned_ != nullptr)
        poisoned_->insert(flit.pkt->id);
    return kNoCycle;
}

Cycle
LinkLayer::escalateAndDrop(const Flit &flit, Cycle when)
{
    dead_ = true;
    warn("link %s: retry budget (%d) exhausted at cycle %llu, "
         "escalating to fail-stop",
         name_.c_str(), params_.retryLimit,
         static_cast<unsigned long long>(when));
    if (escalate_)
        escalate_(when);
    return drop(flit);
}

Cycle
LinkLayer::onSend(Flit &flit, Cycle now)
{
    if (dead_)
        return drop(flit);

    // Earliest wire slot: after the previous flit's final departure
    // (the wire carries one flit per cycle, replays included).
    Cycle depart = now;
    if (lastDepart_ != kNoCycle && depart <= lastDepart_)
        depart = lastDepart_ + 1;

    // Go-back-N window: with replayBufferFlits unacked flits the
    // sender must hold this one until the oldest cumulative ack
    // returns.
    popAcked(depart);
    if (window_.size() >=
        static_cast<std::size_t>(params_.replayBufferFlits)) {
        const Cycle stallUntil = window_.front();
        stats_.replayStallCycles.inc(stallUntil - depart);
        depart = stallUntil;
        popAcked(depart);
    }

    int attempts = 0;
    for (;;) {
        ++attempts;
        flit.seal(txNextSeq_);

        // A traversal departing inside a flap window is lost on the
        // wire; the sender's retry timer replays it.
        std::size_t flapIdx = 0;
        if (inFlap(depart, &flapIdx)) {
            stats_.timeouts.inc();
            if (!flapTraced_[flapIdx]) {
                flapTraced_[flapIdx] = true;
                MDW_TRACE_EVENT(tracer_, WormEvent::LinkFlap, depart,
                                flit.pkt->id, flit.pkt->msg, sw_,
                                false, port_);
            }
            if (attempts >= params_.retryLimit)
                return escalateAndDrop(flit, depart + timeout());
            depart += timeout();
            stats_.replays.inc();
            MDW_TRACE_EVENT(tracer_, WormEvent::Replay, depart,
                            flit.pkt->id, flit.pkt->msg, sw_, false,
                            attempts);
            continue;
        }

        const bool corrupted =
            forcedCorrupt_ > 0
                ? (--forcedCorrupt_, true)
                : (params_.ber > 0.0 && rng_.chance(params_.ber));
        if (!corrupted)
            break;
        stats_.corrupted.inc();

        // Drive the real check: corrupt a wire copy and verify the
        // receiver's CRC actually flags it.
        Flit wire = flit;
        wire.corrupt(static_cast<std::uint16_t>(rng_.next() | 1u));
        MDW_ASSERT(!wire.crcOk(),
                   "link %s: corruption not caught by the CRC",
                   name_.c_str());

        const bool residual =
            forcedResidual_ > 0
                ? (--forcedResidual_, true)
                : (params_.residual > 0.0 &&
                   rng_.chance(params_.residual));
        if (residual) {
            // The (modeled) collision case: the corrupted flit passes
            // the link CRC and is accepted. Taint the replication
            // branch; the end-to-end payload checksum at the NIC is
            // now the only line of defense.
            stats_.residualErrors.inc();
            if (flit.pkt->taint)
                flit.pkt->taint->corrupted = true;
            else if (poisoned_ != nullptr)
                poisoned_->insert(flit.pkt->id);
            break;
        }

        // Detected: the receiver NAKs on arrival; the replay departs
        // after the NAK reaches the sender.
        stats_.naks.inc();
        lastNak_ = depart + 2 * delay_;
        MDW_TRACE_EVENT(tracer_, WormEvent::CrcFail, depart + delay_,
                        flit.pkt->id, flit.pkt->msg, sw_, false,
                        port_);
        MDW_TRACE_EVENT(tracer_, WormEvent::Nak, depart + 2 * delay_,
                        flit.pkt->id, flit.pkt->msg, sw_, false,
                        port_);
        if (attempts >= params_.retryLimit)
            return escalateAndDrop(flit, depart + 2 * delay_);
        depart += 2 * delay_ + 1;
        stats_.replays.inc();
        MDW_TRACE_EVENT(tracer_, WormEvent::Replay, depart,
                        flit.pkt->id, flit.pkt->msg, sw_, false,
                        attempts);
    }

    ++txNextSeq_;
    lastDepart_ = depart;
    const Cycle arrival = depart + delay_;
    // Cumulative ack for this flit returns one wire delay after
    // delivery.
    window_.push_back(arrival + delay_);
    return arrival;
}

void
LinkLayer::onReceive(const Flit &flit)
{
    // The delivered copy must carry a valid seal in the expected
    // sequence position — the receiver-side statement of the ARQ
    // invariant (send-time resolution already replayed every
    // corrupted or lost traversal).
    MDW_ASSERT(flit.crcOk(), "link %s: delivered flit fails its CRC",
               name_.c_str());
    MDW_ASSERT(flit.linkSeq == rxNextSeq_,
               "link %s: delivered linkSeq %u, expected %u",
               name_.c_str(), flit.linkSeq, rxNextSeq_);
    ++rxNextSeq_;
}

} // namespace mdw
