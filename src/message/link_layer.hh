/**
 * @file
 * Link-level reliability (the transient-fault subsystem's data path).
 *
 * One LinkLayer guards one direction of one switch-switch link. It
 * attaches to the direction's flit Channel as a ChannelHook and
 * models a go-back-N ARQ protocol *analytically*: when the switch
 * puts a flit on the wire, the layer resolves every corruption, NAK,
 * replay and flap-outage round-trip at send time into one final
 * arrival cycle (or a drop, once the link has escalated to
 * fail-stop). Because the resolved arrival flows through the
 * channel's ordinary ready-queue and wake-sink plumbing, retry timers
 * and flap wakeups need no extra stepped component — the idle-skipping
 * fast path stays bit-identical to the cycle-accurate oracle for
 * free.
 *
 * Protocol model:
 *  - every wire traversal is sealed with a per-link sequence number
 *    and a CRC-16 over the flit identity (Flit::seal); the receiver
 *    side of the hook re-checks both on delivery;
 *  - a corrupted traversal (per-flit Bernoulli at the configured BER)
 *    is detected by the link CRC and NAKed; the sender replays after
 *    one round-trip. With probability `residual` the corruption
 *    collides with the CRC instead and the flit is accepted — the
 *    replication branch is tainted and the NIC's end-to-end payload
 *    checksum catches it at delivery;
 *  - a traversal departing inside a flap window is lost outright; the
 *    sender's retry timer (one round-trip plus guard) expires and it
 *    replays, riding out windows shorter than the retry budget;
 *  - the sender keeps at most `replayBufferFlits` unacked flits; a
 *    full replay buffer stalls the next departure until the oldest
 *    cumulative ack returns;
 *  - `retryLimit` failed attempts for one flit exhaust the retry
 *    budget: the layer reports the link for escalation to a
 *    fail-stop LinkDown (handled by the resilience layer's rerouting
 *    and tombstone machinery), poisons the packet it was carrying,
 *    and drops every later send.
 *
 * NAKs and acks travel on the (modeled) protected control channel and
 * are never themselves corrupted, matching real link layers that
 * protect control symbols more heavily than data.
 */

#ifndef MDW_MESSAGE_LINK_LAYER_HH
#define MDW_MESSAGE_LINK_LAYER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "message/flit.hh"
#include "sim/channel.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

namespace mdw {

/** Reliability knobs of one link direction (config: link.*). */
struct LinkLayerParams
{
    /** Per-flit per-traversal corruption probability. */
    double ber = 0.0;
    /** P(corruption evades the link CRC | corrupted). */
    double residual = 0.0;
    /** Transmission attempts per flit before fail-stop escalation. */
    int retryLimit = 16;
    /** Unacked flits the sender may hold for replay. */
    int replayBufferFlits = 16;
};

/** Per-direction reliability counters. */
struct LinkLayerStats
{
    /** Wire traversals corrupted by the error process. */
    Counter corrupted;
    /** Corruptions detected by the link CRC (receiver NAKed). */
    Counter naks;
    /** Re-transmissions (NAK- or timeout-triggered). */
    Counter replays;
    /** Traversals lost in a flap window (sender timed out). */
    Counter timeouts;
    /** Corruptions that evaded the CRC (caught end-to-end only). */
    Counter residualErrors;
    /** Cycles departures stalled on a full replay buffer. */
    Counter replayStallCycles;
    /** Sends discarded because the link had escalated. */
    Counter dropped;
};

/** ARQ state machine for one direction of one switch-switch link. */
class LinkLayer : public ChannelHook<Flit>
{
  public:
    /** Called once when the retry budget is exhausted, with the cycle
     *  the failure was detected; must schedule the fail-stop. */
    using EscalateFn = std::function<void(Cycle)>;

    /**
     * @param name Diagnostic name (the guarded channel's name).
     * @param sw,port Sender-side endpoint (trace identity).
     * @param delay One-way wire delay of the guarded channel.
     * @param seed Private corruption-draw stream (Rng::streamSeed).
     */
    LinkLayer(std::string name, SwitchId sw, int port, Cycle delay,
              const LinkLayerParams &params, std::uint64_t seed);

    /** Flap windows affecting this link (both directions share). */
    void setFlaps(std::vector<FlapWindow> flaps);

    /** Poison registry for packets lost to escalation (shared with
     *  the resilience layer; may be null). */
    void setPoisonRegistry(std::unordered_set<PacketId> *poisoned)
    {
        poisoned_ = poisoned;
    }

    void setEscalation(EscalateFn fn) { escalate_ = std::move(fn); }

    /** Register counters under @p prefix and pick up the tracer. */
    void attachTelemetry(Telemetry &telemetry,
                         const std::string &prefix);

    // --- ChannelHook ------------------------------------------------
    Cycle onSend(Flit &flit, Cycle now) override;
    void onReceive(const Flit &flit) override;

    // --- Introspection (dump/diagnosis/tests) -----------------------
    const std::string &name() const { return name_; }
    const LinkLayerStats &stats() const { return stats_; }
    /** Unacked flits in the replay buffer as of the last send. */
    std::size_t replayOccupancy() const { return window_.size(); }
    /** Cycle the most recent NAK reached the sender, or kNoCycle. */
    Cycle lastNak() const { return lastNak_; }
    /** True once the retry budget escalated this link direction. */
    bool dead() const { return dead_; }
    /** Mark the direction dead (a fail-stop fault killed the link);
     *  later sends are dropped and their packets poisoned. */
    void markDead() { dead_ = true; }
    std::uint32_t txSeq() const { return txNextSeq_; }
    std::uint32_t rxSeq() const { return rxNextSeq_; }

    // --- Deterministic test seams -----------------------------------
    /** Corrupt the next @p n wire traversals regardless of BER. */
    void forceCorrupt(int n) { forcedCorrupt_ += n; }
    /** Make the next @p n corruptions evade the CRC (residual). */
    void forceResidual(int n) { forcedResidual_ += n; }

  private:
    /** Sender retry timeout: one round-trip plus detection guard. */
    Cycle timeout() const { return 2 * delay_ + 2; }
    bool inFlap(Cycle cycle, std::size_t *window) const;
    /** Drop acks that have returned by @p cycle (cumulative). */
    void popAcked(Cycle cycle);
    Cycle escalateAndDrop(const Flit &flit, Cycle when);
    Cycle drop(const Flit &flit);

    std::string name_;
    SwitchId sw_;
    int port_;
    Cycle delay_;
    LinkLayerParams params_;
    Rng rng_;
    std::vector<FlapWindow> flaps_;
    /** Flap windows already announced via a link_flap trace event. */
    std::vector<bool> flapTraced_;

    /** Ack-return cycles of unacked flits, oldest first. */
    std::deque<Cycle> window_;
    /** Wire slot of the last successful departure. */
    Cycle lastDepart_ = kNoCycle;
    std::uint32_t txNextSeq_ = 0;
    std::uint32_t rxNextSeq_ = 0;
    Cycle lastNak_ = kNoCycle;
    bool dead_ = false;

    int forcedCorrupt_ = 0;
    int forcedResidual_ = 0;

    std::unordered_set<PacketId> *poisoned_ = nullptr;
    EscalateFn escalate_;
    WormTracer *tracer_ = nullptr;
    LinkLayerStats stats_;
};

} // namespace mdw

#endif // MDW_MESSAGE_LINK_LAYER_HH
