#include "message/dest_set.hh"

#include "sim/logging.hh"

namespace mdw {

DestSet::DestSet(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0)
{
}

DestSet
DestSet::of(std::size_t size, std::initializer_list<NodeId> ids)
{
    DestSet s(size);
    for (NodeId id : ids)
        s.set(id);
    return s;
}

void
DestSet::checkId(NodeId id) const
{
    MDW_ASSERT(id >= 0 && static_cast<std::size_t>(id) < size_,
               "node id %d out of universe [0,%zu)", id, size_);
}

void
DestSet::checkCompatible(const DestSet &other) const
{
    MDW_ASSERT(other.size_ == size_,
               "DestSet universe mismatch: %zu vs %zu", size_,
               other.size_);
}

void
DestSet::set(NodeId id)
{
    checkId(id);
    words_[id / 64] |= 1ULL << (id % 64);
}

void
DestSet::clear(NodeId id)
{
    checkId(id);
    words_[id / 64] &= ~(1ULL << (id % 64));
}

bool
DestSet::test(NodeId id) const
{
    checkId(id);
    return (words_[id / 64] >> (id % 64)) & 1ULL;
}

void
DestSet::reset()
{
    for (auto &w : words_)
        w = 0;
}

std::size_t
DestSet::count() const
{
    std::size_t total = 0;
    for (auto w : words_)
        total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
}

bool
DestSet::empty() const
{
    for (auto w : words_) {
        if (w)
            return false;
    }
    return true;
}

bool
DestSet::subsetOf(const DestSet &other) const
{
    checkCompatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] & ~other.words_[i])
            return false;
    }
    return true;
}

bool
DestSet::intersects(const DestSet &other) const
{
    checkCompatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] & other.words_[i])
            return true;
    }
    return false;
}

NodeId
DestSet::first() const
{
    for (std::size_t w = 0; w < words_.size(); ++w) {
        if (words_[w])
            return static_cast<NodeId>(w * 64 + __builtin_ctzll(words_[w]));
    }
    return kInvalidNode;
}

std::vector<NodeId>
DestSet::toVector() const
{
    std::vector<NodeId> out;
    out.reserve(count());
    forEach([&out](NodeId id) { out.push_back(id); });
    return out;
}

DestSet &
DestSet::operator&=(const DestSet &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

DestSet &
DestSet::operator|=(const DestSet &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

DestSet &
DestSet::operator-=(const DestSet &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= ~other.words_[i];
    return *this;
}

bool
DestSet::operator==(const DestSet &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

} // namespace mdw
