/**
 * @file
 * Flits — the unit of link transfer and buffer occupancy.
 */

#ifndef MDW_MESSAGE_FLIT_HH
#define MDW_MESSAGE_FLIT_HH

#include <cstdint>
#include <string>

#include "message/packet.hh"

namespace mdw {

/**
 * CRC-16/CCITT over a small word sequence. Models the per-flit link
 * CRC: the simulator has no real bit payload, so the protected
 * "contents" are the flit's identity words (packet id, flit index,
 * link sequence number) plus an error mask that corruption injects.
 */
std::uint16_t crc16(const std::uint64_t *words, std::size_t count);

/**
 * One flit of a worm. Identity is (packet, sequence index); head,
 * header and tail status are derived from the index. The link layer
 * additionally stamps each wire traversal with a per-link sequence
 * number and a CRC over the flit identity, checked at every receiver
 * (zero cost when the transient-fault subsystem is off).
 */
struct Flit
{
    PacketPtr pkt;
    int seq = 0;

    /** Per-link sequence number of this traversal (link layer). */
    std::uint32_t linkSeq = 0;
    /** Link CRC over (packet id, seq, linkSeq, error mask). */
    std::uint16_t crc = 0;
    /** Accumulated corruption injected on the wire (0 = clean). */
    std::uint16_t errorMask = 0;
    /**
     * Virtual lane this flit travels on. Link-local routing metadata
     * (like a VC identifier field in a real flit header): it selects
     * the per-lane buffer at the receiver and is *not* covered by the
     * link CRC, exactly as real routers protect payload identity but
     * re-derive VC state per hop.
     */
    int lane = 0;

    Flit() = default;
    Flit(PacketPtr p, int s) : pkt(std::move(p)), seq(s) {}
    Flit(PacketPtr p, int s, int l)
        : pkt(std::move(p)), seq(s), lane(l)
    {
    }

    bool isHead() const { return seq == 0; }
    bool isTail() const { return seq == pkt->totalFlits() - 1; }
    /** True for flits belonging to the routing header. */
    bool isHeader() const { return seq < pkt->headerFlits; }

    /** CRC the sender should stamp for the current contents. */
    std::uint16_t computeCrc() const;
    /** Stamp @p linkSequence and a matching CRC (sender side). */
    void seal(std::uint32_t linkSequence);
    /** Receiver-side check: does the stamped CRC match the
     *  contents? */
    bool crcOk() const { return crc == computeCrc(); }
    /** Flip payload bits on the wire (@p mask must be nonzero); the
     *  stamped CRC now mismatches unless the corruption collides. */
    void corrupt(std::uint16_t mask) { errorMask ^= mask; }

    std::string toString() const;
};

} // namespace mdw

#endif // MDW_MESSAGE_FLIT_HH
