/**
 * @file
 * Flits — the unit of link transfer and buffer occupancy.
 */

#ifndef MDW_MESSAGE_FLIT_HH
#define MDW_MESSAGE_FLIT_HH

#include <string>

#include "message/packet.hh"

namespace mdw {

/**
 * One flit of a worm. Identity is (packet, sequence index); head,
 * header and tail status are derived from the index so a flit is two
 * machine words plus a shared descriptor reference.
 */
struct Flit
{
    PacketPtr pkt;
    int seq = 0;

    Flit() = default;
    Flit(PacketPtr p, int s) : pkt(std::move(p)), seq(s) {}

    bool isHead() const { return seq == 0; }
    bool isTail() const { return seq == pkt->totalFlits() - 1; }
    /** True for flits belonging to the routing header. */
    bool isHeader() const { return seq < pkt->headerFlits; }

    std::string toString() const;
};

} // namespace mdw

#endif // MDW_MESSAGE_FLIT_HH
