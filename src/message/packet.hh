/**
 * @file
 * Packet descriptors.
 *
 * Flits carry a shared pointer to an immutable PacketDesc; replicating
 * a worm at a switch creates a branch descriptor with the destination
 * set pruned to the subset reachable through that branch's output port
 * (modeling the header-rewrite logic of the hardware). All branches
 * share the original packet/message identifiers and timestamps, so
 * end-to-end statistics see one logical packet.
 */

#ifndef MDW_MESSAGE_PACKET_HH
#define MDW_MESSAGE_PACKET_HH

#include <memory>
#include <string>
#include <vector>

#include "message/dest_set.hh"
#include "sim/types.hh"

namespace mdw {

/** What a packet is, for routing and accounting purposes. */
enum class PacketKind
{
    /** Ordinary single-destination packet. */
    Unicast,
    /** Hardware multidestination worm (bit-string or multiport). */
    HwMulticast,
    /**
     * Unicast packet that is one hop of a software multicast tree;
     * routed exactly like Unicast but tracked as multicast traffic.
     */
    SwMulticastCarrier,
    /**
     * Hardware-barrier arrival token (2 flits). Not destination
     * routed: consumed and combined by the switch barrier units on
     * the way to the root switch, which emits the release multicast.
     */
    BarrierArrive,
};

const char *toString(PacketKind kind);

/** Immutable description of one packet (worm). */
struct PacketDesc
{
    PacketId id = 0;
    MsgId msg = 0;
    NodeId src = kInvalidNode;

    /** Destinations this worm (branch) still has to reach. */
    DestSet dests;

    PacketKind kind = PacketKind::Unicast;

    /** Routing-header flits at the front of the worm. */
    int headerFlits = 0;
    /** Data flits following the header. */
    int payloadFlits = 0;

    /** Number of packets the parent message was segmented into. */
    int msgPackets = 1;
    /** This packet's index within its message, [0, msgPackets). */
    int msgSeq = 0;

    /** Cycle the originating message was created by the workload. */
    Cycle created = 0;
    /** Cycle the head flit entered the network at the source NIC. */
    Cycle injected = 0;

    /** For BarrierArrive: the barrier group being signaled. */
    int barrierGroup = -1;

    /**
     * For SwMulticastCarrier: destinations delegated to the receiver,
     * which it must forward to in later software phases.
     */
    std::vector<NodeId> swDelegated;
    /** Software-tree depth of this carrier (0 = sent by the root). */
    int swPhase = 0;

    int totalFlits() const { return headerFlits + payloadFlits; }

    std::string toString() const;
};

using PacketPtr = std::shared_ptr<const PacketDesc>;

/**
 * Create the branch descriptor used after replicating a worm towards
 * one output port: identical to @p parent but destinations pruned to
 * @p branchDests.
 */
PacketPtr pruneBranch(const PacketPtr &parent, DestSet branchDests);

/** Allocator of unique packet and message identifiers. */
class PacketFactory
{
  public:
    /** Build a packet; id/msg fields are filled in. */
    PacketPtr
    make(PacketDesc proto)
    {
        proto.id = nextPacket_++;
        if (proto.msg == 0)
            proto.msg = nextMsg_++;
        return std::make_shared<const PacketDesc>(std::move(proto));
    }

    /** Reserve a message id (for multi-packet/multi-phase messages). */
    MsgId newMsgId() { return nextMsg_++; }

    PacketId packetsCreated() const { return nextPacket_ - 1; }

  private:
    PacketId nextPacket_ = 1;
    MsgId nextMsg_ = 1;
};

} // namespace mdw

#endif // MDW_MESSAGE_PACKET_HH
