/**
 * @file
 * Packet descriptors.
 *
 * Flits carry a shared pointer to an immutable PacketDesc; replicating
 * a worm at a switch creates a branch descriptor with the destination
 * set pruned to the subset reachable through that branch's output port
 * (modeling the header-rewrite logic of the hardware). All branches
 * share the original packet/message identifiers and timestamps, so
 * end-to-end statistics see one logical packet.
 */

#ifndef MDW_MESSAGE_PACKET_HH
#define MDW_MESSAGE_PACKET_HH

#include <memory>
#include <string>
#include <vector>

#include "message/dest_set.hh"
#include "message/pool.hh"
#include "sim/types.hh"

namespace mdw {

/** What a packet is, for routing and accounting purposes. */
enum class PacketKind
{
    /** Ordinary single-destination packet. */
    Unicast,
    /** Hardware multidestination worm (bit-string or multiport). */
    HwMulticast,
    /**
     * Unicast packet that is one hop of a software multicast tree;
     * routed exactly like Unicast but tracked as multicast traffic.
     */
    SwMulticastCarrier,
    /**
     * Hardware-barrier arrival token (2 flits). Not destination
     * routed: consumed and combined by the switch barrier units on
     * the way to the root switch, which emits the release multicast.
     */
    BarrierArrive,
};

const char *toString(PacketKind kind);

/**
 * Integrity state of one replication branch of a worm.
 *
 * Flits are regenerated from the shared descriptor at every hop, so
 * per-flit state cannot survive a link; the payload-corruption bit
 * instead hangs off the descriptor. Every pruneBranch() creates a
 * child node chained to the parent's, so marking a branch corrupted
 * taints exactly that replication subtree (descriptors downstream of
 * the corrupting link) and leaves sibling branches clean. The NIC
 * walks the chain at delivery — the end-to-end payload checksum.
 *
 * Nodes are allocated only when the network enables integrity
 * tracking (transient faults configured); otherwise the pointer
 * stays null and the fault-free path is untouched.
 */
struct PacketTaint
{
    /** A link corrupted this branch's payload undetectably. */
    bool corrupted = false;
    /** Integrity state inherited from the pre-replication worm. */
    std::shared_ptr<const PacketTaint> parent;

    /** True if this branch or any ancestor saw corruption. */
    bool
    tainted() const
    {
        for (const PacketTaint *t = this; t != nullptr;
             t = t->parent.get()) {
            if (t->corrupted)
                return true;
        }
        return false;
    }
};

/** Immutable description of one packet (worm). */
struct PacketDesc
{
    PacketId id = 0;
    MsgId msg = 0;
    NodeId src = kInvalidNode;

    /** Destinations this worm (branch) still has to reach. */
    DestSet dests;

    PacketKind kind = PacketKind::Unicast;

    /** Routing-header flits at the front of the worm. */
    int headerFlits = 0;
    /** Data flits following the header. */
    int payloadFlits = 0;

    /** Number of packets the parent message was segmented into. */
    int msgPackets = 1;
    /** This packet's index within its message, [0, msgPackets). */
    int msgSeq = 0;

    /** Cycle the originating message was created by the workload. */
    Cycle created = 0;
    /** Cycle the head flit entered the network at the source NIC. */
    Cycle injected = 0;

    /** For BarrierArrive: the barrier group being signaled. */
    int barrierGroup = -1;

    /**
     * Traffic class for virtual-lane allocation: 0 = bulk (default),
     * 1 = latency-sensitive. Switches map the class onto a lane
     * partition; with a single lane the field is inert.
     */
    int trafficClass = 0;

    /**
     * For SwMulticastCarrier: destinations delegated to the receiver,
     * which it must forward to in later software phases.
     */
    std::vector<NodeId> swDelegated;
    /** Software-tree depth of this carrier (0 = sent by the root). */
    int swPhase = 0;

    /**
     * Integrity node of this replication branch; null unless the
     * network tracks end-to-end integrity. The node (not the
     * descriptor) is mutable: a link that lets corruption slip past
     * its CRC sets taint->corrupted on the branch it carried.
     */
    std::shared_ptr<PacketTaint> taint;

    int totalFlits() const { return headerFlits + payloadFlits; }

    std::string toString() const;
};

using PacketPtr = std::shared_ptr<const PacketDesc>;

/**
 * Create the branch descriptor used after replicating a worm towards
 * one output port: identical to @p parent but destinations pruned to
 * @p branchDests.
 */
PacketPtr pruneBranch(const PacketPtr &parent, DestSet branchDests);

/** Allocator of unique packet and message identifiers. */
class PacketFactory
{
  public:
    /** Build a packet; id/msg fields are filled in. */
    PacketPtr
    make(PacketDesc proto)
    {
        proto.id = nextPacket_++;
        if (proto.msg == 0)
            proto.msg = nextMsg_++;
        if (integrity_)
            proto.taint = std::make_shared<PacketTaint>();
        return makePooled<const PacketDesc>(std::move(proto));
    }

    /** Reserve a message id (for multi-packet/multi-phase messages). */
    MsgId newMsgId() { return nextMsg_++; }

    /**
     * Give every future packet a root integrity node (end-to-end
     * checksum tracking). Enabled by the network when transient
     * faults are configured; off by default so the fault-free path
     * allocates nothing extra.
     */
    void enableIntegrityTracking() { integrity_ = true; }
    bool integrityTracking() const { return integrity_; }

    PacketId packetsCreated() const { return nextPacket_ - 1; }

  private:
    PacketId nextPacket_ = 1;
    MsgId nextMsg_ = 1;
    bool integrity_ = false;
};

} // namespace mdw

#endif // MDW_MESSAGE_PACKET_HH
