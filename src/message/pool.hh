/**
 * @file
 * Thread-safe block pool for hot-path descriptor allocations.
 *
 * Contended runs create and drop packet descriptors (and their
 * shared_ptr control blocks) at flit rate; under the sharded
 * scheduler those allocations additionally happen concurrently from
 * the shard workers (worm replication calls pruneBranch() inside
 * switch steps). makePooled<T>() is a drop-in for make_shared<T>
 * backed by a free-list arena keyed on the combined
 * object+control-block size:
 *
 *  - each thread keeps a small private cache of free blocks (no
 *    locking on the common alloc/free path),
 *  - caches refill from / spill to a mutex-guarded global list in
 *    batches, so blocks freed on one thread can be reused by another
 *    without per-block lock traffic.
 *
 * A batched mutex transfer was chosen over a lock-free global stack
 * deliberately: a Treiber-stack pop is ABA-prone without hazard
 * tracking, and the transfer happens once per kBatch blocks, so the
 * mutex is off the hot path anyway.
 *
 * Pooling only changes where the bytes live — results are bitwise
 * unaffected. MDW_PACKET_POOL=0 in the environment falls back to
 * plain make_shared (e.g. to run leak checkers that want to see
 * every allocation).
 */

#ifndef MDW_MESSAGE_POOL_HH
#define MDW_MESSAGE_POOL_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <utility>

namespace mdw {

/** False when MDW_PACKET_POOL=0 is set (read once per process). */
bool packetPoolEnabled();

namespace detail {

/**
 * Free-list arena for blocks of one (size, alignment) shape. All
 * state is per-instantiation static: a thread-local cache plus one
 * global overflow list.
 */
template <std::size_t Size, std::size_t Align>
class BlockArena
{
  public:
    static void *
    allocate()
    {
        Cache &cache = threadCache();
        if (cache.head == nullptr)
            refill(cache);
        if (cache.head != nullptr) {
            Node *node = cache.head;
            cache.head = node->next;
            --cache.count;
            return node;
        }
        return ::operator new(kBlock);
    }

    static void
    deallocate(void *p)
    {
        Cache &cache = threadCache();
        Node *node = static_cast<Node *>(p);
        node->next = cache.head;
        cache.head = node;
        if (++cache.count >= 2 * kBatch)
            spill(cache, kBatch);
    }

  private:
    struct Node
    {
        Node *next;
    };

    // A block must fit the free-list link and respect the payload
    // alignment.
    static constexpr std::size_t kBlock =
        Size < sizeof(Node) ? sizeof(Node) : Size;
    static constexpr std::size_t kBatch = 64;

    struct Global
    {
        std::mutex mutex;
        Node *head = nullptr;

        ~Global()
        {
            while (head != nullptr) {
                Node *next = head->next;
                ::operator delete(head);
                head = next;
            }
        }
    };

    struct Cache
    {
        Node *head = nullptr;
        std::size_t count = 0;

        ~Cache() { spillAll(*this); }
    };

    static Global &
    global()
    {
        static Global g;
        return g;
    }

    static Cache &
    threadCache()
    {
        static thread_local Cache cache;
        return cache;
    }

    static void
    refill(Cache &cache)
    {
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mutex);
        while (g.head != nullptr && cache.count < kBatch) {
            Node *node = g.head;
            g.head = node->next;
            node->next = cache.head;
            cache.head = node;
            ++cache.count;
        }
    }

    static void
    spill(Cache &cache, std::size_t target)
    {
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mutex);
        while (cache.count > target) {
            Node *node = cache.head;
            cache.head = node->next;
            node->next = g.head;
            g.head = node;
            --cache.count;
        }
    }

    static void
    spillAll(Cache &cache)
    {
        if (cache.head != nullptr)
            spill(cache, 0);
    }

    static_assert(Align <= alignof(std::max_align_t),
                  "over-aligned pooled types are not supported");
};

} // namespace detail

/**
 * STL allocator over BlockArena; only single-object allocations are
 * pooled (allocate_shared makes exactly one).
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    PoolAllocator() = default;
    template <typename U>
    PoolAllocator(const PoolAllocator<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1) {
            return static_cast<T *>(
                detail::BlockArena<sizeof(T), alignof(T)>::allocate());
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1) {
            detail::BlockArena<sizeof(T), alignof(T)>::deallocate(
                const_cast<std::remove_const_t<T> *>(p));
            return;
        }
        ::operator delete(const_cast<std::remove_const_t<T> *>(p));
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const PoolAllocator<U> &) const
    {
        return false;
    }
};

/**
 * make_shared with pooled storage (object and control block in one
 * recycled block). The pool/heap choice is latched into the control
 * block, so mixing pooled and unpooled pointers is always safe.
 */
template <typename T, typename... Args>
std::shared_ptr<T>
makePooled(Args &&...args)
{
    if (!packetPoolEnabled())
        return std::make_shared<T>(std::forward<Args>(args)...);
    return std::allocate_shared<T>(PoolAllocator<T>(),
                                   std::forward<Args>(args)...);
}

} // namespace mdw

#endif // MDW_MESSAGE_POOL_HH
