/**
 * @file
 * Dynamic bitset of destination node identifiers.
 *
 * The bit-string header encoding of the paper is literally this set:
 * bit i set means node i is a destination of the worm. Switches decode
 * by intersecting the set with per-output-port reachability masks, so
 * the set operations here are the hot path of multidestination
 * routing.
 */

#ifndef MDW_MESSAGE_DEST_SET_HH
#define MDW_MESSAGE_DEST_SET_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mdw {

/** Fixed-universe bitset over node ids [0, size). */
class DestSet
{
  public:
    /** Empty set over a universe of @p size nodes. */
    explicit DestSet(std::size_t size = 0);

    /** Set containing exactly the given nodes. */
    static DestSet of(std::size_t size, std::initializer_list<NodeId> ids);

    /** Universe size (number of addressable nodes). */
    std::size_t size() const { return size_; }

    void set(NodeId id);
    void clear(NodeId id);
    bool test(NodeId id) const;

    /** Remove all members. */
    void reset();

    /** Number of members. */
    std::size_t count() const;

    bool empty() const;

    /** True if every member of this set is also in @p other. */
    bool subsetOf(const DestSet &other) const;

    /** True if the sets share at least one member. */
    bool intersects(const DestSet &other) const;

    /** Lowest member, or kInvalidNode if empty. */
    NodeId first() const;

    /** Members in ascending order. */
    std::vector<NodeId> toVector() const;

    DestSet &operator&=(const DestSet &other);
    DestSet &operator|=(const DestSet &other);
    /** Set difference: remove members of @p other. */
    DestSet &operator-=(const DestSet &other);

    friend DestSet operator&(DestSet a, const DestSet &b) { return a &= b; }
    friend DestSet operator|(DestSet a, const DestSet &b) { return a |= b; }
    friend DestSet operator-(DestSet a, const DestSet &b) { return a -= b; }

    bool operator==(const DestSet &other) const;

    /** Raw 64-bit words (for header encoding). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Apply @p fn to each member in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(static_cast<NodeId>(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

  private:
    void checkCompatible(const DestSet &other) const;
    void checkId(NodeId id) const;

    std::size_t size_;
    std::vector<std::uint64_t> words_;
};

} // namespace mdw

#endif // MDW_MESSAGE_DEST_SET_HH
