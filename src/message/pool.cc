#include "message/pool.hh"

#include <cstdlib>
#include <cstring>

namespace mdw {

bool
packetPoolEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("MDW_PACKET_POOL");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

} // namespace mdw
