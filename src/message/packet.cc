#include "message/packet.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mdw {

const char *
toString(PacketKind kind)
{
    switch (kind) {
      case PacketKind::Unicast:
        return "unicast";
      case PacketKind::HwMulticast:
        return "hw-multicast";
      case PacketKind::SwMulticastCarrier:
        return "sw-multicast-carrier";
      case PacketKind::BarrierArrive:
        return "barrier-arrive";
    }
    return "?";
}

std::string
PacketDesc::toString() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "pkt %llu (msg %llu, %s, src %d, %zu dests, %d flits)",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(msg),
                  mdw::toString(kind), src, dests.count(), totalFlits());
    return buf;
}

PacketPtr
pruneBranch(const PacketPtr &parent, DestSet branchDests)
{
    MDW_ASSERT(parent != nullptr, "pruning a null packet");
    MDW_ASSERT(branchDests.subsetOf(parent->dests),
               "branch destinations must be a subset of the parent's");
    MDW_ASSERT(!branchDests.empty(), "branch with no destinations");
    if (branchDests == parent->dests)
        return parent;
    PacketDesc branch = *parent;
    branch.dests = std::move(branchDests);
    if (parent->taint) {
        // New replication branch, new integrity node: corruption on
        // one branch must not taint its siblings, but corruption
        // upstream of the split (the parent chain) taints them all.
        branch.taint = std::make_shared<PacketTaint>();
        branch.taint->parent = parent->taint;
    }
    return makePooled<const PacketDesc>(std::move(branch));
}

} // namespace mdw
