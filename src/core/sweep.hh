/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Every figure and ablation in the reproduction is a sweep: the same
 * experiment repeated over a grid of load points, schemes, or sizes.
 * The runs are independent (each builds its own Network, Simulator,
 * and trackers), so they can execute on a pool of worker threads —
 * but a parallel sweep is only trustworthy if it is *bit-identical*
 * to the serial one. The runner guarantees that by construction:
 *
 *  - each run's RNG streams are derived from (baseSeed, run index)
 *    via Rng::streamSeed, never from thread identity or timing;
 *  - each run writes its result into its own pre-allocated slot, so
 *    results come back in submission order;
 *  - cross-run aggregates are built after the pool joins, merging
 *    per-run Samplers in submission order via Sampler::merge.
 *
 * The accompanying SweepReport records per-run wall time, effective
 * seeds, and the saturation flag, making every sweep auditable.
 */

#ifndef MDW_CORE_SWEEP_HH
#define MDW_CORE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace mdw {

/** One queued simulation run: a label plus its three config blocks. */
struct SweepRun
{
    std::string label;
    NetworkConfig network;
    TrafficParams traffic;
    ExperimentParams params;
};

/** Audit record of one executed run. */
struct SweepRunRecord
{
    std::size_t index = 0;
    std::string label;
    /** Seeds the run actually used (derived or as-submitted). */
    std::uint64_t networkSeed = 0;
    std::uint64_t trafficSeed = 0;
    /** Wall-clock duration of the run (informational only). */
    double wallMs = 0.0;
    bool saturated = false;
    bool drained = true;
    bool deadlocked = false;
};

/** How a sweep executed, plus deterministic cross-run aggregates. */
struct SweepReport
{
    /** Worker threads actually used (after resolving threads=0). */
    int threads = 1;
    std::uint64_t baseSeed = 0;
    bool seedsDerived = false;
    /** Wall-clock duration of the whole sweep. */
    double wallMs = 0.0;
    std::vector<SweepRunRecord> runs;

    /**
     * All runs' metric snapshots merged in submission order — the
     * same numbers at any thread count. Counters sum, samplers merge
     * (Sampler::merge), per-run gauges collapse into samplers.
     */
    MetricsSnapshot metrics;

    /** Merged latency samplers (from `metrics`). */
    const Sampler &unicastLatency() const
    {
        return metrics.sampler("tracker.latency.unicast");
    }
    const Sampler &mcastLastLatency() const
    {
        return metrics.sampler("tracker.latency.mcast_last");
    }
    const Sampler &mcastAvgLatency() const
    {
        return metrics.sampler("tracker.latency.mcast_avg");
    }

    std::size_t saturatedCount() const;

    /** Multi-line human-readable audit trail. */
    std::string summary() const;
};

/** Execution policy of a SweepRunner. */
struct SweepOptions
{
    /**
     * Worker threads: 1 = serial (runs inline, no threads spawned),
     * 0 = one per hardware thread, N = exactly N.
     */
    int threads = 1;
    /**
     * When deriveSeeds is set, run i's network and traffic seeds are
     * replaced by Rng::streamSeed(baseSeed, 2i) and
     * Rng::streamSeed(baseSeed, 2i + 1), giving every run an
     * isolated, reproducible stream from a single base seed.
     * Otherwise the seeds in the submitted configs are used as-is.
     */
    std::uint64_t baseSeed = 0;
    bool deriveSeeds = false;
};

/**
 * Collects independent Experiment runs and executes them across a
 * worker pool. Usage: add() every run of the sweep, call run() once,
 * then read results() (submission order) and report().
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** Queue a run; returns its index (= position in results()). */
    std::size_t add(SweepRun run);
    std::size_t add(std::string label, const NetworkConfig &network,
                    const TrafficParams &traffic,
                    const ExperimentParams &params);

    std::size_t size() const { return runs_.size(); }

    /**
     * Execute all queued runs and return the results in submission
     * order. May be called only once.
     */
    const std::vector<ExperimentResult> &run();

    /** Results in submission order (empty before run()). */
    const std::vector<ExperimentResult> &results() const
    {
        return results_;
    }

    const SweepReport &report() const { return report_; }

  private:
    void executeOne(std::size_t index);

    SweepOptions options_;
    std::vector<SweepRun> runs_;
    std::vector<ExperimentResult> results_;
    SweepReport report_;
    bool executed_ = false;
};

} // namespace mdw

#endif // MDW_CORE_SWEEP_HH
