#include "core/experiment.hh"

#include <algorithm>
#include <cstdio>

#include "core/sweep.hh"
#include "sim/logging.hh"
#include "workload/kernels.hh"
#include "workload/trace.hh"

namespace mdw {

namespace {

/** Copy a sharded run's scheduler diagnostics into the result. */
void
captureShardStats(const Network &net, ExperimentResult &result)
{
    result.effectiveShards = net.effectiveShards();
    if (result.effectiveShards == 0)
        return;
    result.shardStats = net.shardStats();
    for (std::uint32_t s = 0; s <= result.effectiveShards; ++s)
        result.shardTotals.push_back(net.totalsForShard(s));
}

} // namespace

Experiment::Experiment(NetworkConfig network, TrafficParams traffic,
                       ExperimentParams params)
    : network_(std::move(network)), traffic_(traffic), params_(params)
{
}

double
Experiment::deliveryMultiplier() const
{
    switch (traffic_.pattern) {
      case TrafficPattern::UniformUnicast:
      case TrafficPattern::HotSpot:
        return 1.0;
      case TrafficPattern::MultipleMulticast:
        return static_cast<double>(traffic_.mcastDegree);
      case TrafficPattern::Bimodal:
        return (1.0 - traffic_.mcastFraction) +
               traffic_.mcastFraction *
                   static_cast<double>(traffic_.mcastDegree);
    }
    return 1.0;
}

ExperimentResult
Experiment::run()
{
    Network net(network_);

    if (traffic_.kind != WorkloadKind::Synthetic)
        return runClosedLoop(net);

    TrafficParams traffic = traffic_;
    traffic.stopCycle = params_.warmup + params_.measure;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.tracker().setWindow(params_.warmup,
                            params_.warmup + params_.measure);

    ExperimentResult result;
    result.offeredLoad = traffic_.load;
    result.expectedDelivered = traffic_.load * deliveryMultiplier();

    if (params_.watchdogQuiet > 0)
        net.armWatchdog(params_.watchdogQuiet);

    net.sim().run(params_.warmup);
    const std::vector<std::uint64_t> tx_before = net.portTxSnapshot();
    net.sim().run(params_.measure);
    const std::vector<std::uint64_t> tx_after = net.portTxSnapshot();

    // Drain: generation has stopped; let in-flight traffic land.
    result.drained = net.sim().runUntil(
        [&net] { return net.idle(); }, params_.drainLimit);

    result.deadlocked = net.sim().deadlockDetected();
    result.cyclesRun = net.sim().now();

    // Every measurement is captured here, *before* the quiescence
    // settle below advances the clock: the snapshot reads live gauges
    // (time averages, event totals) whose values depend on `now`.
    result.metrics = net.metricsSnapshot();
    result.metrics.setCounter("experiment.end_backlog_packets",
                              net.totalTxBacklog());

    const McastTracker &tracker = net.tracker();
    result.metrics.setGauge("experiment.latency.unicast.p95",
                            tracker.unicastHist().percentile(0.95));
    result.metrics.setGauge("experiment.latency.unicast.p99",
                            tracker.unicastHist().percentile(0.99));
    result.metrics.setGauge("experiment.latency.unicast.p999",
                            tracker.unicastHist().percentile(0.999));
    result.metrics.setGauge("experiment.latency.mcast_last.p95",
                            tracker.mcastLastHist().percentile(0.95));
    result.metrics.setGauge("experiment.latency.mcast_last.p99",
                            tracker.mcastLastHist().percentile(0.99));
    result.metrics.setGauge("experiment.latency.mcast_last.p999",
                            tracker.mcastLastHist().percentile(0.999));

    const double node_cycles = static_cast<double>(net.numHosts()) *
                               static_cast<double>(params_.measure);
    const double delivered_load =
        static_cast<double>(tracker.windowDeliveredFlits()) /
        node_cycles;
    result.metrics.setGauge("experiment.delivered_load",
                            delivered_load);
    result.saturated =
        result.deadlocked || !result.drained ||
        delivered_load <
            params_.saturationRatio * result.expectedDelivered;

    double mean_util = 0.0, peak_util = 0.0;
    if (!tx_before.empty() && params_.measure > 0) {
        double sum = 0.0;
        for (std::size_t i = 0; i < tx_before.size(); ++i) {
            const double util =
                static_cast<double>(tx_after[i] - tx_before[i]) /
                static_cast<double>(params_.measure);
            sum += util;
            peak_util = std::max(peak_util, util);
        }
        mean_util = sum / static_cast<double>(tx_before.size());
    }
    result.metrics.setGauge("experiment.link_util.mean", mean_util);
    result.metrics.setGauge("experiment.link_util.max", peak_util);

    if (net.telemetry().tracer())
        result.trace =
            std::make_shared<const WormTrace>(net.traceSnapshot());

    // Quiescence audit, *after* every measurement above is captured:
    // the settle cycles it may add must not perturb any statistic
    // (a fault-free run must stay bit-identical with this in place).
    if (result.drained && !result.deadlocked) {
        // A drained network can still have credits on the wire at the
        // cycle idleness was detected; give them a moment to land.
        net.sim().runUntil(
            [&net] { return net.checkQuiescent(nullptr); }, 4096);
        std::string why;
        result.quiescent = net.checkQuiescent(&why);
        if (!result.quiescent)
            warn("network not quiescent after drain: %s", why.c_str());
    } else {
        result.quiescent = false;
    }
    captureShardStats(net, result);
    return result;
}

ExperimentResult
Experiment::runClosedLoop(Network &net)
{
    std::unique_ptr<Workload> workload;
    CollectiveKernelWorkload *kernels = nullptr;
    switch (traffic_.kind) {
      case WorkloadKind::Collective: {
        auto k = std::make_unique<CollectiveKernelWorkload>(
            net.numHosts(), traffic_);
        kernels = k.get();
        workload = std::move(k);
        break;
      }
      case WorkloadKind::Trace: {
        if (traffic_.tracePath.empty())
            fatal("workload.kind=trace needs workload.trace=<path>");
        workload = std::make_unique<TraceTraffic>(
            TraceTraffic::fromFile(traffic_.tracePath,
                                   net.numHosts()));
        break;
      }
      case WorkloadKind::Synthetic:
        MDW_ASSERT(false, "synthetic workloads use the open-loop run");
    }
    net.attachWorkload(workload.get());
    // No warmup/measure split: a closed-loop run is bounded by its
    // own dependency structure, so the whole run is the measurement.
    net.tracker().setWindow(0, kNoCycle);

    ExperimentResult result;
    result.offeredLoad = 0.0;
    result.expectedDelivered = 0.0;

    if (params_.watchdogQuiet > 0)
        net.armWatchdog(params_.watchdogQuiet);

    Workload *w = workload.get();
    result.drained = net.sim().runUntil(
        [&net, w] { return w->exhausted() && net.idle(); },
        params_.drainLimit);
    result.deadlocked = net.sim().deadlockDetected();
    result.cyclesRun = net.sim().now();

    // As in the open-loop path: capture everything *before* the
    // quiescence settle advances the clock.
    result.metrics = net.metricsSnapshot();
    result.metrics.setCounter("experiment.end_backlog_packets",
                              net.totalTxBacklog());

    const McastTracker &tracker = net.tracker();
    result.metrics.setGauge("experiment.latency.unicast.p95",
                            tracker.unicastHist().percentile(0.95));
    result.metrics.setGauge("experiment.latency.unicast.p99",
                            tracker.unicastHist().percentile(0.99));
    result.metrics.setGauge("experiment.latency.unicast.p999",
                            tracker.unicastHist().percentile(0.999));
    result.metrics.setGauge("experiment.latency.mcast_last.p95",
                            tracker.mcastLastHist().percentile(0.95));
    result.metrics.setGauge("experiment.latency.mcast_last.p99",
                            tracker.mcastLastHist().percentile(0.99));
    result.metrics.setGauge("experiment.latency.mcast_last.p999",
                            tracker.mcastLastHist().percentile(0.999));

    const double node_cycles =
        static_cast<double>(net.numHosts()) *
        static_cast<double>(result.cyclesRun);
    result.metrics.setGauge(
        "experiment.delivered_load",
        node_cycles > 0.0
            ? static_cast<double>(tracker.windowDeliveredFlits()) /
                  node_cycles
            : 0.0);
    result.saturated = result.deadlocked || !result.drained;

    // Whole-run link utilization (no measurement sub-window).
    const std::vector<std::uint64_t> tx = net.portTxSnapshot();
    double mean_util = 0.0, peak_util = 0.0;
    if (!tx.empty() && result.cyclesRun > 0) {
        double sum = 0.0;
        for (const std::uint64_t flits : tx) {
            const double util =
                static_cast<double>(flits) /
                static_cast<double>(result.cyclesRun);
            sum += util;
            peak_util = std::max(peak_util, util);
        }
        mean_util = sum / static_cast<double>(tx.size());
    }
    result.metrics.setGauge("experiment.link_util.mean", mean_util);
    result.metrics.setGauge("experiment.link_util.max", peak_util);

    // Closed-loop accounting: on a drained run every injected message
    // retired (posted == completed + partial), which validate_report
    // cross-checks from the report stream.
    result.metrics.setCounter(
        "workload.posted",
        result.metrics.sumCounters("messages_posted"));
    result.metrics.setCounter("workload.completed",
                              tracker.totalCompleted());
    result.metrics.setCounter("workload.partial",
                              tracker.partialCompleted());
    if (kernels != nullptr) {
        result.metrics.setSampler("workload.round_cycles",
                                  kernels->roundCycles());
        result.metrics.setCounter("workload.rounds",
                                  kernels->roundsCompleted());
    }

    if (net.telemetry().tracer())
        result.trace =
            std::make_shared<const WormTrace>(net.traceSnapshot());

    if (result.drained && !result.deadlocked) {
        net.sim().runUntil(
            [&net] { return net.checkQuiescent(nullptr); }, 4096);
        std::string why;
        result.quiescent = net.checkQuiescent(&why);
        if (!result.quiescent)
            warn("network not quiescent after drain: %s", why.c_str());
    } else {
        result.quiescent = false;
    }
    captureShardStats(net, result);
    // The workload dies with this scope; the network must not retain
    // hooks into it.
    net.detachWorkload();
    return result;
}

bool
identicalResults(const ExperimentResult &a, const ExperimentResult &b)
{
    return a.offeredLoad == b.offeredLoad &&
           a.expectedDelivered == b.expectedDelivered &&
           a.saturated == b.saturated && a.drained == b.drained &&
           a.deadlocked == b.deadlocked && a.cyclesRun == b.cyclesRun &&
           a.quiescent == b.quiescent &&
           a.metrics.identical(b.metrics);
}

std::vector<ExperimentResult>
sweepLoads(const NetworkConfig &network, const TrafficParams &traffic,
           const ExperimentParams &params,
           const std::vector<double> &loads, int threads)
{
    SweepOptions options;
    options.threads = threads;
    SweepRunner runner(options);
    for (double load : loads) {
        TrafficParams t = traffic;
        t.load = load;
        char label[32];
        std::snprintf(label, sizeof(label), "load=%.4f", load);
        runner.add(label, network, t, params);
    }
    return runner.run();
}

std::string
resultHeader()
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-22s %8s %8s %9s %9s %9s %6s",
                  "config", "offered", "deliv", "uni-lat", "mc-avg",
                  "mc-last", "sat");
    return buf;
}

std::string
formatResultRow(const std::string &label, const ExperimentResult &r)
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %8.4f %8.4f %9.1f %9.1f %9.1f %6s",
                  label.c_str(), r.offeredLoad, r.deliveredLoad(),
                  r.unicastAvg(), r.mcastAvgAvg(), r.mcastLastAvg(),
                  r.saturated ? "yes" : "no");
    return buf;
}

} // namespace mdw
