#include "core/experiment.hh"

#include <algorithm>
#include <cstdio>

#include "core/resilience.hh"
#include "core/sweep.hh"
#include "sim/logging.hh"

namespace mdw {

Experiment::Experiment(NetworkConfig network, TrafficParams traffic,
                       ExperimentParams params)
    : network_(std::move(network)), traffic_(traffic), params_(params)
{
}

double
Experiment::deliveryMultiplier() const
{
    switch (traffic_.pattern) {
      case TrafficPattern::UniformUnicast:
      case TrafficPattern::HotSpot:
        return 1.0;
      case TrafficPattern::MultipleMulticast:
        return static_cast<double>(traffic_.mcastDegree);
      case TrafficPattern::Bimodal:
        return (1.0 - traffic_.mcastFraction) +
               traffic_.mcastFraction *
                   static_cast<double>(traffic_.mcastDegree);
    }
    return 1.0;
}

ExperimentResult
Experiment::run()
{
    Network net(network_);

    TrafficParams traffic = traffic_;
    traffic.stopCycle = params_.warmup + params_.measure;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.tracker().setWindow(params_.warmup,
                            params_.warmup + params_.measure);

    ExperimentResult result;
    result.offeredLoad = traffic_.load;
    result.expectedDelivered = traffic_.load * deliveryMultiplier();

    if (params_.watchdogQuiet > 0)
        net.armWatchdog(params_.watchdogQuiet);

    net.sim().run(params_.warmup);
    const std::vector<std::uint64_t> tx_before = net.portTxSnapshot();
    net.sim().run(params_.measure);
    const std::vector<std::uint64_t> tx_after = net.portTxSnapshot();

    // Drain: generation has stopped; let in-flight traffic land.
    result.drained = net.sim().runUntil(
        [&net] { return net.idle(); }, params_.drainLimit);

    result.deadlocked = net.sim().deadlockDetected();
    result.cyclesRun = net.sim().now();
    result.endBacklogPackets = net.totalTxBacklog();

    const McastTracker &tracker = net.tracker();
    result.unicastAvg = tracker.unicastLatency().mean();
    result.unicastP95 = tracker.unicastHist().percentile(0.95);
    result.unicastCount =
        static_cast<double>(tracker.unicastLatency().count());
    result.mcastLastAvg = tracker.mcastLastLatency().mean();
    result.mcastLastP95 = tracker.mcastLastHist().percentile(0.95);
    result.mcastAvgAvg = tracker.mcastAvgLatency().mean();
    result.mcastCount =
        static_cast<double>(tracker.mcastLastLatency().count());
    result.unicastLatency = tracker.unicastLatency();
    result.mcastLastLatency = tracker.mcastLastLatency();
    result.mcastAvgLatency = tracker.mcastAvgLatency();

    const double node_cycles = static_cast<double>(net.numHosts()) *
                               static_cast<double>(params_.measure);
    result.deliveredLoad =
        static_cast<double>(tracker.windowDeliveredFlits()) /
        node_cycles;
    result.saturated =
        result.deadlocked || !result.drained ||
        result.deliveredLoad <
            params_.saturationRatio * result.expectedDelivered;

    if (!tx_before.empty() && params_.measure > 0) {
        double sum = 0.0, peak = 0.0;
        for (std::size_t i = 0; i < tx_before.size(); ++i) {
            const double util =
                static_cast<double>(tx_after[i] - tx_before[i]) /
                static_cast<double>(params_.measure);
            sum += util;
            peak = std::max(peak, util);
        }
        result.meanLinkUtil = sum / static_cast<double>(tx_before.size());
        result.maxLinkUtil = peak;
    }

    const NetworkTotals totals = net.totals();
    result.replications = totals.replications;
    result.reservationStallCycles = totals.reservationStallCycles;
    result.avgCqChunks = net.avgCqChunks();

    if (net.resilience())
        result.faultsApplied = net.resilience()->faultsApplied();
    for (std::size_t h = 0; h < net.numHosts(); ++h) {
        const NicStats &ns = net.nic(static_cast<NodeId>(h)).stats();
        result.retransmits += ns.retransmits.value();
        result.poisonedDrops += ns.poisonedDrops.value();
    }
    result.duplicateDeliveries = tracker.duplicateDeliveries();
    result.partialCompleted = tracker.partialCompleted();
    result.unreachableDests = tracker.unreachableDests();

    // Quiescence audit, *after* every measurement above is captured:
    // the settle cycles it may add must not perturb any statistic
    // (a fault-free run must stay bit-identical with this in place).
    if (result.drained && !result.deadlocked) {
        // A drained network can still have credits on the wire at the
        // cycle idleness was detected; give them a moment to land.
        net.sim().runUntil(
            [&net] { return net.checkQuiescent(nullptr); }, 4096);
        std::string why;
        result.quiescent = net.checkQuiescent(&why);
        if (!result.quiescent)
            warn("network not quiescent after drain: %s", why.c_str());
    } else {
        result.quiescent = false;
    }
    return result;
}

namespace {

bool
sameSampler(const Sampler &a, const Sampler &b)
{
    return a.count() == b.count() && a.mean() == b.mean() &&
           a.variance() == b.variance() && a.min() == b.min() &&
           a.max() == b.max();
}

} // namespace

bool
identicalResults(const ExperimentResult &a, const ExperimentResult &b)
{
    return a.offeredLoad == b.offeredLoad &&
           a.deliveredLoad == b.deliveredLoad &&
           a.expectedDelivered == b.expectedDelivered &&
           a.unicastAvg == b.unicastAvg &&
           a.unicastP95 == b.unicastP95 &&
           a.unicastCount == b.unicastCount &&
           a.mcastLastAvg == b.mcastLastAvg &&
           a.mcastLastP95 == b.mcastLastP95 &&
           a.mcastAvgAvg == b.mcastAvgAvg &&
           a.mcastCount == b.mcastCount &&
           a.saturated == b.saturated && a.drained == b.drained &&
           a.deadlocked == b.deadlocked && a.cyclesRun == b.cyclesRun &&
           a.meanLinkUtil == b.meanLinkUtil &&
           a.maxLinkUtil == b.maxLinkUtil &&
           a.replications == b.replications &&
           a.reservationStallCycles == b.reservationStallCycles &&
           a.avgCqChunks == b.avgCqChunks &&
           a.endBacklogPackets == b.endBacklogPackets &&
           a.quiescent == b.quiescent &&
           a.faultsApplied == b.faultsApplied &&
           a.retransmits == b.retransmits &&
           a.poisonedDrops == b.poisonedDrops &&
           a.duplicateDeliveries == b.duplicateDeliveries &&
           a.partialCompleted == b.partialCompleted &&
           a.unreachableDests == b.unreachableDests &&
           sameSampler(a.unicastLatency, b.unicastLatency) &&
           sameSampler(a.mcastLastLatency, b.mcastLastLatency) &&
           sameSampler(a.mcastAvgLatency, b.mcastAvgLatency);
}

std::vector<ExperimentResult>
sweepLoads(const NetworkConfig &network, const TrafficParams &traffic,
           const ExperimentParams &params,
           const std::vector<double> &loads, int threads)
{
    SweepOptions options;
    options.threads = threads;
    SweepRunner runner(options);
    for (double load : loads) {
        TrafficParams t = traffic;
        t.load = load;
        char label[32];
        std::snprintf(label, sizeof(label), "load=%.4f", load);
        runner.add(label, network, t, params);
    }
    return runner.run();
}

std::string
resultHeader()
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-22s %8s %8s %9s %9s %9s %6s",
                  "config", "offered", "deliv", "uni-lat", "mc-avg",
                  "mc-last", "sat");
    return buf;
}

std::string
formatResultRow(const std::string &label, const ExperimentResult &r)
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %8.4f %8.4f %9.1f %9.1f %9.1f %6s",
                  label.c_str(), r.offeredLoad, r.deliveredLoad,
                  r.unicastAvg, r.mcastAvgAvg, r.mcastLastAvg,
                  r.saturated ? "yes" : "no");
    return buf;
}

} // namespace mdw
