/**
 * @file
 * Recovery machinery that interprets a FaultPlan against a live
 * Network (the tentpole of the robustness work). Three layers:
 *
 *  - topology: after every structural fault, up*-down* routing is
 *    recomputed over the surviving links (as a *tolerant* table that
 *    reports unroutable destinations instead of panicking) and
 *    swapped into every switch; the pruned up-link orientation is
 *    re-verified acyclic, so the rerouted network is deadlock-free by
 *    the same argument as the intact one;
 *  - switch: failed ports were already flagged by the time this layer
 *    swaps tables — the architectures drain in-flight flits into
 *    tombstone sinks and phantom-complete truncated packets, whose
 *    ids land in the shared poison registry owned here;
 *  - host: every NIC is given the poison registry (end-to-end CRC
 *    discard) and a live per-host reachable-destination set, so its
 *    retransmission path stops retrying hosts that no longer have a
 *    route and writes them off in the McastTracker instead.
 */

#ifndef MDW_CORE_RESILIENCE_HH
#define MDW_CORE_RESILIENCE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "message/dest_set.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "topology/routing.hh"

namespace mdw {

class Network;

/** Applies a fault plan to a Network and owns the recovery state. */
class ResilienceManager
{
  public:
    /** @param net The network to protect (must outlive this). */
    ResilienceManager(Network &net, FaultPlan plan);

    /**
     * Wire the poison registry and reachability sets into every
     * switch and NIC, enable resilient tracking, and schedule the
     * plan's events on the simulator. Call once, before running.
     */
    void install();

    /** Apply one fault now (scheduled events funnel through here). */
    void apply(const FaultEvent &event);

    /**
     * A link layer exhausted its retry budget: schedule a fail-stop
     * LinkDown for the link at (or just after) @p when, handing the
     * flapping link to the rerouting/tombstone machinery. Idempotent
     * per link — repeated escalations (e.g. from both directions) of
     * an already-dead link are no-ops.
     */
    void escalateLink(SwitchId sw, int port, Cycle when);

    /** Retry-exhaustion escalations issued so far. */
    std::uint64_t linkEscalations() const
    {
        return linkEscalations_.value();
    }

    /** Shared truncated/corrupted-packet registry (link layers and
     *  tombstone sinks write; NICs read). */
    std::unordered_set<PacketId> *poisonRegistry()
    {
        return &poisoned_;
    }

    const FaultPlan &plan() const { return plan_; }
    std::size_t faultsApplied() const { return applied_; }
    /** Packets truncated by faults so far (poison registry size). */
    std::size_t poisonedPackets() const { return poisoned_.size(); }

    /** Hosts currently reachable from @p host (live, updated in
     *  place; NICs hold a pointer to this set). */
    const DestSet &reachableFrom(NodeId host) const;

    bool switchDead(SwitchId sw) const;

  private:
    /** Returns false when the link was already fully dead (both
     *  ends Unused) and nothing needed doing. */
    bool applyLinkDown(const FaultEvent &event);
    bool applySwitchDown(const FaultEvent &event);
    void applyLinkDegrade(const FaultEvent &event);
    /** True iff both endpoints of the link are already Unused. */
    bool linkDead(SwitchId sw, PortId port) const;
    /** Fail both endpoints of one switch-switch link and prune it
     *  from the direction table. */
    void killLink(SwitchId sw, PortId port);
    /** Rebuild a tolerant routing over dirs_ and swap it in. */
    void rebuildRouting();
    /** Recompute every host's reachable-destination set in place. */
    void recomputeReachability();
    /** Panic if the pruned up-link orientation has a cycle. */
    void verifyUpDagAcyclic() const;

    Network &net_;
    FaultPlan plan_;
    /** Ids of packets truncated by a fault; shared with switches
     *  (writers) and NICs (readers). */
    std::unordered_set<PacketId> poisoned_;
    /** Mutable copy of the topology's port directions; dead ports
     *  become Unused. */
    std::vector<std::vector<PortDir>> dirs_;
    /**
     * Every routing generation ever installed, oldest first. Old
     * tables stay alive because packets decoded before a swap may
     * still hold branch decisions derived from them.
     */
    std::vector<std::unique_ptr<NetworkRouting>> routings_;
    /** Per host: reachable destinations (stable addresses). */
    std::vector<DestSet> reachable_;
    std::vector<bool> deadSwitch_;
    std::size_t applied_ = 0;
    /** Retry-exhaustion escalations (registered as a metric). */
    Counter linkEscalations_;
    /** Links already escalated (dedups both-direction reports). */
    std::unordered_set<std::uint64_t> escalated_;
};

} // namespace mdw

#endif // MDW_CORE_RESILIENCE_HH
