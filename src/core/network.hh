/**
 * @file
 * Network: the top-level object users instantiate. Builds a topology,
 * the chosen switch architecture, NICs, and all links; owns the
 * simulator; exposes the application-facing API (post messages, run,
 * inspect statistics).
 */

#ifndef MDW_CORE_NETWORK_HH
#define MDW_CORE_NETWORK_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "host/nic.hh"
#include "message/link_layer.hh"
#include "sim/fault.hh"
#include "sim/system.hh"
#include "sim/telemetry.hh"
#include "switch/central_buffer_switch.hh"
#include "switch/input_buffer_switch.hh"
#include "topology/fat_tree.hh"
#include "topology/irregular.hh"
#include "topology/partition.hh"
#include "topology/uni_min.hh"

namespace mdw {

class ResilienceManager;

/** Which topology family to instantiate. */
enum class TopologyKind { FatTree, Irregular, UniMin };

/** Which switch architecture to instantiate. */
enum class SwitchArch { CentralBuffer, InputBuffer };

const char *toString(TopologyKind kind);
const char *toString(SwitchArch arch);

/** Complete description of a system to simulate. */
struct NetworkConfig
{
    TopologyKind topo = TopologyKind::FatTree;
    /** Fat-tree arity and stages (hosts = k^n). */
    int fatTreeK = 4;
    int fatTreeN = 3;
    IrregularParams irregular;

    SwitchArch arch = SwitchArch::CentralBuffer;
    CbParams cb;
    IbParams ib;
    SwitchParams sw;
    NicParams nic;

    /** Largest message payload the system must carry (flits). */
    int maxPayloadFlits = 256;
    /** Link latency in cycles. */
    Cycle linkDelay = 1;
    std::uint64_t seed = 1;

    /**
     * Idle-skipping scheduler (bit-identical to the cycle-accurate
     * path; see Simulator). On by default; set sim.fastPath=0 (or
     * MDW_FAST_PATH=0 in the environment, which overrides the config)
     * to fall back to the always-stepped oracle.
     */
    bool fastPath = true;

    /**
     * Parallel shards for intra-run simulation (sim.shards=; 1 = off;
     * MDW_SHARDS in the environment overrides). The fabric's switches
     * are partitioned over the shards and stepped concurrently, with
     * cross-shard channels buffered through deterministic boundary
     * mailboxes; results are bit-identical to the flat schedulers for
     * any shard/thread count. Requires the fast path; silently runs
     * flat when a serial-only subsystem (faults, link ARQ, hardware
     * barriers) is configured — see Network::serialReason().
     */
    std::size_t shards = 1;
    /**
     * Worker threads for the parallel phase (sim.shardThreads=;
     * 0 = one per shard up to the hardware's concurrency;
     * MDW_SHARD_THREADS overrides). Thread count never affects
     * results, only wall-clock.
     */
    unsigned shardThreads = 0;

    /** Explicit fault schedule (takes precedence over faultSpec). */
    FaultPlan faultPlan;
    /** Randomized fault schedule, drawn over this network's links and
     *  switches when faultPlan is empty. */
    FaultSpec faultSpec;
    /**
     * Link-level reliability knobs (link.retryLimit= and
     * link.replayBuffer=). The error process itself (ber / residual)
     * comes from the fault plan; these fields of the struct are
     * ignored here. Link layers are only instantiated when the plan
     * has transients, so the fault-free data path is untouched.
     */
    LinkLayerParams link;

    /** Observability: metrics registry is always on; worm-lifecycle
     *  tracing is opt-in via telemetry.trace. */
    TelemetryParams telemetry;
};

/** Aggregate of all switches' counters. */
struct NetworkTotals
{
    std::uint64_t flitsIn = 0;
    std::uint64_t flitsOut = 0;
    std::uint64_t packetsRouted = 0;
    std::uint64_t replications = 0;
    std::uint64_t reservationStallCycles = 0;
};

/**
 * Structured record of a watchdog trip: instead of aborting the
 * process, the network captures what was stuck and lets the caller
 * (experiment loop, test) inspect and report it.
 */
struct WatchdogDiagnosis
{
    Cycle cycle = 0;
    std::size_t messagesInFlight = 0;
    std::size_t nicBacklogPackets = 0;
    /** Full dumpState() output at the moment of the trip. */
    std::string stateDump;
    /** Chrome-trace JSON of the worm tracer's recent history at the
     *  moment of the trip (empty unless telemetry.trace was on). */
    std::string traceJson;
};

/** A fully wired simulated system. */
class Network
{
  public:
    explicit Network(const NetworkConfig &config);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    Simulator &sim() { return sim_; }
    McastTracker &tracker() { return tracker_; }
    PacketFactory &packetFactory() { return factory_; }
    const Topology &topology() const { return *topo_; }
    const NetworkConfig &config() const { return cfg_; }

    std::size_t numHosts() const { return topo_->numHosts(); }
    std::size_t numSwitches() const { return topo_->numSwitches(); }

    Nic &nic(NodeId id);
    SwitchBase &switchAt(SwitchId id);

    /**
     * Attach one workload to every NIC (not owned) and wire its
     * closed-loop plumbing: the tracker's completion hook feeds
     * Workload::onCompleted, and the workload's wake hook rouses the
     * sleeping NIC of a node that a completion released work for.
     *
     * Lifetime: message retirements call back into the workload, and
     * the workload's wake() calls back into this network, so the pair
     * must stay alive together for as long as the simulation can run.
     * Call detachWorkload() to sever both directions before
     * destroying either side ahead of the other. Attaching a second
     * workload implicitly detaches the first.
     */
    void attachWorkload(Workload *workload);

    /**
     * Disconnect the attached workload (no-op when none is): clears
     * the NIC pointers, the tracker completion hook, and the
     * workload's back-reference to this network, after which either
     * side may be destroyed independently.
     */
    void detachWorkload();

    /** Pre-redesign name of attachWorkload(). */
    void attachTraffic(TrafficSource *source)
    {
        attachWorkload(source);
    }

    /** Largest packet (header + payload) the system can produce. */
    int maxPacketFlits() const { return maxPacketFlits_; }

    /** Header size of a hardware multicast worm in this system. */
    int mcastHeaderFlits() const { return mcastHeaderFlits_; }

    /** True when nothing is queued or in flight anywhere. */
    bool idle() const;

    /** Sum of NIC injection backlogs, in packets. */
    std::size_t totalTxBacklog() const;

    /** Arm the simulator's deadlock watchdog with sane hooks. A trip
     *  records a WatchdogDiagnosis (with a state dump) and stops the
     *  run instead of aborting the process. */
    void armWatchdog(Cycle quietLimit);

    /** Diagnosis recorded by the last watchdog trip, if any. */
    const WatchdogDiagnosis *watchdogDiagnosis() const
    {
        return diagnosis_.get();
    }

    /** The fault/recovery layer, present iff faults are configured. */
    ResilienceManager *resilience() { return resilience_.get(); }

    /**
     * The ARQ layer sending *from* (sw, port), or null when the
     * transient-fault subsystem is off or the port is not a
     * switch-switch link endpoint.
     */
    LinkLayer *linkLayer(SwitchId sw, PortId port);

    /** All instantiated link layers (diagnosis/tests). */
    const std::vector<std::unique_ptr<LinkLayer>> &linkLayers() const
    {
        return linkLayers_;
    }

    /**
     * A fail-stop fault took this switch-switch link down: stop both
     * directions' ARQ (later sends drop-and-poison). No-op when no
     * link layers exist. Called by the resilience layer.
     */
    void markLinkDead(SwitchId sw, PortId port);

    /** Observability context: every component's stats live in its
     *  registry; the tracer (if enabled) records worm lifecycles. */
    Telemetry &telemetry() { return telemetry_; }
    const Telemetry &telemetry() const { return telemetry_; }

    /** Snapshot every registered metric (cheap; read-only). */
    MetricsSnapshot metricsSnapshot() const
    {
        return telemetry_.registry().snapshot();
    }

    /** Snapshot the worm tracer, or an empty trace when disabled. */
    WormTrace traceSnapshot() const
    {
        return telemetry_.tracer() ? telemetry_.tracer()->snapshot()
                                   : WormTrace{};
    }

    /**
     * End-of-run invariant: no flit or credit in flight on any
     * channel, every switch's buffers empty with all credits home,
     * and every NIC drained. Appends reasons to @p why (if non-null)
     * on failure.
     */
    bool checkQuiescent(std::string *why) const;

    /** Sum all switches' counters. */
    NetworkTotals totals() const;

    /** Sum the counters of the switches assigned to @p shard. */
    NetworkTotals totalsForShard(std::uint32_t shard) const;

    /**
     * Parallel shards actually in use (0 = running flat, either
     * because sim.shards <= 1 or because a serial-only subsystem
     * vetoed sharding).
     */
    std::size_t effectiveShards() const { return effectiveShards_; }

    /** Why sharding is off ("" when sharded or never requested). */
    const std::string &serialReason() const { return serialReason_; }

    /** The switch partition (valid when effectiveShards() > 0). */
    const ShardPlan &shardPlan() const { return shardPlan_; }

    /** Per-shard scheduler statistics; entry [effectiveShards()] is
     *  the serial bucket. Empty when running flat. */
    std::vector<ShardStat> shardStats() const
    {
        return sim_.shardStats();
    }

    /**
     * A subsystem that mutates shared state from inside switch steps
     * (e.g. the hardware-barrier units calling the packet factory)
     * declares itself here; if sharding is active it is dissolved —
     * back to the bit-identical flat fast path.
     */
    void requireSerial(const std::string &why);

    /** Mean central-queue chunk occupancy over all CB switches. */
    double avgCqChunks() const;

    /** Dump every switch's internal state (deadlock diagnosis). */
    void dumpState(FILE *out) const;

    /**
     * Snapshot the cumulative flit count of every connected switch
     * output port, in a stable order (for utilization deltas).
     */
    std::vector<std::uint64_t> portTxSnapshot() const;

  private:
    /** One wired switch-switch link (both directions). */
    struct LinkRecord
    {
        SwitchId a = kInvalidSwitch; ///< lower endpoint
        PortId pa = 0;
        SwitchId b = kInvalidSwitch;
        PortId pb = 0;
        Channel<Flit> *ab = nullptr; ///< a -> b data channel
        Channel<Flit> *ba = nullptr;
        LinkLayer *fwd = nullptr; ///< guards ab (sender a)
        LinkLayer *rev = nullptr; ///< guards ba (sender b)
    };

    void build();
    void wire();
    void setupSharding();
    void installFaults();
    /** Instantiate and attach one LinkLayer per link direction. */
    void installLinkLayers(double ber, double residual,
                           std::uint64_t seed,
                           const std::vector<FlapWindow> &flaps);
    void registerTelemetry();
    void onWatchdogTrip();
    /** Build the switch-switch candidate-link list (lower endpoint
     *  first), in deterministic wiring order. */
    std::vector<std::pair<SwitchId, int>> candidateLinks() const;

    NetworkConfig cfg_;
    std::unique_ptr<Topology> topo_;
    Simulator sim_;
    PacketFactory factory_;
    McastTracker tracker_;
    int maxPacketFlits_ = 0;
    int mcastHeaderFlits_ = 0;

    std::vector<std::unique_ptr<SwitchBase>> switches_;
    std::vector<std::unique_ptr<Nic>> nics_;
    std::vector<std::unique_ptr<Channel<Flit>>> flitChannels_;
    std::vector<std::unique_ptr<CreditChannel>> creditChannels_;
    /** Sending/receiving switch of each channel, by channel index
     *  (-1 = a NIC endpoint). Drives boundary-channel selection. */
    std::vector<std::pair<int, int>> flitEnds_;
    std::vector<std::pair<int, int>> creditEnds_;
    std::vector<LinkRecord> linkRecords_;

    ShardPlan shardPlan_;
    std::size_t effectiveShards_ = 0;
    std::string serialReason_;
    std::vector<Channel<Flit> *> boundaryFlit_;
    std::vector<CreditChannel *> boundaryCredit_;
    std::vector<std::unique_ptr<LinkLayer>> linkLayers_;

    Telemetry telemetry_;

    std::unique_ptr<ResilienceManager> resilience_;
    std::unique_ptr<WatchdogDiagnosis> diagnosis_;

    /** Attached by attachWorkload(); not owned. */
    Workload *workload_ = nullptr;
};

} // namespace mdw

#endif // MDW_CORE_NETWORK_HH
