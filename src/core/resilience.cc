#include "core/resilience.hh"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/network.hh"
#include "sim/logging.hh"

namespace mdw {

ResilienceManager::ResilienceManager(Network &net, FaultPlan plan)
    : net_(net), plan_(std::move(plan))
{
}

void
ResilienceManager::install()
{
    MDW_ASSERT(dirs_.empty(), "resilience installed twice");
    const Topology &topo = net_.topology();
    dirs_ = topo.dirs();
    deadSwitch_.assign(topo.numSwitches(), false);
    reachable_.assign(topo.numHosts(), DestSet(topo.numHosts()));

    net_.tracker().enableResilience();
    for (std::size_t s = 0; s < topo.numSwitches(); ++s)
        net_.switchAt(static_cast<SwitchId>(s))
            .setPoisonRegistry(&poisoned_);
    for (std::size_t h = 0; h < topo.numHosts(); ++h) {
        Nic &nic = net_.nic(static_cast<NodeId>(h));
        nic.setPoisonRegistry(&poisoned_);
        nic.setReachable(&reachable_[h]);
    }
    recomputeReachability();

    for (const FaultEvent &event : plan_.events) {
        net_.sim().events().schedule(event.when, [this, event] {
            apply(event);
        });
    }
}

void
ResilienceManager::apply(const FaultEvent &event)
{
    inform("fault: %s", event.describe().c_str());
    bool didApply = true;
    switch (event.kind) {
      case FaultKind::LinkDown:
        didApply = applyLinkDown(event);
        break;
      case FaultKind::SwitchDown:
        didApply = applySwitchDown(event);
        break;
      case FaultKind::LinkDegrade:
        applyLinkDegrade(event);
        break;
    }
    if (didApply)
        ++applied_;
}

void
ResilienceManager::escalateLink(SwitchId sw, int port, Cycle when)
{
    // Canonical key: the lower-id endpoint, as fault plans name links.
    SwitchId a = sw;
    PortId pa = static_cast<PortId>(port);
    const PortPeer &peer = net_.topology().graph().peer(a, pa);
    if (peer.isSwitch() &&
        std::make_pair(peer.sw, peer.port) < std::make_pair(a, pa)) {
        a = peer.sw;
        pa = peer.port;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
         << 32) |
        static_cast<std::uint32_t>(pa);
    if (!escalated_.insert(key).second)
        return; // the other direction already reported this link
    linkEscalations_.inc();

    FaultEvent ev;
    ev.kind = FaultKind::LinkDown;
    ev.sw = a;
    ev.port = pa;
    // Escalations originate mid-cycle inside a component step; apply
    // at the next cycle boundary at the earliest so the fail-stop
    // lands between steps like every planned fault.
    ev.when = std::max(when, net_.sim().now() + 1);
    warn("link sw%d.p%d escalated to fail-stop at cycle %llu", a, pa,
         static_cast<unsigned long long>(ev.when));
    net_.sim().events().schedule(ev.when,
                                 [this, ev] { apply(ev); });
}

void
ResilienceManager::killLink(SwitchId sw, PortId port)
{
    const PortPeer &peer = net_.topology().graph().peer(sw, port);
    MDW_ASSERT(peer.isSwitch(),
               "fault names switch %d port %d, which is not a "
               "switch-switch link",
               sw, port);
    SwitchBase &a = net_.switchAt(sw);
    SwitchBase &b = net_.switchAt(peer.sw);
    a.failOutPort(port);
    a.failInPort(port);
    b.failOutPort(peer.port);
    b.failInPort(peer.port);
    dirs_[static_cast<std::size_t>(sw)]
         [static_cast<std::size_t>(port)] = PortDir::Unused;
    dirs_[static_cast<std::size_t>(peer.sw)]
         [static_cast<std::size_t>(peer.port)] = PortDir::Unused;
    // Any link layers guarding this link stop retrying and drop.
    net_.markLinkDead(sw, port);
}

bool
ResilienceManager::linkDead(SwitchId sw, PortId port) const
{
    if (dirs_[static_cast<std::size_t>(sw)]
             [static_cast<std::size_t>(port)] != PortDir::Unused)
        return false;
    const PortPeer &peer = net_.topology().graph().peer(sw, port);
    return !peer.isSwitch() ||
           dirs_[static_cast<std::size_t>(peer.sw)]
                [static_cast<std::size_t>(peer.port)] ==
               PortDir::Unused;
}

bool
ResilienceManager::applyLinkDown(const FaultEvent &event)
{
    const PortId port = static_cast<PortId>(event.port);
    if (linkDead(event.sw, port)) {
        // E.g. a flap escalation racing a planned fault, or a fault
        // on a link a dead switch already took down: nothing to do.
        inform("fault: %s ignored (link already failed)",
               event.describe().c_str());
        return false;
    }
    killLink(event.sw, port);
    rebuildRouting();
    recomputeReachability();
    return true;
}

bool
ResilienceManager::applySwitchDown(const FaultEvent &event)
{
    const PortGraph &graph = net_.topology().graph();
    const SwitchId sw = event.sw;
    if (deadSwitch_.at(static_cast<std::size_t>(sw))) {
        inform("fault: %s ignored (switch already failed)",
               event.describe().c_str());
        return false;
    }
    deadSwitch_.at(static_cast<std::size_t>(sw)) = true;
    SwitchBase &dead = net_.switchAt(sw);
    for (PortId p = 0; p < graph.radix(sw); ++p) {
        dirs_[static_cast<std::size_t>(sw)]
             [static_cast<std::size_t>(p)] = PortDir::Unused;
        const PortPeer &peer = graph.peer(sw, p);
        if (!peer.connected())
            continue;
        dead.failInPort(p);
        dead.failOutPort(p);
        if (peer.isSwitch()) {
            SwitchBase &other = net_.switchAt(peer.sw);
            other.failInPort(peer.port);
            other.failOutPort(peer.port);
            dirs_[static_cast<std::size_t>(peer.sw)]
                 [static_cast<std::size_t>(peer.port)] = PortDir::Unused;
            net_.markLinkDead(sw, p);
        } else if (peer.isHost()) {
            Nic &nic = net_.nic(peer.host);
            if (peer.hostRole != PortPeer::HostRole::Eject)
                nic.failTx();
            if (peer.hostRole != PortPeer::HostRole::Inject)
                nic.failRx();
        }
    }
    rebuildRouting();
    recomputeReachability();
    return true;
}

void
ResilienceManager::applyLinkDegrade(const FaultEvent &event)
{
    MDW_ASSERT(event.factor >= 1, "degrade factor %d < 1",
               event.factor);
    const SwitchId sw = event.sw;
    const PortId port = static_cast<PortId>(event.port);
    const PortPeer &peer = net_.topology().graph().peer(sw, port);
    MDW_ASSERT(peer.isSwitch(),
               "degrade names switch %d port %d, which is not a "
               "switch-switch link",
               sw, port);
    // The link still works, so no rerouting: both directions just
    // pace themselves.
    net_.switchAt(sw).degradeOutPort(port, event.factor);
    net_.switchAt(peer.sw).degradeOutPort(peer.port, event.factor);
}

void
ResilienceManager::rebuildRouting()
{
    routings_.push_back(std::make_unique<NetworkRouting>(
        net_.topology().graph(), dirs_, /*tolerant=*/true));
    const NetworkRouting &fresh = *routings_.back();
    for (std::size_t s = 0; s < net_.numSwitches(); ++s) {
        const SwitchId id = static_cast<SwitchId>(s);
        net_.switchAt(id).setRouting(&fresh.at(id));
    }
    verifyUpDagAcyclic();
}

void
ResilienceManager::verifyUpDagAcyclic() const
{
    // The intact orientation is acyclic and faults only remove
    // edges, so this can never fire — it is the explicit statement
    // of the deadlock-freedom argument for the rerouted network.
    const PortGraph &graph = net_.topology().graph();
    const std::size_t n = graph.numSwitches();
    enum : char { White, Grey, Black };
    std::vector<char> color(n, White);
    std::vector<std::pair<SwitchId, PortId>> stack;
    for (std::size_t root = 0; root < n; ++root) {
        if (color[root] != White)
            continue;
        stack.emplace_back(static_cast<SwitchId>(root), 0);
        color[root] = Grey;
        while (!stack.empty()) {
            auto &[s, p] = stack.back();
            if (p >= graph.radix(s)) {
                color[static_cast<std::size_t>(s)] = Black;
                stack.pop_back();
                continue;
            }
            const PortId port = p++;
            if (dirs_[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(port)] != PortDir::Up)
                continue;
            const PortPeer &peer = graph.peer(s, port);
            if (!peer.isSwitch())
                continue;
            const auto t = static_cast<std::size_t>(peer.sw);
            if (color[t] == Grey) {
                panic("rerouted up-link orientation has a cycle "
                      "through switches %d and %d",
                      s, peer.sw);
            }
            if (color[t] == White) {
                color[t] = Grey;
                stack.emplace_back(peer.sw, 0);
            }
        }
    }
}

void
ResilienceManager::recomputeReachability()
{
    const Topology &topo = net_.topology();
    const PortGraph &graph = topo.graph();
    const std::size_t switches = topo.numSwitches();
    const std::size_t hosts = topo.numHosts();
    const NetworkRouting &routing =
        routings_.empty() ? topo.routing() : *routings_.back();

    // Per switch: hosts reachable by going up zero or more surviving
    // links from here and then only down.
    std::vector<DestSet> swReach(switches, DestSet(hosts));
    std::vector<char> visited(switches);
    std::deque<SwitchId> frontier;
    for (std::size_t s0 = 0; s0 < switches; ++s0) {
        if (deadSwitch_[s0])
            continue;
        std::fill(visited.begin(), visited.end(), 0);
        frontier.clear();
        frontier.push_back(static_cast<SwitchId>(s0));
        visited[s0] = 1;
        DestSet reach(hosts);
        while (!frontier.empty()) {
            const SwitchId s = frontier.front();
            frontier.pop_front();
            reach |= routing.at(s).allDownReach();
            for (PortId p = 0; p < graph.radix(s); ++p) {
                if (dirs_[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(p)] != PortDir::Up)
                    continue;
                const PortPeer &peer = graph.peer(s, p);
                if (!peer.isSwitch())
                    continue;
                const auto t = static_cast<std::size_t>(peer.sw);
                if (!visited[t]) {
                    visited[t] = 1;
                    frontier.push_back(peer.sw);
                }
            }
        }
        swReach[s0] = std::move(reach);
    }

    for (std::size_t h = 0; h < hosts; ++h) {
        const HostAttach &attach =
            graph.injectAttach(static_cast<NodeId>(h));
        const auto home = static_cast<std::size_t>(attach.sw);
        if (deadSwitch_[home])
            reachable_[h].reset();
        else
            reachable_[h] = swReach[home];
    }
}

const DestSet &
ResilienceManager::reachableFrom(NodeId host) const
{
    return reachable_.at(static_cast<std::size_t>(host));
}

bool
ResilienceManager::switchDead(SwitchId sw) const
{
    return deadSwitch_.at(static_cast<std::size_t>(sw));
}

} // namespace mdw
