#include "core/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mdw {

namespace {

using WallClock = std::chrono::steady_clock;

double
msSince(WallClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(WallClock::now() -
                                                     start)
        .count();
}

int
resolveThreads(int requested, std::size_t jobs)
{
    if (requested < 0)
        fatal("sweep thread count must be >= 0 (got %d)", requested);
    std::size_t threads = static_cast<std::size_t>(requested);
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (jobs > 0 && threads > jobs)
        threads = jobs;
    if (threads == 0)
        threads = 1;
    return static_cast<int>(threads);
}

} // namespace

std::size_t
SweepReport::saturatedCount() const
{
    std::size_t n = 0;
    for (const SweepRunRecord &record : runs)
        n += record.saturated;
    return n;
}

std::string
SweepReport::summary() const
{
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "# sweep: %zu runs, %d thread(s), %.0f ms wall",
                  runs.size(), threads, wallMs);
    out += buf;
    if (seedsDerived) {
        std::snprintf(buf, sizeof(buf), ", base seed %llu",
                      static_cast<unsigned long long>(baseSeed));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), ", %zu saturated\n",
                  saturatedCount());
    out += buf;
    std::snprintf(buf, sizeof(buf), "# %4s %-28s %20s %20s %9s %s\n",
                  "run", "label", "net-seed", "traffic-seed",
                  "wall-ms", "flags");
    out += buf;
    for (const SweepRunRecord &record : runs) {
        std::string flags;
        if (record.saturated)
            flags += " sat";
        if (!record.drained)
            flags += " undrained";
        if (record.deadlocked)
            flags += " deadlock";
        if (flags.empty())
            flags = " ok";
        std::snprintf(buf, sizeof(buf),
                      "# %4zu %-28s %20llu %20llu %9.1f%s\n",
                      record.index, record.label.c_str(),
                      static_cast<unsigned long long>(record.networkSeed),
                      static_cast<unsigned long long>(record.trafficSeed),
                      record.wallMs, flags.c_str());
        out += buf;
    }
    return out;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options)
{
}

std::size_t
SweepRunner::add(SweepRun run)
{
    MDW_ASSERT(!executed_, "adding a run to an already-executed sweep");
    const std::size_t index = runs_.size();
    if (options_.deriveSeeds) {
        run.network.seed =
            Rng::streamSeed(options_.baseSeed, 2 * index);
        run.traffic.seed =
            Rng::streamSeed(options_.baseSeed, 2 * index + 1);
    }
    runs_.push_back(std::move(run));
    return index;
}

std::size_t
SweepRunner::add(std::string label, const NetworkConfig &network,
                 const TrafficParams &traffic,
                 const ExperimentParams &params)
{
    return add(SweepRun{std::move(label), network, traffic, params});
}

void
SweepRunner::executeOne(std::size_t index)
{
    const SweepRun &run = runs_[index];
    const WallClock::time_point start = WallClock::now();
    results_[index] =
        Experiment(run.network, run.traffic, run.params).run();

    SweepRunRecord &record = report_.runs[index];
    record.index = index;
    record.label = run.label;
    record.networkSeed = run.network.seed;
    record.trafficSeed = run.traffic.seed;
    record.wallMs = msSince(start);
    record.saturated = results_[index].saturated;
    record.drained = results_[index].drained;
    record.deadlocked = results_[index].deadlocked;
}

const std::vector<ExperimentResult> &
SweepRunner::run()
{
    MDW_ASSERT(!executed_, "a SweepRunner may only run once");
    executed_ = true;

    const WallClock::time_point start = WallClock::now();
    const int threads = resolveThreads(options_.threads, runs_.size());
    results_.resize(runs_.size());
    report_.runs.resize(runs_.size());
    report_.threads = threads;
    report_.baseSeed = options_.baseSeed;
    report_.seedsDerived = options_.deriveSeeds;

    if (threads <= 1) {
        // Serial fallback: run inline, no threads spawned.
        for (std::size_t i = 0; i < runs_.size(); ++i)
            executeOne(i);
    } else {
        // Inter-run parallelism wins over intra-run parallelism: a
        // run's shard workers would only oversubscribe the cores the
        // pool is already using. Results are unaffected (sharding is
        // bit-identical at any thread count, including 1).
        for (SweepRun &run : runs_)
            run.network.shardThreads = 1;
        // Each worker claims the next unstarted run and writes only
        // its own result/record slot, so thread scheduling can affect
        // neither the numbers nor their order.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([this, &next] {
                for (std::size_t i = next.fetch_add(1);
                     i < runs_.size(); i = next.fetch_add(1)) {
                    executeOne(i);
                }
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }

    // Aggregates are merged serially, in submission order, after the
    // pool has joined — the merge order (and so every aggregate bit)
    // is independent of the thread count.
    for (const ExperimentResult &result : results_)
        report_.metrics.merge(result.metrics);
    report_.wallMs = msSince(start);
    return results_;
}

} // namespace mdw
