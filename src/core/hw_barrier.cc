#include "core/hw_barrier.hh"

#include <map>
#include <set>

namespace mdw {

HwBarrierManager::HwBarrierManager(Network &net)
    : net_(net)
{
    if (net_.config().arch != SwitchArch::CentralBuffer) {
        fatal("hardware barriers require the central-buffer switch "
              "architecture");
    }
    // The combine units make switches call the (shared, unsynchronized)
    // packet factory from inside their step — not shard-safe.
    net_.requireSerial("hardware barriers");
    for (std::size_t s = 0; s < net_.numSwitches(); ++s) {
        auto *cb = dynamic_cast<CentralBufferSwitch *>(
            &net_.switchAt(static_cast<SwitchId>(s)));
        MDW_ASSERT(cb != nullptr, "non-CB switch in a CB network");
        cb->setBarrierHooks(
            [this](PacketDesc desc) {
                return net_.packetFactory().make(std::move(desc));
            },
            [this](int group) { return makeReleaseDesc(group); });
    }
    for (NodeId n = 0; n < static_cast<NodeId>(net_.numHosts()); ++n) {
        net_.nic(n).setDeliveryCallback(
            [this, n](const PacketDesc &pkt, int payload, Cycle now) {
                (void)payload;
                onDelivery(n, pkt, now);
            });
    }
}

int
HwBarrierManager::createGroup(const DestSet &members)
{
    MDW_ASSERT(members.count() >= 2, "barrier group needs >= 2 members");
    const Topology &topo = net_.topology();
    const PortGraph &graph = topo.graph();

    // Walk every member's lowest-up-port chain to the unique root,
    // recording the arrival port at each switch along the way.
    std::map<SwitchId, std::set<PortId>> expected;
    SwitchId root = kInvalidSwitch;
    members.forEach([&](NodeId member) {
        const HostAttach &at = graph.attach(member);
        SwitchId sw = at.sw;
        PortId arrival = at.port;
        while (true) {
            expected[sw].insert(arrival);
            const auto &ups = topo.routing().at(sw).upPorts();
            if (ups.empty()) {
                MDW_ASSERT(root == kInvalidSwitch || root == sw,
                           "combining chains reached two roots");
                root = sw;
                break;
            }
            const PortId up = ups.front();
            const PortPeer &peer = graph.peer(sw, up);
            MDW_ASSERT(peer.isSwitch(), "up port without a switch");
            arrival = peer.port;
            sw = peer.sw;
        }
    });
    MDW_ASSERT(root != kInvalidSwitch, "no combining root found");

    const int group = nextGroup_++;
    for (const auto &[sw, ports] : expected) {
        BarrierSwitchEntry entry;
        entry.expectedPorts.assign(ports.begin(), ports.end());
        entry.isRoot = sw == root;
        if (!entry.isRoot)
            entry.upPort = topo.routing().at(sw).upPorts().front();
        auto *cb =
            dynamic_cast<CentralBufferSwitch *>(&net_.switchAt(sw));
        cb->configureBarrier(group, std::move(entry));
    }

    Group state;
    state.members = members;
    state.waiting = DestSet(net_.numHosts());
    groups_.emplace(group, std::move(state));
    return group;
}

PacketDesc
HwBarrierManager::makeReleaseDesc(int group)
{
    auto it = groups_.find(group);
    MDW_ASSERT(it != groups_.end(), "release for unknown group %d",
               group);
    Group &state = it->second;
    MDW_ASSERT(state.active, "release for an inactive barrier round");

    PacketDesc desc;
    desc.msg = state.releaseMsg;
    desc.src = kInvalidNode; // originated by the root switch
    desc.dests = state.members;
    desc.kind = PacketKind::HwMulticast;
    desc.headerFlits = bitStringHeaderFlits(net_.numHosts(),
                                            net_.config().nic.enc);
    desc.payloadFlits = kReleasePayload;
    desc.created = net_.sim().now();
    return desc;
}

void
HwBarrierManager::startBarrier(int group, Done done)
{
    auto it = groups_.find(group);
    MDW_ASSERT(it != groups_.end(), "unknown barrier group %d", group);
    Group &state = it->second;
    MDW_ASSERT(!state.active,
               "barrier group %d already has a round in flight", group);
    state.active = true;
    state.done = std::move(done);
    state.waiting = state.members;
    state.releaseMsg = net_.packetFactory().newMsgId();
    net_.tracker().expectMessage(state.releaseMsg, kInvalidNode,
                                 state.members.count(),
                                 net_.sim().now(), true);
    msgToGroup_.emplace(state.releaseMsg, group);
    ++pending_;

    const Cycle now = net_.sim().now();
    state.members.forEach([this, group, now](NodeId member) {
        net_.nic(member).postBarrierArrive(group, now);
    });
}

void
HwBarrierManager::onDelivery(NodeId at, const PacketDesc &pkt,
                             Cycle now)
{
    const auto msg_it = msgToGroup_.find(pkt.msg);
    if (msg_it == msgToGroup_.end())
        return;
    Group &state = groups_.at(msg_it->second);
    MDW_ASSERT(state.waiting.test(at),
               "duplicate release delivery at node %d", at);
    state.waiting.clear(at);
    if (!state.waiting.empty())
        return;
    msgToGroup_.erase(msg_it);
    state.active = false;
    --pending_;
    const Done done = std::move(state.done);
    state.done = nullptr;
    if (done)
        done(now);
}

} // namespace mdw
