/**
 * @file
 * Hardware barrier synchronization — the paper's stated future work,
 * developed in the authors' companion IPPS'97 paper [34].
 *
 * The manager maps a barrier group onto a combining tree over the
 * switches (following each switch's lowest-numbered up port toward
 * the unique root), installs the per-switch combining roles, and
 * drives rounds: every member NIC emits a 2-flit BarrierArrive
 * token; switches combine; the root switch originates the release —
 * an ordinary multidestination worm to all members — whose last
 * delivery completes the barrier.
 *
 * Compared to the software arrive+release barrier (CollectiveEngine),
 * the gather side costs one token per tree hop instead of one unicast
 * message per member converging on the root's ejection link, and the
 * release is emitted in the middle of the network rather than from a
 * host.
 *
 * Requires the central-buffer architecture (the SP-Switch-style
 * design the companion paper targets). Hooks every NIC's delivery
 * callback, so it cannot share a Network with a CollectiveEngine.
 */

#ifndef MDW_CORE_HW_BARRIER_HH
#define MDW_CORE_HW_BARRIER_HH

#include <functional>
#include <unordered_map>

#include "core/network.hh"

namespace mdw {

/** Plans combining trees and runs hardware barrier rounds. */
class HwBarrierManager
{
  public:
    using Done = std::function<void(Cycle)>;

    /** @param net Must use SwitchArch::CentralBuffer. */
    explicit HwBarrierManager(Network &net);

    /**
     * Create a barrier group over @p members (at least two) and
     * install its combining tree in the switches. Returns the group
     * id used by startBarrier().
     */
    int createGroup(const DestSet &members);

    /**
     * Run one barrier round: every member signals arrival now; the
     * callback fires when the last member has received the release.
     * A group supports one outstanding round at a time.
     */
    void startBarrier(int group, Done done);

    /** Rounds in flight. */
    std::size_t pendingBarriers() const { return pending_; }

    /** Payload flits of the release worm. */
    static constexpr int kReleasePayload = 2;

  private:
    struct Group
    {
        DestSet members{0};
        bool active = false;
        MsgId releaseMsg = 0;
        DestSet waiting{0};
        Done done;
    };

    PacketDesc makeReleaseDesc(int group);
    void onDelivery(NodeId at, const PacketDesc &pkt, Cycle now);

    Network &net_;
    std::unordered_map<int, Group> groups_;
    std::unordered_map<MsgId, int> msgToGroup_;
    int nextGroup_ = 0;
    std::size_t pending_ = 0;
};

} // namespace mdw

#endif // MDW_CORE_HW_BARRIER_HH
