#include "core/collectives.hh"

namespace mdw {

CollectiveEngine::CollectiveEngine(Network &net)
    : net_(net)
{
    for (NodeId n = 0; n < static_cast<NodeId>(net_.numHosts()); ++n) {
        net_.nic(n).setDeliveryCallback(
            [this, n](const PacketDesc &pkt, int payload, Cycle now) {
                (void)payload;
                onDelivery(n, pkt, now);
            });
    }
}

CollectiveEngine::OpId
CollectiveEngine::newOp(Op op)
{
    const OpId id = nextId_++;
    ops_.emplace(id, std::move(op));
    return id;
}

void
CollectiveEngine::broadcast(NodeId root, const DestSet &members,
                            int payload, Done done)
{
    MDW_ASSERT(!members.empty(), "broadcast to nobody");
    MDW_ASSERT(!members.test(root), "broadcast members include root");
    Op op;
    op.kind = Kind::Broadcast;
    op.root = root;
    op.members = members;
    op.pending = members;
    op.payload = payload;
    op.done = std::move(done);
    const OpId id = newOp(std::move(op));

    const MsgId msg = net_.nic(root).postMulticast(
        members, payload, net_.sim().now());
    msgToOp_.emplace(msg, id);
}

void
CollectiveEngine::barrier(NodeId root, const DestSet &members,
                          Done done)
{
    MDW_ASSERT(!members.empty(), "barrier with no members");
    MDW_ASSERT(!members.test(root), "barrier members include root");
    Op op;
    op.kind = Kind::BarrierGather;
    op.root = root;
    op.members = members;
    op.pending = members;
    op.payload = kControlPayload;
    op.done = std::move(done);
    const OpId id = newOp(std::move(op));

    // Every member signals arrival to the root.
    members.forEach([this, root, id](NodeId member) {
        const MsgId msg = net_.nic(member).postUnicast(
            root, kControlPayload, net_.sim().now());
        msgToOp_.emplace(msg, id);
    });
}

void
CollectiveEngine::reduce(NodeId root, const DestSet &members,
                         int payload, Done done)
{
    MDW_ASSERT(!members.empty(), "reduction with no members");
    MDW_ASSERT(!members.test(root), "reduction members include root");
    Op op;
    op.kind = Kind::Reduce;
    op.root = root;
    op.members = members;
    op.pending = members;
    op.payload = payload;
    op.done = std::move(done);
    const OpId id = newOp(std::move(op));

    members.forEach([this, root, payload, id](NodeId member) {
        const MsgId msg = net_.nic(member).postUnicast(
            root, payload, net_.sim().now());
        msgToOp_.emplace(msg, id);
    });
}

void
CollectiveEngine::allreduce(NodeId root, const DestSet &members,
                            int payload, Done done)
{
    // Gather contributions, then broadcast the combined result.
    DestSet members_copy = members;
    Done done_copy = std::move(done);
    reduce(root, members, payload,
           [this, root, members_copy, payload,
            done_copy = std::move(done_copy)](Cycle) mutable {
               broadcast(root, members_copy, payload,
                         std::move(done_copy));
           });
}

void
CollectiveEngine::onDelivery(NodeId at, const PacketDesc &pkt,
                             Cycle now)
{
    const auto msg_it = msgToOp_.find(pkt.msg);
    if (msg_it == msgToOp_.end())
        return; // not collective traffic
    const OpId id = msg_it->second;
    auto op_it = ops_.find(id);
    MDW_ASSERT(op_it != ops_.end(), "delivery for a finished op");
    Op &op = op_it->second;

    switch (op.kind) {
      case Kind::Broadcast:
        MDW_ASSERT(op.pending.test(at),
                   "duplicate broadcast delivery at node %d", at);
        op.pending.clear(at);
        break;
      case Kind::BarrierGather:
      case Kind::Reduce:
        MDW_ASSERT(at == op.root, "gather delivery away from root");
        MDW_ASSERT(op.pending.test(pkt.src),
                   "duplicate arrival from node %d", pkt.src);
        op.pending.clear(pkt.src);
        msgToOp_.erase(msg_it);
        break;
    }

    if (!op.pending.empty())
        return;

    if (op.kind == Kind::BarrierGather) {
        // All arrived: root releases with a multicast; completion is
        // the release broadcast's completion.
        op.kind = Kind::Broadcast;
        op.pending = op.members;
        const MsgId release = net_.nic(op.root).postMulticast(
            op.members, kControlPayload, now);
        msgToOp_.emplace(release, id);
        return;
    }
    finish(id, now);
}

void
CollectiveEngine::finish(OpId id, Cycle now)
{
    auto it = ops_.find(id);
    MDW_ASSERT(it != ops_.end(), "finishing unknown op");
    const Done done = std::move(it->second.done);
    // Drop all message mappings pointing at this op.
    for (auto msg_it = msgToOp_.begin(); msg_it != msgToOp_.end();) {
        if (msg_it->second == id)
            msg_it = msgToOp_.erase(msg_it);
        else
            ++msg_it;
    }
    ops_.erase(it);
    if (done)
        done(now);
}

} // namespace mdw
