/**
 * @file
 * Canned configurations matching the paper's evaluated systems, plus
 * a string-config bridge for command-line overrides.
 */

#ifndef MDW_CORE_PRESETS_HH
#define MDW_CORE_PRESETS_HH

#include "core/experiment.hh"
#include "core/network.hh"
#include "sim/config.hh"

namespace mdw {

/** The three multicast implementations the paper compares. */
enum class Scheme
{
    /** Central-buffer switch with hardware multidestination worms. */
    CbHw,
    /** Input-buffer switch with hardware multidestination worms. */
    IbHw,
    /** Central-buffer switch with U-Min software multicast. */
    SwUmin,
};

const char *toString(Scheme scheme);

/** All three schemes, in the paper's presentation order. */
inline constexpr Scheme kAllSchemes[] = {Scheme::CbHw, Scheme::IbHw,
                                         Scheme::SwUmin};

/**
 * SP-Switch-flavored default system: 64-node 4-ary 3-tree, 8-port
 * switches, 128-chunk central buffer, 8-flit chunks, 100-cycle NIC
 * software overheads.
 */
NetworkConfig defaultNetwork();

/** Default network reconfigured for one of the paper's schemes. */
NetworkConfig networkFor(Scheme scheme);

/** Default workload: multiple multicast, degree 8, 64-flit payload. */
TrafficParams defaultTraffic();

/** Default phase lengths for latency-vs-load experiments. */
ExperimentParams defaultExperiment();

/**
 * Apply string-config overrides (e.g. parsed from argv) to the three
 * parameter blocks. Recognized keys are documented in README.md;
 * unknown keys trigger fatal() so typos never silently no-op.
 */
void applyOverrides(const Config &config, NetworkConfig &network,
                    TrafficParams &traffic, ExperimentParams &params);

} // namespace mdw

#endif // MDW_CORE_PRESETS_HH
