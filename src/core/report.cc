#include "core/report.hh"

#include <utility>

#include "core/network.hh"

namespace mdw {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char *
ReportWriter::schema()
{
    return "mdw-report/1";
}

ReportWriter::ReportWriter(FILE *out, std::string experiment)
    : out_(out), experiment_(std::move(experiment))
{
}

void
ReportWriter::header(std::size_t runs, int threads,
                     std::uint64_t baseSeed, bool seedsDerived)
{
    std::fprintf(out_,
                 "# {\"schema\":\"%s\",\"experiment\":\"%s\","
                 "\"runs\":%zu,\"threads\":%d,\"baseSeed\":%llu,"
                 "\"seedsDerived\":%s}\n",
                 schema(), jsonEscape(experiment_).c_str(), runs,
                 threads, static_cast<unsigned long long>(baseSeed),
                 seedsDerived ? "true" : "false");
}

void
ReportWriter::summary(const SweepReport &report)
{
    std::fputs(report.summary().c_str(), out_);
}

void
ReportWriter::metrics(const MetricsSnapshot &snapshot)
{
    std::fprintf(out_, "# {\"metrics\":%s}\n",
                 snapshot.toJson().c_str());
}

void
ReportWriter::shards(const Network &net)
{
    const std::size_t effective = net.effectiveShards();
    if (effective == 0)
        return;
    std::vector<NetworkTotals> totals;
    for (std::uint32_t s = 0; s <= effective; ++s)
        totals.push_back(net.totalsForShard(s));
    shardsImpl(effective, net.shardStats(), totals);
}

void
ReportWriter::shards(const ExperimentResult &result)
{
    if (result.effectiveShards == 0)
        return;
    shardsImpl(result.effectiveShards, result.shardStats,
               result.shardTotals);
}

void
ReportWriter::shardsImpl(std::size_t effective,
                         const std::vector<ShardStat> &stats,
                         const std::vector<NetworkTotals> &totals)
{
    std::fprintf(out_, "# {\"shards\":{\"effective\":%zu,"
                       "\"entries\":[",
                 effective);
    for (std::size_t s = 0; s < stats.size(); ++s) {
        // The serial bucket (last entry) holds no switches, so its
        // NetworkTotals are all zero and the sum over entries still
        // equals the flat rollup.
        const NetworkTotals &t = totals[s];
        std::fprintf(
            out_,
            "%s{\"shard\":%zu,\"serial\":%s,\"components\":%zu,"
            "\"steps\":%llu,\"boundary_sends\":%llu,"
            "\"wall_ms\":%.3f,\"flits_in\":%llu,\"flits_out\":%llu,"
            "\"packets_routed\":%llu,\"replications\":%llu,"
            "\"reservation_stall_cycles\":%llu}",
            s > 0 ? "," : "", s, s == effective ? "true" : "false",
            stats[s].components,
            static_cast<unsigned long long>(stats[s].steps),
            static_cast<unsigned long long>(stats[s].boundarySends),
            static_cast<double>(stats[s].wallNs) / 1e6,
            static_cast<unsigned long long>(t.flitsIn),
            static_cast<unsigned long long>(t.flitsOut),
            static_cast<unsigned long long>(t.packetsRouted),
            static_cast<unsigned long long>(t.replications),
            static_cast<unsigned long long>(
                t.reservationStallCycles));
    }
    std::fprintf(out_, "]}}\n");
}

void
ReportWriter::status(const char *state)
{
    std::fprintf(out_, "# {\"status\":\"%s\"}\n", state);
    std::fflush(out_);
}

void
ReportWriter::sweep(const SweepReport &report)
{
    header(report.runs.size(), report.threads, report.baseSeed,
           report.seedsDerived);
    summary(report);
    metrics(report.metrics);
    status("ok");
}

bool
writeTraceFiles(const WormTrace &trace, const std::string &prefix,
                std::string *error)
{
    const struct
    {
        const char *suffix;
        std::string content;
    } files[] = {
        {".trace.json", trace.chromeJson()},
        {".trace.jsonl", trace.jsonl()},
    };
    for (const auto &file : files) {
        const std::string path = prefix + file.suffix;
        FILE *out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
            if (error != nullptr)
                *error = path;
            return false;
        }
        std::fwrite(file.content.data(), 1, file.content.size(), out);
        std::fclose(out);
    }
    return true;
}

} // namespace mdw
