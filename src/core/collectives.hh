/**
 * @file
 * Collective communication operations built on the public NIC API —
 * the broadcast / barrier / reduction workloads the paper's
 * introduction motivates as the payoff of fast multicast.
 *
 * Operations are asynchronous: each call starts the operation and
 * fires a completion callback with the finishing cycle. Multicasts
 * inside the collectives go through whatever multicast scheme the
 * network's NICs are configured with (hardware worms or U-Min
 * software trees), so the same experiment compares implementations.
 */

#ifndef MDW_CORE_COLLECTIVES_HH
#define MDW_CORE_COLLECTIVES_HH

#include <functional>
#include <unordered_map>

#include "core/network.hh"

namespace mdw {

/** Asynchronous collective-operation engine for one Network. */
class CollectiveEngine
{
  public:
    /** Completion callback: receives the cycle the operation ended. */
    using Done = std::function<void(Cycle)>;

    /**
     * Hooks every NIC's delivery callback; only one engine may be
     * attached to a network at a time.
     */
    explicit CollectiveEngine(Network &net);

    /**
     * Broadcast @p payload flits from @p root to @p members (root
     * excluded). Completes when the last member received the data.
     */
    void broadcast(NodeId root, const DestSet &members, int payload,
                   Done done);

    /**
     * Barrier among @p root plus @p members: members signal arrival
     * with short unicasts to the root; once all arrived, the root
     * multicasts the release. Completes when the last member
     * received the release. (Callers model local computation by
     * choosing when to invoke it.)
     */
    void barrier(NodeId root, const DestSet &members, Done done);

    /**
     * Reduction to @p root: every member sends @p payload flits to
     * the root (the combining itself is free at the host). Completes
     * when the root received all contributions.
     */
    void reduce(NodeId root, const DestSet &members, int payload,
                Done done);

    /**
     * Reduce to @p root then broadcast the @p payload-flit result
     * back to the members.
     */
    void allreduce(NodeId root, const DestSet &members, int payload,
                   Done done);

    /** Operations started and not yet completed. */
    std::size_t pendingOps() const { return ops_.size(); }

    /** Flits used for barrier arrival/release control messages. */
    static constexpr int kControlPayload = 4;

  private:
    enum class Kind { Broadcast, BarrierGather, Reduce };

    struct Op
    {
        Kind kind = Kind::Broadcast;
        NodeId root = kInvalidNode;
        DestSet members{0};
        DestSet pending{0};
        int payload = 0;
        Done done;
    };

    using OpId = std::uint64_t;

    void onDelivery(NodeId at, const PacketDesc &pkt, Cycle now);
    OpId newOp(Op op);
    void finish(OpId id, Cycle now);

    Network &net_;
    std::unordered_map<OpId, Op> ops_;
    /** Maps a message id to the op waiting on its deliveries. */
    std::unordered_map<MsgId, OpId> msgToOp_;
    /** Per-op arrival bookkeeping for gather phases. */
    OpId nextId_ = 1;
};

} // namespace mdw

#endif // MDW_CORE_COLLECTIVES_HH
