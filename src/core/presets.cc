#include "core/presets.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace mdw {

namespace {

/** Warn (once per key per process) about a deprecated spelling. */
void
warnDeprecatedKey(const std::string &oldKey, const std::string &newKey)
{
    static std::set<std::string> warned;
    if (warned.insert(oldKey).second)
        warn("config key '%s' is deprecated; use '%s'", oldKey.c_str(),
             newKey.c_str());
}

// Aliased getters: read the canonical workload.* key, accepting the
// pre-redesign spelling as a warn-once fallback. The legacy key is
// read first so both spellings count as consumed (the unknown-key
// check below would otherwise trip), with the canonical key winning
// when both are present.

std::string
aliasedString(const Config &config, const char *newKey,
              const char *oldKey, std::string dflt)
{
    if (config.has(oldKey)) {
        warnDeprecatedKey(oldKey, newKey);
        dflt = config.getString(oldKey, dflt);
    }
    return config.getString(newKey, dflt);
}

double
aliasedDouble(const Config &config, const char *newKey,
              const char *oldKey, double dflt)
{
    if (config.has(oldKey)) {
        warnDeprecatedKey(oldKey, newKey);
        dflt = config.getDouble(oldKey, dflt);
    }
    return config.getDouble(newKey, dflt);
}

std::int64_t
aliasedInt(const Config &config, const char *newKey, const char *oldKey,
           std::int64_t dflt)
{
    if (config.has(oldKey)) {
        warnDeprecatedKey(oldKey, newKey);
        dflt = config.getInt(oldKey, dflt);
    }
    return config.getInt(newKey, dflt);
}

std::uint64_t
aliasedU64(const Config &config, const char *newKey, const char *oldKey,
           std::uint64_t dflt)
{
    if (config.has(oldKey)) {
        warnDeprecatedKey(oldKey, newKey);
        dflt = config.getU64(oldKey, dflt);
    }
    return config.getU64(newKey, dflt);
}

/**
 * Read an integer key and clamp it into [lo, hi], warning once per
 * key per process when the configured value is out of range (same
 * one-shot policy as the deprecated-key warnings above).
 */
int
clampedInt(const Config &config, const char *key, int dflt, int lo,
           int hi)
{
    const std::int64_t raw = config.getInt(key, dflt);
    const std::int64_t clamped =
        std::min<std::int64_t>(std::max<std::int64_t>(raw, lo), hi);
    if (clamped != raw) {
        static std::set<std::string> warned;
        if (warned.insert(key).second)
            warn("config key '%s' value %lld out of range [%d, %d]; "
                 "clamping to %lld",
                 key, static_cast<long long>(raw), lo, hi,
                 static_cast<long long>(clamped));
    }
    return static_cast<int>(clamped);
}

} // namespace

const char *
toString(Scheme scheme)
{
    switch (scheme) {
      case Scheme::CbHw:
        return "cb-hw";
      case Scheme::IbHw:
        return "ib-hw";
      case Scheme::SwUmin:
        return "sw-umin";
    }
    return "?";
}

NetworkConfig
defaultNetwork()
{
    NetworkConfig config;
    config.topo = TopologyKind::FatTree;
    config.fatTreeK = 4;
    config.fatTreeN = 3; // 64 hosts
    config.arch = SwitchArch::CentralBuffer;
    config.cb = CbParams{};
    config.ib = IbParams{};
    config.sw.variant = RoutingVariant::ReplicateAfterLca;
    config.sw.upPolicy = UpPortPolicy::Adaptive;
    config.nic = NicParams{};
    config.maxPayloadFlits = 256;
    config.linkDelay = 1;
    config.seed = 1;
    return config;
}

NetworkConfig
networkFor(Scheme scheme)
{
    NetworkConfig config = defaultNetwork();
    switch (scheme) {
      case Scheme::CbHw:
        config.arch = SwitchArch::CentralBuffer;
        config.nic.scheme = McastScheme::Hardware;
        break;
      case Scheme::IbHw:
        config.arch = SwitchArch::InputBuffer;
        config.nic.scheme = McastScheme::Hardware;
        break;
      case Scheme::SwUmin:
        config.arch = SwitchArch::CentralBuffer;
        config.nic.scheme = McastScheme::Software;
        break;
    }
    return config;
}

TrafficParams
defaultTraffic()
{
    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.05;
    traffic.payloadFlits = 64;
    traffic.mcastDegree = 8;
    traffic.mcastFraction = 0.1;
    traffic.seed = 42;
    return traffic;
}

ExperimentParams
defaultExperiment()
{
    return ExperimentParams{};
}

void
applyOverrides(const Config &config, NetworkConfig &network,
               TrafficParams &traffic, ExperimentParams &params)
{
    // Topology.
    const std::string topo =
        config.getString("topo", toString(network.topo));
    if (topo == "fat-tree") {
        network.topo = TopologyKind::FatTree;
    } else if (topo == "irregular") {
        network.topo = TopologyKind::Irregular;
    } else if (topo == "uni-min") {
        network.topo = TopologyKind::UniMin;
    } else {
        fatal("unknown topo '%s'", topo.c_str());
    }
    network.fatTreeK =
        static_cast<int>(config.getInt("k", network.fatTreeK));
    network.fatTreeN =
        static_cast<int>(config.getInt("n", network.fatTreeN));
    network.irregular.switches = static_cast<int>(
        config.getInt("irr.switches", network.irregular.switches));
    network.irregular.radix = static_cast<int>(
        config.getInt("irr.radix", network.irregular.radix));
    network.irregular.hosts = static_cast<int>(
        config.getInt("irr.hosts", network.irregular.hosts));
    network.irregular.extraLinks = static_cast<int>(
        config.getInt("irr.extraLinks", network.irregular.extraLinks));

    // Switch architecture.
    const std::string arch =
        config.getString("arch", toString(network.arch));
    if (arch == "central-buffer" || arch == "cb") {
        network.arch = SwitchArch::CentralBuffer;
    } else if (arch == "input-buffer" || arch == "ib") {
        network.arch = SwitchArch::InputBuffer;
    } else {
        fatal("unknown arch '%s'", arch.c_str());
    }
    network.cb.cqChunks = static_cast<int>(
        config.getInt("cb.chunks", network.cb.cqChunks));
    network.cb.chunkFlits = static_cast<int>(
        config.getInt("cb.chunkFlits", network.cb.chunkFlits));
    network.cb.inputFifoFlits = static_cast<int>(
        config.getInt("cb.inputFifo", network.cb.inputFifoFlits));
    network.cb.outputFifoFlits = static_cast<int>(
        config.getInt("cb.outputFifo", network.cb.outputFifoFlits));
    network.ib.bufferFlits = static_cast<int>(
        config.getInt("ib.buffer", network.ib.bufferFlits));

    // Virtual lanes (shared by both architectures; the network
    // builder mirrors the count onto the NICs).
    network.sw.lanes = clampedInt(config, "switch.lanes",
                                  network.sw.lanes, 1, kMaxLanes);
    const std::string laneAlloc = config.getString(
        "switch.laneAlloc", toString(network.sw.laneAlloc));
    if (laneAlloc == "static" || laneAlloc == "static-class") {
        network.sw.laneAlloc = LaneAlloc::StaticClass;
    } else if (laneAlloc == "adaptive") {
        network.sw.laneAlloc = LaneAlloc::Adaptive;
    } else {
        fatal("unknown lane allocation '%s'", laneAlloc.c_str());
    }

    const std::string variant = config.getString(
        "routing", toString(network.sw.variant));
    if (variant == "replicate-after-lca") {
        network.sw.variant = RoutingVariant::ReplicateAfterLca;
    } else if (variant == "replicate-on-up-path") {
        network.sw.variant = RoutingVariant::ReplicateOnUpPath;
    } else {
        fatal("unknown routing variant '%s'", variant.c_str());
    }
    const std::string replication = config.getString(
        "replication", toString(network.sw.replication));
    if (replication == "asynchronous" || replication == "async") {
        network.sw.replication = ReplicationMode::Asynchronous;
    } else if (replication == "synchronous" || replication == "sync") {
        network.sw.replication = ReplicationMode::Synchronous;
    } else {
        fatal("unknown replication mode '%s'", replication.c_str());
    }
    const std::string up =
        config.getString("upPolicy", toString(network.sw.upPolicy));
    if (up == "adaptive") {
        network.sw.upPolicy = UpPortPolicy::Adaptive;
    } else if (up == "deterministic") {
        network.sw.upPolicy = UpPortPolicy::Deterministic;
    } else {
        fatal("unknown up-port policy '%s'", up.c_str());
    }

    // NIC / schemes.
    const std::string scheme =
        config.getString("scheme", toString(network.nic.scheme));
    if (scheme == "hardware" || scheme == "hw") {
        network.nic.scheme = McastScheme::Hardware;
    } else if (scheme == "software" || scheme == "sw") {
        network.nic.scheme = McastScheme::Software;
    } else {
        fatal("unknown multicast scheme '%s'", scheme.c_str());
    }
    const std::string encoding =
        config.getString("encoding", toString(network.nic.encoding));
    if (encoding == "bit-string") {
        network.nic.encoding = McastEncoding::BitString;
    } else if (encoding == "multiport") {
        network.nic.encoding = McastEncoding::Multiport;
    } else {
        fatal("unknown encoding '%s'", encoding.c_str());
    }
    network.nic.sendOverhead =
        config.getU64("nic.sendOverhead", network.nic.sendOverhead);
    network.nic.recvOverhead =
        config.getU64("nic.recvOverhead", network.nic.recvOverhead);
    network.nic.rxWindowFlits = static_cast<int>(
        config.getInt("nic.rxWindow", network.nic.rxWindowFlits));
    network.nic.swListOverhead =
        config.getBool("nic.swListOverhead", network.nic.swListOverhead);

    network.maxPayloadFlits = static_cast<int>(
        config.getInt("maxPayload", network.maxPayloadFlits));
    network.linkDelay = config.getU64("linkDelay", network.linkDelay);
    network.seed = config.getU64("seed", network.seed);

    // Scheduling mode (results are bit-identical either way; 0 is the
    // cycle-accurate oracle for debugging).
    network.fastPath = config.getBool("sim.fastPath", network.fastPath);
    // Sharded intra-run parallelism (also bit-identical; see
    // Network::setupSharding for the serial-only vetoes).
    network.shards = static_cast<std::size_t>(
        config.getU64("sim.shards", network.shards));
    network.shardThreads = static_cast<unsigned>(config.getU64(
        "sim.shardThreads", network.shardThreads));

    // Workload. Canonical keys are workload.*; the pre-redesign bare
    // spellings (pattern, load, ...) and traffic.seed remain as
    // warn-once deprecation aliases, workload.* winning when both
    // appear.
    const std::string kind =
        config.getString("workload.kind", toString(traffic.kind));
    if (kind == "synthetic") {
        traffic.kind = WorkloadKind::Synthetic;
    } else if (kind == "collective") {
        traffic.kind = WorkloadKind::Collective;
    } else if (kind == "trace") {
        traffic.kind = WorkloadKind::Trace;
    } else {
        fatal("unknown workload kind '%s'", kind.c_str());
    }
    const std::string pattern = aliasedString(
        config, "workload.pattern", "pattern", toString(traffic.pattern));
    if (pattern == "uniform-unicast") {
        traffic.pattern = TrafficPattern::UniformUnicast;
    } else if (pattern == "multiple-multicast") {
        traffic.pattern = TrafficPattern::MultipleMulticast;
    } else if (pattern == "bimodal") {
        traffic.pattern = TrafficPattern::Bimodal;
    } else if (pattern == "hot-spot") {
        traffic.pattern = TrafficPattern::HotSpot;
    } else {
        fatal("unknown traffic pattern '%s'", pattern.c_str());
    }
    traffic.load =
        aliasedDouble(config, "workload.load", "load", traffic.load);
    traffic.payloadFlits = static_cast<int>(aliasedInt(
        config, "workload.payload", "payload", traffic.payloadFlits));
    traffic.mcastDegree = static_cast<int>(aliasedInt(
        config, "workload.degree", "degree", traffic.mcastDegree));
    traffic.mcastFraction =
        aliasedDouble(config, "workload.mcastFraction", "mcastFraction",
                      traffic.mcastFraction);
    traffic.hotFraction =
        aliasedDouble(config, "workload.hotFraction", "hotFraction",
                      traffic.hotFraction);
    traffic.hotNode = static_cast<NodeId>(aliasedInt(
        config, "workload.hotNode", "hotNode", traffic.hotNode));
    traffic.seed = aliasedU64(config, "workload.seed", "traffic.seed",
                              traffic.seed);
    // Lane class stamped on generated multicasts (bimodal isolation).
    traffic.mcastClass =
        clampedInt(config, "workload.mcastClass", traffic.mcastClass,
                   0, kLaneClasses - 1);

    // Closed-loop knobs (workload.kind = collective | trace).
    const std::string op = config.getString("workload.collective",
                                            toString(traffic.collective));
    if (op == "barrier") {
        traffic.collective = CollectiveOp::Barrier;
    } else if (op == "allreduce") {
        traffic.collective = CollectiveOp::Allreduce;
    } else if (op == "invalidate") {
        traffic.collective = CollectiveOp::Invalidate;
    } else {
        fatal("unknown collective op '%s'", op.c_str());
    }
    traffic.rounds = static_cast<int>(
        config.getInt("workload.rounds", traffic.rounds));
    traffic.groups = static_cast<int>(
        config.getInt("workload.groups", traffic.groups));
    traffic.groupSize = static_cast<int>(
        config.getInt("workload.groupSize", traffic.groupSize));
    traffic.think = config.getU64("workload.think", traffic.think);
    traffic.tracePath =
        config.getString("workload.trace", traffic.tracePath);

    // Faults and recovery.
    network.faultSpec.links = static_cast<int>(
        config.getInt("fault.links", network.faultSpec.links));
    network.faultSpec.switches = static_cast<int>(
        config.getInt("fault.switches", network.faultSpec.switches));
    network.faultSpec.start =
        config.getU64("fault.start", network.faultSpec.start);
    network.faultSpec.end =
        config.getU64("fault.end", network.faultSpec.end);
    network.faultSpec.seed =
        config.getU64("fault.seed", network.faultSpec.seed);
    // Transient regime: link bit-error rate, undetected-error
    // fraction, and link-flap windows.
    network.faultSpec.ber =
        config.getDouble("fault.ber", network.faultSpec.ber);
    network.faultSpec.residual =
        config.getDouble("fault.residual", network.faultSpec.residual);
    network.faultSpec.flaps = static_cast<int>(
        config.getInt("fault.flaps", network.faultSpec.flaps));
    network.faultSpec.flapMin =
        config.getU64("fault.flapMin", network.faultSpec.flapMin);
    network.faultSpec.flapMax =
        config.getU64("fault.flapMax", network.faultSpec.flapMax);
    network.link.retryLimit = static_cast<int>(
        config.getInt("link.retryLimit", network.link.retryLimit));
    network.link.replayBufferFlits = static_cast<int>(config.getInt(
        "link.replayBuffer", network.link.replayBufferFlits));
    network.nic.retransmitTimeout = config.getU64(
        "nic.retransmitTimeout", network.nic.retransmitTimeout);
    network.nic.maxRetransmits = static_cast<int>(config.getInt(
        "nic.maxRetransmits", network.nic.maxRetransmits));

    // Telemetry (metrics are always on; tracing is opt-in).
    network.telemetry.trace =
        config.getBool("telemetry.trace", network.telemetry.trace);
    network.telemetry.traceCapacity = static_cast<std::size_t>(
        config.getInt("telemetry.traceCapacity",
                      static_cast<std::int64_t>(
                          network.telemetry.traceCapacity)));

    // Experiment phases.
    params.warmup = config.getU64("warmup", params.warmup);
    params.measure = config.getU64("measure", params.measure);
    params.drainLimit = config.getU64("drainLimit", params.drainLimit);
    params.watchdogQuiet =
        config.getU64("watchdog", params.watchdogQuiet);
    params.saturationRatio =
        config.getDouble("satRatio", params.saturationRatio);

    const auto unread = config.unreadKeys();
    if (!unread.empty()) {
        std::string joined;
        for (const auto &key : unread)
            joined += key + " ";
        fatal("unknown config keys: %s", joined.c_str());
    }
}

} // namespace mdw
