/**
 * @file
 * Machine-readable report stream shared by every bench.
 *
 * Historically each fig_ / ablation_ main hand-rolled its own JSON
 * status markers; ReportWriter centralizes the format behind one
 * schema-versioned writer. The stream is JSONL embedded in the
 * "#"-prefixed audit trail on stderr: every machine-readable line
 * starts with "# {" and parses as one JSON object, so scripts can
 * filter them out of the human-readable summary with a prefix match.
 *
 * Stream layout (schema "mdw-report/1"):
 *   1. header  — {"schema","experiment","runs","threads",
 *                 "baseSeed","seedsDerived"}
 *   2. summary — human-readable per-run audit lines (not JSON)
 *   3. metrics — {"metrics":{...}} aggregated MetricsSnapshot
 *   4. shards  — {"shards":{...}} optional per-shard scheduler and
 *                 switch-counter rollup (sharded runs only); the
 *                 per-shard counters must sum to the flat network.*
 *                 metrics (validate_report.py cross-checks this)
 *   5. status  — {"status":"ok"} or {"status":"fatal"}
 * A truncated stream (missing status, or status "fatal") marks a run
 * that died mid-sweep.
 */

#ifndef MDW_CORE_REPORT_HH
#define MDW_CORE_REPORT_HH

#include <cstdio>
#include <string>

#include "core/sweep.hh"
#include "sim/telemetry.hh"

namespace mdw {

class Network;

/** Writes one bench's report stream to a FILE (normally stderr). */
class ReportWriter
{
  public:
    /** Schema tag stamped into every header line. */
    static const char *schema();

    /** @param experiment The bench's experiment id (e.g. "E3"). */
    ReportWriter(FILE *out, std::string experiment);

    /** Schema-versioned first line of the stream. */
    void header(std::size_t runs, int threads, std::uint64_t baseSeed,
                bool seedsDerived);

    /** Human-readable audit trail (SweepReport::summary()). */
    void summary(const SweepReport &report);

    /** Aggregated metrics section, one JSON line. */
    void metrics(const MetricsSnapshot &snapshot);

    /**
     * Per-shard scheduler statistics and switch-counter rollup of a
     * sharded run, one JSON line. Entries cover every parallel shard
     * plus the serial bucket (last, zero switch counters); the switch
     * counters summed over all entries reproduce the flat network.*
     * rollups exactly. No-op when @p net is not sharded.
     */
    void shards(const Network &net);

    /** Same record from a finished run's captured diagnostics. */
    void shards(const ExperimentResult &result);

    /** Final status marker: "ok" or "fatal". */
    void status(const char *state);

    /** The full stream, in order, for a completed sweep. */
    void sweep(const SweepReport &report);

  private:
    void shardsImpl(std::size_t effective,
                    const std::vector<ShardStat> &stats,
                    const std::vector<NetworkTotals> &totals);

    FILE *out_;
    std::string experiment_;
};

/**
 * Write @p trace as "<prefix>.trace.json" (Chrome-trace, loads in
 * Perfetto / chrome://tracing) and "<prefix>.trace.jsonl" (one event
 * object per line). Returns false (with the failing path in
 * @p error, if non-null) when a file cannot be written.
 */
bool writeTraceFiles(const WormTrace &trace, const std::string &prefix,
                     std::string *error = nullptr);

} // namespace mdw

#endif // MDW_CORE_REPORT_HH
