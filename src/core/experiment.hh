/**
 * @file
 * Experiment runner: warmup / measurement / drain phases, saturation
 * detection, and load sweeps — the harness behind every figure.
 */

#ifndef MDW_CORE_EXPERIMENT_HH
#define MDW_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "core/network.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "workload/traffic.hh"

namespace mdw {

/** Phase lengths and safety limits of one simulation run. */
struct ExperimentParams
{
    Cycle warmup = 20000;
    Cycle measure = 50000;
    /** Extra cycles allowed for measured messages to drain. */
    Cycle drainLimit = 300000;
    /** Deadlock watchdog threshold (0 disables). */
    Cycle watchdogQuiet = 100000;
    /**
     * Delivered/expected ratio below which a run is "saturated".
     * Finite windows lose ~10% to pipeline-fill boundary effects, so
     * the default is deliberately below that.
     */
    double saturationRatio = 0.85;
};

/**
 * Everything a run measures.
 *
 * Run identity and pass/fail verdicts are plain fields; every
 * numeric measurement lives in `metrics`, a MetricsSnapshot of the
 * network's registry (plus derived "experiment.*" entries) captured
 * before the quiescence settle. The former scalar fields remain
 * available as thin accessors over the snapshot, so call sites read
 * `r.deliveredLoad()` where they used to read `r.deliveredLoad`.
 */
struct ExperimentResult
{
    double offeredLoad = 0.0; ///< payload flits/node/cycle, at source
    double expectedDelivered = 0.0; ///< offered x fan-out multiplier

    bool saturated = false;
    bool drained = true;
    bool deadlocked = false;
    /** Post-drain invariant: every buffer empty, credits home. */
    bool quiescent = true;
    Cycle cyclesRun = 0;

    /**
     * Every registered metric of the run, keyed by hierarchical name
     * ("tracker.latency.unicast", "switch.3.port.2.tx_flits", ...),
     * including the full latency samplers — sweep aggregates merge
     * these snapshots in submission order instead of re-deriving
     * moments from scalar summaries.
     */
    MetricsSnapshot metrics;

    /**
     * Worm-lifecycle trace of the run; null unless the network was
     * configured with telemetry.trace. Shared (immutable) so copying
     * results in sweeps stays cheap.
     */
    std::shared_ptr<const WormTrace> trace;

    /**
     * Sharded-scheduler diagnostics (empty / zero when the run was
     * flat): parallel shards in use, per-bucket execution statistics
     * (entry [effectiveShards] is the serial bucket), and each
     * shard's switch-counter rollup. Deliberately NOT compared by
     * identicalResults — the whole point of sharding is that the
     * results are identical while these wall-clock numbers differ.
     */
    std::size_t effectiveShards = 0;
    std::vector<ShardStat> shardStats;
    std::vector<NetworkTotals> shardTotals;

    // --- Accessors: the pre-snapshot scalar API ---------------------

    /** Payload flits/node/cycle delivered in the window. */
    double deliveredLoad() const
    {
        return metrics.gauge("experiment.delivered_load");
    }

    const Sampler &unicastLatency() const
    {
        return metrics.sampler("tracker.latency.unicast");
    }
    const Sampler &mcastLastLatency() const
    {
        return metrics.sampler("tracker.latency.mcast_last");
    }
    const Sampler &mcastAvgLatency() const
    {
        return metrics.sampler("tracker.latency.mcast_avg");
    }

    double unicastAvg() const { return unicastLatency().mean(); }
    double unicastP95() const
    {
        return metrics.gauge("experiment.latency.unicast.p95");
    }
    double unicastP99() const
    {
        return metrics.gauge("experiment.latency.unicast.p99");
    }
    double unicastP999() const
    {
        return metrics.gauge("experiment.latency.unicast.p999");
    }
    double unicastCount() const
    {
        return static_cast<double>(unicastLatency().count());
    }
    double mcastLastAvg() const { return mcastLastLatency().mean(); }
    double mcastLastP95() const
    {
        return metrics.gauge("experiment.latency.mcast_last.p95");
    }
    double mcastLastP99() const
    {
        return metrics.gauge("experiment.latency.mcast_last.p99");
    }
    double mcastLastP999() const
    {
        return metrics.gauge("experiment.latency.mcast_last.p999");
    }
    double mcastAvgAvg() const { return mcastAvgLatency().mean(); }
    double mcastCount() const
    {
        return static_cast<double>(mcastLastLatency().count());
    }

    /** Mean utilization of switch output links in the window. */
    double meanLinkUtil() const
    {
        return metrics.gauge("experiment.link_util.mean");
    }
    /** Utilization of the busiest switch output link. */
    double maxLinkUtil() const
    {
        return metrics.gauge("experiment.link_util.max");
    }

    std::uint64_t replications() const
    {
        return metrics.counter("network.replications");
    }
    std::uint64_t reservationStallCycles() const
    {
        return metrics.counter("network.reservation_stall_cycles");
    }
    double avgCqChunks() const
    {
        return metrics.gauge("network.cq.avg_chunks");
    }
    std::size_t endBacklogPackets() const
    {
        return static_cast<std::size_t>(
            metrics.counter("experiment.end_backlog_packets"));
    }

    /** Fault-recovery activity (all zero on a fault-free run). */
    std::size_t faultsApplied() const
    {
        return static_cast<std::size_t>(
            metrics.counter("fault.applied"));
    }
    std::uint64_t retransmits() const
    {
        return metrics.counter("host.retransmits");
    }
    std::uint64_t poisonedDrops() const
    {
        return metrics.counter("host.poisoned_drops");
    }
    std::uint64_t duplicateDeliveries() const
    {
        return metrics.counter("tracker.duplicate_deliveries");
    }
    std::uint64_t partialCompleted() const
    {
        return metrics.counter("tracker.partial_completed");
    }
    std::uint64_t unreachableDests() const
    {
        return metrics.counter("tracker.unreachable_dests");
    }

    // --- Link-level integrity (all zero without transient faults) ---
    std::uint64_t linkCorrupted() const
    {
        return metrics.counter("network.link.corrupted");
    }
    std::uint64_t linkNaks() const
    {
        return metrics.counter("network.link.naks");
    }
    std::uint64_t linkReplays() const
    {
        return metrics.counter("network.link.replays");
    }
    std::uint64_t linkTimeouts() const
    {
        return metrics.counter("network.link.timeouts");
    }
    std::uint64_t linkEscalations() const
    {
        return metrics.counter("fault.link_escalations");
    }
    /** Deliveries discarded by the end-to-end payload checksum. */
    std::uint64_t csumFails() const
    {
        return metrics.counter("host.csum_fails");
    }
};

/**
 * Exact (bitwise, not tolerance-based) equality of two results —
 * the property the deterministic sweep runner guarantees across
 * thread counts.
 */
bool identicalResults(const ExperimentResult &a,
                      const ExperimentResult &b);

/** One simulation run: build, warm up, measure, drain, report. */
class Experiment
{
  public:
    Experiment(NetworkConfig network, TrafficParams traffic,
               ExperimentParams params);

    /** Execute the run and return its measurements. */
    ExperimentResult run();

    /** Fan-out multiplier of the configured traffic pattern. */
    double deliveryMultiplier() const;

  private:
    /**
     * Closed-loop run (workload.kind = collective or trace): no
     * warmup/measure split -- the workload runs to exhaustion (or
     * drainLimit, whichever first) with the measurement window open
     * for the whole run, and the snapshot gains the workload.*
     * accounting counters (posted == completed + partial on any
     * drained run).
     */
    ExperimentResult runClosedLoop(Network &net);

    NetworkConfig network_;
    TrafficParams traffic_;
    ExperimentParams params_;
};

/**
 * Run the same configuration across several offered loads, optionally
 * spreading the runs across @p threads worker threads (see
 * core/sweep.hh; 1 = serial, 0 = one per hardware thread). Results
 * appear in the order of @p loads regardless of thread count, and are
 * identical to a serial sweep.
 */
std::vector<ExperimentResult> sweepLoads(const NetworkConfig &network,
                                         const TrafficParams &traffic,
                                         const ExperimentParams &params,
                                         const std::vector<double> &loads,
                                         int threads = 1);

/** Fixed-width header line matching formatResultRow(). */
std::string resultHeader();

/** One row of measurements for table output. */
std::string formatResultRow(const std::string &label,
                            const ExperimentResult &result);

} // namespace mdw

#endif // MDW_CORE_EXPERIMENT_HH
