/**
 * @file
 * Experiment runner: warmup / measurement / drain phases, saturation
 * detection, and load sweeps — the harness behind every figure.
 */

#ifndef MDW_CORE_EXPERIMENT_HH
#define MDW_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/network.hh"
#include "sim/stats.hh"
#include "workload/traffic.hh"

namespace mdw {

/** Phase lengths and safety limits of one simulation run. */
struct ExperimentParams
{
    Cycle warmup = 20000;
    Cycle measure = 50000;
    /** Extra cycles allowed for measured messages to drain. */
    Cycle drainLimit = 300000;
    /** Deadlock watchdog threshold (0 disables). */
    Cycle watchdogQuiet = 100000;
    /**
     * Delivered/expected ratio below which a run is "saturated".
     * Finite windows lose ~10% to pipeline-fill boundary effects, so
     * the default is deliberately below that.
     */
    double saturationRatio = 0.85;
};

/** Everything a run measures. */
struct ExperimentResult
{
    double offeredLoad = 0.0; ///< payload flits/node/cycle, at source
    double deliveredLoad = 0.0; ///< payload flits/node/cycle delivered
    double expectedDelivered = 0.0; ///< offered x fan-out multiplier

    double unicastAvg = 0.0;
    double unicastP95 = 0.0;
    double unicastCount = 0.0;
    double mcastLastAvg = 0.0;
    double mcastLastP95 = 0.0;
    double mcastAvgAvg = 0.0;
    double mcastCount = 0.0;

    bool saturated = false;
    bool drained = true;
    bool deadlocked = false;
    Cycle cyclesRun = 0;

    /** Mean utilization of switch output links in the window. */
    double meanLinkUtil = 0.0;
    /** Utilization of the busiest switch output link. */
    double maxLinkUtil = 0.0;

    std::uint64_t replications = 0;
    std::uint64_t reservationStallCycles = 0;
    double avgCqChunks = 0.0;
    std::size_t endBacklogPackets = 0;

    /** Post-drain invariant: every buffer empty, credits home. */
    bool quiescent = true;
    /** Fault-recovery activity (all zero on a fault-free run). */
    std::size_t faultsApplied = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t poisonedDrops = 0;
    std::uint64_t duplicateDeliveries = 0;
    std::uint64_t partialCompleted = 0;
    std::uint64_t unreachableDests = 0;

    /**
     * Full latency samplers from the measurement window, so sweep
     * aggregates can be built with Sampler::merge instead of
     * re-deriving moments from the scalar summaries above.
     */
    Sampler unicastLatency;
    Sampler mcastLastLatency;
    Sampler mcastAvgLatency;
};

/**
 * Exact (bitwise, not tolerance-based) equality of two results —
 * the property the deterministic sweep runner guarantees across
 * thread counts.
 */
bool identicalResults(const ExperimentResult &a,
                      const ExperimentResult &b);

/** One simulation run: build, warm up, measure, drain, report. */
class Experiment
{
  public:
    Experiment(NetworkConfig network, TrafficParams traffic,
               ExperimentParams params);

    /** Execute the run and return its measurements. */
    ExperimentResult run();

    /** Fan-out multiplier of the configured traffic pattern. */
    double deliveryMultiplier() const;

  private:
    NetworkConfig network_;
    TrafficParams traffic_;
    ExperimentParams params_;
};

/**
 * Run the same configuration across several offered loads, optionally
 * spreading the runs across @p threads worker threads (see
 * core/sweep.hh; 1 = serial, 0 = one per hardware thread). Results
 * appear in the order of @p loads regardless of thread count, and are
 * identical to a serial sweep.
 */
std::vector<ExperimentResult> sweepLoads(const NetworkConfig &network,
                                         const TrafficParams &traffic,
                                         const ExperimentParams &params,
                                         const std::vector<double> &loads,
                                         int threads = 1);

/** Fixed-width header line matching formatResultRow(). */
std::string resultHeader();

/** One row of measurements for table output. */
std::string formatResultRow(const std::string &label,
                            const ExperimentResult &result);

} // namespace mdw

#endif // MDW_CORE_EXPERIMENT_HH
