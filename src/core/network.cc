#include "core/network.hh"

#include <algorithm>
#include <cstdlib>

#include "core/resilience.hh"

namespace mdw {

const char *
toString(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::FatTree:
        return "fat-tree";
      case TopologyKind::Irregular:
        return "irregular";
      case TopologyKind::UniMin:
        return "uni-min";
    }
    return "?";
}

const char *
toString(SwitchArch arch)
{
    switch (arch) {
      case SwitchArch::CentralBuffer:
        return "central-buffer";
      case SwitchArch::InputBuffer:
        return "input-buffer";
    }
    return "?";
}

Network::Network(const NetworkConfig &config)
    : cfg_(config), telemetry_(config.telemetry)
{
    build();
    wire();
    registerTelemetry();
    installFaults();

    bool fast = cfg_.fastPath;
    // Environment escape hatch, e.g. for re-running a whole test
    // suite against the cycle-accurate oracle: MDW_FAST_PATH=0|1.
    if (const char *env = std::getenv("MDW_FAST_PATH")) {
        if (env[0] == '0' && env[1] == '\0')
            fast = false;
        else if (env[0] == '1' && env[1] == '\0')
            fast = true;
    }
    sim_.setFastPath(fast);
    setupSharding();
}

Network::~Network() = default;

std::vector<std::pair<SwitchId, int>>
Network::candidateLinks() const
{
    const PortGraph &graph = topo_->graph();
    std::vector<std::pair<SwitchId, int>> links;
    for (std::size_t s = 0; s < graph.numSwitches(); ++s) {
        const SwitchId a = static_cast<SwitchId>(s);
        for (PortId p = 0; p < graph.radix(a); ++p) {
            const PortPeer &peer = graph.peer(a, p);
            if (peer.isSwitch() &&
                std::make_pair(a, p) <=
                    std::make_pair(peer.sw, peer.port)) {
                links.emplace_back(a, p);
            }
        }
    }
    return links;
}

void
Network::installFaults()
{
    FaultPlan plan = cfg_.faultPlan;
    if (plan.events.empty() && !cfg_.faultSpec.empty()) {
        const PortGraph &graph = topo_->graph();
        std::vector<SwitchId> candidates;
        for (std::size_t s = 0; s < graph.numSwitches(); ++s)
            candidates.push_back(static_cast<SwitchId>(s));
        FaultPlan drawn = FaultPlan::random(cfg_.faultSpec,
                                            candidateLinks(),
                                            candidates);
        plan.events = std::move(drawn.events);
    }
    // Transients: an explicit plan's schedule wins; otherwise draw
    // from the spec (fault.ber / fault.flaps).
    if (!plan.hasTransients() && cfg_.faultSpec.transient())
        plan.drawTransients(cfg_.faultSpec, candidateLinks());
    plan.finalize();

    // Retransmission needs delivery-dedup even when no fault ever
    // fires (e.g. a spuriously aggressive timeout).
    if (!plan.empty() || cfg_.nic.retransmitTimeout > 0)
        tracker_.enableResilience();
    if (plan.empty())
        return;
    const bool transients = plan.hasTransients();
    const double ber = plan.ber;
    const double residual = plan.residual;
    const std::uint64_t tseed = plan.transientSeed;
    const std::vector<FlapWindow> flaps = plan.flaps;
    resilience_ = std::make_unique<ResilienceManager>(*this,
                                                      std::move(plan));
    resilience_->install();
    if (transients) {
        // Corruption is only detectable end-to-end if packets carry
        // integrity state; enable before any packet is created.
        factory_.enableIntegrityTracking();
        installLinkLayers(ber, residual, tseed, flaps);
    }
}

void
Network::installLinkLayers(double ber, double residual,
                           std::uint64_t seed,
                           const std::vector<FlapWindow> &flaps)
{
    MDW_ASSERT(resilience_ != nullptr,
               "link layers need the resilience manager");
    // A dedicated stream family: stream 2i guards link i's forward
    // direction, 2i+1 its reverse, independent of traffic and of the
    // fail-stop draws.
    const std::uint64_t family = Rng::streamSeed(seed, 0x44);
    for (std::size_t i = 0; i < linkRecords_.size(); ++i) {
        LinkRecord &rec = linkRecords_[i];
        LinkLayerParams params = cfg_.link;
        params.ber = ber;
        params.residual = residual;

        std::vector<FlapWindow> linkFlaps;
        for (const FlapWindow &w : flaps) {
            if ((w.sw == rec.a && w.port == rec.pa) ||
                (w.sw == rec.b && w.port == rec.pb))
                linkFlaps.push_back(w);
        }

        auto attach = [&](Channel<Flit> *ch, SwitchId sw, PortId port,
                          std::uint64_t stream) {
            auto layer = std::make_unique<LinkLayer>(
                ch->name(), sw, port, cfg_.linkDelay, params,
                Rng::streamSeed(family, stream));
            layer->setFlaps(linkFlaps);
            layer->setPoisonRegistry(resilience_->poisonRegistry());
            layer->setEscalation([this, sw, port](Cycle when) {
                resilience_->escalateLink(sw, port, when);
            });
            layer->attachTelemetry(telemetry_,
                                   "link." + std::to_string(sw) +
                                       ".p" + std::to_string(port) +
                                       ".");
            ch->setHook(layer.get());
            linkLayers_.push_back(std::move(layer));
            return linkLayers_.back().get();
        };
        rec.fwd = attach(rec.ab, rec.a, rec.pa, 2 * i);
        rec.rev = attach(rec.ba, rec.b, rec.pb, 2 * i + 1);
    }

    // Fabric-wide rollups (per-direction counters registered above).
    MetricsRegistry &reg = telemetry_.registry();
    reg.registerIntGauge("network.link.corrupted", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().corrupted.value();
        return total;
    });
    reg.registerIntGauge("network.link.naks", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().naks.value();
        return total;
    });
    reg.registerIntGauge("network.link.replays", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().replays.value();
        return total;
    });
    reg.registerIntGauge("network.link.timeouts", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().timeouts.value();
        return total;
    });
    reg.registerIntGauge("network.link.residual_errors", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().residualErrors.value();
        return total;
    });
    reg.registerIntGauge("network.link.dropped", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().dropped.value();
        return total;
    });
    reg.registerIntGauge("network.link.replay_stall_cycles", [this] {
        std::uint64_t total = 0;
        for (const auto &l : linkLayers_)
            total += l->stats().replayStallCycles.value();
        return total;
    });
    reg.registerIntGauge("fault.link_escalations", [this] {
        return resilience_ ? resilience_->linkEscalations() : 0;
    });
}

LinkLayer *
Network::linkLayer(SwitchId sw, PortId port)
{
    for (const LinkRecord &rec : linkRecords_) {
        if (rec.a == sw && rec.pa == port)
            return rec.fwd;
        if (rec.b == sw && rec.pb == port)
            return rec.rev;
    }
    return nullptr;
}

void
Network::markLinkDead(SwitchId sw, PortId port)
{
    for (const LinkRecord &rec : linkRecords_) {
        if ((rec.a == sw && rec.pa == port) ||
            (rec.b == sw && rec.pb == port)) {
            if (rec.fwd)
                rec.fwd->markDead();
            if (rec.rev)
                rec.rev->markDead();
            return;
        }
    }
}

void
Network::build()
{
    // --- Topology ---------------------------------------------------
    if (cfg_.topo == TopologyKind::FatTree) {
        topo_ = std::make_unique<FatTree>(cfg_.fatTreeK, cfg_.fatTreeN);
    } else if (cfg_.topo == TopologyKind::UniMin) {
        topo_ = std::make_unique<UniMin>(cfg_.fatTreeK, cfg_.fatTreeN);
    } else {
        topo_ = std::make_unique<IrregularTopology>(
            cfg_.irregular, Rng(cfg_.seed).fork(0xdeadULL));
    }
    const std::size_t hosts = topo_->numHosts();

    // --- Header / packet sizing -------------------------------------
    if (cfg_.nic.encoding == McastEncoding::Multiport) {
        if (cfg_.topo == TopologyKind::Irregular)
            fatal("multiport encoding requires a staged (fat-tree or "
                  "uni-MIN) topology");
        cfg_.nic.multiportK = cfg_.fatTreeK;
        cfg_.nic.multiportLevels = cfg_.fatTreeN;
        mcastHeaderFlits_ =
            multiportHeaderFlits(cfg_.fatTreeN, cfg_.nic.enc);
    } else {
        mcastHeaderFlits_ = bitStringHeaderFlits(hosts, cfg_.nic.enc);
    }
    int max_header =
        std::max(cfg_.nic.enc.unicastHeaderFlits, mcastHeaderFlits_);
    if (cfg_.nic.swListOverhead) {
        int bits_per_id = 1;
        while ((1ULL << bits_per_id) < hosts)
            ++bits_per_id;
        const int list_bits =
            static_cast<int>(hosts - 2) * bits_per_id;
        const int sw_header =
            cfg_.nic.enc.unicastHeaderFlits +
            (list_bits + cfg_.nic.enc.flitBits - 1) /
                cfg_.nic.enc.flitBits;
        max_header = std::max(max_header, sw_header);
    }
    maxPacketFlits_ = cfg_.maxPayloadFlits + max_header;
    cfg_.nic.maxPayloadFlits = cfg_.maxPayloadFlits;

    // The central-buffer input FIFO must hold a complete routing
    // header for decode; the input-buffer architecture must hold a
    // complete packet for deadlock freedom. Raise silently configured
    // values that are too small rather than failing.
    const int fifo_need = max_header + 2;
    if (cfg_.cb.inputFifoFlits < fifo_need) {
        inform("raising cb.inputFifoFlits %d -> %d to fit headers",
               cfg_.cb.inputFifoFlits, fifo_need);
        cfg_.cb.inputFifoFlits = fifo_need;
    }
    if (cfg_.ib.bufferFlits < maxPacketFlits_) {
        inform("raising ib.bufferFlits %d -> %d to fit whole packets",
               cfg_.ib.bufferFlits, maxPacketFlits_);
        cfg_.ib.bufferFlits = maxPacketFlits_;
    }
    if (cfg_.arch == SwitchArch::CentralBuffer &&
        cfg_.sw.replication == ReplicationMode::Synchronous) {
        fatal("synchronous replication requires the input-buffer "
              "architecture: the central queue's store-once readers "
              "are inherently asynchronous");
    }
    if (cfg_.arch == SwitchArch::CentralBuffer) {
        // The shared pool (capacity minus one escape chunk per port)
        // must hold the largest worm plus, on networks with an up
        // phase, the up-phase reservation headroom, or
        // multidestination worms could never be accepted. The
        // unidirectional MIN is forward-only (acyclic by stage), so
        // it needs no headroom.
        const bool multi_stage =
            (cfg_.topo == TopologyKind::FatTree && cfg_.fatTreeN > 1) ||
            cfg_.topo == TopologyKind::Irregular;
        cfg_.cb.maxPacketFlits = multi_stage ? maxPacketFlits_ : 0;
        const int radix = cfg_.topo == TopologyKind::Irregular
                              ? cfg_.irregular.radix
                              : 2 * cfg_.fatTreeK;
        const int chunks_needed =
            (maxPacketFlits_ + cfg_.cb.chunkFlits - 1) /
            cfg_.cb.chunkFlits;
        const int required =
            radix + (multi_stage ? 2 * chunks_needed : chunks_needed);
        if (required > cfg_.cb.cqChunks) {
            fatal("central queue (%d chunks) too small: largest "
                  "packet needs %d chunks%s plus %d escape chunks",
                  cfg_.cb.cqChunks, chunks_needed,
                  multi_stage ? " (x2 for the up-phase headroom)" : "",
                  radix);
        }
    }

    // --- Virtual lanes ----------------------------------------------
    // Environment escape hatch for running a whole test suite under a
    // different lane count (e.g. MDW_LANES=4 in CI); mirrors the
    // MDW_SHARDS / MDW_FAST_PATH overrides.
    if (const char *env = std::getenv("MDW_LANES")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            cfg_.sw.lanes = static_cast<int>(v);
    }
    // NICs must agree with the switches on the lane count: credits
    // and reassembly state are per lane on both sides of a host link.
    cfg_.nic.lanes = cfg_.sw.lanes;

    // --- Components --------------------------------------------------
    cfg_.sw.seed = cfg_.seed;
    for (std::size_t s = 0; s < topo_->numSwitches(); ++s) {
        const SwitchId id = static_cast<SwitchId>(s);
        const SwitchRouting *routing = &topo_->routing().at(id);
        const std::string name = "sw" + std::to_string(s);
        if (cfg_.arch == SwitchArch::CentralBuffer) {
            switches_.push_back(std::make_unique<CentralBufferSwitch>(
                name, id, routing, cfg_.sw, cfg_.cb));
        } else {
            switches_.push_back(std::make_unique<InputBufferSwitch>(
                name, id, routing, cfg_.sw, cfg_.ib));
        }
        sim_.add(switches_.back().get());
    }
    for (std::size_t h = 0; h < hosts; ++h) {
        nics_.push_back(std::make_unique<Nic>(
            "nic" + std::to_string(h), static_cast<NodeId>(h), hosts,
            cfg_.nic, &factory_, &tracker_));
        sim_.add(nics_.back().get());
    }
}

void
Network::wire()
{
    const PortGraph &graph = topo_->graph();

    // src/snk: sending/receiving switch id, or -1 for a NIC endpoint
    // (the sharding pass uses them to find cross-shard channels).
    auto make_flit_channel = [this](const std::string &name, int src,
                                    int snk) {
        flitChannels_.push_back(
            std::make_unique<Channel<Flit>>(name, cfg_.linkDelay));
        flitEnds_.emplace_back(src, snk);
        return flitChannels_.back().get();
    };
    auto make_credit_channel = [this](const std::string &name, int src,
                                      int snk) {
        creditChannels_.push_back(
            std::make_unique<CreditChannel>(name, cfg_.linkDelay));
        creditEnds_.emplace_back(src, snk);
        return creditChannels_.back().get();
    };

    for (std::size_t s = 0; s < graph.numSwitches(); ++s) {
        const SwitchId a = static_cast<SwitchId>(s);
        for (PortId pa = 0; pa < graph.radix(a); ++pa) {
            const PortPeer &peer = graph.peer(a, pa);
            if (peer.isSwitch()) {
                const SwitchId b = peer.sw;
                const PortId pb = peer.port;
                // Wire each switch-switch link once, from the lower
                // (switch, port) endpoint.
                if (std::make_pair(a, pa) > std::make_pair(b, pb))
                    continue;
                const std::string tag = "sw" + std::to_string(a) + ".p" +
                                        std::to_string(pa) + "-sw" +
                                        std::to_string(b) + ".p" +
                                        std::to_string(pb);
                auto *ab = make_flit_channel(tag + ".ab", a, b);
                auto *ba = make_flit_channel(tag + ".ba", b, a);
                // Credits flow against the data direction: cr_ab is
                // sent by b (as it drains a's flits) back to a.
                auto *cr_ab = make_credit_channel(tag + ".cab", b, a);
                auto *cr_ba = make_credit_channel(tag + ".cba", a, b);
                // Remember the link's identity so the transient-fault
                // subsystem can attach per-direction ARQ layers.
                linkRecords_.push_back(
                    LinkRecord{a, pa, b, pb, ab, ba, nullptr, nullptr});
                // a -> b data, with b returning credits on cr_ab.
                switches_[a]->connectOut(pa, ab, cr_ab,
                                         switches_[b]->receivePolicy(pb));
                switches_[b]->connectIn(pb, ab, cr_ab);
                // b -> a data, with a returning credits on cr_ba.
                switches_[b]->connectOut(pb, ba, cr_ba,
                                         switches_[a]->receivePolicy(pa));
                switches_[a]->connectIn(pa, ba, cr_ba);
            } else if (peer.isHost()) {
                const NodeId h = peer.host;
                Nic *nic = nics_[static_cast<std::size_t>(h)].get();
                const std::string tag = "nic" + std::to_string(h) +
                                        "-sw" + std::to_string(a) +
                                        ".p" + std::to_string(pa);
                if (peer.hostRole != PortPeer::HostRole::Eject) {
                    auto *inj = make_flit_channel(tag + ".inj", -1, a);
                    auto *cr_inj =
                        make_credit_channel(tag + ".cinj", a, -1);
                    nic->connectTx(inj, cr_inj,
                                   switches_[a]->receivePolicy(pa));
                    switches_[a]->connectIn(pa, inj, cr_inj);
                }
                if (peer.hostRole != PortPeer::HostRole::Inject) {
                    auto *ej = make_flit_channel(tag + ".ej", a, -1);
                    auto *cr_ej =
                        make_credit_channel(tag + ".cej", -1, a);
                    switches_[a]->connectOut(pa, ej, cr_ej,
                                             nic->receivePolicy());
                    nic->connectRx(ej, cr_ej);
                }
            }
        }
    }
}

void
Network::setupSharding()
{
    std::size_t shards = cfg_.shards;
    if (const char *env = std::getenv("MDW_SHARDS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0')
            shards = static_cast<std::size_t>(v);
    }
    unsigned threads = cfg_.shardThreads;
    if (const char *env = std::getenv("MDW_SHARD_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0')
            threads = static_cast<unsigned>(v);
    }
    cfg_.shards = shards;
    cfg_.shardThreads = threads;
    if (shards <= 1)
        return;
    // Subsystems whose switch-step or channel behavior reaches shared
    // state (ARQ link hooks resolve arrivals with shared RNGs; the
    // resilience layer mutates routing; retransmission needs the
    // tracker's dedup on paths sharding would reorder) force the flat
    // fast path. Results are identical either way.
    if (!sim_.fastPath()) {
        serialReason_ = "fast path disabled";
        return;
    }
    if (resilience_ != nullptr || tracker_.resilient()) {
        serialReason_ = "fault/resilience subsystem configured";
        return;
    }
    shardPlan_ = makeShardPlan(topo_->graph(), shards);
    // Switches (registered first, in id order) go to their planned
    // shard; everything else — NICs now, engines and test components
    // registered later — lives in the serial bucket (= index shards).
    std::vector<std::uint32_t> shardOf(
        sim_.componentCount(), static_cast<std::uint32_t>(shards));
    for (std::size_t s = 0; s < switches_.size(); ++s)
        shardOf[s] = shardPlan_.switchShard[s];
    // Any channel whose *sender* is a parallel switch and whose
    // receiver lives in a different bucket must defer its pushes to
    // the barrier: cross-shard switch links (both data and the
    // reverse credits) and every switch->NIC direction.
    auto shardOfEnd = [&](int sw) {
        return sw < 0 ? static_cast<std::uint32_t>(shards)
                      : shardPlan_.switchShard[static_cast<std::size_t>(
                            sw)];
    };
    for (std::size_t i = 0; i < flitChannels_.size(); ++i) {
        const auto [src, snk] = flitEnds_[i];
        if (src < 0 || shardOfEnd(src) == shardOfEnd(snk))
            continue;
        flitChannels_[i]->setBoundary(&sim_, shardOfEnd(src));
        boundaryFlit_.push_back(flitChannels_[i].get());
    }
    for (std::size_t i = 0; i < creditChannels_.size(); ++i) {
        const auto [src, snk] = creditEnds_[i];
        if (src < 0 || shardOfEnd(src) == shardOfEnd(snk))
            continue;
        creditChannels_[i]->setBoundary(&sim_, shardOfEnd(src));
        boundaryCredit_.push_back(creditChannels_[i].get());
    }
    if (telemetry_.tracer() != nullptr)
        telemetry_.tracer()->setShards(shards);
    sim_.setSharding(std::move(shardOf), shards, threads);
    effectiveShards_ = shards;
}

void
Network::requireSerial(const std::string &why)
{
    serialReason_ = why;
    if (effectiveShards_ == 0)
        return;
    sim_.clearSharding();
    for (Channel<Flit> *ch : boundaryFlit_)
        ch->setBoundary(nullptr, 0);
    for (CreditChannel *ch : boundaryCredit_)
        ch->setBoundary(nullptr, 0);
    boundaryFlit_.clear();
    boundaryCredit_.clear();
    if (telemetry_.tracer() != nullptr)
        telemetry_.tracer()->setShards(0);
    effectiveShards_ = 0;
}

void
Network::registerTelemetry()
{
    // Components register their own stats under hierarchical names
    // ("switch.3.port.2.tx_flits", "nic.7.retransmits") and pick up
    // the shared worm tracer. Called after wire() so per-port
    // registration covers exactly the connected ports.
    for (auto &sw : switches_)
        sw->attachTelemetry(telemetry_);
    for (auto &nic : nics_)
        nic->attachTelemetry(telemetry_);

    MetricsRegistry &reg = telemetry_.registry();

    // End-to-end tracker: the paper's latency metrics plus delivery
    // accounting.
    reg.registerSampler("tracker.latency.unicast",
                        &tracker_.unicastLatency());
    reg.registerSampler("tracker.latency.mcast_last",
                        &tracker_.mcastLastLatency());
    reg.registerSampler("tracker.latency.mcast_avg",
                        &tracker_.mcastAvgLatency());
    reg.registerIntGauge("tracker.deliveries", [this] {
        return tracker_.totalDeliveries();
    });
    reg.registerIntGauge("tracker.completed", [this] {
        return tracker_.totalCompleted();
    });
    reg.registerIntGauge("tracker.window_delivered_flits", [this] {
        return tracker_.windowDeliveredFlits();
    });
    reg.registerIntGauge("tracker.duplicate_deliveries", [this] {
        return tracker_.duplicateDeliveries();
    });
    reg.registerIntGauge("tracker.partial_completed", [this] {
        return tracker_.partialCompleted();
    });
    reg.registerIntGauge("tracker.unreachable_dests", [this] {
        return tracker_.unreachableDests();
    });

    // Fabric-wide rollups of the per-switch counters.
    reg.registerIntGauge("network.flits_in",
                         [this] { return totals().flitsIn; });
    reg.registerIntGauge("network.flits_out",
                         [this] { return totals().flitsOut; });
    reg.registerIntGauge("network.packets_routed",
                         [this] { return totals().packetsRouted; });
    reg.registerIntGauge("network.replications",
                         [this] { return totals().replications; });
    reg.registerIntGauge("network.reservation_stall_cycles", [this] {
        return totals().reservationStallCycles;
    });
    reg.registerGauge("network.cq.avg_chunks",
                      [this] { return avgCqChunks(); });

    // Virtual-lane rollups; registered at every lane count so report
    // validation can assert their presence (they read 0 at lanes=1).
    reg.registerIntGauge("switch.lane.stalls", [this] {
        std::uint64_t total = 0;
        for (const auto &sw : switches_)
            total += sw->stats().laneStallCycles.value();
        return total;
    });
    reg.registerGauge("switch.lane.occupancy", [this] {
        double total = 0.0;
        for (const auto &sw : switches_)
            total += sw->laneOccupancy().average(sim_.now());
        return switches_.empty()
                   ? 0.0
                   : total / static_cast<double>(switches_.size());
    });

    // Host-side rollups (fault recovery activity).
    reg.registerIntGauge("host.retransmits", [this] {
        std::uint64_t total = 0;
        for (const auto &nic : nics_)
            total += nic->stats().retransmits.value();
        return total;
    });
    reg.registerIntGauge("host.poisoned_drops", [this] {
        std::uint64_t total = 0;
        for (const auto &nic : nics_)
            total += nic->stats().poisonedDrops.value();
        return total;
    });
    reg.registerIntGauge("host.csum_fails", [this] {
        std::uint64_t total = 0;
        for (const auto &nic : nics_)
            total += nic->stats().csumFails.value();
        return total;
    });
    reg.registerIntGauge("fault.applied", [this] {
        return resilience_
                   ? static_cast<std::uint64_t>(
                         resilience_->faultsApplied())
                   : 0;
    });

    // Simulation-kernel activity.
    reg.registerIntGauge("sim.events.scheduled", [this] {
        return sim_.events().totalScheduled();
    });
    reg.registerIntGauge("sim.events.fired", [this] {
        return sim_.events().totalFired();
    });
    reg.registerIntGauge("sim.channels.flit_sends", [this] {
        std::uint64_t total = 0;
        for (const auto &ch : flitChannels_)
            total += ch->totalSends();
        return total;
    });
    reg.registerIntGauge("sim.channels.credit_sends", [this] {
        std::uint64_t total = 0;
        for (const auto &ch : creditChannels_)
            total += ch->totalSends();
        return total;
    });
}

Nic &
Network::nic(NodeId id)
{
    MDW_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nics_.size(),
               "node id %d out of range", id);
    return *nics_[static_cast<std::size_t>(id)];
}

SwitchBase &
Network::switchAt(SwitchId id)
{
    MDW_ASSERT(id >= 0 &&
                   static_cast<std::size_t>(id) < switches_.size(),
               "switch id %d out of range", id);
    return *switches_[static_cast<std::size_t>(id)];
}

void
Network::attachWorkload(Workload *workload)
{
    detachWorkload();
    workload_ = workload;
    for (auto &nic : nics_)
        nic->setWorkload(workload);
    workload->setWakeHook([this](NodeId node, Cycle when) {
        nic(node).requestWake(when);
    });
    tracker_.setCompletionHook(
        [workload](MsgId msg, NodeId src, Cycle now) {
            workload->onCompleted(msg, src, now);
        });
}

void
Network::detachWorkload()
{
    if (workload_ == nullptr)
        return;
    for (auto &nic : nics_)
        nic->setWorkload(nullptr);
    tracker_.setCompletionHook(nullptr);
    workload_->setWakeHook(nullptr);
    workload_ = nullptr;
}

bool
Network::idle() const
{
    if (tracker_.inFlight() > 0)
        return false;
    for (const auto &nic : nics_) {
        if (nic->txBacklog() > 0)
            return false;
    }
    return true;
}

std::size_t
Network::totalTxBacklog() const
{
    std::size_t total = 0;
    for (const auto &nic : nics_)
        total += nic->txBacklog();
    return total;
}

void
Network::armWatchdog(Cycle quietLimit)
{
    sim_.setWatchdog(quietLimit, [this] { return !idle(); },
                     [this] { onWatchdogTrip(); });
}

void
Network::onWatchdogTrip()
{
    auto diag = std::make_unique<WatchdogDiagnosis>();
    diag->cycle = sim_.now();
    diag->messagesInFlight = tracker_.inFlight();
    diag->nicBacklogPackets = totalTxBacklog();
    char *buf = nullptr;
    std::size_t len = 0;
    if (FILE *mem = open_memstream(&buf, &len)) {
        dumpState(mem);
        std::fclose(mem);
        diag->stateDump.assign(buf, len);
        std::free(buf);
    }
    if (telemetry_.tracer()) {
        // The tracer's ring holds the most recent lifecycle events —
        // exactly the history that explains what wedged.
        diag->traceJson = telemetry_.tracer()->snapshot().chromeJson();
    }
    warn("watchdog: no progress; %zu messages in flight, %zu packets "
         "queued at NICs (diagnosis recorded)",
         diag->messagesInFlight, diag->nicBacklogPackets);
    diagnosis_ = std::move(diag);
}

bool
Network::checkQuiescent(std::string *why) const
{
    bool ok = true;
    auto complain = [&](const std::string &reason) {
        ok = false;
        if (why) {
            if (!why->empty())
                *why += "; ";
            *why += reason;
        }
    };
    for (const auto &ch : flitChannels_) {
        if (ch->inFlight() != 0)
            complain(ch->name() + ": flits in flight");
    }
    for (const auto &ch : creditChannels_) {
        if (ch->inFlight() != 0)
            complain(ch->name() + ": credits in flight");
    }
    for (const auto &sw : switches_) {
        if (!sw->quiescent(why))
            ok = false;
    }
    for (const auto &nic : nics_) {
        if (!nic->quiescent(why))
            ok = false;
    }
    return ok;
}

NetworkTotals
Network::totalsForShard(std::uint32_t shard) const
{
    NetworkTotals totals;
    for (std::size_t s = 0; s < switches_.size(); ++s) {
        if (effectiveShards_ == 0 ||
            shardPlan_.switchShard[s] != shard)
            continue;
        const SwitchStats &stats = switches_[s]->stats();
        totals.flitsIn += stats.flitsIn.value();
        totals.flitsOut += stats.flitsOut.value();
        totals.packetsRouted += stats.packetsRouted.value();
        totals.replications += stats.replications.value();
        totals.reservationStallCycles +=
            stats.reservationStallCycles.value();
    }
    return totals;
}

NetworkTotals
Network::totals() const
{
    NetworkTotals totals;
    for (const auto &sw : switches_) {
        const SwitchStats &stats = sw->stats();
        totals.flitsIn += stats.flitsIn.value();
        totals.flitsOut += stats.flitsOut.value();
        totals.packetsRouted += stats.packetsRouted.value();
        totals.replications += stats.replications.value();
        totals.reservationStallCycles +=
            stats.reservationStallCycles.value();
    }
    return totals;
}

void
Network::dumpState(FILE *out) const
{
    std::fprintf(out, "network state at cycle %llu: %zu messages in "
                 "flight, %zu packets queued at NICs\n",
                 static_cast<unsigned long long>(sim_.now()),
                 tracker_.inFlight(), totalTxBacklog());
    for (const auto &sw : switches_) {
        if (const auto *cb =
                dynamic_cast<const CentralBufferSwitch *>(sw.get())) {
            cb->dumpState(out);
        } else if (const auto *ib =
                       dynamic_cast<const InputBufferSwitch *>(
                           sw.get())) {
            ib->dumpState(out);
        }
    }
    if (!linkLayers_.empty()) {
        // Retry livelock is diagnosable from this section alone:
        // per-direction replay-buffer occupancy, sequence progress
        // and the last NAK each sender saw.
        std::fprintf(out, "link layers (%zu directions):\n",
                     linkLayers_.size());
        for (const auto &l : linkLayers_) {
            std::fprintf(
                out,
                "  %s: unacked %zu/%d, txSeq %u, rxSeq %u, "
                "replays %llu, naks %llu, timeouts %llu, last NAK ",
                l->name().c_str(), l->replayOccupancy(),
                cfg_.link.replayBufferFlits, l->txSeq(), l->rxSeq(),
                static_cast<unsigned long long>(
                    l->stats().replays.value()),
                static_cast<unsigned long long>(
                    l->stats().naks.value()),
                static_cast<unsigned long long>(
                    l->stats().timeouts.value()));
            if (l->lastNak() == kNoCycle)
                std::fprintf(out, "never");
            else
                std::fprintf(out, "@%llu",
                             static_cast<unsigned long long>(
                                 l->lastNak()));
            std::fprintf(out, "%s\n",
                         l->dead() ? " [escalated/dead]" : "");
        }
    }
}

std::vector<std::uint64_t>
Network::portTxSnapshot() const
{
    std::vector<std::uint64_t> counts;
    for (const auto &sw : switches_) {
        for (PortId p = 0; p < sw->routing().radix(); ++p) {
            if (sw->outConnected(p))
                counts.push_back(sw->portTxFlits(p));
        }
    }
    return counts;
}

double
Network::avgCqChunks() const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto &sw : switches_) {
        if (const auto *cb =
                dynamic_cast<const CentralBufferSwitch *>(sw.get())) {
            sum += cb->avgCqChunks(sim_.now());
            ++count;
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

} // namespace mdw
