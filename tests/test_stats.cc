/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace mdw {
namespace {

TEST(Sampler, EmptyIsZero)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Sampler, MeanAndMinMax)
{
    Sampler s;
    for (double x : {4.0, 8.0, 6.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(Sampler, VarianceMatchesDefinition)
{
    Sampler s;
    const double xs[] = {1, 2, 3, 4, 5};
    for (double x : xs)
        s.add(x);
    // Population variance of 1..5 = 2.
    EXPECT_NEAR(s.variance(), 2.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Sampler, MergeEqualsCombinedStream)
{
    Sampler a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37;
        a.add(x);
        all.add(x);
    }
    for (int i = 0; i < 70; ++i) {
        const double x = 100 - i * 0.21;
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Sampler, MergeWithEmpty)
{
    Sampler a, b;
    a.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Sampler, MergeEmptyIntoEmpty)
{
    Sampler a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Sampler, MergeIsOrderIndependentWithinTolerance)
{
    Sampler a1, b1, a2, b2;
    for (int i = 0; i < 40; ++i) {
        a1.add(3.0 + i * 0.11);
        a2.add(3.0 + i * 0.11);
    }
    for (int i = 0; i < 90; ++i) {
        b1.add(-2.0 + i * 0.43);
        b2.add(-2.0 + i * 0.43);
    }
    a1.merge(b1); // A then B
    b2.merge(a2); // B then A
    EXPECT_EQ(a1.count(), b2.count());
    // Welford merging is not associative in exact FP arithmetic, so
    // mean/variance agree to tolerance, not bitwise.
    EXPECT_NEAR(a1.mean(), b2.mean(), 1e-9);
    EXPECT_NEAR(a1.variance(), b2.variance(), 1e-9);
    // min/max are exact in either order.
    EXPECT_DOUBLE_EQ(a1.min(), b2.min());
    EXPECT_DOUBLE_EQ(a1.max(), b2.max());
}

TEST(Sampler, MergeManyChunksMatchesSingleStream)
{
    // Split one stream into per-run chunks the way the sweep runner
    // does, then merge in submission order.
    Sampler whole;
    Sampler chunks[5];
    for (int i = 0; i < 500; ++i) {
        const double x = (i % 7) * 1.3 - (i % 3) * 0.7 + i * 0.01;
        whole.add(x);
        chunks[i / 100].add(x);
    }
    Sampler merged;
    for (const Sampler &chunk : chunks)
        merged.merge(chunk);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(Sampler, MergeMinMaxFromBothSides)
{
    Sampler a, b;
    a.add(5.0);
    a.add(9.0);
    b.add(-4.0);
    b.add(7.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.min(), -4.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 4u);
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(10.0, 5); // bins [0,50), overflow beyond
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(49.0);
    h.add(50.0);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.0);
}

TEST(Histogram, PercentileAllInOverflowReturnsMax)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    h.add(200.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 200.0);
}

TEST(Histogram, MergeAddsBins)
{
    Histogram a(1.0, 10), b(1.0, 10);
    a.add(1.0);
    b.add(1.5);
    b.add(20.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.bins()[1], 2u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, MergeRebinsFinerIntoCoarser)
{
    Histogram coarse(2.0, 4), fine(1.0, 8);
    coarse.add(1.0); // coarse bin 0
    fine.add(3.0);   // fine bin 3 -> coarse bin 1
    fine.add(5.0);   // fine bin 5 -> coarse bin 2
    coarse.merge(fine);
    EXPECT_DOUBLE_EQ(coarse.binWidth(), 2.0);
    EXPECT_EQ(coarse.count(), 3u);
    EXPECT_EQ(coarse.bins()[0], 1u);
    EXPECT_EQ(coarse.bins()[1], 1u);
    EXPECT_EQ(coarse.bins()[2], 1u);
    EXPECT_EQ(coarse.overflow(), 0u);
}

TEST(Histogram, MergeCoarsensSelfWhenOtherIsWider)
{
    Histogram fine(1.0, 8), coarse(4.0, 2);
    fine.add(0.5);   // fine bin 0 -> rebinned bin 0
    fine.add(6.0);   // fine bin 6 -> rebinned bin 1
    coarse.add(5.0); // coarse bin 1
    fine.merge(coarse);
    EXPECT_DOUBLE_EQ(fine.binWidth(), 4.0);
    EXPECT_EQ(fine.count(), 3u);
    EXPECT_EQ(fine.bins()[0], 1u);
    EXPECT_EQ(fine.bins()[1], 2u);
}

TEST(Histogram, MergeEmptyOtherIsNoOpEvenWithOddWidth)
{
    Histogram a(1.0, 4), empty(0.3, 7);
    a.add(2.0);
    a.merge(empty); // nothing to misfile; must not fatal
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.binWidth(), 1.0);
}

TEST(Histogram, MergeRejectsIncommensurateWidths)
{
    Histogram a(1.0, 4), b(2.5, 4);
    a.add(1.0);
    b.add(1.0);
    EXPECT_DEATH(a.merge(b), "incommensurate bin widths");
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.bins()[0], 1u);
}

TEST(TimeAverage, PiecewiseConstant)
{
    TimeAverage t;
    t.update(0.0, 0);
    t.update(10.0, 100); // value 0 over [0,100)
    t.update(20.0, 200); // value 10 over [100,200)
    // At cycle 200: (0*100 + 10*100) / 200 = 5.
    EXPECT_DOUBLE_EQ(t.average(200), 5.0);
    // At cycle 400, value 20 held for [200,400).
    EXPECT_DOUBLE_EQ(t.average(400), (10.0 * 100 + 20.0 * 200) / 400.0);
    EXPECT_DOUBLE_EQ(t.current(), 20.0);
    EXPECT_DOUBLE_EQ(t.peak(), 20.0);
}

TEST(TimeAverage, ResetKeepsValue)
{
    TimeAverage t;
    t.update(8.0, 10);
    t.reset(100);
    EXPECT_DOUBLE_EQ(t.average(200), 8.0);
    EXPECT_DOUBLE_EQ(t.current(), 8.0);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace mdw
