/**
 * @file
 * Unit tests for the key=value configuration store, plus the
 * warn-once clamping of out-of-range preset values (switch.lanes).
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/config.hh"

namespace mdw {
namespace {

TEST(Config, TypedGettersWithDefaults)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 0.5), 0.5);
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_EQ(c.getString("missing", "x"), "x");
}

TEST(Config, ParsesValues)
{
    Config c;
    c.parseToken("count=42");
    c.parseToken("rate=0.25");
    c.parseToken("name=hello");
    c.parseToken("flag=true");
    EXPECT_EQ(c.getInt("count", 0), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("rate", 0.0), 0.25);
    EXPECT_EQ(c.getString("name", ""), "hello");
    EXPECT_TRUE(c.getBool("flag", false));
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("addr", "0x10");
    EXPECT_EQ(c.getInt("addr", 0), 16);
}

TEST(Config, BoolSpellings)
{
    Config c;
    c.set("a", "1");
    c.set("b", "yes");
    c.set("c", "off");
    c.set("d", "false");
    EXPECT_TRUE(c.getBool("a", false));
    EXPECT_TRUE(c.getBool("b", false));
    EXPECT_FALSE(c.getBool("c", true));
    EXPECT_FALSE(c.getBool("d", true));
}

TEST(Config, OverwriteTakesLastValue)
{
    Config c;
    c.set("k", "1");
    c.set("k", "2");
    EXPECT_EQ(c.getInt("k", 0), 2);
}

TEST(Config, ParseArgsSkipsArgv0)
{
    const char *argv[] = {"prog", "a=1", "b=2"};
    Config c;
    const int n = c.parseArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(n, 2);
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_EQ(c.getInt("b", 0), 2);
}

TEST(Config, UnreadKeysTracksTypos)
{
    Config c;
    c.set("used", "1");
    c.set("typo", "1");
    (void)c.getInt("used", 0);
    const auto unread = c.unreadKeys();
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(unread[0], "typo");
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("b", "1");
    c.set("a", "1");
    const auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

TEST(Config, WarnsOnStderrForUnreadParsedKeysOncePerProcess)
{
    testing::internal::CaptureStderr();
    {
        Config c;
        c.parseToken("definitely.a.typo=1");
        c.set("programmatic", "2"); // set() never arms the warning
    }
    {
        Config c; // same typo again: already warned, stays silent
        c.parseToken("definitely.a.typo=1");
    }
    const std::string err = testing::internal::GetCapturedStderr();
    ASSERT_NE(err.find("definitely.a.typo"), std::string::npos) << err;
    EXPECT_NE(err.find("never read"), std::string::npos) << err;
    EXPECT_EQ(err.find("programmatic"), std::string::npos) << err;
    EXPECT_EQ(err.find("definitely.a.typo"),
              err.rfind("definitely.a.typo"))
        << "warned more than once: " << err;
}

TEST(Config, ReadKeysDoNotWarn)
{
    testing::internal::CaptureStderr();
    {
        Config c;
        c.parseToken("quick=1");
        EXPECT_TRUE(c.getBool("quick", false));
    }
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Config, OutOfRangeLanesClampWithOneWarning)
{
    // An out-of-range switch.lanes= rides the same one-shot warning
    // path as deprecated keys: clamp, warn on first sight, then stay
    // silent for the rest of the process.
    testing::internal::CaptureStderr();
    for (int i = 0; i < 2; ++i) {
        Config cli;
        cli.parseToken("switch.lanes=99");
        NetworkConfig net = defaultNetwork();
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = defaultExperiment();
        applyOverrides(cli, net, traffic, params);
        EXPECT_EQ(net.sw.lanes, kMaxLanes);
    }
    {
        Config cli;
        cli.parseToken("switch.lanes=0");
        NetworkConfig net = defaultNetwork();
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = defaultExperiment();
        applyOverrides(cli, net, traffic, params);
        EXPECT_EQ(net.sw.lanes, 1); // clamps up, too
    }
    const std::string err = testing::internal::GetCapturedStderr();
    ASSERT_NE(err.find("switch.lanes"), std::string::npos) << err;
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
    EXPECT_EQ(err.find("switch.lanes"), err.rfind("switch.lanes"))
        << "warned more than once: " << err;
}

TEST(Config, LaneKnobsParse)
{
    Config cli;
    cli.parseToken("switch.lanes=4");
    cli.parseToken("switch.laneAlloc=adaptive");
    cli.parseToken("workload.mcastClass=1");
    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    applyOverrides(cli, net, traffic, params);
    EXPECT_EQ(net.sw.lanes, 4);
    EXPECT_EQ(net.sw.laneAlloc, LaneAlloc::Adaptive);
    EXPECT_EQ(traffic.mcastClass, 1);
}

TEST(ConfigDeath, BadLaneAllocIsFatal)
{
    Config cli;
    cli.parseToken("switch.laneAlloc=psychic");
    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    EXPECT_DEATH(applyOverrides(cli, net, traffic, params),
                 "unknown lane allocation");
}

TEST(ConfigDeath, MalformedTokenIsFatal)
{
    Config c;
    EXPECT_DEATH(c.parseToken("no-equals"), "not key=value");
    EXPECT_DEATH(c.parseToken("=value"), "not key=value");
}

TEST(ConfigDeath, MalformedNumberIsFatal)
{
    Config c;
    c.set("n", "12abc");
    EXPECT_DEATH((void)c.getInt("n", 0), "not an integer");
    c.set("d", "zz");
    EXPECT_DEATH((void)c.getDouble("d", 0), "not a number");
    c.set("b", "maybe");
    EXPECT_DEATH((void)c.getBool("b", false), "not a boolean");
}

} // namespace
} // namespace mdw
