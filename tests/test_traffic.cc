/**
 * @file
 * Tests for the synthetic and scripted traffic generators.
 */

#include <gtest/gtest.h>

#include "workload/traffic.hh"

namespace mdw {
namespace {

TEST(SyntheticTraffic, RateMatchesLoad)
{
    TrafficParams params;
    params.pattern = TrafficPattern::UniformUnicast;
    params.load = 0.2;
    params.payloadFlits = 50;
    SyntheticTraffic gen(16, params);
    EXPECT_DOUBLE_EQ(gen.messageRate(), 0.004);

    // Over many cycles the per-node message count should match.
    std::vector<MessageSpec> out;
    constexpr Cycle kCycles = 200000;
    for (Cycle c = 0; c < kCycles; ++c)
        gen.poll(3, c, out);
    const double expected = 0.004 * static_cast<double>(kCycles);
    EXPECT_NEAR(static_cast<double>(out.size()), expected,
                expected * 0.1);
}

TEST(SyntheticTraffic, UnicastSpecsAreValid)
{
    TrafficParams params;
    params.pattern = TrafficPattern::UniformUnicast;
    params.load = 0.5;
    params.payloadFlits = 10;
    SyntheticTraffic gen(8, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 5000; ++c)
        gen.poll(2, c, out);
    ASSERT_FALSE(out.empty());
    for (const auto &spec : out) {
        EXPECT_FALSE(spec.multicast);
        EXPECT_NE(spec.dest, 2);
        EXPECT_GE(spec.dest, 0);
        EXPECT_LT(spec.dest, 8);
        EXPECT_EQ(spec.payloadFlits, 10);
    }
}

TEST(SyntheticTraffic, UnicastDestinationsRoughlyUniform)
{
    TrafficParams params;
    params.pattern = TrafficPattern::UniformUnicast;
    params.load = 1.0;
    params.payloadFlits = 1;
    SyntheticTraffic gen(4, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 30000; ++c)
        gen.poll(0, c, out);
    int counts[4] = {};
    for (const auto &spec : out)
        ++counts[spec.dest];
    EXPECT_EQ(counts[0], 0);
    for (int d = 1; d < 4; ++d)
        EXPECT_NEAR(counts[d], out.size() / 3.0, out.size() * 0.05);
}

TEST(SyntheticTraffic, MulticastDegreeAndSelfExclusion)
{
    TrafficParams params;
    params.pattern = TrafficPattern::MultipleMulticast;
    params.load = 0.5;
    params.payloadFlits = 10;
    params.mcastDegree = 5;
    SyntheticTraffic gen(16, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 2000; ++c)
        gen.poll(7, c, out);
    ASSERT_FALSE(out.empty());
    for (const auto &spec : out) {
        EXPECT_TRUE(spec.multicast);
        EXPECT_EQ(spec.dests.count(), 5u);
        EXPECT_FALSE(spec.dests.test(7));
    }
}

TEST(SyntheticTraffic, BimodalFraction)
{
    TrafficParams params;
    params.pattern = TrafficPattern::Bimodal;
    params.load = 1.0;
    params.payloadFlits = 1;
    params.mcastDegree = 3;
    params.mcastFraction = 0.25;
    SyntheticTraffic gen(16, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 40000; ++c)
        gen.poll(1, c, out);
    std::size_t mcasts = 0;
    for (const auto &spec : out)
        mcasts += spec.multicast;
    EXPECT_NEAR(static_cast<double>(mcasts) /
                    static_cast<double>(out.size()),
                0.25, 0.02);
}

TEST(SyntheticTraffic, HonorsStartAndStop)
{
    TrafficParams params;
    params.pattern = TrafficPattern::UniformUnicast;
    params.load = 1.0;
    params.payloadFlits = 1;
    params.startCycle = 100;
    params.stopCycle = 200;
    SyntheticTraffic gen(4, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 100; ++c)
        gen.poll(0, c, out);
    EXPECT_TRUE(out.empty());
    for (Cycle c = 100; c < 500; ++c)
        gen.poll(0, c, out);
    // ~1 message per cycle inside [100, 200) only.
    EXPECT_NEAR(static_cast<double>(out.size()), 100.0, 25.0);
}

TEST(SyntheticTraffic, DeterministicAcrossInstances)
{
    TrafficParams params;
    params.load = 0.3;
    params.payloadFlits = 16;
    SyntheticTraffic a(16, params), b(16, params);
    std::vector<MessageSpec> out_a, out_b;
    for (Cycle c = 0; c < 3000; ++c) {
        a.poll(4, c, out_a);
        b.poll(4, c, out_b);
    }
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i)
        EXPECT_EQ(out_a[i].dests.toVector(), out_b[i].dests.toVector());
}

TEST(SyntheticTraffic, ZeroLoadGeneratesNothing)
{
    TrafficParams params;
    params.pattern = TrafficPattern::UniformUnicast;
    params.load = 0.0;
    SyntheticTraffic gen(8, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 1000; ++c)
        gen.poll(0, c, out);
    EXPECT_TRUE(out.empty());
}

TEST(SyntheticTraffic, HotSpotFractionTargetsHotNode)
{
    TrafficParams params;
    params.pattern = TrafficPattern::HotSpot;
    params.load = 1.0;
    params.payloadFlits = 1;
    params.hotFraction = 0.3;
    params.hotNode = 5;
    SyntheticTraffic gen(16, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 40000; ++c)
        gen.poll(2, c, out);
    std::size_t hot = 0;
    for (const auto &spec : out) {
        EXPECT_FALSE(spec.multicast);
        hot += spec.dest == 5;
    }
    // 0.3 direct + (0.7 / 15) from the uniform remainder.
    const double expect = 0.3 + 0.7 / 15.0;
    EXPECT_NEAR(static_cast<double>(hot) /
                    static_cast<double>(out.size()),
                expect, 0.02);
}

TEST(SyntheticTraffic, HotNodeItselfSendsUniform)
{
    TrafficParams params;
    params.pattern = TrafficPattern::HotSpot;
    params.load = 1.0;
    params.payloadFlits = 1;
    params.hotFraction = 1.0;
    params.hotNode = 0;
    SyntheticTraffic gen(8, params);
    std::vector<MessageSpec> out;
    for (Cycle c = 0; c < 2000; ++c)
        gen.poll(0, c, out); // polling the hot node itself
    ASSERT_FALSE(out.empty());
    for (const auto &spec : out)
        EXPECT_NE(spec.dest, 0); // never to itself
}

TEST(SyntheticTrafficDeath, BadHotNodePanics)
{
    TrafficParams params;
    params.pattern = TrafficPattern::HotSpot;
    params.hotNode = 99;
    EXPECT_DEATH(SyntheticTraffic(8, params), "hot node");
}

TEST(ScriptedTraffic, DeliversAtExactCycles)
{
    ScriptedTraffic script;
    MessageSpec spec;
    spec.dest = 3;
    spec.payloadFlits = 7;
    script.post(10, 1, spec);
    script.post(10, 1, spec);
    script.post(20, 2, spec);
    EXPECT_EQ(script.pending(), 3u);

    std::vector<MessageSpec> out;
    script.poll(1, 9, out);
    EXPECT_TRUE(out.empty());
    script.poll(2, 10, out); // wrong node
    EXPECT_TRUE(out.empty());
    script.poll(1, 10, out);
    EXPECT_EQ(out.size(), 2u);
    script.poll(2, 20, out);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(script.pending(), 0u);
}

// The exact next-event lookup that lets the fast path sleep a NIC
// straight through to its next scripted posting.
TEST(ScriptedTraffic, ExactNextArrival)
{
    ScriptedTraffic script;
    MessageSpec spec;
    spec.dest = 3;
    spec.payloadFlits = 7;
    script.post(10, 1, spec);
    script.post(40, 1, spec);
    script.post(20, 2, spec);

    EXPECT_EQ(script.nextArrival(1, 0), 10u);
    EXPECT_EQ(script.nextArrival(2, 0), 20u);
    EXPECT_EQ(script.nextArrival(0, 0), kNoCycle) << "unscripted node";
    // An overdue posting is reported as "now", never in the past.
    EXPECT_EQ(script.nextArrival(1, 15), 15u);

    std::vector<MessageSpec> out;
    script.poll(1, 15, out);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(script.nextArrival(1, 15), 40u);
    script.poll(1, 40, out);
    EXPECT_EQ(script.nextArrival(1, 41), kNoCycle);
    EXPECT_FALSE(script.exhausted());
    script.poll(2, 20, out);
    EXPECT_TRUE(script.exhausted());
}

} // namespace
} // namespace mdw
