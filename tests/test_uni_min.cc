/**
 * @file
 * Structural, routing, and end-to-end tests for the unidirectional
 * MIN (paper Section 2's other regular topology class).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/presets.hh"
#include "topology/uni_min.hh"

namespace mdw {
namespace {

using Shape = std::pair<int, int>;

class UniMinShapes : public ::testing::TestWithParam<Shape>
{
  protected:
    int k() const { return GetParam().first; }
    int n() const { return GetParam().second; }

    std::size_t
    hosts() const
    {
        return static_cast<std::size_t>(
            std::llround(std::pow(k(), n())));
    }
};

TEST_P(UniMinShapes, Counts)
{
    UniMin t(k(), n());
    EXPECT_EQ(t.numHosts(), hosts());
    EXPECT_EQ(t.numSwitches(),
              static_cast<std::size_t>(n()) * hosts() / k());
    EXPECT_EQ(t.downLevels(), n());
}

TEST_P(UniMinShapes, InjectAndEjectAreSplit)
{
    UniMin t(k(), n());
    for (std::size_t h = 0; h < t.numHosts(); ++h) {
        const NodeId host = static_cast<NodeId>(h);
        const HostAttach &inj = t.graph().injectAttach(host);
        const HostAttach &ej = t.graph().attach(host);
        EXPECT_EQ(t.stageOf(inj.sw), 0);
        EXPECT_EQ(t.stageOf(ej.sw), n() - 1);
        EXPECT_GE(inj.port, k()); // an input-side port
        EXPECT_LT(ej.port, k());  // an output-side port
        if (n() == 1) {
            EXPECT_EQ(inj.sw, ej.sw);
        }
    }
}

TEST_P(UniMinShapes, NoUpPortsAnywhere)
{
    UniMin t(k(), n());
    for (std::size_t s = 0; s < t.numSwitches(); ++s)
        EXPECT_TRUE(t.routing().at(static_cast<SwitchId>(s))
                        .upPorts()
                        .empty());
}

TEST_P(UniMinShapes, FirstStageReachesEverythingDisjointly)
{
    UniMin t(k(), n());
    for (int label = 0; label < t.switchesPerStage(); ++label) {
        const SwitchRouting &sr = t.routing().at(t.switchAt(0, label));
        EXPECT_EQ(sr.allDownReach().count(), t.numHosts());
        DestSet seen(t.numHosts());
        for (PortId c = 0; c < k(); ++c) {
            const DestSet &reach = sr.downReach(c);
            EXPECT_EQ(reach.count(), t.numHosts() / k());
            EXPECT_FALSE(seen.intersects(reach));
            seen |= reach;
        }
    }
}

TEST_P(UniMinShapes, ReachShrinksByKPerStage)
{
    UniMin t(k(), n());
    for (int stage = 0; stage < n(); ++stage) {
        const SwitchRouting &sr =
            t.routing().at(t.switchAt(stage, 0));
        const auto expect = static_cast<std::size_t>(
            std::llround(std::pow(k(), n() - stage)));
        EXPECT_EQ(sr.allDownReach().count(), expect)
            << "stage " << stage;
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, UniMinShapes,
                         ::testing::Values(Shape{2, 1}, Shape{2, 3},
                                           Shape{4, 2}, Shape{4, 3},
                                           Shape{8, 2}, Shape{3, 3}));

/** Every destination of a worm is covered exactly once, stage by
 *  stage. */
TEST(UniMinRouting, MulticastCoversExactlyOnce)
{
    UniMin t(4, 3);
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId src = static_cast<NodeId>(rng.below(64));
        DestSet dests(64);
        const std::size_t degree = 1 + rng.below(30);
        while (dests.count() < degree) {
            const auto d = static_cast<NodeId>(rng.below(64));
            if (d != src)
                dests.set(d);
        }
        // Walk stage by stage from the injection switch.
        struct Leg
        {
            SwitchId sw;
            DestSet dests;
        };
        std::vector<Leg> legs{
            {t.graph().injectAttach(src).sw, dests}};
        DestSet delivered(64);
        while (!legs.empty()) {
            const Leg leg = legs.back();
            legs.pop_back();
            const RouteDecision route = t.routing().at(leg.sw).decode(
                leg.dests, RoutingVariant::ReplicateAfterLca);
            ASSERT_FALSE(route.needsUp());
            for (const auto &[port, sub] : route.downBranches) {
                const PortPeer &peer = t.graph().peer(leg.sw, port);
                if (peer.isHost()) {
                    ASSERT_EQ(sub.count(), 1u);
                    ASSERT_FALSE(delivered.test(peer.host));
                    delivered.set(peer.host);
                } else {
                    legs.push_back(Leg{peer.sw, sub});
                }
            }
        }
        EXPECT_EQ(delivered, dests);
    }
}

class UniMinE2e
    : public ::testing::TestWithParam<std::tuple<SwitchArch,
                                                 McastScheme>>
{
};

TEST_P(UniMinE2e, RandomTrafficDrains)
{
    const auto [arch, scheme] = GetParam();
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::UniMin;
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.arch = arch;
    config.nic.scheme = scheme;
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::Bimodal;
    traffic.load = 0.08;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 6;
    traffic.mcastFraction = 0.3;
    traffic.stopCycle = 8000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(30000);
    net.sim().run(8000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 500000);
    EXPECT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndSchemes, UniMinE2e,
    ::testing::Combine(::testing::Values(SwitchArch::CentralBuffer,
                                         SwitchArch::InputBuffer),
                       ::testing::Values(McastScheme::Hardware,
                                         McastScheme::Software)));

TEST(UniMinE2eSingle, EveryPacketTraversesAllStages)
{
    // Unicast to a neighbor still crosses n stages (no LCA shortcut):
    // zero-load latency is the same for near and far destinations.
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::UniMin;
    config.fatTreeK = 4;
    config.fatTreeN = 3;
    config.nic.sendOverhead = 0;
    auto latency = [&config](NodeId dest) {
        Network net(config);
        net.nic(0).postUnicast(dest, 64, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 10000);
        return net.tracker().unicastLatency().mean();
    };
    EXPECT_DOUBLE_EQ(latency(1), latency(63));
}

TEST(UniMinE2eSingle, MulticastWithMultiportEncoding)
{
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::UniMin;
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.encoding = McastEncoding::Multiport;
    Network net(config);
    net.nic(0).postMulticast(DestSet::of(16, {1, 5, 9, 13}), 32, 0);
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(net.tracker().totalDeliveries(), 4u);
}

TEST(UniMinE2eSingle, BroadcastStormDrains)
{
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::UniMin;
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.4;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 15;
    traffic.stopCycle = 3000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(3000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 2000000));
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
}

} // namespace
} // namespace mdw
