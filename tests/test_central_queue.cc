/**
 * @file
 * Unit tests for the chunked, reference-counted central queue.
 */

#include <gtest/gtest.h>

#include "switch/central_queue.hh"

namespace mdw {
namespace {

PacketPtr
makePkt(int header, int payload, std::size_t ndests = 1)
{
    PacketDesc proto;
    proto.id = 1;
    proto.src = 0;
    proto.dests = DestSet(16);
    for (std::size_t i = 0; i < ndests; ++i)
        proto.dests.set(static_cast<NodeId>(i + 1));
    proto.kind =
        ndests > 1 ? PacketKind::HwMulticast : PacketKind::Unicast;
    proto.headerFlits = header;
    proto.payloadFlits = payload;
    return std::make_shared<const PacketDesc>(std::move(proto));
}

TEST(CentralQueue, ChunksFor)
{
    CentralQueue cq(CqParams{16, 8});
    EXPECT_EQ(cq.chunksFor(1), 1);
    EXPECT_EQ(cq.chunksFor(8), 1);
    EXPECT_EQ(cq.chunksFor(9), 2);
    EXPECT_EQ(cq.chunksFor(64), 8);
}

TEST(CentralQueue, ReservationChargesWholePacket)
{
    CentralQueue cq(CqParams{16, 8});
    EXPECT_TRUE(cq.canReserve(20)); // 3 chunks
    const auto id = cq.addReserved(makePkt(4, 16, 3), 3);
    EXPECT_EQ(cq.usedChunks(), 3);
    EXPECT_EQ(cq.freeChunks(), 13);
    EXPECT_TRUE(cq.alive(id));
}

TEST(CentralQueue, CanReserveRespectsCapacity)
{
    CentralQueue cq(CqParams{4, 8});
    EXPECT_TRUE(cq.canReserve(32));
    EXPECT_FALSE(cq.canReserve(33));
    (void)cq.addReserved(makePkt(4, 20, 2), 2); // 3 chunks
    EXPECT_TRUE(cq.canReserve(8));
    EXPECT_FALSE(cq.canReserve(9));
}

TEST(CentralQueue, UnreservedGrowsChunksOnWrite)
{
    CentralQueue cq(CqParams{16, 8});
    const auto id = cq.addUnreserved(makePkt(2, 18)); // 20 flits
    EXPECT_EQ(cq.usedChunks(), 0);
    cq.write(id, 5);
    EXPECT_EQ(cq.usedChunks(), 1);
    cq.write(id, 3); // exactly fills chunk 0
    EXPECT_EQ(cq.usedChunks(), 1);
    cq.write(id, 1);
    EXPECT_EQ(cq.usedChunks(), 2);
}

TEST(CentralQueue, WritableLimitedByFreeChunksForUnreserved)
{
    CentralQueue cq(CqParams{2, 8});
    const auto id = cq.addUnreserved(makePkt(2, 30)); // 32 flits
    EXPECT_EQ(cq.writable(id), 16);
    cq.write(id, 16);
    EXPECT_EQ(cq.writable(id), 0); // full
}

TEST(CentralQueue, ReadableIsChunkGranular)
{
    CentralQueue cq(CqParams{16, 8});
    const auto id = cq.addReserved(makePkt(4, 16, 1), 1); // 20 flits
    cq.write(id, 7);
    EXPECT_EQ(cq.readable(id, 0), 0); // partial chunk not visible
    cq.write(id, 1);
    EXPECT_EQ(cq.readable(id, 0), 8);
    cq.write(id, 12); // complete (20 written)
    EXPECT_EQ(cq.readable(id, 0), 20); // tail readable though partial
}

TEST(CentralQueue, SingleReaderLifecycle)
{
    CentralQueue cq(CqParams{16, 8});
    const auto id = cq.addReserved(makePkt(4, 12, 1), 1); // 16 flits
    EXPECT_EQ(cq.usedChunks(), 2);
    cq.write(id, 16);
    EXPECT_EQ(cq.read(id, 0, 8), 8);
    EXPECT_EQ(cq.usedChunks(), 1); // first chunk recycled
    EXPECT_EQ(cq.read(id, 0, 8), 8);
    EXPECT_FALSE(cq.alive(id)); // fully consumed -> erased
    EXPECT_EQ(cq.usedChunks(), 0);
}

TEST(CentralQueue, MulticastStoredOnceReadByAllBranches)
{
    CentralQueue cq(CqParams{16, 8});
    // 3 readers share ONE copy: 2 chunks charged, not 6.
    const auto id = cq.addReserved(makePkt(4, 12, 3), 3);
    EXPECT_EQ(cq.usedChunks(), 2);
    cq.write(id, 16);

    // Fast reader drains fully; chunks must stay for the others.
    EXPECT_EQ(cq.read(id, 0, 16), 16);
    EXPECT_EQ(cq.usedChunks(), 2);
    EXPECT_TRUE(cq.alive(id));

    // Second reader takes the first chunk only.
    EXPECT_EQ(cq.read(id, 1, 8), 8);
    EXPECT_EQ(cq.usedChunks(), 2); // reader 2 still at 0

    // Slowest reader passes chunk 0 -> it is recycled.
    EXPECT_EQ(cq.read(id, 2, 8), 8);
    EXPECT_EQ(cq.usedChunks(), 1);

    // Everyone finishes.
    EXPECT_EQ(cq.read(id, 1, 8), 8);
    EXPECT_EQ(cq.read(id, 2, 8), 8);
    EXPECT_FALSE(cq.alive(id));
    EXPECT_EQ(cq.usedChunks(), 0);
}

TEST(CentralQueue, ReadBoundedByRequestAndReadable)
{
    CentralQueue cq(CqParams{16, 8});
    const auto id = cq.addReserved(makePkt(2, 14, 1), 1); // 16 flits
    cq.write(id, 8);
    EXPECT_EQ(cq.read(id, 0, 3), 3);
    EXPECT_EQ(cq.read(id, 0, 100), 5);
    EXPECT_EQ(cq.read(id, 0, 8), 0); // nothing written yet
}

TEST(CentralQueue, CutThroughWriteReadInterleave)
{
    CentralQueue cq(CqParams{4, 8});
    const auto id = cq.addReserved(makePkt(4, 28, 1), 1); // 32 flits
    EXPECT_EQ(cq.usedChunks(), 4);
    for (int round = 0; round < 4; ++round) {
        cq.write(id, 8);
        EXPECT_EQ(cq.read(id, 0, 8), 8);
    }
    EXPECT_FALSE(cq.alive(id));
    EXPECT_EQ(cq.usedChunks(), 0);
}

TEST(CentralQueue, EntryCountTracksResidents)
{
    CentralQueue cq(CqParams{16, 8});
    const auto a = cq.addUnreserved(makePkt(2, 6));
    const auto b = cq.addUnreserved(makePkt(2, 6));
    EXPECT_EQ(cq.entryCount(), 2u);
    cq.write(a, 8);
    cq.write(b, 8);
    (void)cq.read(a, 0, 8);
    EXPECT_EQ(cq.entryCount(), 1u);
    (void)cq.read(b, 0, 8);
    EXPECT_EQ(cq.entryCount(), 0u);
}

TEST(CentralQueue, EscapeChunkLetsCurrentStreamTrickle)
{
    // 4 chunks, 2 in the escape reserve: the shared pool holds 2.
    CentralQueue cq(CqParams{4, 8, 2});
    EXPECT_EQ(cq.sharedCapacity(), 2);

    const auto hog = cq.addUnreserved(makePkt(2, 14)); // 16 flits
    cq.write(hog, 16); // consumes the whole shared pool
    EXPECT_EQ(cq.freeChunks(), 0);

    const auto cur = cq.addUnreserved(makePkt(2, 22)); // 24 flits
    EXPECT_EQ(cq.writable(cur), 0); // shared pool exhausted

    // Once it becomes an output's current stream, it may take ONE
    // escape chunk at a time.
    cq.grantEscape(cur);
    EXPECT_EQ(cq.writable(cur), 8);
    cq.write(cur, 8);
    EXPECT_EQ(cq.writable(cur), 0); // escape chunk outstanding

    // Reading recycles the escape chunk, enabling the next write.
    EXPECT_EQ(cq.read(cur, 0, 8), 8);
    EXPECT_EQ(cq.writable(cur), 8);
    cq.write(cur, 8);
    EXPECT_EQ(cq.read(cur, 0, 8), 8);
    cq.write(cur, 8);
    EXPECT_EQ(cq.read(cur, 0, 8), 8);
    EXPECT_FALSE(cq.alive(cur)); // trickled through completely
    EXPECT_EQ(cq.usedChunks(), 2); // only the hog remains
}

TEST(CentralQueue, EscapeReserveBoundsOutstandingEscapes)
{
    CentralQueue cq(CqParams{3, 8, 1});
    const auto hog = cq.addUnreserved(makePkt(2, 14));
    cq.write(hog, 16); // shared pool (2 chunks) gone

    const auto a = cq.addUnreserved(makePkt(2, 14));
    const auto b = cq.addUnreserved(makePkt(2, 14));
    cq.grantEscape(a);
    cq.grantEscape(b);
    cq.write(a, 8); // takes the single escape chunk
    EXPECT_EQ(cq.writable(b), 0); // escape pool exhausted too
    EXPECT_EQ(cq.read(a, 0, 8), 8);
    EXPECT_EQ(cq.writable(b), 8); // recycled escape chunk available
}

TEST(CentralQueue, ReservedEntriesIgnoreEscape)
{
    CentralQueue cq(CqParams{8, 8, 2});
    const auto id = cq.addReserved(makePkt(2, 14, 2), 2);
    cq.grantEscape(id); // must be a no-op
    EXPECT_EQ(cq.writable(id), 16);
    EXPECT_EQ(cq.usedChunks(), 2);
}

TEST(CentralQueue, ReservationExcludesEscapeReserve)
{
    CentralQueue cq(CqParams{6, 8, 2});
    // Shared capacity is 4 chunks = 32 flits.
    EXPECT_TRUE(cq.canReserve(32));
    EXPECT_FALSE(cq.canReserve(33));
}

TEST(CentralQueue, UpPhaseHeadroomGatesReservations)
{
    CqParams params{10, 8, 0};
    params.upPhaseHeadroom = 4;
    CentralQueue cq(params);
    // Down-phase: the whole pool. Up-phase: must leave 4 chunks.
    EXPECT_TRUE(cq.canReserve(80, false));
    EXPECT_FALSE(cq.canReserve(80, true));
    EXPECT_TRUE(cq.canReserve(48, true)); // 6 chunks + 4 headroom
    EXPECT_FALSE(cq.canReserve(49, true));
}

TEST(CentralQueueDeath, OverReservationPanics)
{
    CentralQueue cq(CqParams{2, 8});
    EXPECT_DEATH((void)cq.addReserved(makePkt(4, 28, 1), 1),
                 "reservation");
}

TEST(CentralQueueDeath, OverWritePanics)
{
    CentralQueue cq(CqParams{16, 8});
    const auto id = cq.addReserved(makePkt(2, 6, 1), 1);
    EXPECT_DEATH(cq.write(id, 9), "invalid write");
}

TEST(CentralQueueDeath, UnknownEntryPanics)
{
    CentralQueue cq(CqParams{16, 8});
    EXPECT_DEATH((void)cq.written(42), "not found");
}

} // namespace
} // namespace mdw
