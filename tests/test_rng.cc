/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "sim/rng.hh"

namespace mdw {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int kBuckets = 8;
    constexpr int kSamples = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.below(kBuckets)];
    const double expected = kSamples / static_cast<double>(kBuckets);
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i)
        sum += rng.exponential(40.0);
    EXPECT_NEAR(sum / 50000.0, 40.0, 2.0);
}

TEST(Rng, GeometricGapMeanIsInverseRate)
{
    Rng rng(31);
    const double p = 0.05;
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
        const auto gap = rng.geometricGap(p);
        ASSERT_GE(gap, 1u);
        sum += static_cast<double>(gap);
    }
    EXPECT_NEAR(sum / kSamples, 1.0 / p, 1.0);
}

TEST(Rng, GeometricGapAtProbabilityOne)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometricGap(1.0), 1u);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng root(41);
    Rng a = root.fork(5);
    Rng b = Rng(41).fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForksWithDifferentTagsDiffer)
{
    Rng root(43);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, StreamSeedIsDeterministic)
{
    for (std::uint64_t index : {0ULL, 1ULL, 17ULL, 1000000ULL}) {
        EXPECT_EQ(Rng::streamSeed(42, index),
                  Rng::streamSeed(42, index));
    }
}

TEST(Rng, StreamSeedsDistinctAcrossIndices)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seeds.insert(Rng::streamSeed(42, i));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, StreamSeedDependsOnBase)
{
    int same = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        same += Rng::streamSeed(1, i) == Rng::streamSeed(2, i);
    EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsLookIndependent)
{
    // Adjacent run indices — the sweep runner's layout — must give
    // uncorrelated streams.
    Rng a(Rng::streamSeed(42, 0));
    Rng b(Rng::streamSeed(42, 1));
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, StreamSeedsOfNearbyBasesGiveDistinctStreams)
{
    // Bases 1 and 2 with interleaved indices must not collide into
    // the same stream family.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base = 1; base <= 8; ++base)
        for (std::uint64_t i = 0; i < 64; ++i)
            seeds.insert(Rng::streamSeed(base, i));
    EXPECT_EQ(seeds.size(), 8u * 64u);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(47);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(v, shuffled);
}

} // namespace
} // namespace mdw
