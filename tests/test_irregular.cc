/**
 * @file
 * Property tests for random irregular (NOW) topologies with
 * up*-down* orientation, across seeds.
 */

#include <gtest/gtest.h>

#include "topology/irregular.hh"

namespace mdw {
namespace {

class IrregularSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IrregularSeeds, StructureIsSound)
{
    IrregularParams params; // 16 switches, radix 8, 32 hosts
    IrregularTopology t(params, Rng(GetParam()));
    // finalize() already validated the graph, connectivity, and the
    // acyclicity of the down-link orientation (it would have
    // panicked otherwise).
    EXPECT_EQ(t.numHosts(), 32u);
    EXPECT_EQ(t.numSwitches(), 16u);
    EXPECT_EQ(t.levelOf(0), 0);
    EXPECT_GE(t.downLevels(), 1);
}

TEST_P(IrregularSeeds, EverySwitchCanCoverEveryHost)
{
    IrregularParams params;
    IrregularTopology t(params, Rng(GetParam()));
    for (std::size_t s = 0; s < t.numSwitches(); ++s) {
        const SwitchRouting &sr =
            t.routing().at(static_cast<SwitchId>(s));
        // Either everything is reachable downward, or the switch has
        // an up port to climb toward the root.
        if (sr.upPorts().empty())
            EXPECT_EQ(sr.allDownReach().count(), t.numHosts());
        else
            EXPECT_FALSE(sr.upPorts().empty());
    }
}

TEST_P(IrregularSeeds, UpPortsPointCloserToRoot)
{
    IrregularParams params;
    IrregularTopology t(params, Rng(GetParam()));
    for (std::size_t s = 0; s < t.numSwitches(); ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        for (PortId p = 0; p < t.graph().radix(sw); ++p) {
            const PortPeer &peer = t.graph().peer(sw, p);
            if (!peer.isSwitch())
                continue;
            const auto self_key =
                std::make_pair(t.levelOf(sw), sw);
            const auto peer_key =
                std::make_pair(t.levelOf(peer.sw), peer.sw);
            if (t.portDir(sw, p) == PortDir::Up)
                EXPECT_LT(peer_key, self_key);
            else
                EXPECT_GT(peer_key, self_key);
        }
    }
}

TEST_P(IrregularSeeds, HostPortsAreDown)
{
    IrregularParams params;
    IrregularTopology t(params, Rng(GetParam()));
    for (std::size_t h = 0; h < t.numHosts(); ++h) {
        const HostAttach &at =
            t.graph().attach(static_cast<NodeId>(h));
        EXPECT_EQ(t.portDir(at.sw, at.port), PortDir::Down);
    }
}

TEST_P(IrregularSeeds, SameSeedSameNetwork)
{
    IrregularParams params;
    IrregularTopology a(params, Rng(GetParam()));
    IrregularTopology b(params, Rng(GetParam()));
    ASSERT_EQ(a.numSwitches(), b.numSwitches());
    for (std::size_t s = 0; s < a.numSwitches(); ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        for (PortId p = 0; p < a.graph().radix(sw); ++p) {
            const PortPeer &pa = a.graph().peer(sw, p);
            const PortPeer &pb = b.graph().peer(sw, p);
            EXPECT_EQ(pa.kind, pb.kind);
            EXPECT_EQ(pa.sw, pb.sw);
            EXPECT_EQ(pa.host, pb.host);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

TEST(Irregular, SingleSwitchDegenerateCase)
{
    IrregularParams params;
    params.switches = 1;
    params.radix = 8;
    params.hosts = 6;
    params.extraLinks = 0;
    IrregularTopology t(params, Rng(7));
    EXPECT_EQ(t.numSwitches(), 1u);
    EXPECT_EQ(t.downLevels(), 1);
    const SwitchRouting &sr = t.routing().at(0);
    EXPECT_EQ(sr.allDownReach().count(), 6u);
}

TEST(IrregularDeath, InsufficientPortsIsFatal)
{
    IrregularParams params;
    params.switches = 2;
    params.radix = 2;
    params.hosts = 8;
    params.extraLinks = 0;
    EXPECT_DEATH(IrregularTopology(params, Rng(1)), "ports");
}

TEST(Irregular, DescribeMentionsShape)
{
    IrregularParams params;
    IrregularTopology t(params, Rng(3));
    EXPECT_NE(t.describe().find("irregular NOW"), std::string::npos);
}

} // namespace
} // namespace mdw
