/**
 * @file
 * Tests for the binomial software-multicast planner.
 */

#include <gtest/gtest.h>

#include <set>

#include "host/sw_mcast.hh"

namespace mdw {
namespace {

/** Recursively execute the plan and collect every reached node. */
void
execute(NodeId self, const std::vector<NodeId> &cover,
        std::set<NodeId> &reached, int depth, int &maxDepth)
{
    maxDepth = std::max(maxDepth, depth);
    for (const SwSend &send : planBinomialSends(self, cover)) {
        ASSERT_NE(send.target, self);
        ASSERT_TRUE(reached.insert(send.target).second)
            << "node " << send.target << " reached twice";
        execute(send.target, send.delegated, reached, depth + 1,
                maxDepth);
    }
}

TEST(BinomialPhases, MatchesCeilLog2)
{
    EXPECT_EQ(binomialPhases(0), 0);
    EXPECT_EQ(binomialPhases(1), 1);
    EXPECT_EQ(binomialPhases(2), 2);
    EXPECT_EQ(binomialPhases(3), 2);
    EXPECT_EQ(binomialPhases(4), 3);
    EXPECT_EQ(binomialPhases(7), 3);
    EXPECT_EQ(binomialPhases(8), 4);
    EXPECT_EQ(binomialPhases(63), 6);
}

TEST(PlanBinomial, EmptyCoverNeedsNoSends)
{
    EXPECT_TRUE(planBinomialSends(0, {}).empty());
}

TEST(PlanBinomial, SingleDestination)
{
    const auto sends = planBinomialSends(0, {5});
    ASSERT_EQ(sends.size(), 1u);
    EXPECT_EQ(sends[0].target, 5);
    EXPECT_TRUE(sends[0].delegated.empty());
}

TEST(PlanBinomial, SourceSendCountIsPhaseCount)
{
    for (std::size_t d = 1; d <= 40; ++d) {
        std::vector<NodeId> cover;
        for (std::size_t i = 1; i <= d; ++i)
            cover.push_back(static_cast<NodeId>(i));
        const auto sends = planBinomialSends(0, cover);
        EXPECT_EQ(static_cast<int>(sends.size()), binomialPhases(d))
            << "d=" << d;
    }
}

class BinomialCoverage : public ::testing::TestWithParam<int>
{
};

TEST_P(BinomialCoverage, EveryNodeReachedExactlyOnce)
{
    const int d = GetParam();
    std::vector<NodeId> cover;
    for (int i = 1; i <= d; ++i)
        cover.push_back(static_cast<NodeId>(i * 3)); // arbitrary ids
    std::set<NodeId> reached;
    int max_depth = 0;
    execute(0, cover, reached, 0, max_depth);
    EXPECT_EQ(reached.size(), static_cast<std::size_t>(d));
    for (NodeId n : cover)
        EXPECT_TRUE(reached.count(n));
    // The tree is never deeper than the phase count (the critical
    // path is the source's send sequence, not the tree depth).
    EXPECT_LE(max_depth, binomialPhases(static_cast<std::size_t>(d)));
    EXPECT_GE(max_depth, 1);
}

INSTANTIATE_TEST_SUITE_P(Degrees, BinomialCoverage,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16,
                                           31, 33, 63, 100));

TEST(PlanBinomialDeath, SelfInCoverPanics)
{
    EXPECT_DEATH((void)planBinomialSends(3, {1, 3}), "cover itself");
}

} // namespace
} // namespace mdw
