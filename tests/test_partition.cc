/**
 * @file
 * Unit tests for the deterministic switch partitioner: full coverage,
 * exact boundary cut, balance, degenerate shapes, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "topology/fat_tree.hh"
#include "topology/irregular.hh"
#include "topology/partition.hh"

namespace mdw {
namespace {

using Cut = std::set<std::tuple<SwitchId, PortId, SwitchId, PortId>>;

/** Independently enumerate every cut switch-switch link, once, from
 *  its lower (switch, port) endpoint. */
Cut
expectedCut(const PortGraph &graph, const ShardPlan &plan)
{
    Cut cut;
    for (SwitchId a = 0;
         a < static_cast<SwitchId>(graph.numSwitches()); ++a) {
        for (PortId pa = 0; pa < static_cast<PortId>(graph.radix(a));
             ++pa) {
            const PortPeer &peer = graph.peer(a, pa);
            if (!peer.isSwitch())
                continue;
            if (std::make_pair(a, pa) >
                std::make_pair(peer.sw, peer.port))
                continue;
            if (plan.switchShard[static_cast<std::size_t>(a)] !=
                plan.switchShard[static_cast<std::size_t>(peer.sw)])
                cut.emplace(a, pa, peer.sw, peer.port);
        }
    }
    return cut;
}

void
checkPlan(const PortGraph &graph, std::size_t shards)
{
    const ShardPlan plan = makeShardPlan(graph, shards);
    ASSERT_EQ(plan.shards, shards);
    ASSERT_EQ(plan.switchShard.size(), graph.numSwitches());

    // Total coverage: every switch lands in a valid shard.
    for (std::uint32_t s : plan.switchShard)
        EXPECT_LT(s, shards);

    // The recorded boundary is exactly the set of cross-shard links:
    // each cut link appears exactly once and no intra-shard link
    // appears at all.
    const Cut expected = expectedCut(graph, plan);
    Cut recorded;
    for (const BoundaryLink &link : plan.boundaryLinks) {
        const auto [it, inserted] =
            recorded.emplace(link.a, link.pa, link.b, link.pb);
        (void)it;
        EXPECT_TRUE(inserted)
            << "link (" << link.a << "," << link.pa
            << ") recorded twice";
        EXPECT_NE(plan.switchShard[static_cast<std::size_t>(link.a)],
                  plan.switchShard[static_cast<std::size_t>(link.b)]);
    }
    EXPECT_EQ(recorded, expected);

    // countIn agrees with the assignment vector.
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < shards; ++s)
        total += plan.countIn(s);
    EXPECT_EQ(total, graph.numSwitches());
}

TEST(Partition, FatTreeCutIsExact)
{
    for (std::size_t shards : {2u, 3u, 4u, 8u}) {
        FatTree t(4, 3); // 64 hosts, 48 switches
        checkPlan(t.graph(), shards);
    }
}

TEST(Partition, IrregularCutIsExact)
{
    for (std::uint64_t seed : {1u, 7u, 42u}) {
        IrregularTopology t(IrregularParams{}, Rng(seed));
        for (std::size_t shards : {2u, 4u})
            checkPlan(t.graph(), shards);
    }
}

TEST(Partition, EdgeSwitchHostLoadIsBalanced)
{
    FatTree t(4, 3); // 16 leaf switches x 4 hosts
    const ShardPlan plan = makeShardPlan(t.graph(), 4);
    // Each shard should serve ~16 of the 64 hosts; the cumulative-cut
    // rule makes the split exact for uniform leaves.
    std::vector<std::size_t> hosts(4, 0);
    for (std::size_t h = 0; h < t.numHosts(); ++h) {
        const HostAttach &at =
            t.graph().attach(static_cast<NodeId>(h));
        hosts[plan.switchShard[static_cast<std::size_t>(at.sw)]] += 1;
    }
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(hosts[s], 16u) << "shard " << s;
    // And no shard is starved of switches.
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_GT(plan.countIn(s), 0u) << "shard " << s;
}

TEST(Partition, OneShardDegeneratesToFlat)
{
    FatTree t(4, 2);
    const ShardPlan plan = makeShardPlan(t.graph(), 1);
    EXPECT_TRUE(plan.boundaryLinks.empty());
    for (std::uint32_t s : plan.switchShard)
        EXPECT_EQ(s, 0u);
}

TEST(Partition, MoreShardsThanSwitchesIsValid)
{
    FatTree t(2, 2); // 4 hosts, 4 switches
    const std::size_t shards = 16;
    checkPlan(t.graph(), shards);
    const ShardPlan plan = makeShardPlan(t.graph(), shards);
    // Surplus shards stay empty; every switch still has a home.
    std::size_t populated = 0;
    for (std::uint32_t s = 0; s < shards; ++s)
        populated += plan.countIn(s) > 0 ? 1 : 0;
    EXPECT_LE(populated, t.numSwitches());
    EXPECT_GE(populated, 1u);
}

TEST(Partition, PlanIsDeterministic)
{
    IrregularTopology t(IrregularParams{}, Rng(99));
    const ShardPlan a = makeShardPlan(t.graph(), 4);
    const ShardPlan b = makeShardPlan(t.graph(), 4);
    EXPECT_EQ(a.switchShard, b.switchShard);
    ASSERT_EQ(a.boundaryLinks.size(), b.boundaryLinks.size());
    for (std::size_t i = 0; i < a.boundaryLinks.size(); ++i) {
        EXPECT_EQ(a.boundaryLinks[i].a, b.boundaryLinks[i].a);
        EXPECT_EQ(a.boundaryLinks[i].pa, b.boundaryLinks[i].pa);
        EXPECT_EQ(a.boundaryLinks[i].b, b.boundaryLinks[i].b);
        EXPECT_EQ(a.boundaryLinks[i].pb, b.boundaryLinks[i].pb);
    }
}

} // namespace
} // namespace mdw
