/**
 * @file
 * Differential golden-stats harness for the schedulers: a three-way
 * oracle.
 *
 * Every figure/ablation-style configuration is run on the
 * cycle-accurate oracle (sim.fastPath=0), on the idle-skipping fast
 * path, and on the sharded scheduler (sim.shards=2 and 4), and all
 * ExperimentResults must match bit for bit: every MetricsSnapshot
 * entry (counters, gauges, histogram bins), every verdict flag, the
 * cycle count, and (when tracing is on) the exact WormTracer event
 * sequence. A dedicated test sweeps shard counts {1,2,4,8} and thread
 * counts (inline and pooled), and a randomized property test hammers
 * the same equivalences over random topologies, bimodal workloads,
 * and fault plans.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/hw_barrier.hh"
#include "core/network.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "switch/arbiter.hh"
#include "workload/traffic.hh"

namespace mdw {
namespace {

/** Phase lengths small enough to run ~20 configs in a test binary. */
Config
baseOverrides()
{
    Config config;
    config.set("warmup", "800");
    config.set("measure", "2000");
    config.set("drainLimit", "60000");
    config.set("watchdog", "40000");
    return config;
}

ExperimentResult
runMode(const Config &config, bool fastPath, std::size_t shards = 1,
        unsigned shardThreads = 1)
{
    NetworkConfig network = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    applyOverrides(config, network, traffic, params);
    network.fastPath = fastPath;
    network.shards = shards;
    network.shardThreads = shardThreads;
    Experiment experiment(network, traffic, params);
    return experiment.run();
}

/** Append "key=value ..." tokens onto the base config. */
Config
withTokens(const std::string &tokens)
{
    Config config = baseOverrides();
    std::istringstream stream(tokens);
    std::string token;
    while (stream >> token)
        config.parseToken(token);
    return config;
}

/** Human-readable first-difference report between two snapshots. */
std::string
diffSnapshots(const MetricsSnapshot &a, const MetricsSnapshot &b)
{
    std::string out;
    for (const auto &entry : a.entries()) {
        if (!b.has(entry.first)) {
            out += "missing in fast: " + entry.first + "; ";
            continue;
        }
        const auto it = b.entries().find(entry.first);
        if (!entry.second.identical(it->second))
            out += "differs: " + entry.first + "; ";
    }
    for (const auto &entry : b.entries()) {
        if (!a.has(entry.first))
            out += "missing in slow: " + entry.first + "; ";
    }
    return out.empty() ? "(no metric diff -- flags/cycles differ)"
                       : out;
}

void
expectSame(const ExperimentResult &ref, const ExperimentResult &got,
           const std::string &tokens, const char *mode)
{
    EXPECT_TRUE(identicalResults(ref, got))
        << mode << " diverged for: " << tokens << "\n  "
        << diffSnapshots(ref.metrics, got.metrics)
        << "\n  ref: cycles=" << ref.cyclesRun
        << " drained=" << ref.drained
        << " deadlocked=" << ref.deadlocked
        << " quiescent=" << ref.quiescent
        << "\n  got: cycles=" << got.cyclesRun
        << " drained=" << got.drained
        << " deadlocked=" << got.deadlocked
        << " quiescent=" << got.quiescent;

    // identicalResults covers the snapshot; spot-check the verdict
    // fields explicitly so a future refactor of identicalResults
    // cannot silently weaken this harness.
    EXPECT_EQ(ref.cyclesRun, got.cyclesRun) << tokens;
    EXPECT_EQ(ref.saturated, got.saturated) << tokens;
    EXPECT_EQ(ref.drained, got.drained) << tokens;
    EXPECT_EQ(ref.deadlocked, got.deadlocked) << tokens;
    EXPECT_EQ(ref.quiescent, got.quiescent) << tokens;

    // Histogram bins bitwise: samplers already compared via
    // MetricValue::identical inside identicalResults.
    ASSERT_EQ(ref.metrics.size(), got.metrics.size()) << tokens;
}

void
expectTraceIdentical(const ExperimentResult &ref,
                     const ExperimentResult &got,
                     const std::string &tokens)
{
    ASSERT_NE(ref.trace, nullptr) << tokens;
    ASSERT_NE(got.trace, nullptr) << tokens;
    EXPECT_EQ(ref.trace->recorded, got.trace->recorded) << tokens;
    EXPECT_EQ(ref.trace->dropped, got.trace->dropped) << tokens;
    ASSERT_EQ(ref.trace->events.size(), got.trace->events.size())
        << tokens;
    for (std::size_t i = 0; i < ref.trace->events.size(); ++i) {
        const WormTraceEvent &a = ref.trace->events[i];
        const WormTraceEvent &b = got.trace->events[i];
        ASSERT_TRUE(a.cycle == b.cycle && a.packet == b.packet &&
                    a.msg == b.msg && a.component == b.component &&
                    a.arg == b.arg && a.kind == b.kind &&
                    a.atHost == b.atHost)
            << tokens << " -- event " << i << " differs at cycle "
            << a.cycle << " vs " << b.cycle;
    }
}

void
expectIdentical(const std::string &tokens)
{
    const Config config = withTokens(tokens);
    const ExperimentResult slow = runMode(config, false);
    const ExperimentResult fast = runMode(config, true);
    expectSame(slow, fast, tokens, "fast path");
    expectSame(slow, runMode(config, true, 2), tokens, "2 shards");
    expectSame(slow, runMode(config, true, 4), tokens, "4 shards");
}

// One scenario per fig_*/ablation_* bench, holding each one's
// distinctive knobs (scheme, pattern, topology, faults, tracing) at a
// size that keeps the whole matrix fast.
struct Scenario
{
    const char *name;
    const char *tokens;
};

const Scenario kScenarios[] = {
    // fig_throughput / fig_multiple_multicast: the three schemes
    // under multiple multicast, light and heavy load.
    {"throughput_cb_hw", "arch=cb scheme=hw workload.load=0.05"},
    {"throughput_ib_hw", "arch=ib scheme=hw workload.load=0.05"},
    {"throughput_sw_umin", "arch=cb scheme=sw workload.load=0.05"},
    {"throughput_cb_hw_hot", "arch=cb scheme=hw workload.load=0.3"},
    // fig_bimodal: unicast background with a multicast fraction.
    {"bimodal",
     "workload.pattern=bimodal workload.mcastFraction=0.1 "
     "workload.load=0.15"},
    // The deprecated bare spellings must keep working (warn-once
    // aliases onto workload.*).
    {"legacy_traffic_keys",
     "pattern=bimodal mcastFraction=0.1 load=0.15 traffic.seed=42"},
    // fig_degree: wide fan-out.
    {"degree16", "workload.degree=16 workload.load=0.08"},
    // fig_msg_length: segmentation and reassembly.
    {"segmented",
     "workload.payload=256 maxPayload=64 workload.load=0.08"},
    // fig_system_size: small and medium systems.
    {"size_16", "k=4 n=2 workload.load=0.08"},
    {"size_8", "k=2 n=3 workload.load=0.08 workload.degree=4"},
    // fig_resilience: faults, rerouting, retransmission.
    {"resilience",
     "fault.links=2 fault.switches=1 fault.start=600 fault.end=1400 "
     "nic.retransmitTimeout=3000 workload.load=0.05"},
    {"resilience_ib",
     "arch=ib fault.links=2 fault.start=600 fault.end=1400 "
     "nic.retransmitTimeout=3000 workload.load=0.05"},
    // ablation_routing.
    {"routing_up_path",
     "routing=replicate-on-up-path workload.load=0.08"},
    // ablation_cbsize.
    {"cb_small",
     "cb.chunks=64 workload.payload=32 maxPayload=32 "
     "workload.load=0.08"},
    // ablation_encoding.
    {"multiport", "encoding=multiport workload.load=0.08"},
    // ablation_hotspot.
    {"hotspot",
     "workload.pattern=hot-spot workload.hotFraction=0.3 "
     "workload.load=0.1"},
    // ablation_ibsize.
    {"ib_big", "arch=ib ib.buffer=128 workload.load=0.08"},
    // ablation_replication.
    {"sync_replication",
     "arch=ib replication=synchronous workload.load=0.05"},
    // ablation_topology.
    {"irregular",
     "topo=irregular irr.switches=12 irr.radix=6 irr.hosts=16 "
     "irr.extraLinks=6 workload.degree=4 workload.load=0.08"},
    // ablation_uproute.
    {"deterministic_up", "upPolicy=deterministic workload.load=0.08"},
    // fig_integrity: transient faults. BER with residual errors
    // exercises NAK/replay resolution plus the end-to-end checksum.
    {"transient_ber",
     "fault.ber=1e-3 fault.residual=0.05 nic.retransmitTimeout=3000 "
     "workload.load=0.05"},
    {"transient_ber_ib",
     "arch=ib fault.ber=5e-4 nic.retransmitTimeout=3000 "
     "workload.load=0.05"},
    // Short flap windows ride out on link-level retry alone.
    {"transient_flaps",
     "fault.flaps=2 fault.start=600 fault.end=1400 fault.flapMin=4 "
     "fault.flapMax=12 nic.retransmitTimeout=3000 workload.load=0.05"},
    // A long flap exhausts the retry budget and escalates into the
    // fail-stop rerouting/tombstone machinery mid-run.
    {"transient_flap_escalates",
     "fault.flaps=1 fault.start=600 fault.end=900 fault.flapMin=400 "
     "fault.flapMax=600 link.retryLimit=4 nic.retransmitTimeout=3000 "
     "workload.load=0.05"},
    // Everything at once, on the software scheme.
    {"transient_kitchen_sink",
     "scheme=sw fault.links=1 fault.ber=5e-4 fault.residual=0.1 "
     "fault.flaps=1 fault.start=600 fault.end=1200 fault.flapMin=8 "
     "fault.flapMax=20 nic.retransmitTimeout=3000 workload.load=0.05"},
    // Traced run: metric equality plus event-sequence equality below.
    {"traced",
     "telemetry.trace=1 telemetry.traceCapacity=65536 "
     "workload.load=0.05"},
    {"traced_faulty",
     "telemetry.trace=1 telemetry.traceCapacity=65536 "
     "workload.load=0.05 fault.links=1 fault.start=600 fault.end=1200 "
     "nic.retransmitTimeout=3000"},
    {"traced_transient",
     "telemetry.trace=1 telemetry.traceCapacity=65536 "
     "workload.load=0.05 fault.ber=1e-3 fault.residual=0.05 "
     "nic.retransmitTimeout=3000"},
    // fig_lanes: multi-lane switches with a class-tagged bimodal
    // foreground, on both architectures and both lane allocators.
    {"lanes2_bimodal",
     "switch.lanes=2 workload.pattern=bimodal "
     "workload.mcastFraction=0.1 workload.mcastClass=1 "
     "workload.load=0.15"},
    {"lanes4_adaptive",
     "switch.lanes=4 switch.laneAlloc=adaptive "
     "workload.pattern=bimodal workload.mcastFraction=0.1 "
     "workload.mcastClass=1 workload.load=0.1"},
    {"lanes4_ib",
     "arch=ib switch.lanes=4 workload.pattern=bimodal "
     "workload.mcastFraction=0.1 workload.mcastClass=1 "
     "workload.load=0.1"},
    {"lanes2_traced",
     "switch.lanes=2 telemetry.trace=1 telemetry.traceCapacity=65536 "
     "workload.pattern=bimodal workload.mcastFraction=0.1 "
     "workload.mcastClass=1 workload.load=0.05"},
    // fig_collectives: closed-loop workloads. Sleeping nodes must be
    // woken by the delivery/completion events that gate each phase,
    // in both scheduler modes, on identical cycles.
    {"closed_barrier",
     "workload.kind=collective workload.collective=barrier "
     "workload.rounds=4"},
    {"closed_allreduce",
     "workload.kind=collective workload.collective=allreduce "
     "workload.rounds=3"},
    {"closed_allreduce_sw",
     "scheme=sw workload.kind=collective "
     "workload.collective=allreduce workload.rounds=3"},
    {"closed_allreduce_ib",
     "arch=ib workload.kind=collective "
     "workload.collective=allreduce workload.rounds=3"},
    {"closed_invalidate",
     "workload.kind=collective workload.collective=invalidate "
     "workload.rounds=6"},
    // Multi-tenant: many groups with heavy-tailed sizes, jittered
    // starts, and think time between rounds (idle gaps the fast path
    // must sleep through without missing a wake).
    {"closed_multitenant",
     "workload.kind=collective workload.collective=allreduce "
     "workload.rounds=3 workload.groups=6 workload.think=40"},
    {"closed_traced",
     "telemetry.trace=1 telemetry.traceCapacity=65536 "
     "workload.kind=collective workload.collective=barrier "
     "workload.rounds=4"},
    // Faults during a collective: write-offs (partial completions)
    // must release closed-loop waiters identically in both modes.
    {"closed_barrier_faults",
     "workload.kind=collective workload.collective=barrier "
     "workload.rounds=4 fault.links=2 fault.start=200 fault.end=900 "
     "nic.retransmitTimeout=3000"},
};

class FastPathDiff : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(FastPathDiff, BitIdentical)
{
    expectIdentical(GetParam().tokens);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FastPathDiff, ::testing::ValuesIn(kScenarios),
    [](const ::testing::TestParamInfo<Scenario> &info) {
        return std::string(info.param.name);
    });

// lanes=1 must be bit-identical to the pre-lane switch: a single
// lane leaves no allocation or service choice to make, so spelling
// the knobs out (including the allocator, which can only matter with
// two or more lanes) must reproduce the default run exactly, in
// every scheduler mode. This is the oracle behind the CI promise
// that the lane datapath is dormant until switched on.
TEST(LaneDiff, SingleLaneMatchesDefaultBitIdentical)
{
    // This test pins lanes=1 by design; the suite-wide MDW_LANES
    // override (the CI lanes leg) would force every run multi-lane
    // and void the comparison. Each ctest entry is its own process,
    // so dropping it here cannot leak into other tests.
    unsetenv("MDW_LANES");
    const char *workload =
        "workload.pattern=bimodal workload.mcastFraction=0.1 "
        "workload.mcastClass=1 workload.load=0.15";
    const ExperimentResult ref =
        runMode(withTokens(workload), false);
    for (const std::string &knobs :
         {std::string("switch.lanes=1 "),
          std::string("switch.lanes=1 switch.laneAlloc=adaptive ")}) {
        const std::string tokens = knobs + workload;
        const Config config = withTokens(tokens);
        expectSame(ref, runMode(config, false), tokens, "oracle");
        expectSame(ref, runMode(config, true), tokens, "fast path");
        expectSame(ref, runMode(config, true, 2), tokens, "2 shards");
        expectSame(ref, runMode(config, true, 4), tokens, "4 shards");
    }
}

// Multidestination replication must keep every branch of a worm on
// one lane: the lane is chosen once at header decode and applied to
// all output branches, so the trace carries exactly one LaneAlloc
// event per (switch, packet) — a second one would mean a branch
// re-allocated mid-replication. With an all-multicast class-1
// workload every allocation must also land in the latency partition.
TEST(LaneDiff, ReplicationKeepsOneLaneClassPerWorm)
{
    const Config config = withTokens(
        "switch.lanes=4 telemetry.trace=1 "
        "telemetry.traceCapacity=65536 workload.mcastClass=1 "
        "workload.load=0.05");
    const ExperimentResult r = runMode(config, true);
    ASSERT_NE(r.trace, nullptr);
    ASSERT_EQ(r.trace->dropped, 0u);
    // A worm may legally traverse the same switch twice (up phase,
    // then again inside the root's down-replication fan-out), so a
    // switch can allocate for the same packet more than once. The
    // invariant is the lane itself: static allocation is purely
    // class-determined, so every branch of a worm, at every switch
    // it crosses, must land on one and the same latency-class lane.
    std::map<std::uint64_t, std::int32_t> laneOf;
    int seen = 0;
    for (const WormTraceEvent &e : r.trace->events) {
        if (e.kind != WormEvent::LaneAlloc)
            continue;
        ++seen;
        EXPECT_GE(e.arg, laneClassBase(4, 1)) << "packet " << e.packet;
        EXPECT_LT(e.arg, 4) << "packet " << e.packet;
        const auto [it, inserted] = laneOf.emplace(e.packet, e.arg);
        if (!inserted) {
            EXPECT_EQ(it->second, e.arg)
                << "packet " << e.packet << " switched lanes at "
                << "component " << e.component;
        }
    }
    EXPECT_GT(seen, 0) << "no LaneAlloc events traced at lanes=4";
}

TEST(FastPathDiffTrace, EventSequencesIdentical)
{
    for (const char *tokens :
         {"telemetry.trace=1 telemetry.traceCapacity=65536 load=0.05",
          "telemetry.trace=1 telemetry.traceCapacity=65536 load=0.05 "
          "fault.links=1 fault.start=600 fault.end=1200 "
          "nic.retransmitTimeout=3000",
          // crc_fail/nak/replay events must land on identical cycles.
          "telemetry.trace=1 telemetry.traceCapacity=65536 load=0.05 "
          "fault.ber=1e-3 fault.residual=0.05 "
          "nic.retransmitTimeout=3000"}) {
        const Config config = withTokens(tokens);
        const ExperimentResult slow = runMode(config, false);
        expectTraceIdentical(slow, runMode(config, true), tokens);
        expectTraceIdentical(slow, runMode(config, true, 2), tokens);
        expectTraceIdentical(slow, runMode(config, true, 4), tokens);
    }
}

// The sharded scheduler against the oracle at every required shard
// count, inline and on a real worker pool, snapshot- and
// trace-sequence-exact. Also checks that sharding actually engaged
// (the matrix above would pass vacuously if setupSharding silently
// vetoed these configs).
TEST(ShardDiff, ShardAndThreadCountsBitIdentical)
{
    const char *tokensList[] = {
        "telemetry.trace=1 telemetry.traceCapacity=65536 "
        "workload.load=0.1",
        "k=2 n=3 workload.load=0.08 workload.degree=4 "
        "telemetry.trace=1 telemetry.traceCapacity=65536",
        "topo=irregular irr.switches=12 irr.radix=6 irr.hosts=16 "
        "irr.extraLinks=6 workload.degree=4 workload.load=0.08",
        "workload.kind=collective workload.collective=allreduce "
        "workload.rounds=3",
    };
    for (const char *tokens : tokensList) {
        const Config config = withTokens(tokens);
        const ExperimentResult slow = runMode(config, false);
        for (std::size_t shards : {1u, 2u, 4u, 8u}) {
            for (unsigned threads : {1u, 2u}) {
                SCOPED_TRACE(std::string(tokens) + " shards=" +
                             std::to_string(shards) + " threads=" +
                             std::to_string(threads));
                const ExperimentResult got =
                    runMode(config, true, shards, threads);
                expectSame(slow, got, tokens, "sharded");
                if (slow.trace != nullptr)
                    expectTraceIdentical(slow, got, tokens);
            }
        }
    }
    // Prove the veto did not fire for these configs.
    NetworkConfig network = defaultNetwork();
    network.shards = 4;
    Network net(network);
    EXPECT_EQ(net.effectiveShards(), 4u);
    EXPECT_TRUE(net.serialReason().empty());
}

// Subsystems that mutate shared state from switch steps must dissolve
// sharding rather than race: hardware barriers and the fault layers.
TEST(ShardDiff, SerialOnlySubsystemsVetoSharding)
{
    {
        const Config config = withTokens(
            "fault.links=1 fault.start=600 fault.end=1200 "
            "nic.retransmitTimeout=3000 workload.load=0.05");
        NetworkConfig network = defaultNetwork();
        TrafficParams traffic = defaultTraffic();
        ExperimentParams params = defaultExperiment();
        applyOverrides(config, network, traffic, params);
        network.shards = 4;
        Network net(network);
        EXPECT_EQ(net.effectiveShards(), 0u);
        EXPECT_FALSE(net.serialReason().empty());
    }
    {
        NetworkConfig network = defaultNetwork();
        network.shards = 4;
        Network net(network);
        ASSERT_EQ(net.effectiveShards(), 4u);
        HwBarrierManager barriers(net);
        EXPECT_EQ(net.effectiveShards(), 0u);
        EXPECT_EQ(net.serialReason(), "hardware barriers");
    }
}

// Dependency-carrying trace replay: each event's release cycle is a
// function of earlier completions, so the scheduler modes only agree
// if delivery/completion wakes land on identical cycles throughout
// the dependency graph.
TEST(FastPathDiff, ClosedLoopTraceReplay)
{
    const std::string path =
        ::testing::TempDir() + "fastpath_deps.trace";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# mdw-trace/2\n"
                   // A chain, a multicast fan-out, and a join that
                   // waits on two different completion times.
                   "1 0 0 U 1 32\n"
                   "2 0 1 U 2 32 deps=1\n"
                   "3 0 2 M 16 8,9,10,11 deps=2\n"
                   "4 5 8 U 0 16 deps=3\n"
                   "5 5 9 U 0 16 deps=3\n"
                   "6 0 3 U 4 64\n"
                   "7 0 63 M 32 0,1,2,3 deps=6\n"
                   "8 0 10 U 11 8 deps=3,7\n"
                   // Two symmetric intra-switch sends complete on the
                   // same cycle; each releases an event at node 40, so
                   // the two releases land same-node same-cycle from
                   // *distinct* completions -- the emission order must
                   // not depend on intra-cycle hook arrival order.
                   "9 0 20 U 21 32\n"
                   "10 0 24 U 25 32\n"
                   "11 0 40 U 41 8 deps=9\n"
                   "12 0 40 U 42 8 deps=10\n",
                   f);
        std::fclose(f);
    }
    expectIdentical("workload.kind=trace workload.trace=" + path);
    std::remove(path.c_str());
}

// The fast path must actually retire idle components, or it is just
// overhead: after an uncontended run drains, the whole tick set
// should be asleep.
TEST(FastPathDiff, IdleSystemFullyDeregisters)
{
    NetworkConfig config = defaultNetwork();
    config.fastPath = true;
    Network net(config);
    ScriptedTraffic traffic;
    MessageSpec spec;
    spec.dest = 5;
    spec.payloadFlits = 16;
    traffic.post(0, 0, spec);
    for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts()); ++n)
        net.nic(n).setTrafficSource(&traffic);

    // Let the cycle-0 poll inject before polling idle() (which is
    // vacuously true on an empty network).
    net.sim().run(5);
    ASSERT_TRUE(net.sim().runUntil([&] { return net.idle(); }, 20000));
    ASSERT_TRUE(net.sim().runUntil(
        [&] { return net.checkQuiescent(nullptr); }, 4096));
    EXPECT_EQ(net.sim().activeCount(), 0u);
    EXPECT_EQ(net.nic(5).stats().packetsDelivered.value(), 1u);
}

// ~100 seeded trials over random topologies, bimodal workloads, and
// fault plans. A failure prints the offending override string for
// one-line reproduction.
TEST(FastPathProperty, RandomConfigsBitIdentical)
{
    std::mt19937 rng(20260809u);
    const auto pick = [&rng](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    for (int trial = 0; trial < 100; ++trial) {
        std::ostringstream tokens;
        tokens << "warmup=300 measure=800 drainLimit=30000 "
               << "watchdog=20000 workload.pattern=bimodal ";
        if (pick(0, 1) == 0) {
            tokens << "topo=fat-tree k=" << (pick(0, 1) ? 2 : 4)
                   << " n=2 ";
        } else {
            tokens << "topo=irregular irr.switches="
                   << (pick(0, 1) ? 8 : 12)
                   << " irr.radix=" << (pick(0, 1) ? 6 : 8)
                   << " irr.hosts=" << (pick(0, 1) ? 12 : 16)
                   << " irr.extraLinks=" << (pick(0, 1) ? 4 : 8)
                   << " ";
        }
        tokens << "arch=" << (pick(0, 1) ? "cb" : "ib") << " ";
        tokens << "scheme=" << (pick(0, 3) == 0 ? "sw" : "hw") << " ";
        tokens << "workload.load=0.0" << pick(2, 9) << " ";
        tokens << "workload.payload=" << (8 << pick(0, 3)) << " ";
        tokens << "workload.degree=" << pick(2, 3) << " ";
        tokens << "workload.mcastFraction=0." << pick(0, 3) << " ";
        tokens << "seed=" << (trial + 1) << " ";
        tokens << "workload.seed=" << (trial + 101) << " ";
        const bool failStop = pick(0, 1) == 1;
        const bool transient = pick(0, 2) == 0;
        if (failStop || transient) {
            tokens << "fault.start=300 fault.end=900"
                   << " fault.seed=" << (trial + 7)
                   << " nic.retransmitTimeout=" << pick(15, 25) * 100
                   << " ";
        }
        if (failStop) {
            tokens << "fault.links=" << pick(1, 2)
                   << " fault.switches=" << pick(0, 1) << " ";
        }
        if (transient) {
            tokens << "fault.ber=" << pick(1, 8) << "e-4 ";
            if (pick(0, 1) == 1)
                tokens << "fault.residual=0.1 ";
            if (pick(0, 1) == 1)
                tokens << "fault.flaps=1 fault.flapMin=8 "
                       << "fault.flapMax=48 ";
        }
        SCOPED_TRACE("repro: " + tokens.str());
        expectIdentical(tokens.str());
    }
}

} // namespace
} // namespace mdw
