/**
 * @file
 * Unit tests for packet descriptors, branch pruning, and flits.
 */

#include <gtest/gtest.h>

#include "message/flit.hh"
#include "message/packet.hh"

namespace mdw {
namespace {

PacketPtr
makePacket(PacketFactory &factory, std::initializer_list<NodeId> dests,
           int header = 3, int payload = 8)
{
    PacketDesc proto;
    proto.src = 0;
    proto.dests = DestSet::of(16, dests);
    proto.kind = dests.size() > 1 ? PacketKind::HwMulticast
                                  : PacketKind::Unicast;
    proto.headerFlits = header;
    proto.payloadFlits = payload;
    return factory.make(std::move(proto));
}

TEST(PacketFactory, AssignsUniqueIds)
{
    PacketFactory factory;
    auto a = makePacket(factory, {1});
    auto b = makePacket(factory, {2});
    EXPECT_NE(a->id, b->id);
    EXPECT_NE(a->msg, b->msg);
    EXPECT_EQ(factory.packetsCreated(), 2u);
}

TEST(PacketFactory, KeepsExplicitMsgId)
{
    PacketFactory factory;
    const MsgId msg = factory.newMsgId();
    PacketDesc proto;
    proto.msg = msg;
    proto.src = 0;
    proto.dests = DestSet::of(16, {1});
    proto.headerFlits = 2;
    proto.payloadFlits = 4;
    auto pkt = factory.make(std::move(proto));
    EXPECT_EQ(pkt->msg, msg);
}

TEST(Packet, TotalFlits)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1, 2}, 3, 8);
    EXPECT_EQ(pkt->totalFlits(), 11);
}

TEST(PruneBranch, SubsetCreatesNewDescriptor)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1, 2, 3});
    auto branch = pruneBranch(pkt, DestSet::of(16, {2}));
    EXPECT_NE(branch.get(), pkt.get());
    EXPECT_EQ(branch->id, pkt->id);
    EXPECT_EQ(branch->msg, pkt->msg);
    EXPECT_EQ(branch->dests.count(), 1u);
    EXPECT_TRUE(branch->dests.test(2));
    // Original untouched.
    EXPECT_EQ(pkt->dests.count(), 3u);
}

TEST(PruneBranch, IdenticalSetSharesDescriptor)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1, 2});
    auto branch = pruneBranch(pkt, pkt->dests);
    EXPECT_EQ(branch.get(), pkt.get());
}

TEST(PruneBranchDeath, SupersetPanics)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1});
    EXPECT_DEATH((void)pruneBranch(pkt, DestSet::of(16, {1, 2})),
                 "subset");
}

TEST(PruneBranchDeath, EmptyPanics)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1});
    EXPECT_DEATH((void)pruneBranch(pkt, DestSet(16)), "no destinations");
}

TEST(Flit, HeadTailHeaderClassification)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1}, 2, 3); // 5 flits
    EXPECT_TRUE(Flit(pkt, 0).isHead());
    EXPECT_TRUE(Flit(pkt, 0).isHeader());
    EXPECT_TRUE(Flit(pkt, 1).isHeader());
    EXPECT_FALSE(Flit(pkt, 2).isHeader());
    EXPECT_FALSE(Flit(pkt, 2).isTail());
    EXPECT_TRUE(Flit(pkt, 4).isTail());
    EXPECT_FALSE(Flit(pkt, 4).isHead());
}

TEST(Packet, ToStringMentionsKind)
{
    PacketFactory factory;
    auto pkt = makePacket(factory, {1, 2});
    EXPECT_NE(pkt->toString().find("hw-multicast"), std::string::npos);
    EXPECT_STREQ(toString(PacketKind::Unicast), "unicast");
    EXPECT_STREQ(toString(PacketKind::SwMulticastCarrier),
                 "sw-multicast-carrier");
}

} // namespace
} // namespace mdw
