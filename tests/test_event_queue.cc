/**
 * @file
 * Unit tests for the event queue and the simulator driver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/system.hh"

namespace mdw {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    q.runDue(25);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    q.runDue(30);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleFifoTieBreak)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&fired, i] { fired.push_back(i); });
    q.runDue(7);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ActionMayScheduleMore)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] {
        ++count;
        q.schedule(1, [&] { ++count; }); // due immediately
        q.schedule(5, [&] { ++count; }); // later
    });
    q.runDue(2);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.nextEventCycle(), 5u);
    q.runDue(5);
    EXPECT_EQ(count, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventCycleEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kNoCycle);
}

TEST(EventQueue, EqualCycleFifoStress)
{
    // Many events crammed into few cycles: the global firing order
    // must be the schedule order stable-sorted by cycle, i.e. FIFO
    // within every cycle, no matter how the heap rebalances.
    EventQueue q;
    Rng rng(12345);
    std::vector<std::pair<Cycle, int>> scheduled;
    std::vector<int> fired;
    constexpr int kEvents = 2000;
    for (int i = 0; i < kEvents; ++i) {
        const Cycle when = rng.below(40);
        scheduled.emplace_back(when, i);
        q.schedule(when, [&fired, i] { fired.push_back(i); });
    }
    q.runDue(40);

    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(fired.size(), scheduled.size());
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], scheduled[i].second) << "position " << i;
}

TEST(EventQueue, FifoSurvivesInterleavedDraining)
{
    // Draining part of the queue must not disturb the FIFO order of
    // ties between events scheduled before and after the drain.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&] { fired.push_back(0); });
    q.schedule(20, [&] { fired.push_back(1); });
    q.schedule(5, [&] { fired.push_back(2); });
    q.runDue(10); // fires 2, then 0
    q.schedule(20, [&] { fired.push_back(3); });
    q.schedule(15, [&] { fired.push_back(4); });
    q.runDue(25);
    EXPECT_EQ(fired, (std::vector<int>{2, 0, 4, 1, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReschedulingActionsKeepFifoWithinCycle)
{
    // An action that schedules another event for the *same* cycle:
    // the new event must fire after everything already queued for
    // that cycle (it has a later sequence number).
    EventQueue q;
    std::vector<int> fired;
    q.schedule(7, [&] {
        fired.push_back(0);
        q.schedule(7, [&] { fired.push_back(10); });
    });
    q.schedule(7, [&] { fired.push_back(1); });
    q.schedule(7, [&] { fired.push_back(2); });
    q.runDue(7);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 10}));
}

namespace {

class TickCounter : public Component
{
  public:
    TickCounter() : Component("ticker") {}

    void
    step(Cycle now) override
    {
        ++ticks;
        last = now;
        if (report_progress && sim_)
            sim_->noteProgress();
    }

    int ticks = 0;
    Cycle last = 0;
    bool report_progress = true;
};

} // namespace

TEST(Simulator, StepsComponentsOncePerCycle)
{
    Simulator sim;
    TickCounter a, b;
    sim.add(&a);
    sim.add(&b);
    sim.run(10);
    EXPECT_EQ(a.ticks, 10);
    EXPECT_EQ(b.ticks, 10);
    EXPECT_EQ(a.last, 9u);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunUntilStopsEarly)
{
    Simulator sim;
    TickCounter a;
    sim.add(&a);
    const bool done =
        sim.runUntil([&] { return a.ticks >= 5; }, 100);
    EXPECT_TRUE(done);
    EXPECT_EQ(a.ticks, 5);
}

TEST(Simulator, RunUntilHonorsLimit)
{
    Simulator sim;
    TickCounter a;
    sim.add(&a);
    const bool done = sim.runUntil([] { return false; }, 20);
    EXPECT_FALSE(done);
    EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, EventsFireDuringRun)
{
    Simulator sim;
    int fired_at = -1;
    sim.events().schedule(5, [&] {
        fired_at = static_cast<int>(sim.now());
    });
    sim.run(10);
    EXPECT_EQ(fired_at, 5);
}

TEST(Simulator, WatchdogTripsOnStall)
{
    Simulator sim;
    TickCounter a;
    a.report_progress = false;
    sim.add(&a);
    bool tripped = false;
    sim.setWatchdog(10, [] { return true; }, [&] { tripped = true; });
    sim.run(50);
    EXPECT_TRUE(tripped);
    EXPECT_TRUE(sim.deadlockDetected());
    // run() stops once deadlocked.
    EXPECT_LE(sim.now(), 12u);
}

TEST(Simulator, WatchdogQuietWhileProgressing)
{
    Simulator sim;
    TickCounter a; // reports progress every cycle
    sim.add(&a);
    sim.setWatchdog(10, [] { return true; });
    sim.run(100);
    EXPECT_FALSE(sim.deadlockDetected());
}

TEST(Simulator, WatchdogIgnoresIdleSystem)
{
    Simulator sim;
    TickCounter a;
    a.report_progress = false;
    sim.add(&a);
    sim.setWatchdog(10, [] { return false; }); // no work pending
    sim.run(100);
    EXPECT_FALSE(sim.deadlockDetected());
}

} // namespace
} // namespace mdw
