/**
 * @file
 * Unit tests for the sharded-scheduler building blocks: boundary-mode
 * channels, the pooled packet allocator, per-shard trace rings, the
 * MDW_SHARDS environment override, and the Network-level per-shard
 * accounting (per-shard totals roll up to the flat totals).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/network.hh"
#include "core/presets.hh"
#include "message/pool.hh"
#include "sim/channel.hh"
#include "sim/shard_context.hh"
#include "sim/telemetry.hh"
#include "workload/traffic.hh"

namespace mdw {
namespace {

// ---------------------------------------------------------------------
// Boundary-mode channels
// ---------------------------------------------------------------------

/** Captures boundaryDirty callbacks like the simulator would. */
struct RecordingRegistrar : BoundaryRegistrar
{
    std::vector<std::pair<std::uint32_t, BoundaryChannel *>> dirty;

    void
    boundaryDirty(std::uint32_t srcShard,
                  BoundaryChannel *channel) override
    {
        dirty.emplace_back(srcShard, channel);
    }
};

TEST(BoundaryChannel, SendsStayInvisibleUntilFlush)
{
    RecordingRegistrar reg;
    Channel<int> ch("b", 1);
    ch.setBoundary(&reg, 3);

    ch.send(7, 10);
    ch.send(8, 11);
    // Buffered, not delivered: the receiver-visible queue is empty
    // even past the arrival cycle, but the items still count as in
    // flight (quiescence checks must see them).
    EXPECT_EQ(ch.peek(12), nullptr);
    EXPECT_EQ(ch.nextArrival(), kNoCycle);
    EXPECT_EQ(ch.inFlight(), 2u);
    // Exactly one dirty notification for the whole burst.
    ASSERT_EQ(reg.dirty.size(), 1u);
    EXPECT_EQ(reg.dirty[0].first, 3u);
    EXPECT_EQ(reg.dirty[0].second, &ch);

    // The barrier flush makes everything visible at its stamped
    // arrival cycle, in order.
    EXPECT_EQ(ch.flushBoundary(), 2u);
    EXPECT_EQ(ch.nextArrival(), 11u);
    EXPECT_EQ(ch.receive(12), 7);
    EXPECT_EQ(ch.receive(12), 8);

    // The flush rearmed the dirty flag: the next send notifies again.
    ch.send(9, 20);
    EXPECT_EQ(reg.dirty.size(), 2u);
    EXPECT_EQ(ch.flushBoundary(), 1u);
    EXPECT_EQ(ch.receive(21), 9);

    // Reverting restores direct delivery.
    ch.setBoundary(nullptr, 0);
    ch.send(10, 30);
    ASSERT_NE(ch.peek(31), nullptr);
    EXPECT_EQ(reg.dirty.size(), 2u);
}

TEST(BoundaryChannel, CreditGrantsMergeAndFlush)
{
    RecordingRegistrar reg;
    CreditChannel ch("cr", 1);
    ch.setBoundary(&reg, 1);

    ch.send(2, 5);
    ch.send(3, 5); // same ready cycle: merged in the mailbox
    ch.send(1, 6);
    // Buffered grants are not yet charged to inFlight(): the counter
    // is shared with the receiving shard, so the sender defers the
    // charge to the (single-threaded) barrier flush.
    EXPECT_EQ(ch.inFlight(), 0);
    EXPECT_EQ(ch.receive(7), 0); // nothing visible before the flush
    ASSERT_EQ(reg.dirty.size(), 1u);

    EXPECT_EQ(ch.flushBoundary(), 2u); // two distinct ready cycles
    EXPECT_EQ(ch.inFlight(), 6);
    EXPECT_EQ(ch.receive(6), 5);
    EXPECT_EQ(ch.receive(7), 1);
    EXPECT_EQ(ch.inFlight(), 0);
}

TEST(BoundaryChannel, LaneTaggedCreditsFlushPerLane)
{
    // Per-lane credit accounting across a shard boundary: grants on
    // the same ready cycle merge only within a lane -- merging across
    // lanes would credit the wrong per-lane counter at the receiver
    // after the barrier flush.
    RecordingRegistrar reg;
    CreditChannel ch("cr", 1);
    ch.setBoundary(&reg, 1);

    ch.send(2, 5, /*lane=*/0);
    ch.send(3, 5, /*lane=*/1); // same cycle, different lane: no merge
    ch.send(1, 5, /*lane=*/1); // same cycle, same lane: merges
    EXPECT_EQ(ch.flushBoundary(), 2u); // one entry per lane

    std::vector<int> credits(2, 0);
    EXPECT_EQ(ch.receiveByLane(6, credits), 6);
    EXPECT_EQ(credits[0], 2);
    EXPECT_EQ(credits[1], 4);
    EXPECT_EQ(ch.inFlight(), 0);
}

TEST(BoundaryChannelDeath, HookAndBoundaryAreExclusive)
{
    struct NullHook : ChannelHook<int>
    {
        Cycle onSend(int &, Cycle now) override { return now + 1; }
        void onReceive(const int &) override {}
    };
    RecordingRegistrar reg;
    NullHook hook;
    Channel<int> ch("b", 1);
    ch.setHook(&hook);
    EXPECT_DEATH(ch.setBoundary(&reg, 0), "link hook");
    ch.setHook(nullptr);
    ch.setBoundary(&reg, 0);
    EXPECT_DEATH(ch.setHook(&hook), "boundary mode");
}

// ---------------------------------------------------------------------
// Pooled allocator
// ---------------------------------------------------------------------

TEST(PacketPool, RecyclesBlocks)
{
    // Churn well past the transfer batch so blocks round-trip through
    // the global free list and back into the thread cache.
    std::vector<std::shared_ptr<const PacketDesc>> live;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 200; ++i) {
            PacketDesc desc;
            desc.payloadFlits = i;
            live.push_back(makePooled<const PacketDesc>(
                std::move(desc)));
        }
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(live[static_cast<std::size_t>(i)]->payloadFlits,
                      i);
        live.clear();
    }
}

TEST(PacketPool, CrossThreadFreeIsSafe)
{
    // Allocate on worker threads, free on the main thread (and vice
    // versa): the shard workers and the serial phase do exactly this
    // with PacketDescs every cycle.
    std::vector<std::shared_ptr<const PacketDesc>> fromWorkers;
    std::vector<std::thread> pool;
    std::vector<std::vector<std::shared_ptr<const PacketDesc>>> per(4);
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&per, t] {
            for (int i = 0; i < 300; ++i) {
                PacketDesc desc;
                desc.payloadFlits = t * 1000 + i;
                per[static_cast<std::size_t>(t)].push_back(
                    makePooled<const PacketDesc>(std::move(desc)));
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    for (auto &batch : per)
        for (auto &pkt : batch)
            fromWorkers.push_back(std::move(pkt));
    for (int t = 0; t < 4; ++t) {
        for (int i = 0; i < 300; ++i) {
            EXPECT_EQ(fromWorkers[static_cast<std::size_t>(t * 300 + i)]
                          ->payloadFlits,
                      t * 1000 + i);
        }
    }
    fromWorkers.clear(); // main thread frees every worker allocation
}

// ---------------------------------------------------------------------
// Per-shard trace rings
// ---------------------------------------------------------------------

/** Record one event as if from shard @p shard (-1 = serial). */
void
recordFrom(WormTracer &tracer, int shard, Cycle cycle,
           std::int32_t component, bool atHost)
{
    const int before = shardctx::current;
    shardctx::current = shard;
    tracer.record(WormEvent::HeaderDecode, cycle, 1, 1, component,
                  atHost);
    shardctx::current = before;
}

TEST(ShardedTracer, MergeReproducesFlatOrder)
{
    WormTracer tracer(16);
    tracer.setShards(2);
    // Cycle 5, out of ring order: serial host event first, then
    // switch events from both shards. The flat scheduler would have
    // produced: switches in ascending id, then hosts.
    recordFrom(tracer, -1, 5, 0, true); // NIC 0
    recordFrom(tracer, 1, 5, 3, false); // switch 3 (shard 1)
    recordFrom(tracer, 0, 5, 1, false); // switch 1 (shard 0)
    recordFrom(tracer, 1, 4, 9, false); // earlier cycle, later ring

    EXPECT_EQ(tracer.recorded(), 4u);
    const WormTrace trace = tracer.snapshot();
    ASSERT_EQ(trace.events.size(), 4u);
    EXPECT_EQ(trace.events[0].cycle, 4u);
    EXPECT_EQ(trace.events[0].component, 9);
    EXPECT_EQ(trace.events[1].component, 1); // switch 1 before 3
    EXPECT_EQ(trace.events[2].component, 3);
    EXPECT_TRUE(trace.events[3].atHost); // hosts after switches
    EXPECT_EQ(trace.dropped, 0u);
}

TEST(ShardedTracer, CapacityBoundsTheMergedTail)
{
    WormTracer tracer(4);
    tracer.setShards(2);
    for (Cycle c = 0; c < 10; ++c)
        recordFrom(tracer, static_cast<int>(c % 2), c, 1, false);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const WormTrace trace = tracer.snapshot();
    ASSERT_EQ(trace.events.size(), 4u);
    // The survivors are the most recent events, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(trace.events[i].cycle, 6u + i);
}

// ---------------------------------------------------------------------
// Network-level sharding
// ---------------------------------------------------------------------

TEST(ShardedNetwork, EnvOverrideForcesShardCount)
{
    ::setenv("MDW_SHARDS", "2", 1);
    ::setenv("MDW_SHARD_THREADS", "1", 1);
    NetworkConfig config = defaultNetwork();
    config.shards = 1;
    Network net(config);
    EXPECT_EQ(net.effectiveShards(), 2u);
    EXPECT_EQ(net.config().shards, 2u);
    ::unsetenv("MDW_SHARDS");
    ::unsetenv("MDW_SHARD_THREADS");
}

TEST(ShardedNetwork, PerShardTotalsRollUpToFlatTotals)
{
    NetworkConfig config = defaultNetwork();
    config.fastPath = true;
    config.shards = 4;
    Network net(config);
    ASSERT_EQ(net.effectiveShards(), 4u);

    // Drive cross-shard traffic: every host unicasts to its mirror
    // host, so most worms traverse the (partitioned) upper stages.
    ScriptedTraffic traffic;
    const NodeId hosts = static_cast<NodeId>(net.numHosts());
    for (NodeId n = 0; n < hosts; ++n) {
        MessageSpec spec;
        spec.dest = static_cast<NodeId>(hosts - 1 - n);
        spec.payloadFlits = 32;
        traffic.post(0, n, spec);
    }
    for (NodeId n = 0; n < hosts; ++n)
        net.nic(n).setTrafficSource(&traffic);
    net.sim().run(5);
    ASSERT_TRUE(net.sim().runUntil([&] { return net.idle(); }, 50000));

    // Rollup: summing the per-shard totals over every shard must
    // reproduce the flat network totals exactly.
    const NetworkTotals flat = net.totals();
    NetworkTotals sum;
    for (std::uint32_t s = 0; s < net.effectiveShards(); ++s) {
        const NetworkTotals part = net.totalsForShard(s);
        sum.flitsIn += part.flitsIn;
        sum.flitsOut += part.flitsOut;
        sum.packetsRouted += part.packetsRouted;
        sum.replications += part.replications;
        sum.reservationStallCycles += part.reservationStallCycles;
    }
    EXPECT_GT(flat.flitsIn, 0u);
    EXPECT_EQ(sum.flitsIn, flat.flitsIn);
    EXPECT_EQ(sum.flitsOut, flat.flitsOut);
    EXPECT_EQ(sum.packetsRouted, flat.packetsRouted);
    EXPECT_EQ(sum.replications, flat.replications);
    EXPECT_EQ(sum.reservationStallCycles,
              flat.reservationStallCycles);

    // Scheduler-side accounting: every component has a home bucket,
    // parallel shards actually stepped, and the mirrored pattern
    // crossed shard boundaries.
    const std::vector<ShardStat> stats = net.shardStats();
    ASSERT_EQ(stats.size(), 5u); // 4 parallel + 1 serial
    std::size_t components = 0;
    std::uint64_t parallelSteps = 0;
    std::uint64_t boundarySends = 0;
    for (std::size_t s = 0; s < stats.size(); ++s) {
        components += stats[s].components;
        if (s < 4)
            parallelSteps += stats[s].steps;
        boundarySends += stats[s].boundarySends;
    }
    EXPECT_EQ(components, net.sim().componentCount());
    EXPECT_GT(parallelSteps, 0u);
    EXPECT_GT(boundarySends, 0u);

    // The partition the network actually used covers every switch.
    EXPECT_EQ(net.shardPlan().switchShard.size(), net.numSwitches());
    EXPECT_FALSE(net.shardPlan().boundaryLinks.empty());
}

TEST(ShardedNetwork, RequireSerialDissolvesSharding)
{
    // Pin the shard count: the CI shards job runs the whole suite
    // under MDW_SHARDS=4, which would otherwise override config.
    const char *oldShards = ::getenv("MDW_SHARDS");
    const std::string saved = oldShards != nullptr ? oldShards : "";
    ::setenv("MDW_SHARDS", "2", 1);
    NetworkConfig config = defaultNetwork();
    config.fastPath = true;
    config.shards = 2;
    Network net(config);
    if (oldShards != nullptr)
        ::setenv("MDW_SHARDS", saved.c_str(), 1);
    else
        ::unsetenv("MDW_SHARDS");
    ASSERT_EQ(net.effectiveShards(), 2u);
    net.requireSerial("test subsystem");
    EXPECT_EQ(net.effectiveShards(), 0u);
    EXPECT_EQ(net.serialReason(), "test subsystem");

    // The dissolved network still runs: channels are back to direct
    // delivery and the scheduler is the plain fast path.
    ScriptedTraffic traffic;
    MessageSpec spec;
    spec.dest = static_cast<NodeId>(net.numHosts() - 1);
    spec.payloadFlits = 16;
    traffic.post(0, 0, spec);
    for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts()); ++n)
        net.nic(n).setTrafficSource(&traffic);
    net.sim().run(5);
    ASSERT_TRUE(net.sim().runUntil([&] { return net.idle(); }, 20000));
    EXPECT_EQ(net.nic(static_cast<NodeId>(net.numHosts() - 1))
                  .stats()
                  .packetsDelivered.value(),
              1u);
}

} // namespace
} // namespace mdw
