/**
 * @file
 * Tests for reachability-based decode and LCA routing, including a
 * full routing-walk property: simulate the branch tree hop by hop and
 * check that every destination is delivered exactly once with no
 * up-turn after going down.
 */

#include <gtest/gtest.h>

#include <deque>

#include "sim/rng.hh"
#include "topology/fat_tree.hh"
#include "topology/irregular.hh"

namespace mdw {
namespace {

/**
 * Walk a worm through the network following decode() decisions,
 * delivering at host ports. Fails the test if a branch revisits the
 * up phase after descending or exceeds a hop budget.
 */
void
walkWorm(const Topology &topo, NodeId src, const DestSet &dests,
         RoutingVariant variant, DestSet &delivered, int &maxHops)
{
    struct Leg
    {
        SwitchId sw;
        DestSet dests;
        bool goingDown;
        int hops;
    };

    const HostAttach &at = topo.graph().attach(src);
    std::deque<Leg> legs;
    legs.push_back(Leg{at.sw, dests, false, 1});
    const int hop_budget = static_cast<int>(topo.numSwitches()) + 4;

    while (!legs.empty()) {
        Leg leg = legs.front();
        legs.pop_front();
        ASSERT_LE(leg.hops, hop_budget) << "routing did not converge";
        maxHops = std::max(maxHops, leg.hops);

        const SwitchRouting &sr = topo.routing().at(leg.sw);
        const RouteDecision route = sr.decode(leg.dests, variant);

        // Once a branch starts descending it must never need an up
        // port again (the pruned set is always down-reachable).
        if (leg.goingDown) {
            ASSERT_FALSE(route.needsUp());
        }

        DestSet branched(leg.dests.size());
        for (const auto &[port, sub] : route.downBranches) {
            ASSERT_FALSE(sub.empty());
            ASSERT_FALSE(branched.intersects(sub))
                << "destination covered by two branches";
            branched |= sub;
            const PortPeer &peer = topo.graph().peer(leg.sw, port);
            if (peer.isHost()) {
                ASSERT_EQ(sub.count(), 1u);
                ASSERT_TRUE(sub.test(peer.host));
                ASSERT_FALSE(delivered.test(peer.host))
                    << "duplicate delivery";
                delivered.set(peer.host);
            } else {
                legs.push_back(
                    Leg{peer.sw, sub, true, leg.hops + 1});
            }
        }
        if (route.needsUp()) {
            ASSERT_FALSE(route.upCandidates.empty());
            // Take the first candidate (all are equivalent for
            // reachability).
            const PortId up = route.upCandidates.front();
            const PortPeer &peer = topo.graph().peer(leg.sw, up);
            ASSERT_TRUE(peer.isSwitch());
            legs.push_back(
                Leg{peer.sw, route.upDests, false, leg.hops + 1});
        }
    }
}

class RoutingWalk
    : public ::testing::TestWithParam<std::tuple<RoutingVariant, int>>
{
};

TEST_P(RoutingWalk, FatTreeMulticastDeliversExactlyOnce)
{
    const auto [variant, seed] = GetParam();
    FatTree topo(4, 3);
    Rng rng(static_cast<std::uint64_t>(seed));
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId src =
            static_cast<NodeId>(rng.below(topo.numHosts()));
        DestSet dests(topo.numHosts());
        const std::size_t degree = 1 + rng.below(topo.numHosts() - 1);
        while (dests.count() < degree) {
            const auto d =
                static_cast<NodeId>(rng.below(topo.numHosts()));
            if (d != src)
                dests.set(d);
        }
        DestSet delivered(topo.numHosts());
        int max_hops = 0;
        walkWorm(topo, src, dests, variant, delivered, max_hops);
        EXPECT_EQ(delivered, dests);
        // At most up to the root stage and all the way down: 2n-1
        // switches on any branch path.
        EXPECT_LE(max_hops, 2 * topo.n() - 1);
    }
}

TEST_P(RoutingWalk, IrregularMulticastDeliversExactlyOnce)
{
    const auto [variant, seed] = GetParam();
    IrregularParams params;
    IrregularTopology topo(params, Rng(static_cast<std::uint64_t>(seed)));
    Rng rng(static_cast<std::uint64_t>(seed) + 999);
    for (int trial = 0; trial < 10; ++trial) {
        const NodeId src =
            static_cast<NodeId>(rng.below(topo.numHosts()));
        DestSet dests(topo.numHosts());
        const std::size_t degree = 1 + rng.below(12);
        while (dests.count() < degree) {
            const auto d =
                static_cast<NodeId>(rng.below(topo.numHosts()));
            if (d != src)
                dests.set(d);
        }
        DestSet delivered(topo.numHosts());
        int max_hops = 0;
        walkWorm(topo, src, dests, variant, delivered, max_hops);
        EXPECT_EQ(delivered, dests);
    }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, RoutingWalk,
    ::testing::Combine(
        ::testing::Values(RoutingVariant::ReplicateAfterLca,
                          RoutingVariant::ReplicateOnUpPath),
        ::testing::Values(1, 2, 3, 4, 5)));

TEST(Decode, UnicastWithinLeafSwitch)
{
    FatTree topo(4, 2);
    // Host 1 and host 2 share leaf switch 0.
    const SwitchRouting &sr = topo.routing().at(0);
    const RouteDecision route =
        sr.decode(DestSet::of(16, {2}), RoutingVariant::ReplicateAfterLca);
    EXPECT_FALSE(route.needsUp());
    ASSERT_EQ(route.downBranches.size(), 1u);
    EXPECT_EQ(route.downBranches[0].first, 2);
}

TEST(Decode, UnicastAcrossTreeNeedsUp)
{
    FatTree topo(4, 2);
    const SwitchRouting &sr = topo.routing().at(0);
    const RouteDecision route = sr.decode(
        DestSet::of(16, {15}), RoutingVariant::ReplicateAfterLca);
    EXPECT_TRUE(route.needsUp());
    EXPECT_TRUE(route.downBranches.empty());
    EXPECT_EQ(route.upCandidates.size(), 4u);
    EXPECT_EQ(route.upDests.count(), 1u);
}

TEST(Decode, AfterLcaHoldsWholeSetOnUpPath)
{
    FatTree topo(4, 2);
    const SwitchRouting &sr = topo.routing().at(0);
    // Host 1 is local; host 12 needs the root stage.
    const DestSet dests = DestSet::of(16, {1, 12});
    const RouteDecision route =
        sr.decode(dests, RoutingVariant::ReplicateAfterLca);
    EXPECT_TRUE(route.needsUp());
    EXPECT_TRUE(route.downBranches.empty());
    EXPECT_EQ(route.upDests, dests);
}

TEST(Decode, OnUpPathBranchesEagerly)
{
    FatTree topo(4, 2);
    const SwitchRouting &sr = topo.routing().at(0);
    const DestSet dests = DestSet::of(16, {1, 12});
    const RouteDecision route =
        sr.decode(dests, RoutingVariant::ReplicateOnUpPath);
    EXPECT_TRUE(route.needsUp());
    ASSERT_EQ(route.downBranches.size(), 1u);
    EXPECT_TRUE(route.downBranches[0].second.test(1));
    EXPECT_EQ(route.upDests.count(), 1u);
    EXPECT_TRUE(route.upDests.test(12));
}

TEST(Decode, MulticastSplitsAcrossDownPorts)
{
    FatTree topo(4, 2);
    // At root switch 4 (level 1, label 0): all hosts reachable down.
    const SwitchRouting &sr = topo.routing().at(topo.switchAt(1, 0));
    const DestSet dests = DestSet::of(16, {0, 5, 10, 15});
    const RouteDecision route =
        sr.decode(dests, RoutingVariant::ReplicateAfterLca);
    EXPECT_FALSE(route.needsUp());
    EXPECT_EQ(route.downBranches.size(), 4u); // one per subtree
}

TEST(DecodeDeath, EmptySetPanics)
{
    FatTree topo(4, 2);
    EXPECT_DEATH((void)topo.routing().at(0).decode(
                     DestSet(16), RoutingVariant::ReplicateAfterLca),
                 "empty destination set");
}

TEST(RoutingNames, ToString)
{
    EXPECT_STREQ(toString(PortDir::Down), "down");
    EXPECT_STREQ(toString(PortDir::Up), "up");
    EXPECT_STREQ(toString(RoutingVariant::ReplicateAfterLca),
                 "replicate-after-lca");
    EXPECT_STREQ(toString(UpPortPolicy::Adaptive), "adaptive");
}

} // namespace
} // namespace mdw
