/**
 * @file
 * Tests for the deterministic parallel sweep runner — above all the
 * headline guarantee: the same base seed produces bit-identical
 * results at any thread count.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/presets.hh"
#include "core/sweep.hh"
#include "sim/rng.hh"

namespace mdw {
namespace {

/** Small, fast system: 16 hosts, short phases. */
ExperimentParams
quickParams()
{
    ExperimentParams params;
    params.warmup = 500;
    params.measure = 1500;
    params.drainLimit = 30000;
    params.watchdogQuiet = 50000;
    return params;
}

/**
 * A fig_multiple_multicast-style sweep: every scheme at every load,
 * in presentation order.
 */
SweepRunner
makeSweep(SweepOptions options)
{
    SweepRunner runner(options);
    for (double load : {0.02, 0.06}) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            net.fatTreeN = 2; // 16 hosts
            TrafficParams traffic = defaultTraffic();
            traffic.mcastDegree = 4;
            traffic.load = load;
            runner.add(toString(scheme), net, traffic, quickParams());
        }
    }
    return runner;
}

void
expectSamplersEqual(const Sampler &a, const Sampler &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

TEST(Sweep, ThreadCountsProduceIdenticalResults)
{
    SweepOptions serial;
    serial.threads = 1;
    serial.baseSeed = 2024;
    serial.deriveSeeds = true;
    SweepRunner one = makeSweep(serial);

    SweepOptions parallel = serial;
    parallel.threads = 4;
    SweepRunner four = makeSweep(parallel);

    const std::vector<ExperimentResult> &a = one.run();
    const std::vector<ExperimentResult> &b = four.run();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(identicalResults(a[i], b[i]))
            << "run " << i << " (" << one.report().runs[i].label
            << ") differs between 1 and 4 threads";
        // Some runs must actually measure something, or the
        // comparison is vacuous.
        EXPECT_GT(a[i].mcastCount() + a[i].unicastCount(), 0.0);
    }
    EXPECT_EQ(one.report().threads, 1);
    EXPECT_EQ(four.report().threads, 4);

    // The merged aggregates are built in submission order, so they
    // are bit-identical too.
    expectSamplersEqual(one.report().unicastLatency(),
                        four.report().unicastLatency());
    expectSamplersEqual(one.report().mcastLastLatency(),
                        four.report().mcastLastLatency());
    expectSamplersEqual(one.report().mcastAvgLatency(),
                        four.report().mcastAvgLatency());
}

TEST(Sweep, SerialRunnerMatchesDirectExperiments)
{
    SweepRunner runner = makeSweep(SweepOptions{});
    const std::vector<ExperimentResult> &results = runner.run();

    std::size_t idx = 0;
    for (double load : {0.02, 0.06}) {
        for (Scheme scheme : kAllSchemes) {
            NetworkConfig net = networkFor(scheme);
            net.fatTreeN = 2;
            TrafficParams traffic = defaultTraffic();
            traffic.mcastDegree = 4;
            traffic.load = load;
            const ExperimentResult direct =
                Experiment(net, traffic, quickParams()).run();
            EXPECT_TRUE(identicalResults(direct, results[idx]))
                << "run " << idx;
            ++idx;
        }
    }
}

TEST(Sweep, DerivedSeedsAreRecordedAndDistinct)
{
    SweepOptions options;
    options.threads = 2;
    options.baseSeed = 99;
    options.deriveSeeds = true;
    SweepRunner runner = makeSweep(options);
    runner.run();

    std::set<std::uint64_t> seen;
    const SweepReport &report = runner.report();
    ASSERT_EQ(report.runs.size(), runner.size());
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        const SweepRunRecord &record = report.runs[i];
        EXPECT_EQ(record.index, i);
        EXPECT_EQ(record.networkSeed, Rng::streamSeed(99, 2 * i));
        EXPECT_EQ(record.trafficSeed, Rng::streamSeed(99, 2 * i + 1));
        seen.insert(record.networkSeed);
        seen.insert(record.trafficSeed);
    }
    EXPECT_EQ(seen.size(), 2 * report.runs.size());
    EXPECT_TRUE(report.seedsDerived);
    EXPECT_EQ(report.baseSeed, 99u);
}

TEST(Sweep, UnderivedSeedsPassThrough)
{
    SweepRunner runner = makeSweep(SweepOptions{});
    runner.run();
    for (const SweepRunRecord &record : runner.report().runs) {
        EXPECT_EQ(record.networkSeed, defaultNetwork().seed);
        EXPECT_EQ(record.trafficSeed, defaultTraffic().seed);
    }
}

TEST(Sweep, ReportIsAnAuditTrail)
{
    SweepRunner runner = makeSweep(SweepOptions{});
    runner.run();

    const SweepReport &report = runner.report();
    std::size_t saturated = 0;
    for (std::size_t i = 0; i < runner.size(); ++i) {
        EXPECT_GE(report.runs[i].wallMs, 0.0);
        EXPECT_EQ(report.runs[i].saturated,
                  runner.results()[i].saturated);
        EXPECT_EQ(report.runs[i].drained, runner.results()[i].drained);
        saturated += report.runs[i].saturated;
    }
    EXPECT_EQ(report.saturatedCount(), saturated);
    EXPECT_GE(report.wallMs, 0.0);

    const std::string summary = report.summary();
    EXPECT_NE(summary.find("6 runs"), std::string::npos);
    EXPECT_NE(summary.find("cb-hw"), std::string::npos);
    EXPECT_NE(summary.find("sw-umin"), std::string::npos);
}

TEST(Sweep, ZeroThreadsResolvesToHardwareConcurrency)
{
    SweepOptions options;
    options.threads = 0;
    SweepRunner runner = makeSweep(options);
    runner.run();
    EXPECT_GE(runner.report().threads, 1);
    EXPECT_EQ(runner.results().size(), 6u);
}

TEST(Sweep, MoreThreadsThanRunsIsFine)
{
    SweepOptions serial;
    SweepRunner reference = makeSweep(serial);

    SweepOptions oversubscribed;
    oversubscribed.threads = 16;
    SweepRunner runner = makeSweep(oversubscribed);

    reference.run();
    runner.run();
    // The pool is clamped to the number of runs.
    EXPECT_LE(runner.report().threads, 6);
    for (std::size_t i = 0; i < runner.size(); ++i) {
        EXPECT_TRUE(identicalResults(reference.results()[i],
                                     runner.results()[i]));
    }
}

TEST(Sweep, ResultsEmptyBeforeRun)
{
    SweepRunner runner = makeSweep(SweepOptions{});
    EXPECT_TRUE(runner.results().empty());
    EXPECT_EQ(runner.size(), 6u);
}

TEST(Sweep, SweepLoadsParallelMatchesSerial)
{
    NetworkConfig net = defaultNetwork();
    net.fatTreeN = 2;
    TrafficParams traffic = defaultTraffic();
    traffic.mcastDegree = 4;
    const std::vector<double> loads = {0.02, 0.04, 0.08};

    const std::vector<ExperimentResult> serial =
        sweepLoads(net, traffic, quickParams(), loads);
    const std::vector<ExperimentResult> parallel =
        sweepLoads(net, traffic, quickParams(), loads, 3);

    ASSERT_EQ(serial.size(), loads.size());
    ASSERT_EQ(parallel.size(), loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
        EXPECT_EQ(serial[i].offeredLoad, loads[i]);
        EXPECT_TRUE(identicalResults(serial[i], parallel[i]))
            << "load " << loads[i];
    }
}

} // namespace
} // namespace mdw
