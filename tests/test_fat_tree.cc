/**
 * @file
 * Structural and reachability tests for the k-ary n-tree builder,
 * parameterized over (k, n).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "topology/fat_tree.hh"

namespace mdw {
namespace {

using Shape = std::pair<int, int>; // (k, n)

class FatTreeShapes : public ::testing::TestWithParam<Shape>
{
  protected:
    int k() const { return GetParam().first; }
    int n() const { return GetParam().second; }

    std::size_t
    hosts() const
    {
        return static_cast<std::size_t>(
            std::llround(std::pow(k(), n())));
    }
};

TEST_P(FatTreeShapes, Counts)
{
    FatTree t(k(), n());
    EXPECT_EQ(t.numHosts(), hosts());
    EXPECT_EQ(t.numSwitches(),
              static_cast<std::size_t>(n()) * hosts() / k());
    EXPECT_EQ(t.switchesPerLevel(), static_cast<int>(hosts()) / k());
    EXPECT_EQ(t.downLevels(), n());
}

TEST_P(FatTreeShapes, PortDirections)
{
    FatTree t(k(), n());
    for (std::size_t s = 0; s < t.numSwitches(); ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        const int level = t.levelOf(sw);
        for (PortId p = 0; p < k(); ++p)
            EXPECT_EQ(t.portDir(sw, p), PortDir::Down);
        for (PortId p = static_cast<PortId>(k()); p < 2 * k(); ++p) {
            EXPECT_EQ(t.portDir(sw, p), level + 1 < n()
                                            ? PortDir::Up
                                            : PortDir::Unused);
        }
    }
}

TEST_P(FatTreeShapes, LeafSwitchesOwnConsecutiveHosts)
{
    FatTree t(k(), n());
    for (std::size_t h = 0; h < t.numHosts(); ++h) {
        const HostAttach &at =
            t.graph().attach(static_cast<NodeId>(h));
        EXPECT_EQ(t.levelOf(at.sw), 0);
        EXPECT_EQ(t.labelOf(at.sw), static_cast<int>(h) / k());
        EXPECT_EQ(at.port, static_cast<PortId>(h % k()));
    }
}

TEST_P(FatTreeShapes, DownReachPartitionsHostsAtEverySwitch)
{
    FatTree t(k(), n());
    for (std::size_t s = 0; s < t.numSwitches(); ++s) {
        const SwitchRouting &sr =
            t.routing().at(static_cast<SwitchId>(s));
        DestSet seen(t.numHosts());
        for (PortId p = 0; p < k(); ++p) {
            const DestSet &reach = sr.downReach(p);
            EXPECT_FALSE(reach.empty());
            // Fat-tree subtrees are disjoint.
            EXPECT_FALSE(seen.intersects(reach));
            seen |= reach;
        }
        // Each switch at level l reaches exactly k^(l+1) hosts down.
        const std::size_t expect =
            static_cast<std::size_t>(std::llround(std::pow(
                k(), t.levelOf(static_cast<SwitchId>(s)) + 1)));
        EXPECT_EQ(seen.count(), expect);
        EXPECT_EQ(sr.allDownReach().count(), expect);
    }
}

TEST_P(FatTreeShapes, RootStageReachesEveryHost)
{
    FatTree t(k(), n());
    for (int label = 0; label < t.switchesPerLevel(); ++label) {
        const SwitchRouting &sr =
            t.routing().at(t.switchAt(n() - 1, label));
        EXPECT_EQ(sr.allDownReach().count(), t.numHosts());
        EXPECT_TRUE(sr.upPorts().empty());
    }
}

TEST_P(FatTreeShapes, NonRootSwitchesHaveKUpPorts)
{
    FatTree t(k(), n());
    for (std::size_t s = 0; s < t.numSwitches(); ++s) {
        const SwitchId sw = static_cast<SwitchId>(s);
        const SwitchRouting &sr = t.routing().at(sw);
        if (t.levelOf(sw) + 1 < n())
            EXPECT_EQ(sr.upPorts().size(), static_cast<std::size_t>(k()));
        else
            EXPECT_TRUE(sr.upPorts().empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FatTreeShapes,
                         ::testing::Values(Shape{2, 1}, Shape{2, 3},
                                           Shape{4, 1}, Shape{4, 2},
                                           Shape{4, 3}, Shape{4, 4},
                                           Shape{8, 2}, Shape{3, 3}));

TEST(FatTree, LevelsFor)
{
    EXPECT_EQ(FatTree::levelsFor(4, 1), 1);
    EXPECT_EQ(FatTree::levelsFor(4, 4), 1);
    EXPECT_EQ(FatTree::levelsFor(4, 5), 2);
    EXPECT_EQ(FatTree::levelsFor(4, 16), 2);
    EXPECT_EQ(FatTree::levelsFor(4, 64), 3);
    EXPECT_EQ(FatTree::levelsFor(4, 65), 4);
    EXPECT_EQ(FatTree::levelsFor(2, 1024), 10);
}

TEST(FatTree, DescribeMentionsShape)
{
    FatTree t(4, 3);
    const std::string d = t.describe();
    EXPECT_NE(d.find("4-ary 3-tree"), std::string::npos);
    EXPECT_NE(d.find("64 hosts"), std::string::npos);
}

TEST(FatTree, SwitchAtRoundTripsLevelAndLabel)
{
    FatTree t(4, 3);
    for (int level = 0; level < 3; ++level) {
        for (int label = 0; label < t.switchesPerLevel(); ++label) {
            const SwitchId sw = t.switchAt(level, label);
            EXPECT_EQ(t.levelOf(sw), level);
            EXPECT_EQ(t.labelOf(sw), label);
        }
    }
}

} // namespace
} // namespace mdw
