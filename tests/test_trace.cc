/**
 * @file
 * Tests for the trace-driven workload: in-memory replay, file
 * round-trips, parse errors, and an end-to-end run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/presets.hh"
#include "workload/trace.hh"

namespace mdw {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TraceEvent
unicastEvent(Cycle when, NodeId src, NodeId dest, int payload)
{
    TraceEvent event;
    event.when = when;
    event.src = src;
    event.spec.multicast = false;
    event.spec.dest = dest;
    event.spec.payloadFlits = payload;
    return event;
}

TraceEvent
mcastEvent(Cycle when, NodeId src, std::initializer_list<NodeId> dests,
           int payload, std::size_t hosts = 16)
{
    TraceEvent event;
    event.when = when;
    event.src = src;
    event.spec.multicast = true;
    event.spec.dests = DestSet::of(hosts, dests);
    event.spec.payloadFlits = payload;
    return event;
}

TEST(TraceTraffic, ReplaysAtExactCycles)
{
    TraceTraffic trace(16);
    trace.add(unicastEvent(10, 1, 2, 8));
    trace.add(unicastEvent(5, 1, 3, 8));
    trace.add(mcastEvent(7, 2, {4, 5}, 16));
    EXPECT_EQ(trace.pending(), 3u);
    EXPECT_EQ(trace.size(), 3u);

    std::vector<MessageSpec> out;
    trace.poll(1, 4, out);
    EXPECT_TRUE(out.empty());
    trace.poll(1, 5, out); // the cycle-5 event (sorted before 10)
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dest, 3);
    trace.poll(2, 7, out);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[1].multicast);
    trace.poll(1, 50, out); // catches up on the cycle-10 event
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(trace.pending(), 0u);
}

TEST(TraceTraffic, FileRoundTrip)
{
    const std::string path = tempPath("roundtrip.trace");
    std::vector<TraceEvent> events;
    events.push_back(unicastEvent(100, 0, 7, 32));
    events.push_back(mcastEvent(200, 3, {1, 8, 15}, 64));
    TraceTraffic::writeFile(path, events);

    TraceTraffic trace = TraceTraffic::fromFile(path, 16);
    EXPECT_EQ(trace.size(), 2u);
    std::vector<MessageSpec> out;
    trace.poll(0, 100, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dest, 7);
    trace.poll(3, 200, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[1].multicast);
    EXPECT_EQ(out[1].dests, DestSet::of(16, {1, 8, 15}));
    std::remove(path.c_str());
}

TEST(TraceTraffic, ParsesCommentsAndBlanks)
{
    const std::string path = tempPath("comments.trace");
    {
        std::ofstream out(path);
        out << "# header comment\n\n"
            << "5 1 U 2 16  # trailing comment\n"
            << "   \n"
            << "9 2 M 8 3,4,5\n";
    }
    TraceTraffic trace = TraceTraffic::fromFile(path, 16);
    EXPECT_EQ(trace.size(), 2u);
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, MalformedLineIsFatal)
{
    const std::string path = tempPath("bad.trace");
    {
        std::ofstream out(path);
        out << "5 1 X 2 16\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 "unknown event kind");
    {
        std::ofstream out(path);
        out << "5 1 M 8 99\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 "bad destination");
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, MissingFileIsFatal)
{
    EXPECT_DEATH((void)TraceTraffic::fromFile("/nonexistent.trace", 16),
                 "cannot open");
}

TEST(TraceTrafficDeath, InvalidEventPanics)
{
    TraceTraffic trace(8);
    EXPECT_DEATH(trace.add(unicastEvent(0, 1, 1, 8)), "invalid");
    EXPECT_DEATH(trace.add(unicastEvent(0, 99, 1, 8)), "out of range");
}

TEST(TraceTraffic, ExactNextArrival)
{
    TraceTraffic trace(16);
    trace.add(unicastEvent(100, 0, 7, 32));
    trace.add(unicastEvent(7, 3, 1, 8));
    EXPECT_EQ(trace.nextArrival(0, 0), 100u);
    EXPECT_EQ(trace.nextArrival(3, 0), 7u);
    EXPECT_EQ(trace.nextArrival(1, 0), kNoCycle);
    // An overdue posting is reported as "now", never in the past.
    EXPECT_EQ(trace.nextArrival(3, 20), 20u);
    std::vector<MessageSpec> out;
    trace.poll(3, 20, out);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(trace.nextArrival(3, 20), kNoCycle);
}

TEST(TraceTraffic, V2FileRoundTrip)
{
    const std::string path = tempPath("roundtrip_v2.trace");
    std::vector<TraceEvent> events;
    events.push_back(unicastEvent(100, 0, 7, 32));
    events.back().id = 1;
    events.push_back(mcastEvent(200, 3, {1, 8, 15}, 64));
    events.back().id = 2;
    events.back().deps = {1};
    events.push_back(unicastEvent(0, 8, 0, 16));
    events.back().id = 5;
    events.back().deps = {1, 2};
    TraceTraffic::writeFile(path, events);

    {
        std::ifstream in(path);
        std::string first;
        std::getline(in, first);
        EXPECT_EQ(first.rfind("# mdw-trace/2", 0), 0u)
            << "v2 trace must open with the magic line";
    }

    TraceTraffic trace = TraceTraffic::fromFile(path, 16);
    ASSERT_EQ(trace.size(), 3u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &want = events[i];
        const TraceEvent &got = trace.events()[i];
        EXPECT_EQ(got.id, want.id) << "event " << i;
        EXPECT_EQ(got.deps, want.deps) << "event " << i;
        EXPECT_EQ(got.when, want.when) << "event " << i;
        EXPECT_EQ(got.src, want.src) << "event " << i;
        EXPECT_EQ(got.spec.multicast, want.spec.multicast);
        EXPECT_EQ(got.spec.payloadFlits, want.spec.payloadFlits);
        if (want.spec.multicast)
            EXPECT_EQ(got.spec.dests, want.spec.dests);
        else
            EXPECT_EQ(got.spec.dest, want.spec.dest);
    }
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, V2MalformedLinesAreFatalWithLineNumbers)
{
    const std::string path = tempPath("bad_v2.trace");
    {
        std::ofstream out(path);
        out << "# mdw-trace/2\n"
            << "0 5 1 U 2 16\n"; // id 0 is reserved for v1 events
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 ":2: event id must be positive");
    {
        std::ofstream out(path);
        out << "# mdw-trace/2\n"
            << "1 5 1 U 2 16\n"
            << "2 6 2 U 3 16 deps=zig\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 ":3: bad dependency id 'zig'");
    {
        std::ofstream out(path);
        out << "# mdw-trace/2\n"
            << "1 5 1 U 2 16\n"
            << "1 6 2 U 3 16\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 ":3: duplicate event id 1");
    {
        // deps= on a v1 trace (no magic) is a trailing-junk error.
        std::ofstream out(path);
        out << "5 1 U 2 16 deps=1\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 ":1: unexpected trailing token 'deps=1'");
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, V2UnknownDependencyIsFatal)
{
    const std::string path = tempPath("unknown_dep.trace");
    {
        std::ofstream out(path);
        out << "# mdw-trace/2\n"
            << "1 5 1 U 2 16\n"
            << "2 6 2 U 3 16 deps=1,99\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 ":3: unknown dependency id 99");
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, DependencyCycleIsFatal)
{
    TraceTraffic trace(8);
    TraceEvent a = unicastEvent(0, 0, 1, 8);
    a.id = 1;
    a.deps = {3};
    TraceEvent b = unicastEvent(0, 1, 2, 8);
    b.id = 2;
    b.deps = {1};
    TraceEvent c = unicastEvent(0, 2, 3, 8);
    c.id = 3;
    c.deps = {2};
    trace.add(a);
    trace.add(b);
    trace.add(c);
    EXPECT_DEATH(trace.resolveDependencies(), "dependency cycle");
}

// Manual-poll unit for the dependency gate and the release rule: a
// dependent event stays invisible until its dependency *completes*,
// and then releases no earlier than completion + 1.
TEST(TraceTraffic, DependencyHoldsEventUntilCompletion)
{
    TraceTraffic trace(8);
    TraceEvent first = unicastEvent(0, 0, 1, 8);
    first.id = 1;
    TraceEvent second = unicastEvent(0, 2, 3, 8);
    second.id = 2;
    second.deps = {1};
    trace.add(first);
    trace.add(second);

    std::vector<MessageSpec> out;
    trace.poll(2, 0, out);
    EXPECT_TRUE(out.empty()) << "dependent event released too early";
    EXPECT_EQ(trace.nextArrival(2, 0), kNoCycle);

    trace.poll(0, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].token, 1u);

    // Play the NIC: post it as message 77, then complete at cycle 10.
    trace.onPosted(0, out[0].token, 77, 0);
    trace.onCompleted(77, 0, 10);

    // The release rule: visible at 11, not 10.
    EXPECT_EQ(trace.nextArrival(2, 10), 11u);
    out.clear();
    trace.poll(2, 10, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(trace.nextArrival(2, 11), 11u);
    trace.poll(2, 11, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].token, 2u);
    EXPECT_EQ(trace.pending(), 0u);
    EXPECT_TRUE(trace.exhausted());
}

TEST(TraceTraffic, DrivesANetworkEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);

    TraceTraffic trace(net.numHosts());
    trace.add(unicastEvent(0, 0, 9, 32));
    trace.add(mcastEvent(50, 4, {1, 2, 12}, 48));
    trace.add(unicastEvent(100, 9, 0, 16));
    net.attachTraffic(&trace);

    net.armWatchdog(10000);
    // Idle alone is not enough: the network is trivially idle before
    // the first trace event fires.
    ASSERT_TRUE(net.sim().runUntil(
        [&net, &trace] {
            return trace.pending() == 0 && net.idle();
        },
        100000));
    EXPECT_EQ(trace.pending(), 0u);
    EXPECT_EQ(net.tracker().totalCompleted(), 3u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 5u);
}

} // namespace
} // namespace mdw
