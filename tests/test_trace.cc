/**
 * @file
 * Tests for the trace-driven workload: in-memory replay, file
 * round-trips, parse errors, and an end-to-end run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/presets.hh"
#include "workload/trace.hh"

namespace mdw {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TraceEvent
unicastEvent(Cycle when, NodeId src, NodeId dest, int payload)
{
    TraceEvent event;
    event.when = when;
    event.src = src;
    event.spec.multicast = false;
    event.spec.dest = dest;
    event.spec.payloadFlits = payload;
    return event;
}

TraceEvent
mcastEvent(Cycle when, NodeId src, std::initializer_list<NodeId> dests,
           int payload, std::size_t hosts = 16)
{
    TraceEvent event;
    event.when = when;
    event.src = src;
    event.spec.multicast = true;
    event.spec.dests = DestSet::of(hosts, dests);
    event.spec.payloadFlits = payload;
    return event;
}

TEST(TraceTraffic, ReplaysAtExactCycles)
{
    TraceTraffic trace(16);
    trace.add(unicastEvent(10, 1, 2, 8));
    trace.add(unicastEvent(5, 1, 3, 8));
    trace.add(mcastEvent(7, 2, {4, 5}, 16));
    EXPECT_EQ(trace.pending(), 3u);
    EXPECT_EQ(trace.size(), 3u);

    std::vector<MessageSpec> out;
    trace.poll(1, 4, out);
    EXPECT_TRUE(out.empty());
    trace.poll(1, 5, out); // the cycle-5 event (sorted before 10)
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dest, 3);
    trace.poll(2, 7, out);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[1].multicast);
    trace.poll(1, 50, out); // catches up on the cycle-10 event
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(trace.pending(), 0u);
}

TEST(TraceTraffic, FileRoundTrip)
{
    const std::string path = tempPath("roundtrip.trace");
    std::vector<TraceEvent> events;
    events.push_back(unicastEvent(100, 0, 7, 32));
    events.push_back(mcastEvent(200, 3, {1, 8, 15}, 64));
    TraceTraffic::writeFile(path, events);

    TraceTraffic trace = TraceTraffic::fromFile(path, 16);
    EXPECT_EQ(trace.size(), 2u);
    std::vector<MessageSpec> out;
    trace.poll(0, 100, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dest, 7);
    trace.poll(3, 200, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[1].multicast);
    EXPECT_EQ(out[1].dests, DestSet::of(16, {1, 8, 15}));
    std::remove(path.c_str());
}

TEST(TraceTraffic, ParsesCommentsAndBlanks)
{
    const std::string path = tempPath("comments.trace");
    {
        std::ofstream out(path);
        out << "# header comment\n\n"
            << "5 1 U 2 16  # trailing comment\n"
            << "   \n"
            << "9 2 M 8 3,4,5\n";
    }
    TraceTraffic trace = TraceTraffic::fromFile(path, 16);
    EXPECT_EQ(trace.size(), 2u);
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, MalformedLineIsFatal)
{
    const std::string path = tempPath("bad.trace");
    {
        std::ofstream out(path);
        out << "5 1 X 2 16\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 "unknown event kind");
    {
        std::ofstream out(path);
        out << "5 1 M 8 99\n";
    }
    EXPECT_DEATH((void)TraceTraffic::fromFile(path, 16),
                 "bad destination");
    std::remove(path.c_str());
}

TEST(TraceTrafficDeath, MissingFileIsFatal)
{
    EXPECT_DEATH((void)TraceTraffic::fromFile("/nonexistent.trace", 16),
                 "cannot open");
}

TEST(TraceTrafficDeath, InvalidEventPanics)
{
    TraceTraffic trace(8);
    EXPECT_DEATH(trace.add(unicastEvent(0, 1, 1, 8)), "invalid");
    EXPECT_DEATH(trace.add(unicastEvent(0, 99, 1, 8)), "out of range");
}

TEST(TraceTraffic, DrivesANetworkEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);

    TraceTraffic trace(net.numHosts());
    trace.add(unicastEvent(0, 0, 9, 32));
    trace.add(mcastEvent(50, 4, {1, 2, 12}, 48));
    trace.add(unicastEvent(100, 9, 0, 16));
    net.attachTraffic(&trace);

    net.armWatchdog(10000);
    // Idle alone is not enough: the network is trivially idle before
    // the first trace event fires.
    ASSERT_TRUE(net.sim().runUntil(
        [&net, &trace] {
            return trace.pending() == 0 && net.idle();
        },
        100000));
    EXPECT_EQ(trace.pending(), 0u);
    EXPECT_EQ(net.tracker().totalCompleted(), 3u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 5u);
}

} // namespace
} // namespace mdw
