/**
 * @file
 * Tests for the experiment runner, presets, and config overrides.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/presets.hh"

namespace mdw {
namespace {

ExperimentParams
quickParams()
{
    ExperimentParams params;
    params.warmup = 2000;
    params.measure = 6000;
    params.drainLimit = 100000;
    params.watchdogQuiet = 50000;
    return params;
}

NetworkConfig
smallNet()
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    return config;
}

TEST(Experiment, LowLoadRunDrainsAndMeasures)
{
    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.02;
    traffic.mcastDegree = 4;
    traffic.payloadFlits = 32;
    Experiment exp(smallNet(), traffic, quickParams());
    const ExperimentResult r = exp.run();
    EXPECT_TRUE(r.drained);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.mcastCount(), 0.0);
    EXPECT_GT(r.mcastLastAvg(), 0.0);
    EXPECT_GE(r.mcastLastAvg(), r.mcastAvgAvg());
    // Delivered ~= offered x degree.
    EXPECT_NEAR(r.deliveredLoad(), r.expectedDelivered,
                r.expectedDelivered * 0.25);
}

TEST(Experiment, AbsurdLoadReportsSaturation)
{
    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.8;
    traffic.mcastDegree = 15;
    traffic.payloadFlits = 32;
    ExperimentParams params = quickParams();
    params.drainLimit = 5000; // don't wait for the backlog
    params.watchdogQuiet = 0;
    Experiment exp(smallNet(), traffic, params);
    const ExperimentResult r = exp.run();
    EXPECT_TRUE(r.saturated);
}

TEST(Experiment, DeliveryMultiplierByPattern)
{
    TrafficParams traffic = defaultTraffic();
    traffic.mcastDegree = 8;
    traffic.pattern = TrafficPattern::UniformUnicast;
    EXPECT_DOUBLE_EQ(
        Experiment(smallNet(), traffic, quickParams())
            .deliveryMultiplier(),
        1.0);
    traffic.pattern = TrafficPattern::MultipleMulticast;
    EXPECT_DOUBLE_EQ(
        Experiment(smallNet(), traffic, quickParams())
            .deliveryMultiplier(),
        8.0);
    traffic.pattern = TrafficPattern::Bimodal;
    traffic.mcastFraction = 0.5;
    EXPECT_DOUBLE_EQ(
        Experiment(smallNet(), traffic, quickParams())
            .deliveryMultiplier(),
        4.5);
}

TEST(Experiment, ResultsAreReproducible)
{
    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.03;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 4;
    const ExperimentResult a =
        Experiment(smallNet(), traffic, quickParams()).run();
    const ExperimentResult b =
        Experiment(smallNet(), traffic, quickParams()).run();
    EXPECT_DOUBLE_EQ(a.mcastLastAvg(), b.mcastLastAvg());
    EXPECT_DOUBLE_EQ(a.mcastAvgAvg(), b.mcastAvgAvg());
    EXPECT_DOUBLE_EQ(a.deliveredLoad(), b.deliveredLoad());
}

TEST(Experiment, SweepLoadsPreservesOrderAndMonotonicity)
{
    TrafficParams traffic = defaultTraffic();
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 4;
    const std::vector<double> loads{0.01, 0.06};
    const auto results =
        sweepLoads(smallNet(), traffic, quickParams(), loads);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_DOUBLE_EQ(results[0].offeredLoad, 0.01);
    EXPECT_DOUBLE_EQ(results[1].offeredLoad, 0.06);
    // More load, more latency.
    EXPECT_GE(results[1].mcastLastAvg(), results[0].mcastLastAvg());
}

TEST(Presets, SchemesConfigureArchAndScheme)
{
    EXPECT_EQ(networkFor(Scheme::CbHw).arch,
              SwitchArch::CentralBuffer);
    EXPECT_EQ(networkFor(Scheme::CbHw).nic.scheme,
              McastScheme::Hardware);
    EXPECT_EQ(networkFor(Scheme::IbHw).arch, SwitchArch::InputBuffer);
    EXPECT_EQ(networkFor(Scheme::SwUmin).arch,
              SwitchArch::CentralBuffer);
    EXPECT_EQ(networkFor(Scheme::SwUmin).nic.scheme,
              McastScheme::Software);
    EXPECT_STREQ(toString(Scheme::CbHw), "cb-hw");
}

TEST(Presets, ApplyOverridesParsesEveryKnob)
{
    Config cli;
    for (const char *token :
         {"arch=ib", "scheme=sw", "k=2", "n=3", "load=0.25",
          "payload=128", "degree=16", "pattern=bimodal",
          "mcastFraction=0.4", "routing=replicate-on-up-path",
          "upPolicy=deterministic", "cb.chunks=64", "ib.buffer=600",
          "warmup=123", "measure=456", "seed=9",
          "encoding=multiport"}) {
        cli.parseToken(token);
    }
    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    applyOverrides(cli, net, traffic, params);

    EXPECT_EQ(net.arch, SwitchArch::InputBuffer);
    EXPECT_EQ(net.nic.scheme, McastScheme::Software);
    EXPECT_EQ(net.fatTreeK, 2);
    EXPECT_EQ(net.fatTreeN, 3);
    EXPECT_EQ(net.sw.variant, RoutingVariant::ReplicateOnUpPath);
    EXPECT_EQ(net.sw.upPolicy, UpPortPolicy::Deterministic);
    EXPECT_EQ(net.cb.cqChunks, 64);
    EXPECT_EQ(net.ib.bufferFlits, 600);
    EXPECT_EQ(net.nic.encoding, McastEncoding::Multiport);
    EXPECT_EQ(net.seed, 9u);
    EXPECT_DOUBLE_EQ(traffic.load, 0.25);
    EXPECT_EQ(traffic.payloadFlits, 128);
    EXPECT_EQ(traffic.mcastDegree, 16);
    EXPECT_EQ(traffic.pattern, TrafficPattern::Bimodal);
    EXPECT_DOUBLE_EQ(traffic.mcastFraction, 0.4);
    EXPECT_EQ(params.warmup, 123u);
    EXPECT_EQ(params.measure, 456u);
}

TEST(PresetsDeath, UnknownKeyIsFatal)
{
    Config cli;
    cli.parseToken("tpyo=1");
    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    EXPECT_DEATH(applyOverrides(cli, net, traffic, params),
                 "unknown config keys");
}

TEST(PresetsDeath, BadEnumValueIsFatal)
{
    Config cli;
    cli.parseToken("arch=quantum");
    NetworkConfig net = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams params = defaultExperiment();
    EXPECT_DEATH(applyOverrides(cli, net, traffic, params),
                 "unknown arch");
}

TEST(Experiment, PercentilesBracketTheMean)
{
    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.04;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 4;
    const ExperimentResult r =
        Experiment(smallNet(), traffic, quickParams()).run();
    ASSERT_GT(r.mcastCount(), 0.0);
    EXPECT_GE(r.mcastLastP95(), r.mcastLastAvg() * 0.8);
    EXPECT_GT(r.mcastLastP95(), 0.0);
}

TEST(Experiment, HotSpotPatternRuns)
{
    TrafficParams traffic;
    traffic.pattern = TrafficPattern::HotSpot;
    traffic.load = 0.05;
    traffic.payloadFlits = 32;
    traffic.hotFraction = 0.3;
    const ExperimentResult r =
        Experiment(smallNet(), traffic, quickParams()).run();
    EXPECT_TRUE(r.drained);
    EXPECT_GT(r.unicastCount(), 0.0);
    EXPECT_DOUBLE_EQ(r.expectedDelivered, r.offeredLoad);
}

TEST(Network, DumpStateSmoke)
{
    Network net(smallNet());
    net.nic(0).postMulticast(DestSet::of(16, {3, 7}), 32, 0);
    net.sim().run(20);
    // Dump to /dev/null just to exercise the formatting paths.
    FILE *sink = std::fopen("/dev/null", "w");
    ASSERT_NE(sink, nullptr);
    net.dumpState(sink);
    std::fclose(sink);
}

TEST(Experiment, LinkUtilizationTracksLoad)
{
    TrafficParams traffic = defaultTraffic();
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 4;
    traffic.load = 0.02;
    const ExperimentResult low =
        Experiment(smallNet(), traffic, quickParams()).run();
    traffic.load = 0.06;
    const ExperimentResult high =
        Experiment(smallNet(), traffic, quickParams()).run();

    EXPECT_GT(low.meanLinkUtil(), 0.0);
    EXPECT_GE(low.maxLinkUtil(), low.meanLinkUtil());
    EXPECT_LE(low.maxLinkUtil(), 1.0);
    // Triple the load, busier links.
    EXPECT_GT(high.meanLinkUtil(), low.meanLinkUtil() * 1.5);
}

TEST(Experiment, RowFormattingContainsLabel)
{
    ExperimentResult r;
    r.offeredLoad = 0.1;
    const std::string row = formatResultRow("cb-hw", r);
    EXPECT_NE(row.find("cb-hw"), std::string::npos);
    EXPECT_FALSE(resultHeader().empty());
}

} // namespace
} // namespace mdw
