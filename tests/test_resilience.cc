/**
 * @file
 * Fault injection and recovery: fault plans, fault-aware rerouting,
 * NIC retransmission, partial-completion accounting, the quiescence
 * audit, and the non-aborting deadlock watchdog diagnosis.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/resilience.hh"

namespace mdw {
namespace {

/** First @p count switch-switch links of @p topo, one per physical
 *  link, in deterministic (switch, port) order. */
std::vector<std::pair<SwitchId, PortId>>
firstLinks(const Topology &topo, std::size_t count)
{
    std::vector<std::pair<SwitchId, PortId>> links;
    const PortGraph &graph = topo.graph();
    for (std::size_t s = 0;
         s < graph.numSwitches() && links.size() < count; ++s) {
        const SwitchId a = static_cast<SwitchId>(s);
        for (PortId p = 0;
             p < graph.radix(a) && links.size() < count; ++p) {
            const PortPeer &peer = graph.peer(a, p);
            if (peer.isSwitch() &&
                std::make_pair(a, p) <= std::make_pair(peer.sw, peer.port))
                links.emplace_back(a, p);
        }
    }
    return links;
}

TEST(FaultPlan, RandomDrawIsDeterministicAndDistinct)
{
    std::vector<std::pair<SwitchId, int>> links;
    for (int i = 0; i < 12; ++i)
        links.emplace_back(static_cast<SwitchId>(i / 4), i % 4 + 4);
    std::vector<SwitchId> switches{0, 1, 2, 3};

    FaultSpec spec;
    spec.links = 5;
    spec.switches = 2;
    spec.start = 100;
    spec.end = 900;
    spec.seed = 7;

    FaultPlan a = FaultPlan::random(spec, links, switches);
    FaultPlan b = FaultPlan::random(spec, links, switches);
    ASSERT_EQ(a.events.size(), 7u);
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].when, b.events[i].when);
        EXPECT_EQ(a.events[i].sw, b.events[i].sw);
        EXPECT_EQ(a.events[i].port, b.events[i].port);
        EXPECT_GE(a.events[i].when, spec.start);
        EXPECT_LE(a.events[i].when, spec.end);
    }
    // Distinct components per kind.
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        for (std::size_t j = i + 1; j < a.events.size(); ++j) {
            if (a.events[i].kind != a.events[j].kind)
                continue;
            EXPECT_FALSE(a.events[i].sw == a.events[j].sw &&
                         a.events[i].port == a.events[j].port)
                << "duplicate fault target at " << i << "," << j;
        }
    }
}

/**
 * Acceptance: a link failure in the middle of sustained multicast
 * traffic. The fabric reroutes around the dead link, truncated worms
 * are poisoned and dropped end-to-end, the NICs retransmit, and every
 * message still completes at every (still reachable — here: all)
 * destination. The network must end quiescent.
 */
TEST(Resilience, LinkFailureMidMulticastRecoversViaRetransmission)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    config.nic.retransmitTimeout = 3000;

    // Kill two of leaf 0's four up links while traffic is flowing.
    {
        FatTree scratch(4, 2);
        const auto links = firstLinks(scratch, 2);
        ASSERT_EQ(links.size(), 2u);
        FaultEvent e;
        e.kind = FaultKind::LinkDown;
        e.when = 1200;
        e.sw = links[0].first;
        e.port = links[0].second;
        config.faultPlan.add(e);
        e.when = 1700;
        e.sw = links[1].first;
        e.port = links[1].second;
        config.faultPlan.add(e);
    }

    Network net(config);
    ASSERT_NE(net.resilience(), nullptr);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.12;
    traffic.payloadFlits = 48;
    traffic.mcastDegree = 8;
    traffic.seed = 9;
    traffic.stopCycle = 4000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(4000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 500000);

    ASSERT_TRUE(drained) << "undrained after fault recovery";
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.resilience()->faultsApplied(), 2u);
    EXPECT_GT(source.generated(), 0u);

    // Every destination is still reachable (two of four redundant up
    // links survive), so every message must complete *fully* — any
    // truncated copy must have been retransmitted.
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);
    EXPECT_EQ(net.tracker().unreachableDests(), 0u);
    EXPECT_EQ(net.tracker().inFlight(), 0u);

    // The faults must actually have bitten: flits tombstoned at the
    // dead ports and whole messages re-sent by their source NICs.
    std::uint64_t retransmits = 0, poisoned_drops = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts()); ++n) {
        retransmits += net.nic(n).stats().retransmits.value();
        poisoned_drops += net.nic(n).stats().poisonedDrops.value();
    }
    EXPECT_GT(retransmits, 0u);
    EXPECT_GT(net.resilience()->poisonedPackets(), 0u);
    (void)poisoned_drops;

    // The survivors drained completely: buffers empty, credits home.
    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

/**
 * Acceptance: a destination made unroutable with retransmission
 * disabled must produce a structured watchdog diagnosis — including a
 * dumpState() capture — instead of a hang or an abort.
 */
TEST(Resilience, UnroutableDestinationTripsWatchdogWithDiagnosis)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.nic.retransmitTimeout = 0; // no host-level recovery
    config.telemetry.trace = true;    // diagnosis carries the trace

    // Host 15's leaf switch dies shortly after the worm launches.
    FatTree scratch(4, 2);
    const SwitchId doomed = scratch.graph().attach(15).sw;
    ASSERT_NE(doomed, scratch.graph().attach(0).sw);
    FaultEvent e;
    e.kind = FaultKind::SwitchDown;
    e.when = 60;
    e.sw = doomed;
    config.faultPlan.add(e);

    Network net(config);
    DestSet dests(net.numHosts());
    dests.set(5);
    dests.set(15);
    net.nic(0).postMulticast(dests, 64, 0);

    net.armWatchdog(2000);
    net.sim().run(30000);

    EXPECT_TRUE(net.sim().deadlockDetected());
    const WatchdogDiagnosis *diag = net.watchdogDiagnosis();
    ASSERT_NE(diag, nullptr);
    EXPECT_GE(diag->messagesInFlight, 1u);
    EXPECT_NE(diag->stateDump.find("network state at cycle"),
              std::string::npos);
    EXPECT_GT(diag->cycle, 60u);
    // The worm tracer's recent history rides along with the dump.
    EXPECT_NE(diag->traceJson.find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(diag->traceJson.find("\"inject\""), std::string::npos);
    // The copy toward the dead leaf was written off in the fabric.
    EXPECT_GE(net.resilience()->faultsApplied(), 1u);
}

/**
 * Rerouting alone (no retransmission) carries traffic posted *after*
 * a link failure: the rebuilt up*-down* tables route around the dead
 * link and every new message completes fully.
 */
TEST(Resilience, TrafficAfterLinkFailureRoutesAroundIt)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.retransmitTimeout = 0;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    ASSERT_EQ(links.size(), 1u);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 5;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);

    Network net(config);
    net.armWatchdog(30000);
    net.sim().run(20); // let the fault land first

    // Every host is still reachable from every other.
    for (NodeId h = 0; h < static_cast<NodeId>(net.numHosts()); ++h) {
        EXPECT_EQ(net.resilience()->reachableFrom(h).count(),
                  net.numHosts())
            << "host " << h;
    }

    // Multicasts from hosts on the degraded leaf, after the fault.
    std::size_t posted = 0;
    for (NodeId src : {0, 1, 2, 3}) {
        DestSet dests(net.numHosts());
        for (NodeId d : {4, 7, 9, 12, 15}) {
            if (d != src)
                dests.set(d);
        }
        net.nic(src).postMulticast(dests, 32, net.sim().now());
        ++posted;
    }
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
    ASSERT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), posted);
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);

    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

/**
 * A dead switch takes its hosts with it: sends toward them are
 * written off as unreachable (partial completion, no hang), sends
 * *from* them are dropped at the dead NIC, and the per-host
 * reachability sets shrink accordingly.
 */
TEST(Resilience, SwitchDeathWritesOffItsHosts)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.retransmitTimeout = 2000;

    FatTree scratch(4, 2);
    const SwitchId doomed = scratch.graph().attach(15).sw;
    FaultEvent e;
    e.kind = FaultKind::SwitchDown;
    e.when = 10;
    e.sw = doomed;
    config.faultPlan.add(e);

    Network net(config);
    net.armWatchdog(30000);
    net.sim().run(20);
    ASSERT_TRUE(net.resilience()->switchDead(doomed));

    // Hosts 12..15 share the doomed leaf; the rest survive.
    const DestSet &from0 = net.resilience()->reachableFrom(0);
    EXPECT_EQ(from0.count(), net.numHosts() - 4);
    EXPECT_FALSE(from0.test(15));
    EXPECT_TRUE(from0.test(11));
    EXPECT_TRUE(net.resilience()->reachableFrom(15).empty());

    // A multicast spanning live and dead hosts completes partially.
    DestSet dests(net.numHosts());
    dests.set(5);
    dests.set(14);
    dests.set(15);
    net.nic(0).postMulticast(dests, 32, net.sim().now());
    // A post *from* a dead host is written off entirely.
    net.nic(15).postUnicast(3, 32, net.sim().now());

    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
    ASSERT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), 0u);
    EXPECT_EQ(net.tracker().partialCompleted(), 2u);
    EXPECT_EQ(net.tracker().unreachableDests(), 3u);
}

/** A degraded link still delivers everything, just more slowly. */
TEST(Resilience, DegradedLinkDeliversEverything)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 4);
    ASSERT_EQ(links.size(), 4u);
    // Degrade every up link of leaf 0 so the slowdown is unavoidable.
    for (const auto &[sw, port] : links) {
        FaultEvent e;
        e.kind = FaultKind::LinkDegrade;
        e.when = 5;
        e.sw = sw;
        e.port = port;
        e.factor = 4;
        config.faultPlan.add(e);
    }

    Network net(config);
    net.armWatchdog(50000);
    net.sim().run(20);

    DestSet dests(net.numHosts());
    for (NodeId d : {4, 9, 14})
        dests.set(d);
    net.nic(0).postMulticast(dests, 64, net.sim().now());
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
    ASSERT_TRUE(drained);
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);

    // Same send on an intact network is strictly faster.
    NetworkConfig intact = defaultNetwork();
    intact.fatTreeK = 4;
    intact.fatTreeN = 2;
    Network net2(intact);
    net2.nic(0).postMulticast(dests, 64, 0);
    net2.sim().runUntil([&net2] { return net2.idle(); }, 200000);
    EXPECT_GT(net.tracker().mcastLastLatency().mean(),
              net2.tracker().mcastLastLatency().mean());
}

/** Faulted runs are exactly reproducible (same spec, same numbers). */
TEST(Resilience, FaultedExperimentIsDeterministic)
{
    NetworkConfig network = defaultNetwork();
    network.fatTreeK = 4;
    network.fatTreeN = 2;
    network.faultSpec.links = 2;
    network.faultSpec.start = 1500;
    network.faultSpec.end = 2500;
    network.faultSpec.seed = 3;
    network.nic.retransmitTimeout = 2500;

    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.08;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 6;

    ExperimentParams params;
    params.warmup = 1000;
    params.measure = 3000;
    params.drainLimit = 100000;
    params.watchdogQuiet = 50000;

    ExperimentResult a = Experiment(network, traffic, params).run();
    ExperimentResult b = Experiment(network, traffic, params).run();
    EXPECT_TRUE(identicalResults(a, b));
    EXPECT_EQ(a.faultsApplied(), 2u);
    EXPECT_TRUE(a.drained);
    EXPECT_FALSE(a.deadlocked);
    EXPECT_TRUE(a.quiescent);
}

/** Fault machinery also holds up on the input-buffer architecture. */
TEST(Resilience, InputBufferArchitectureRecoversToo)
{
    NetworkConfig config = defaultNetwork();
    config.arch = SwitchArch::InputBuffer;
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    config.nic.retransmitTimeout = 3000;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 2);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 1200;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);
    e.when = 1700;
    e.sw = links[1].first;
    e.port = links[1].second;
    config.faultPlan.add(e);

    Network net(config);
    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.12;
    traffic.payloadFlits = 48;
    traffic.mcastDegree = 8;
    traffic.seed = 9;
    traffic.stopCycle = 4000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(4000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 500000);
    ASSERT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);

    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

/** Software multicast (U-Min carriers) also recovers: lost carriers
 *  are retransmitted by the original source. */
TEST(Resilience, SoftwareSchemeRecoversLostCarriers)
{
    NetworkConfig config = networkFor(Scheme::SwUmin);
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    config.nic.retransmitTimeout = 4000;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 2);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 1500;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);

    Network net(config);
    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.10;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 8;
    traffic.seed = 5;
    traffic.stopCycle = 4000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(4000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 500000);
    ASSERT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    EXPECT_EQ(net.tracker().inFlight(), 0u);
}

// --- Watchdog semantics under the idle-skipping fast path ----------

/** Sleeps forever after its first step; work never progresses. */
class WedgedComponent : public Component
{
  public:
    using Component::Component;
    void step(Cycle) override {}
    Cycle nextWork(Cycle) override { return kNoCycle; }
};

/**
 * The fast path may never skip past the cycle where the watchdog
 * would trip: a wedged system must be diagnosed at exactly the same
 * cycle whether or not the tick set is empty.
 */
TEST(Resilience, WatchdogTripCycleIdenticalUnderFastPath)
{
    Cycle trippedAt[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
        Simulator sim;
        WedgedComponent wedged("wedged");
        sim.add(&wedged);
        sim.setFastPath(mode == 1);
        bool fired = false;
        sim.setWatchdog(500, [] { return true; },
                        [&fired] { fired = true; });
        sim.run(100000);
        EXPECT_TRUE(fired);
        EXPECT_TRUE(sim.deadlockDetected());
        trippedAt[mode] = sim.now();
    }
    EXPECT_EQ(trippedAt[0], trippedAt[1]);
}

/**
 * The flip side: a fully-idle tick set with pending work that is
 * merely *waiting* (here: a long software send overhead, i.e. an
 * in-flight transfer whose completion time is known analytically) is
 * progress, not a hang. The watchdog must stay quiet, every component
 * must actually have deregistered mid-wait, and the quiescence settle
 * must still converge once the message drains.
 */
TEST(Resilience, IdleTickSetWithPendingWorkIsNotAHang)
{
    NetworkConfig config = defaultNetwork();
    config.fastPath = true;
    config.nic.sendOverhead = 5000;
    Network net(config);
    net.armWatchdog(20000);
    net.nic(0).postUnicast(1, 16, 0);

    // Mid-overhead: nothing ticks, yet the network is not idle.
    net.sim().run(2500);
    EXPECT_FALSE(net.idle());
    EXPECT_FALSE(net.sim().deadlockDetected());
    if (net.sim().fastPath()) {
        EXPECT_EQ(net.sim().activeCount(), 0u);
    }

    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.nic(1).stats().packetsDelivered.value(), 1u);

    std::string why;
    net.sim().runUntil([&net] { return net.checkQuiescent(nullptr); },
                       4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
    if (net.sim().fastPath()) {
        EXPECT_EQ(net.sim().activeCount(), 0u);
    }
}

/**
 * Retransmission timers are the other "analytical in-flight" state:
 * with faults killing deliveries, sleeping NICs must still wake at
 * their retry deadlines and the run must end exactly as the
 * cycle-accurate oracle says it does.
 */
TEST(Resilience, RetransmitTimersFireFromSleep)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.retransmitTimeout = 2000;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 700;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);

    std::uint64_t completed[2] = {0, 0};
    std::uint64_t retransmits[2] = {0, 0};
    Cycle finished[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
        NetworkConfig c = config;
        c.fastPath = mode == 1;
        Network net(c);
        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.08;
        traffic.payloadFlits = 32;
        traffic.mcastDegree = 4;
        traffic.seed = 11;
        traffic.stopCycle = 2000;
        SyntheticTraffic source(net.numHosts(), traffic);
        net.attachTraffic(&source);

        net.armWatchdog(50000);
        net.sim().run(2000);
        ASSERT_TRUE(net.sim().runUntil(
            [&net] { return net.idle(); }, 500000));
        EXPECT_FALSE(net.sim().deadlockDetected());
        net.sim().runUntil(
            [&net] { return net.checkQuiescent(nullptr); }, 4096);
        std::string why;
        EXPECT_TRUE(net.checkQuiescent(&why)) << why;
        completed[mode] = net.tracker().totalCompleted();
        for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts());
             ++n)
            retransmits[mode] += net.nic(n).stats().retransmits.value();
        finished[mode] = net.sim().now();
    }
    EXPECT_EQ(completed[0], completed[1]);
    EXPECT_EQ(retransmits[0], retransmits[1]);
    EXPECT_EQ(finished[0], finished[1]);
}

// --- Transient-fault edge cases (link-level retry subsystem) -------

/**
 * A retry-exhaustion escalation racing a planned fail-stop on the
 * same link must be a no-op the second time around: the fault is
 * counted once, applied once, and the run carries on.
 */
TEST(Resilience, EscalationOnAlreadyDeadLinkIsNoOp)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    // A vanishing BER instantiates the link layers without actually
    // corrupting anything in this short run.
    config.faultSpec.ber = 1e-15;
    config.nic.retransmitTimeout = 2500;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    ASSERT_EQ(links.size(), 1u);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 10;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);

    Network net(config);
    net.armWatchdog(30000);
    net.sim().run(20);
    EXPECT_EQ(net.resilience()->faultsApplied(), 1u);

    // The fail-stop reached both directions' ARQ layers.
    LinkLayer *fwd = net.linkLayer(e.sw, static_cast<PortId>(e.port));
    ASSERT_NE(fwd, nullptr);
    EXPECT_TRUE(fwd->dead());
    const PortPeer &peer =
        net.topology().graph().peer(e.sw, static_cast<PortId>(e.port));
    LinkLayer *rev = net.linkLayer(peer.sw, peer.port);
    ASSERT_NE(rev, nullptr);
    EXPECT_TRUE(rev->dead());

    // A late escalation report for the same link (e.g. a replayed
    // flit timing out just as the planned fault landed) is absorbed.
    net.resilience()->escalateLink(e.sw, e.port, net.sim().now());
    net.sim().run(10);
    EXPECT_EQ(net.resilience()->faultsApplied(), 1u);

    // Traffic still flows around the dead link.
    DestSet dests(net.numHosts());
    for (NodeId d : {5, 9, 14})
        dests.set(d);
    net.nic(0).postMulticast(dests, 32, net.sim().now());
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);
}

/** A fault scheduled for cycle 0 applies before any flit moves. */
TEST(Resilience, CycleZeroFaultIsValid)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    FaultEvent e;
    e.kind = FaultKind::LinkDown;
    e.when = 0;
    e.sw = links[0].first;
    e.port = links[0].second;
    config.faultPlan.add(e);

    Network net(config);
    net.armWatchdog(30000);
    net.nic(0).postUnicast(13, 32, 0);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_EQ(net.resilience()->faultsApplied(), 1u);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);

    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

/** A flap window opening at cycle 0 (link born flapping) is legal:
 *  the retry layer rides it out from the very first traversal. */
TEST(Resilience, CycleZeroFlapWindowIsValid)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.nic.retransmitTimeout = 2500;

    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    FlapWindow flap;
    flap.sw = links[0].first;
    flap.port = links[0].second;
    flap.start = 0;
    flap.end = 12; // well inside the default retry budget
    config.faultPlan.flaps.push_back(flap);

    Network net(config);
    ASSERT_NE(net.linkLayer(flap.sw, static_cast<PortId>(flap.port)),
              nullptr);
    net.armWatchdog(30000);
    DestSet dests(net.numHosts());
    for (NodeId d : {4, 9, 14})
        dests.set(d);
    net.nic(0).postMulticast(dests, 32, 0);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);
    EXPECT_EQ(net.resilience()->linkEscalations(), 0u);

    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

/**
 * The full escalation handoff: a retry-exhaustion report schedules a
 * fail-stop LinkDown, rerouting kicks in, both directions' layers go
 * dead, and the report from the opposite direction deduplicates.
 */
TEST(Resilience, EscalationHandsOffToFailStopMachinery)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.faultSpec.ber = 1e-15; // instantiate the link layers
    config.nic.retransmitTimeout = 2500;

    Network net(config);
    net.armWatchdog(30000);
    FatTree scratch(4, 2);
    const auto links = firstLinks(scratch, 1);
    const SwitchId sw = links[0].first;
    const PortId port = links[0].second;

    net.resilience()->escalateLink(sw, port, 5);
    EXPECT_EQ(net.resilience()->linkEscalations(), 1u);
    net.sim().run(20);
    EXPECT_EQ(net.resilience()->faultsApplied(), 1u);
    EXPECT_TRUE(net.linkLayer(sw, port)->dead());
    const PortPeer &peer = net.topology().graph().peer(sw, port);
    EXPECT_TRUE(net.linkLayer(peer.sw, peer.port)->dead());

    // The other direction's layer reporting the same physical link
    // must not schedule a second fault.
    net.resilience()->escalateLink(peer.sw, peer.port,
                                   net.sim().now());
    net.sim().run(10);
    EXPECT_EQ(net.resilience()->linkEscalations(), 1u);
    EXPECT_EQ(net.resilience()->faultsApplied(), 1u);

    // Rerouting still delivers everything.
    DestSet dests(net.numHosts());
    for (NodeId d : {5, 9, 14})
        dests.set(d);
    net.nic(0).postMulticast(dests, 32, net.sim().now());
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);

    // The diagnosis dump (what a watchdog trip captures) reports the
    // per-direction ARQ state: replay-buffer occupancy, sequence
    // numbers, last-NAK cycle, and the escalated link.
    FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    net.dumpState(tmp);
    std::rewind(tmp);
    std::string dump;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), tmp)) > 0)
        dump.append(buf, got);
    std::fclose(tmp);
    EXPECT_NE(dump.find("link layers"), std::string::npos);
    EXPECT_NE(dump.find("unacked"), std::string::npos);
    EXPECT_NE(dump.find("last NAK"), std::string::npos);
    EXPECT_NE(dump.find("escalated/dead"), std::string::npos);
}

/** Transient schedules draw deterministically and within bounds. */
TEST(FaultPlan, TransientDrawIsDeterministic)
{
    std::vector<std::pair<SwitchId, int>> links;
    for (int i = 0; i < 12; ++i)
        links.emplace_back(static_cast<SwitchId>(i / 4), i % 4 + 4);

    FaultSpec spec;
    spec.ber = 2e-4;
    spec.residual = 0.05;
    spec.flaps = 3;
    spec.start = 100;
    spec.end = 900;
    spec.flapMin = 50;
    spec.flapMax = 200;
    spec.seed = 11;

    FaultPlan a, b;
    a.drawTransients(spec, links);
    b.drawTransients(spec, links);
    EXPECT_EQ(a.ber, spec.ber);
    EXPECT_EQ(a.residual, spec.residual);
    ASSERT_EQ(a.flaps.size(), 3u);
    for (std::size_t i = 0; i < a.flaps.size(); ++i) {
        EXPECT_EQ(a.flaps[i].sw, b.flaps[i].sw);
        EXPECT_EQ(a.flaps[i].port, b.flaps[i].port);
        EXPECT_EQ(a.flaps[i].start, b.flaps[i].start);
        EXPECT_EQ(a.flaps[i].end, b.flaps[i].end);
        EXPECT_GE(a.flaps[i].start, spec.start);
        EXPECT_LE(a.flaps[i].start, spec.end);
        const Cycle dur = a.flaps[i].end - a.flaps[i].start;
        EXPECT_GE(dur, spec.flapMin);
        EXPECT_LE(dur, spec.flapMax);
    }
    // Distinct links.
    for (std::size_t i = 0; i < a.flaps.size(); ++i)
        for (std::size_t j = i + 1; j < a.flaps.size(); ++j)
            EXPECT_FALSE(a.flaps[i].sw == a.flaps[j].sw &&
                         a.flaps[i].port == a.flaps[j].port);
}

/**
 * End-to-end integrity acceptance: under sustained BER with residual
 * (CRC-evading) errors, every completed multicast was verified — the
 * tainted copies were discarded at the NIC checksum and re-sent — and
 * nothing leaks.
 */
TEST(Resilience, ResidualErrorsAreCaughtEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.faultSpec.ber = 2e-3;
    config.faultSpec.residual = 0.2;
    config.nic.retransmitTimeout = 2500;

    Network net(config);
    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.08;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 6;
    traffic.seed = 13;
    traffic.stopCycle = 3000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(3000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 500000));
    EXPECT_FALSE(net.sim().deadlockDetected());

    std::uint64_t csum_fails = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts()); ++n)
        csum_fails += net.nic(n).stats().csumFails.value();
    EXPECT_GT(csum_fails, 0u) << "residual errors never materialized; "
                                 "raise ber/residual";

    // No silently corrupted delivery: every message the tracker calls
    // complete had all its copies re-delivered clean.
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    EXPECT_EQ(net.tracker().partialCompleted(), 0u);
    EXPECT_EQ(net.tracker().inFlight(), 0u);

    std::string why;
    net.sim().runUntil(
        [&net] { return net.checkQuiescent(nullptr); }, 4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

} // namespace
} // namespace mdw
