/**
 * @file
 * Tests for the telemetry subsystem: metric value/snapshot semantics,
 * ring-buffer tracing, zero-overhead guarantees when tracing is off,
 * and byte-identical exports across repeated and parallel runs.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "sim/telemetry.hh"

namespace mdw {
namespace {

// --- MetricValue / MetricsSnapshot -----------------------------------

TEST(MetricValue, CountersAddOnMerge)
{
    MetricValue a = MetricValue::makeCounter(3);
    a.merge(MetricValue::makeCounter(4));
    EXPECT_EQ(a.kind, MetricValue::Kind::Counter);
    EXPECT_EQ(a.counter, 7u);
}

TEST(MetricValue, GaugesCollapseIntoSamplerAcrossMerges)
{
    MetricValue a = MetricValue::makeGauge(1.0);
    a.merge(MetricValue::makeGauge(3.0));
    EXPECT_EQ(a.kind, MetricValue::Kind::Sampler);
    EXPECT_EQ(a.sampler.count(), 2u);
    EXPECT_DOUBLE_EQ(a.sampler.mean(), 2.0);
    // Third run's gauge merges into the collapsed sampler.
    a.merge(MetricValue::makeGauge(5.0));
    EXPECT_EQ(a.sampler.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sampler.mean(), 3.0);
}

TEST(MetricsSnapshot, LookupsAreTotal)
{
    MetricsSnapshot snap;
    EXPECT_EQ(snap.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauge("absent"), 0.0);
    EXPECT_EQ(snap.sampler("absent").count(), 0u);
    EXPECT_FALSE(snap.has("absent"));
}

TEST(MetricsSnapshot, SumCountersRollsUpHierarchy)
{
    MetricsSnapshot snap;
    snap.setCounter("switch.0.replications", 2);
    snap.setCounter("switch.1.replications", 5);
    snap.setCounter("switch.1.flits_in", 100);
    EXPECT_EQ(snap.sumCounters(".replications"), 7u);
}

TEST(MetricsSnapshot, IdenticalIsExact)
{
    MetricsSnapshot a, b;
    a.setGauge("x", 0.1);
    b.setGauge("x", 0.1);
    EXPECT_TRUE(a.identical(b));
    b.setGauge("x", 0.1 + 1e-18);
    EXPECT_TRUE(a.identical(b)); // same double bit pattern
    b.setGauge("x", 0.2);
    EXPECT_FALSE(a.identical(b));
    b.setGauge("x", 0.1);
    b.setCounter("y", 1);
    EXPECT_FALSE(a.identical(b));
}

// --- Registry --------------------------------------------------------

TEST(MetricsRegistry, SnapshotsReadLiveSources)
{
    Counter c;
    Sampler s;
    MetricsRegistry reg;
    reg.registerCounter("c", &c);
    reg.registerSampler("s", &s);
    reg.registerGauge("g", [] { return 2.5; });
    reg.registerIntGauge("i", [] { return std::uint64_t{9}; });

    c.inc(3);
    s.add(1.0);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("c"), 3u);
    EXPECT_EQ(snap.sampler("s").count(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauge("g"), 2.5);
    EXPECT_EQ(snap.counter("i"), 9u);

    c.inc(2); // registry holds pointers, not copies
    EXPECT_EQ(reg.snapshot().counter("c"), 5u);
    EXPECT_EQ(snap.counter("c"), 3u); // snapshots are value types
}

// --- WormTracer ------------------------------------------------------

TEST(WormTracer, RingBufferWrapsKeepingNewestEvents)
{
    WormTracer tracer(4);
    for (int i = 0; i < 10; ++i)
        tracer.record(WormEvent::Inject, static_cast<Cycle>(100 + i),
                      static_cast<PacketId>(i), 1, 0, true);
    EXPECT_EQ(tracer.capacity(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(tracer.size(), 4u);

    const WormTrace trace = tracer.snapshot();
    ASSERT_EQ(trace.events.size(), 4u);
    EXPECT_EQ(trace.recorded, 10u);
    EXPECT_EQ(trace.dropped, 6u);
    // Oldest-first, and only the newest four survive.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(trace.events[static_cast<std::size_t>(i)].cycle,
                  static_cast<Cycle>(106 + i));
}

TEST(WormTracer, PartialFillSnapshotsInOrder)
{
    WormTracer tracer(8);
    tracer.record(WormEvent::Inject, 5, 1, 1, 0, true);
    tracer.record(WormEvent::Deliver, 9, 1, 1, 3, true);
    const WormTrace trace = tracer.snapshot();
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.events[0].cycle, 5u);
    EXPECT_EQ(trace.events[1].kind, WormEvent::Deliver);
    EXPECT_EQ(trace.dropped, 0u);
}

TEST(WormTracer, ChromeJsonListsAllEvents)
{
    WormTracer tracer(8);
    tracer.record(WormEvent::Replicate, 7, 42, 3, 2, false, 1);
    const std::string json = tracer.snapshot().chromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"replicate\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":7"), std::string::npos);
    EXPECT_NE(json.find("\"clock\":\"cycles\""), std::string::npos);
}

// --- Experiment integration ------------------------------------------

ExperimentParams
quickParams()
{
    ExperimentParams params;
    params.warmup = 1000;
    params.measure = 4000;
    params.drainLimit = 100000;
    params.watchdogQuiet = 50000;
    return params;
}

NetworkConfig
smallNet()
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    return config;
}

TrafficParams
lightMcast()
{
    TrafficParams traffic = defaultTraffic();
    traffic.load = 0.03;
    traffic.mcastDegree = 4;
    traffic.payloadFlits = 16;
    return traffic;
}

TEST(Telemetry, DisabledTracingAddsNothing)
{
    NetworkConfig off = smallNet();
    ASSERT_FALSE(off.telemetry.trace);
    NetworkConfig on = smallNet();
    on.telemetry.trace = true;

    const ExperimentResult plain =
        Experiment(off, lightMcast(), quickParams()).run();
    const ExperimentResult traced =
        Experiment(on, lightMcast(), quickParams()).run();

    // Tracing is pure observation: every metric — and therefore the
    // whole result — is unchanged, and no extra registry entries
    // appear when the tracer is armed.
    EXPECT_EQ(plain.trace, nullptr);
    ASSERT_NE(traced.trace, nullptr);
    EXPECT_GT(traced.trace->events.size(), 0u);
    EXPECT_EQ(plain.metrics.size(), traced.metrics.size());
    EXPECT_TRUE(identicalResults(plain, traced));
}

TEST(Telemetry, TracedRunRecordsWormLifecycle)
{
    NetworkConfig config = smallNet();
    config.telemetry.trace = true;
    const ExperimentResult r =
        Experiment(config, lightMcast(), quickParams()).run();
    ASSERT_NE(r.trace, nullptr);

    bool saw_inject = false, saw_decode = false, saw_replicate = false,
         saw_drain = false, saw_deliver = false;
    for (const WormTraceEvent &e : r.trace->events) {
        saw_inject |= e.kind == WormEvent::Inject;
        saw_decode |= e.kind == WormEvent::HeaderDecode;
        saw_replicate |= e.kind == WormEvent::Replicate;
        saw_drain |= e.kind == WormEvent::TailDrain;
        saw_deliver |= e.kind == WormEvent::Deliver;
    }
    EXPECT_TRUE(saw_inject);
    EXPECT_TRUE(saw_decode);
    EXPECT_TRUE(saw_replicate); // degree-4 multicast must replicate
    EXPECT_TRUE(saw_drain);
    EXPECT_TRUE(saw_deliver);
}

TEST(Telemetry, ExportsAreByteIdenticalAcrossRepeatedRuns)
{
    NetworkConfig config = smallNet();
    config.telemetry.trace = true;
    const ExperimentResult a =
        Experiment(config, lightMcast(), quickParams()).run();
    const ExperimentResult b =
        Experiment(config, lightMcast(), quickParams()).run();
    ASSERT_NE(a.trace, nullptr);
    ASSERT_NE(b.trace, nullptr);
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
    EXPECT_EQ(a.trace->chromeJson(), b.trace->chromeJson());
    EXPECT_EQ(a.trace->jsonl(), b.trace->jsonl());
}

std::vector<double>
testLoads()
{
    return {0.01, 0.02, 0.03, 0.05};
}

TEST(Telemetry, ParallelSweepAggregatesByteIdenticalToSerial)
{
    NetworkConfig config = smallNet();
    const ExperimentParams params = quickParams();

    SweepOptions serial;
    serial.threads = 1;
    SweepOptions parallel;
    parallel.threads = 4;
    SweepRunner one(serial), four(parallel);
    for (double load : testLoads()) {
        TrafficParams t = lightMcast();
        t.load = load;
        one.add("run", config, t, params);
        four.add("run", config, t, params);
    }
    one.run();
    four.run();

    ASSERT_EQ(one.results().size(), four.results().size());
    for (std::size_t i = 0; i < one.results().size(); ++i)
        EXPECT_EQ(one.results()[i].metrics.toJson(),
                  four.results()[i].metrics.toJson());
    EXPECT_TRUE(
        one.report().metrics.identical(four.report().metrics));
    EXPECT_EQ(one.report().metrics.toJson(),
              four.report().metrics.toJson());
}

// --- ReportWriter ----------------------------------------------------

TEST(ReportWriter, StreamHasSchemaMetricsAndStatus)
{
    char *buf = nullptr;
    std::size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);

    SweepReport report;
    report.threads = 2;
    report.metrics.setCounter("network.replications", 12);
    ReportWriter writer(mem, "E3");
    writer.sweep(report);
    std::fclose(mem);
    const std::string out(buf, len);
    std::free(buf);

    EXPECT_NE(out.find("\"schema\":\"mdw-report/1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"experiment\":\"E3\""), std::string::npos);
    EXPECT_NE(out.find("\"metrics\":{\"network.replications\":12}"),
              std::string::npos);
    EXPECT_NE(out.find("{\"status\":\"ok\"}"), std::string::npos);
}

} // namespace
} // namespace mdw
