/**
 * @file
 * End-to-end integration and stress tests: full systems under random
 * traffic across all scheme/architecture/topology/routing-variant
 * combinations, with the deadlock watchdog armed. Every message must
 * complete with exactly one delivery per destination (the tracker
 * panics on duplicates), and the network must drain.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace mdw {
namespace {

struct E2eCase
{
    SwitchArch arch;
    McastScheme scheme;
    RoutingVariant variant;
    UpPortPolicy upPolicy;
    std::uint64_t seed;
};

void
PrintTo(const E2eCase &c, std::ostream *os)
{
    *os << toString(c.arch) << "/" << toString(c.scheme) << "/"
        << toString(c.variant) << "/" << toString(c.upPolicy)
        << "/seed" << c.seed;
}

class E2eMatrix : public ::testing::TestWithParam<E2eCase>
{
};

TEST_P(E2eMatrix, RandomTrafficDrainsWithoutDeadlock)
{
    const E2eCase &c = GetParam();
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts: fast but multi-stage
    config.arch = c.arch;
    config.nic.scheme = c.scheme;
    config.sw.variant = c.variant;
    config.sw.upPolicy = c.upPolicy;
    config.seed = c.seed;
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::Bimodal;
    traffic.load = 0.08;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 6;
    traffic.mcastFraction = 0.3;
    traffic.seed = c.seed * 7 + 1;
    traffic.stopCycle = 8000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(20000);
    net.sim().run(8000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 200000);

    EXPECT_TRUE(drained) << "undrained after generation stopped";
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_GT(source.generated(), 0u);
    EXPECT_EQ(net.tracker().inFlight(), 0u);
    // Every generated message completed (tracker erases completed).
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());

    // Nothing stranded anywhere: buffers empty, all credits home
    // (idle() is message-level; this audits flits and credits too).
    std::string why;
    net.sim().runUntil([&net] { return net.checkQuiescent(nullptr); },
                       4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

std::vector<E2eCase>
buildMatrix()
{
    std::vector<E2eCase> cases;
    for (SwitchArch arch :
         {SwitchArch::CentralBuffer, SwitchArch::InputBuffer}) {
        for (McastScheme scheme :
             {McastScheme::Hardware, McastScheme::Software}) {
            for (RoutingVariant variant :
                 {RoutingVariant::ReplicateAfterLca,
                  RoutingVariant::ReplicateOnUpPath}) {
                for (UpPortPolicy policy :
                     {UpPortPolicy::Adaptive,
                      UpPortPolicy::Deterministic}) {
                    for (std::uint64_t seed : {1ULL, 2ULL}) {
                        cases.push_back(E2eCase{arch, scheme, variant,
                                                policy, seed});
                    }
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, E2eMatrix,
                         ::testing::ValuesIn(buildMatrix()));

TEST(E2eIrregular, MulticastOnRandomNowDrains)
{
    for (std::uint64_t seed : {3ULL, 11ULL, 42ULL}) {
        NetworkConfig config = defaultNetwork();
        config.topo = TopologyKind::Irregular;
        config.irregular.switches = 12;
        config.irregular.radix = 8;
        config.irregular.hosts = 24;
        config.irregular.extraLinks = 6;
        config.seed = seed;
        Network net(config);

        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.05;
        traffic.payloadFlits = 32;
        traffic.mcastDegree = 8;
        traffic.seed = seed;
        traffic.stopCycle = 5000;
        SyntheticTraffic source(net.numHosts(), traffic);
        net.attachTraffic(&source);

        net.armWatchdog(20000);
        net.sim().run(5000);
        const bool drained =
            net.sim().runUntil([&net] { return net.idle(); }, 200000);
        EXPECT_TRUE(drained) << "seed " << seed;
        EXPECT_FALSE(net.sim().deadlockDetected()) << "seed " << seed;
        EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    }
}

/**
 * Regression for the central-queue buffer-dependency deadlocks: on
 * irregular networks under sustained multicast load, up-phase and
 * down-phase traffic sharing the central queues used to wedge (a)
 * unicast carriers stalling mid-write with the pool exhausted and
 * (b) whole-packet reservations waiting on each other across
 * adjacent stages. The per-output escape chunks and the up-phase
 * reservation headroom must keep every seed live.
 */
class IrregularStress
    : public ::testing::TestWithParam<std::tuple<McastScheme,
                                                 std::uint64_t>>
{
};

TEST_P(IrregularStress, SustainedLoadNeverWedges)
{
    const auto [scheme, seed] = GetParam();
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::Irregular;
    config.irregular.switches = 16;
    config.irregular.radix = 8;
    config.irregular.hosts = 32;
    config.irregular.extraLinks = 8;
    config.nic.scheme = scheme;
    config.seed = seed;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.04; // well past saturation for this NOW
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 6;
    traffic.seed = seed + 100;
    traffic.stopCycle = 8000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(30000);
    net.sim().run(8000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 1000000);
    EXPECT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, IrregularStress,
    ::testing::Combine(::testing::Values(McastScheme::Hardware,
                                         McastScheme::Software),
                       ::testing::Values(11, 12, 14, 15, 16, 17)));

TEST(E2eStress, HighLoadBroadcastStormStaysCorrect)
{
    // Saturating broadcast load on a small system: the point is not
    // latency but that reservations prevent deadlock and every copy
    // lands exactly once.
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.5; // far beyond saturation with degree 15
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 15; // broadcast
    traffic.stopCycle = 3000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(3000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 2000000);
    EXPECT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    EXPECT_EQ(net.tracker().totalDeliveries(), source.generated() * 15);

    std::string why;
    net.sim().runUntil([&net] { return net.checkQuiescent(nullptr); },
                       4096);
    EXPECT_TRUE(net.checkQuiescent(&why)) << why;
}

TEST(E2eStress, TinyCentralQueueStillDeadlockFree)
{
    // A central queue barely big enough for one worm forces heavy
    // reservation contention.
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 2;
    config.fatTreeN = 3; // 8 hosts, 3 stages
    // 34-flit worms need 5 chunks; 14 is the bare minimum (one worm
    // plus the up-phase headroom and escape chunks).
    config.cb.cqChunks = 14;
    config.maxPayloadFlits = 32;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.2;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 7;
    traffic.stopCycle = 4000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(4000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 2000000);
    EXPECT_TRUE(drained);
    EXPECT_FALSE(net.sim().deadlockDetected());
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
}

/**
 * Copy-conservation invariant: every injected packet is delivered
 * exactly (1 + its replications) times — a switch replication mints
 * one extra copy, nothing else does, and no copy is lost. Checked
 * across architectures, schemes, and topologies after a drained run.
 */
class CopyConservation
    : public ::testing::TestWithParam<
          std::tuple<SwitchArch, McastScheme, TopologyKind>>
{
};

TEST_P(CopyConservation, DeliveriesEqualInjectionsPlusReplications)
{
    const auto [arch, scheme, topo] = GetParam();
    NetworkConfig config = defaultNetwork();
    config.topo = topo;
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    config.irregular.switches = 10;
    config.irregular.hosts = 16;
    config.arch = arch;
    config.nic.scheme = scheme;
    config.nic.sendOverhead = 10;
    config.nic.recvOverhead = 10;
    Network net(config);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::Bimodal;
    traffic.load = 0.06;
    traffic.payloadFlits = 24;
    traffic.mcastDegree = 5;
    traffic.mcastFraction = 0.4;
    traffic.stopCycle = 5000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(30000);
    net.sim().run(5000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 500000));

    std::uint64_t injected = 0, delivered = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(net.numHosts()); ++n) {
        injected += net.nic(n).stats().packetsInjected.value();
        delivered += net.nic(n).stats().packetsDelivered.value();
    }
    EXPECT_EQ(delivered, injected + net.totals().replications);
    EXPECT_GT(injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CopyConservation,
    ::testing::Combine(::testing::Values(SwitchArch::CentralBuffer,
                                         SwitchArch::InputBuffer),
                       ::testing::Values(McastScheme::Hardware,
                                         McastScheme::Software),
                       ::testing::Values(TopologyKind::FatTree,
                                         TopologyKind::UniMin,
                                         TopologyKind::Irregular)));

TEST(E2eScale, LargeSystemSmokeTest)
{
    // 256 hosts, 4 stages, moderate multicast load.
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 4;
    Network net(config);
    EXPECT_EQ(net.numHosts(), 256u);
    EXPECT_EQ(net.numSwitches(), 256u);

    TrafficParams traffic;
    traffic.pattern = TrafficPattern::MultipleMulticast;
    traffic.load = 0.02;
    traffic.payloadFlits = 32;
    traffic.mcastDegree = 16;
    traffic.stopCycle = 2000;
    SyntheticTraffic source(net.numHosts(), traffic);
    net.attachTraffic(&source);

    net.armWatchdog(50000);
    net.sim().run(2000);
    const bool drained =
        net.sim().runUntil([&net] { return net.idle(); }, 500000);
    EXPECT_TRUE(drained);
    EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
}

TEST(E2eLatency, ZeroLoadUnicastLatencyScalesWithDistance)
{
    NetworkConfig config = defaultNetwork(); // 64 hosts, 3 stages
    config.nic.sendOverhead = 0;
    Network net(config);
    // Nearest neighbor (same leaf switch).
    net.nic(0).postUnicast(1, 64, 0);
    net.sim().runUntil([&net] { return net.idle(); }, 10000);
    const double near = net.tracker().unicastLatency().mean();

    NetworkConfig config2 = defaultNetwork();
    config2.nic.sendOverhead = 0;
    Network net2(config2);
    // Opposite corner: needs the root stage.
    net2.nic(0).postUnicast(63, 64, 0);
    net2.sim().runUntil([&net2] { return net2.idle(); }, 10000);
    const double far = net2.tracker().unicastLatency().mean();

    EXPECT_GT(far, near);
    // Wormhole: distance adds per-hop latency, not per-flit.
    EXPECT_LT(far, near + 40.0);
}

TEST(E2eLatency, HwMulticastFasterThanSwAtModerateDegree)
{
    auto lastLatency = [](Scheme scheme) {
        NetworkConfig config = networkFor(scheme);
        Network net(config);
        DestSet dests(net.numHosts());
        for (NodeId d : {3, 9, 17, 22, 35, 41, 52, 60})
            dests.set(d);
        net.nic(0).postMulticast(dests, 64, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 100000);
        return net.tracker().mcastLastLatency().mean();
    };
    const double cb_hw = lastLatency(Scheme::CbHw);
    const double ib_hw = lastLatency(Scheme::IbHw);
    const double sw = lastLatency(Scheme::SwUmin);
    // The headline claim: hardware multidestination worms beat the
    // multi-phase software scheme by a wide margin (the paper reports
    // up to 4x for a single multicast).
    EXPECT_LT(cb_hw * 2.0, sw);
    EXPECT_LT(ib_hw * 2.0, sw);
}

} // namespace
} // namespace mdw
